//! Property-based tests of Flint's policy mathematics (Eq. 1–4) and
//! selection behaviour.

use flint::core::{
    expected_runtime_factor, harmonic_mttf, optimal_tau, runtime_variance, BatchSelection,
    BidPolicy, JobProfile, MarketView, SelectionConfig, SelectionPolicy,
};
use flint::market::MarketCatalog;
use flint::simtime::{SimDuration, SimTime};
use flint::store::StorageConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// τ = √(2δ·MTTF): monotone in both arguments and dimensionally sane
    /// (τ between δ and MTTF for δ < MTTF).
    #[test]
    fn tau_monotone_and_bounded(delta_s in 1u64..600, mttf_h in 1u64..1000) {
        let delta = SimDuration::from_secs(delta_s);
        let mttf = SimDuration::from_hours(mttf_h);
        let tau = optimal_tau(delta, mttf);
        let tau_bigger_delta = optimal_tau(delta * 4, mttf);
        let tau_bigger_mttf = optimal_tau(delta, mttf * 4);
        prop_assert!(tau_bigger_delta >= tau);
        prop_assert!(tau_bigger_mttf >= tau);
        // √(2δM) doubles when either argument quadruples.
        let r = tau_bigger_mttf.as_secs_f64() / tau.as_secs_f64();
        prop_assert!((r - 2.0).abs() < 0.01, "quadrupling MTTF should double tau, got {r}");
        if delta < mttf {
            prop_assert!(tau >= delta, "tau {tau} below delta {delta}");
            prop_assert!(tau <= mttf, "tau {tau} above mttf {mttf}");
        }
    }

    /// The expected runtime factor at τ* is never worse than at 2τ* or
    /// τ*/2 — the first-order optimality the policy relies on.
    #[test]
    fn tau_star_locally_optimal(delta_s in 5u64..600, mttf_h in 1u64..200) {
        let delta = SimDuration::from_secs(delta_s);
        let mttf = SimDuration::from_hours(mttf_h);
        let rd = SimDuration::from_secs(120);
        let star = optimal_tau(delta, mttf);
        let f = |tau: SimDuration| expected_runtime_factor(delta, tau, mttf, rd, 1.0);
        prop_assert!(f(star) <= f(star * 2) + 1e-9);
        prop_assert!(f(star) <= f(star / 2) + 1e-9);
    }

    /// Harmonic MTTF is below the weakest member and scales like m for
    /// identical members.
    #[test]
    fn harmonic_mttf_bounds(hours in proptest::collection::vec(1u64..500, 1..6)) {
        let mttfs: Vec<SimDuration> = hours.iter().map(|h| SimDuration::from_hours(*h)).collect();
        let agg = harmonic_mttf(&mttfs);
        let min = *mttfs.iter().min().unwrap();
        prop_assert!(agg <= min);
        let m = mttfs.len() as u64;
        prop_assert!(agg * m >= min, "aggregate too small: {agg} * {m} < {min}");
    }

    /// Diversification reduces variance: m equal markets always beat one
    /// (Eq. 3 + 4, the basis of Policy 2).
    #[test]
    fn diversification_cuts_variance(mttf_h in 2u64..200, m in 2u32..8) {
        let t = SimDuration::from_hours(4);
        let delta = SimDuration::from_secs(60);
        let rd = SimDuration::from_secs(120);
        let single = runtime_variance(t, delta, SimDuration::from_hours(mttf_h), rd, 1);
        let agg = SimDuration::from_hours_f64(mttf_h as f64 / f64::from(m));
        let multi = runtime_variance(t, delta, agg, rd, m);
        prop_assert!(
            multi < single,
            "m={m}: variance {multi} should be below single-market {single}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The batch policy's pick minimizes expected cost over every stable
    /// candidate (brute-force cross-check), at arbitrary decision times.
    #[test]
    fn batch_selection_is_brute_force_optimal(day in 8u64..80, seed in 0u64..5) {
        let cat = MarketCatalog::synthetic_ec2(seed, SimDuration::from_days(90));
        let cfg = SelectionConfig::default();
        let job = JobProfile::default();
        let view = MarketView {
            catalog: &cat,
            now: SimTime::ZERO + SimDuration::from_days(day),
            bid: BidPolicy::OnDemandPrice,
            cfg: &cfg,
            job: &job,
            storage: StorageConfig::default(),
            n: 10,
            cooled: &[],
        };
        let mut p = BatchSelection;
        let pick = p.initial(&view)[0].0;
        let pick_rate = if pick == cat.on_demand_id() {
            view.on_demand_rate()
        } else {
            view.cost_rate(pick)
        };
        for c in view.candidates() {
            prop_assert!(
                view.cost_rate(c) >= pick_rate - 1e-12,
                "candidate {:?} at {} beats pick {:?} at {}",
                c, view.cost_rate(c), pick, pick_rate
            );
        }
        prop_assert!(pick_rate <= view.on_demand_rate() + 1e-12);
    }
}
