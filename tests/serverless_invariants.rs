//! Cross-crate invariants of the serverless execution backend, driven
//! through the public `FlintCluster` / `run_on_flint` surface:
//!
//! * every workload in the suite completes under `BackendSpec::Serverless`
//!   with a result checksum identical to its transient-VM run — the
//!   backend moves latency and dollars, never data;
//! * the traced run is deterministic across `host_threads` settings and
//!   across replays of the same seed;
//! * the billing ledger reconciles three ways: Σ `InvocationBilled`
//!   events == `CostReport.compute_cost` == the `MetricsAggregator`'s
//!   fold, exactly.

use flint::core::{BackendSpec, FlintConfig};
use flint::engine::DriverConfig;
use flint::market::MarketCatalog;
use flint::runner::run_on_flint;
use flint::simtime::SimDuration;
use flint::trace::{EventKind, MetricsAggregator, TraceHandle};
use flint::workloads::{Als, KMeans, PageRank, Streaming, Tpch, Workload, WorkloadConfig};

fn small_config(seed: u64) -> WorkloadConfig {
    WorkloadConfig {
        dataset_gb: 0.3,
        partitions: 4,
        iterations: 2,
        seed,
    }
}

/// All five stock workloads, at small scale.
fn suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(PageRank::new(small_config(1))),
        Box::new(KMeans::new(small_config(2))),
        Box::new(Als::new(small_config(3))),
        Box::new(Tpch::new(small_config(4))),
        Box::new(Streaming::new(small_config(5))),
    ]
}

fn catalog() -> MarketCatalog {
    MarketCatalog::synthetic_ec2(7, SimDuration::from_days(30))
}

#[test]
fn every_workload_matches_its_vm_checksum_under_serverless() {
    for wl in suite() {
        let vm = run_on_flint(
            catalog(),
            FlintConfig::builder().n_workers(4).seed(13).build(),
            wl.as_ref(),
        )
        .unwrap_or_else(|e| panic!("{} failed on vm: {e}", wl.name()));
        assert_eq!(vm.backend(), "vm");
        let sl = run_on_flint(
            catalog(),
            FlintConfig::builder()
                .n_workers(8)
                .seed(13)
                .backend(BackendSpec::Serverless(Default::default()))
                .build(),
            wl.as_ref(),
        )
        .unwrap_or_else(|e| panic!("{} failed on serverless: {e}", wl.name()));
        assert_eq!(sl.backend(), "serverless");
        assert_eq!(
            sl.summary.checksum,
            vm.summary.checksum,
            "{}: serverless changed the answer",
            wl.name()
        );
        assert_eq!(sl.summary.records, vm.summary.records);
        assert!(sl.cost.invocations > 0, "{}: nothing billed", wl.name());
        assert!(sl.cost.compute_cost > 0.0);
        assert!(sl.cost.invocation_gb_seconds > 0.0);
        assert_eq!(sl.cost.revocations, 0, "function slots are not revocable");
    }
}

/// Runs PageRank on a traced serverless cluster and returns the JSONL
/// stream plus the final bill.
fn traced_serverless_run(host_threads: usize, seed: u64) -> (String, flint::core::CostReport) {
    let trace = TraceHandle::disabled();
    let reader = trace.attach_memory(0);
    let driver_cfg = DriverConfig {
        host_threads,
        ..Default::default()
    };
    let wl = PageRank::new(small_config(9));
    let run = run_on_flint(
        catalog(),
        FlintConfig::builder()
            .n_workers(8)
            .seed(seed)
            .driver(driver_cfg)
            .trace(trace)
            .backend(BackendSpec::Serverless(Default::default()))
            .build(),
        &wl,
    )
    .unwrap();
    (reader.to_jsonl(), run.cost)
}

#[test]
fn serverless_cluster_runs_are_host_thread_and_replay_deterministic() {
    let (golden, cost) = traced_serverless_run(1, 77);
    assert!(!golden.is_empty());
    for threads in [2usize, 8] {
        let (jsonl, other) = traced_serverless_run(threads, 77);
        assert_eq!(
            jsonl, golden,
            "host_threads={threads} moved the serverless stream"
        );
        assert_eq!(other.compute_cost, cost.compute_cost);
        assert_eq!(other.invocations, cost.invocations);
    }
    // Replay at the same thread count is byte-identical too.
    let (replay, _) = traced_serverless_run(1, 77);
    assert_eq!(replay, golden);
    // A different cloud seed draws different cold-start latencies.
    let (other_seed, _) = traced_serverless_run(1, 78);
    assert_ne!(other_seed, golden);
}

#[test]
fn billing_reconciles_event_stream_aggregator_and_cost_report() {
    let (jsonl, cost) = traced_serverless_run(4, 21);
    assert_eq!(cost.backend, "serverless");
    assert_eq!(cost.policy, "serverless");

    let events: Vec<flint::trace::Event> = jsonl
        .lines()
        .map(|l| flint::trace::Event::from_json(l).expect("every line parses"))
        .collect();

    // Raw fold of the event stream, in stream (commit) order — the same
    // f64 accumulation order the backend used, so equality is exact.
    let mut billed_cost = 0.0f64;
    let mut billed_gb = 0.0f64;
    let mut billed_n = 0u64;
    let mut selected = None;
    for ev in &events {
        match &ev.kind {
            EventKind::InvocationBilled {
                gb_seconds, cost, ..
            } => {
                billed_cost += cost;
                billed_gb += gb_seconds;
                billed_n += 1;
            }
            EventKind::BackendSelected { backend, workers } => {
                selected = Some((backend.clone(), *workers));
            }
            _ => {}
        }
    }
    assert_eq!(selected, Some(("serverless".to_string(), 8)));
    assert_eq!(billed_cost, cost.compute_cost, "Σ events != compute cost");
    assert_eq!(billed_gb, cost.invocation_gb_seconds);
    assert_eq!(billed_n, cost.invocations);

    // The aggregator folds to the same ledger.
    let agg = MetricsAggregator::from_events(&events);
    assert_eq!(agg.backend.as_deref(), Some("serverless"));
    assert_eq!(agg.backend_workers, 8);
    assert_eq!(agg.invocations_billed, cost.invocations);
    assert_eq!(agg.invocation_cost, cost.compute_cost);
    assert_eq!(agg.invocation_gb_seconds, cost.invocation_gb_seconds);
    assert!(agg.invocations > 0);
    assert!(agg.cold_starts > 0, "first hit on each slot must be cold");
    assert!(agg.shuffles_externalized > 0, "shuffles must hit the store");
}
