//! Equivalence suites for the event-driven simulation core: every
//! indexed fast path (price-trace prefix sums, segment-tree up-crossing
//! search, maintained CloudSim active/running sets) must agree with a
//! transcribed linear/full-scan reference on arbitrary inputs.

use std::collections::{BTreeMap, BTreeSet};

use flint::core::{
    new_shared, BatchSelection, BidPolicy, JobProfile, NodeManager, SelectionConfig,
};
use flint::engine::FailureInjector;
use flint::market::{
    CloudSim, HazardSpec, InstanceId, InstanceState, MarketCatalog, MarketId, PriceTrace,
    TraceGenerator, TraceProfile,
};
use flint::simtime::{SimDuration, SimTime};
use flint::store::StorageConfig;
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = PriceTrace> {
    (0u64..100, 0.05f64..0.5).prop_map(|(seed, od)| {
        let gen = TraceGenerator::new(seed, SimTime::ZERO + SimDuration::from_days(60));
        gen.generate("prop", &TraceProfile::volatile(od))
    })
}

/// The pre-index `mean_price`: walk the segment and accumulate
/// price-weighted durations linearly.
fn mean_price_linear(trace: &PriceTrace, from: SimTime, to: SimTime) -> f64 {
    if to <= from {
        return trace.price_at(from);
    }
    let seg = trace.segment(from, to);
    let mut acc = 0.0;
    for (i, &(t, p)) in seg.iter().enumerate() {
        let end = if i + 1 < seg.len() { seg[i + 1].0 } else { to };
        acc += p * (end - t).as_millis() as f64;
    }
    acc / (to - from).as_millis() as f64
}

/// The pre-index `next_up_crossing`: scan every change point after `t`,
/// tracking the above/below state.
fn next_up_crossing_linear(trace: &PriceTrace, t: SimTime, threshold: f64) -> Option<SimTime> {
    let mut above = trace.price_at(t) > threshold;
    for &(pt, p) in trace.points() {
        if pt <= t {
            continue;
        }
        let now_above = p > threshold;
        if now_above && !above {
            return Some(pt);
        }
        above = now_above;
    }
    None
}

fn up_crossings_linear(
    trace: &PriceTrace,
    from: SimTime,
    to: SimTime,
    threshold: f64,
) -> Vec<SimTime> {
    let mut out = Vec::new();
    let mut cur = from;
    while let Some(t) = next_up_crossing_linear(trace, cur, threshold) {
        if t >= to {
            break;
        }
        out.push(t);
        cur = t;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Prefix-sum `mean_price` is bitwise-close to the linear segment
    /// walk over arbitrary traces and windows (the summation order
    /// differs, so we allow float-associativity slack only).
    #[test]
    fn mean_price_matches_linear_reference(
        trace in arb_trace(),
        from_h in 0.0f64..1500.0,
        dur_h in 0.0f64..400.0,
    ) {
        let from = SimTime::from_hours_f64(from_h);
        let to = from + SimDuration::from_hours_f64(dur_h);
        let fast = trace.mean_price(from, to);
        let slow = mean_price_linear(&trace, from, to);
        prop_assert!(
            (fast - slow).abs() <= 1e-9 * slow.abs().max(1.0),
            "fast {fast} != linear {slow} over [{from_h}h, +{dur_h}h)"
        );
    }

    /// Segment-tree up-crossing search returns the *same instants* as
    /// the linear scan — exact equality, since both are comparison-only.
    #[test]
    fn up_crossings_match_linear_reference(
        trace in arb_trace(),
        from_h in 0.0f64..1500.0,
        dur_h in 0.0f64..500.0,
        thr_mult in 0.2f64..4.0,
    ) {
        let from = SimTime::from_hours_f64(from_h);
        let to = from + SimDuration::from_hours_f64(dur_h);
        let threshold = thr_mult * trace.price_at(from);
        prop_assert_eq!(
            trace.next_up_crossing(from, threshold),
            next_up_crossing_linear(&trace, from, threshold)
        );
        prop_assert_eq!(
            trace.up_crossings(from, to, threshold),
            up_crossings_linear(&trace, from, to, threshold)
        );
    }

    /// The maintained active/running index sets and per-market counts
    /// equal a full scan over every instance record, at every event
    /// boundary of a randomized request/terminate schedule.
    #[test]
    fn cloud_index_matches_full_scan(
        seed in 0u64..40,
        n_inst in 1usize..24,
        bid_mult in 0.3f64..3.0,
        kill_mod in 2u64..5,
    ) {
        let cat = MarketCatalog::synthetic_ec2(seed, SimDuration::from_days(30));
        let mut cloud = CloudSim::with_seed(cat, seed);
        let markets: Vec<MarketId> =
            cloud.catalog().spot_markets().iter().map(|m| m.id).collect();

        let mut ids: Vec<InstanceId> = Vec::new();
        for i in 0..n_inst {
            let m = markets[i % markets.len()];
            let bid = cloud.catalog().market(m).on_demand_price * bid_mult;
            let t = SimTime::from_hours_f64(i as f64 * 1.5);
            ids.push(cloud.request(m, bid, t));
        }

        // Interleave event delivery with user terminations, checking the
        // indexes against a full scan at every step.
        let horizon = SimTime::ZERO + SimDuration::from_days(20);
        let step = SimDuration::from_hours(12);
        let mut now = SimTime::ZERO;
        let mut expect_revoked = 0u64;
        while now < horizon {
            now += step;
            for (_, ev) in cloud.events_until(now) {
                if matches!(ev, flint::market::InstanceEvent::Revoked { .. }) {
                    expect_revoked += 1;
                }
            }
            // Periodically terminate one known-alive instance.
            if (now.as_hours_f64() as u64).is_multiple_of(kill_mod) {
                let victim = cloud.active().next();
                if let Some(id) = victim {
                    cloud.terminate(id, now);
                }
            }

            // Full-scan reference over every record ever created.
            let mut scan_active = BTreeSet::new();
            let mut scan_running = BTreeSet::new();
            let mut scan_by_market: BTreeMap<MarketId, u32> = BTreeMap::new();
            for &id in &ids {
                let r = cloud.instance(id);
                if r.is_active() {
                    scan_active.insert(id);
                    *scan_by_market.entry(r.market).or_insert(0) += 1;
                }
                if r.state == InstanceState::Running {
                    scan_running.insert(id);
                }
            }

            prop_assert_eq!(cloud.active().collect::<BTreeSet<_>>(), scan_active);
            prop_assert_eq!(cloud.running().collect::<BTreeSet<_>>(), scan_running);
            prop_assert_eq!(
                cloud.active_markets().collect::<BTreeMap<_, _>>(),
                scan_by_market
            );
            prop_assert_eq!(cloud.active_count(), cloud.active().count());
            prop_assert_eq!(cloud.running_count(), cloud.running().count());
            prop_assert_eq!(cloud.revocation_count(), expect_revoked);
        }

        // Settled billing: a terminated instance's cached cost equals a
        // fresh recomputation from its trace at any later query time.
        for &id in &ids {
            let r = cloud.instance(id);
            if let Some(end) = r.ended_at {
                let frozen_early = cloud.instance_cost(id, end);
                let frozen_late = cloud.instance_cost(id, end + SimDuration::from_days(400));
                prop_assert_eq!(frozen_early.to_bits(), frozen_late.to_bits());
            }
        }
    }

    /// A live NodeManager run, ticked event-by-event: the handle's
    /// index-backed views (active markets, revocation count) equal a
    /// per-tick full scan of every instance record — the transcribed
    /// reference the pre-index code computed on every query.
    #[test]
    fn node_manager_views_match_per_tick_scan(
        seed in 0u64..30,
        n in 4u32..24,
        age_aware in proptest::bool::ANY,
    ) {
        let catalog = MarketCatalog::synthetic_ec2(seed, SimDuration::from_days(60));
        let cloud = CloudSim::with_seed(catalog, seed);
        let start = SimTime::ZERO + SimDuration::from_days(14);
        let cfg = SelectionConfig {
            hazard: if age_aware {
                HazardSpec::CappedLifetime { early_prob: 0.1, cap_hours: 24.0 }
            } else {
                HazardSpec::Exponential
            },
            ..SelectionConfig::default()
        };
        let (mut nm, handle) = NodeManager::launch(
            cloud,
            Box::new(BatchSelection),
            BidPolicy::OnDemandPrice,
            cfg,
            JobProfile::default(),
            StorageConfig::default(),
            n,
            new_shared(SimDuration::MAX),
            start,
        );

        let mut now = start;
        for _ in 0..40 {
            now += SimDuration::from_hours(6);
            nm.events(start, now);

            let (scan_markets, scan_revoked) = handle.with_cloud(|c| {
                let mut markets = BTreeSet::new();
                let mut revoked = 0u64;
                for r in c.instances() {
                    if r.is_active() {
                        markets.insert(r.market);
                    }
                    if r.state == InstanceState::Revoked {
                        revoked += 1;
                    }
                }
                (markets.into_iter().collect::<Vec<_>>(), revoked)
            });
            prop_assert_eq!(handle.active_markets(), scan_markets);
            prop_assert_eq!(handle.revocations(), scan_revoked);
        }
    }
}
