//! Statistical conformance of the hazard models: sampled lifetimes must
//! match their closed-form survival functions, the exponential model
//! must reproduce the Daly τ formula bit-for-bit, and both samplers must
//! stay draw-for-draw identical to the inline code they replaced.

use flint::core::optimal_tau;
use flint::market::{CappedLifetimeHazard, ExponentialHazard, HazardModel, HazardSpec};
use flint::simtime::rng::stream;
use flint::simtime::SimDuration;
use rand::Rng;

const DRAWS: usize = 10_000;
/// Empirical-CDF tolerance for 10k draws (≈ 4.5 standard errors at the
/// worst-case p = 0.5, so seeded runs never flake).
const TOL: f64 = 0.02;

/// Draws `DRAWS` lifetimes from `hazard` on a fixed stream.
fn sample_lifetimes(hazard: &dyn HazardModel, label: &str) -> Vec<SimDuration> {
    let mut rng = stream(0xC0FFEE, label);
    (0..DRAWS)
        .map(|_| hazard.sample_lifetime(&mut rng))
        .collect()
}

/// Empirical survival fraction `P(lifetime > t)`.
fn empirical_survival(samples: &[SimDuration], t: SimDuration) -> f64 {
    samples.iter().filter(|l| **l > t).count() as f64 / samples.len() as f64
}

#[test]
fn exponential_samples_match_closed_form_survival() {
    let hazard = ExponentialHazard::from_hours(4.0);
    let samples = sample_lifetimes(&hazard, "conformance:exp");
    for hours in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let t = SimDuration::from_hours_f64(hours);
        let expect = hazard.survival(t);
        let got = empirical_survival(&samples, t);
        assert!(
            (got - expect).abs() < TOL,
            "S({hours}h): empirical {got:.4} vs closed-form {expect:.4}"
        );
    }
    // The empirical mean sits on the MTTF.
    let mean: f64 = samples.iter().map(|l| l.as_hours_f64()).sum::<f64>() / DRAWS as f64;
    assert!(
        (mean - 4.0).abs() < 0.15,
        "mean lifetime {mean:.3}h vs MTTF 4h"
    );
}

#[test]
fn capped_samples_match_closed_form_survival() {
    let hazard = CappedLifetimeHazard::new(0.3, 24.0);
    let samples = sample_lifetimes(&hazard, "conformance:capped");
    for hours in [1.0, 6.0, 12.0, 18.0, 23.9] {
        let t = SimDuration::from_hours_f64(hours);
        let expect = hazard.survival(t);
        let got = empirical_survival(&samples, t);
        assert!(
            (got - expect).abs() < TOL,
            "S({hours}h): empirical {got:.4} vs closed-form {expect:.4}"
        );
    }
    // The atom at the 24h cap holds the complement of the early mass.
    let cap = SimDuration::from_hours(24);
    let at_cap = samples.iter().filter(|l| **l == cap).count() as f64 / DRAWS as f64;
    assert!((at_cap - 0.7).abs() < TOL, "cap atom {at_cap:.4} vs 0.7");
    // Nothing survives past the cap, and the mean matches cap·(1 − p/2).
    assert_eq!(empirical_survival(&samples, cap), 0.0);
    let mean: f64 = samples.iter().map(|l| l.as_hours_f64()).sum::<f64>() / DRAWS as f64;
    let expect_mean = hazard.mean_lifetime().as_hours_f64();
    assert!(
        (mean - expect_mean).abs() < 0.25,
        "mean {mean:.3}h vs closed-form {expect_mean:.3}h"
    );
}

/// The exponential hazard's τ must reproduce `flint_core::optimal_tau`
/// bit-for-bit at every age (memorylessness makes age irrelevant),
/// including the `MAX` (no-failures) fixed point.
#[test]
fn exponential_tau_is_bit_identical_to_daly() {
    for mttf_h in [1u64, 3, 5, 10, 24, 100, 1000] {
        let mttf = SimDuration::from_hours(mttf_h);
        let hazard = ExponentialHazard::new(mttf);
        for delta_s in [1u64, 30, 60, 120, 600] {
            let delta = SimDuration::from_secs(delta_s);
            let expect = optimal_tau(delta, mttf);
            for age_h in [0u64, 1, 7, 50] {
                let age = SimDuration::from_hours(age_h);
                assert_eq!(
                    hazard.optimal_tau(delta, age),
                    expect,
                    "mttf {mttf_h}h delta {delta_s}s age {age_h}h"
                );
            }
        }
    }
    let never = ExponentialHazard::new(SimDuration::MAX);
    assert_eq!(
        never.optimal_tau(SimDuration::from_secs(60), SimDuration::ZERO),
        SimDuration::MAX
    );
}

/// The capped model's mean residual lifetime declines with age — the
/// age-awareness the node manager's τ re-estimation keys on — while the
/// exponential stays flat (memoryless).
#[test]
fn mean_residual_age_profiles() {
    let capped = CappedLifetimeHazard::new(0.5, 24.0);
    let mut last = SimDuration::MAX;
    for age_h in [0u64, 4, 8, 16, 23] {
        let r = capped.mean_residual(SimDuration::from_hours(age_h));
        assert!(
            r < last,
            "residual must decline: {r} at age {age_h}h >= {last}"
        );
        last = r;
    }
    assert_eq!(
        capped.mean_residual(SimDuration::from_hours(24)),
        SimDuration::from_secs(1),
        "at the cap the residual collapses to the floor"
    );
    let exp = ExponentialHazard::from_hours(6.0);
    let fresh = exp.mean_residual(SimDuration::ZERO);
    let aged = exp.mean_residual(SimDuration::from_hours(100));
    assert_eq!(fresh, aged, "exponential residual must not age");
    assert_eq!(fresh, SimDuration::from_hours(6));
}

/// Pins the exponential sampler to the inline inverse-CDF code it
/// replaced in `poisson_kills`: same stream, same draws, bit-for-bit.
#[test]
fn exponential_sampler_matches_legacy_inline_code() {
    let mttf_hours = 5.0;
    let hazard = ExponentialHazard::from_hours(mttf_hours);
    let mut new_rng = stream(99, "legacy:poisson");
    let mut old_rng = stream(99, "legacy:poisson");
    for _ in 0..1000 {
        let via_model = hazard.sample_lifetime(&mut new_rng);
        let u: f64 = old_rng.gen_range(f64::EPSILON..1.0);
        let inline = SimDuration::from_hours_f64(-mttf_hours * u.ln());
        assert_eq!(via_model, inline);
    }
}

/// Pins the capped sampler to the cloud simulator's original inline
/// preemptible-lifetime draw: coin first, then the uniform, preserving
/// draw order on the per-instance stream.
#[test]
fn capped_sampler_matches_legacy_inline_code() {
    let early_prob = 0.25;
    let hazard = CappedLifetimeHazard::new(early_prob, 24.0);
    let mut new_rng = stream(7, "preempt:42");
    let mut old_rng = stream(7, "preempt:42");
    for _ in 0..1000 {
        let via_model = hazard.sample_lifetime(&mut new_rng);
        let inline = if old_rng.gen_bool(early_prob) {
            SimDuration::from_hours_f64(old_rng.gen_range(0.0..24.0))
        } else {
            SimDuration::from_hours(24)
        };
        assert_eq!(via_model, inline);
    }
}

/// `HazardSpec` round-trips into the models it names, and only the
/// exponential is memoryless.
#[test]
fn spec_builds_the_right_models() {
    let mttf = SimDuration::from_hours(8);
    let exp = HazardSpec::Exponential.build(mttf);
    assert_eq!(exp.name(), "exponential");
    assert!(HazardSpec::Exponential.is_memoryless());
    assert_eq!(exp.mean_lifetime(), mttf);
    assert_eq!(exp.lifetime_cap(), None);

    let spec = HazardSpec::CappedLifetime {
        early_prob: 0.4,
        cap_hours: 12.0,
    };
    let capped = spec.build(mttf);
    assert_eq!(capped.name(), "capped-lifetime");
    assert!(!spec.is_memoryless());
    assert_eq!(capped.lifetime_cap(), Some(SimDuration::from_hours(12)));
}
