//! Cross-layer trace integration: one Flint-managed run produces a
//! single ordered event stream whose fold reproduces both the engine's
//! `RunStats` and the market's bill.

use flint::core::{FlintConfig, Mode};
use flint::market::MarketCatalog;
use flint::runner::run_on_flint;
use flint::simtime::SimDuration;
use flint::trace::{Event, EventKind, MetricsAggregator, TraceHandle};
use flint::workloads::{PageRank, WorkloadConfig};

fn small_pagerank() -> PageRank {
    PageRank::new(WorkloadConfig {
        dataset_gb: 0.3,
        partitions: 4,
        iterations: 2,
        seed: 11,
    })
}

#[test]
fn traced_run_reproduces_stats_and_bill() {
    let catalog = MarketCatalog::synthetic_ec2(9, SimDuration::from_days(30));
    let trace = TraceHandle::disabled();
    let reader = trace.attach_memory(0);
    let run = run_on_flint(
        catalog,
        FlintConfig::builder()
            .n_workers(4)
            .mode(Mode::Batch)
            .trace(trace)
            .build(),
        &small_pagerank(),
    )
    .unwrap();
    assert!(run.trace.is_some(), "enabled trace must be returned");

    let events = reader.events();
    assert!(!events.is_empty());
    let agg = MetricsAggregator::from_events(&events);

    // Engine accounting is reproduced exactly.
    assert_eq!(agg.tasks_run, run.stats.tasks_run);
    assert_eq!(agg.compute_time_ms, run.stats.compute_time.as_millis());
    assert_eq!(agg.checkpoints_written, run.stats.checkpoints_written);
    assert_eq!(
        agg.checkpoint_wire_bytes, run.stats.checkpoint_wire_bytes,
        "wire-byte accounting must round-trip through the trace"
    );
    assert_eq!(agg.restores, run.stats.restores);
    assert_eq!(agg.revocations, run.stats.revocations);
    assert_eq!(agg.actions, run.stats.actions.len() as u64);

    // After shutdown every instance has been billed exactly once, so the
    // folded bill equals the cost report (modulo float summation order).
    assert!(
        (agg.compute_cost - run.cost.compute_cost).abs() < 1e-9,
        "Σ InstanceBilled = {} but CostReport.compute_cost = {}",
        agg.compute_cost,
        run.cost.compute_cost
    );

    // Market-layer lifecycle made it into the same stream.
    assert!(agg.bids > 0, "bids must be traced");
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::MarketSelected { .. })),
        "server selection must be traced"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::InstanceReady { .. })),
        "instance readiness must be traced"
    );
}

#[test]
fn untraced_run_returns_no_handle() {
    let catalog = MarketCatalog::synthetic_ec2(9, SimDuration::from_days(30));
    let run = run_on_flint(
        catalog,
        FlintConfig::builder().n_workers(4).build(),
        &small_pagerank(),
    )
    .unwrap();
    assert!(run.trace.is_none());
}

#[test]
fn jsonl_written_by_a_run_validates_and_summarizes() {
    // The same contract the CI smoke test exercises through the CLI:
    // every emitted line parses, timestamps are monotone, and the
    // summary fold sees the whole run.
    let catalog = MarketCatalog::synthetic_ec2(9, SimDuration::from_days(30));
    let trace = TraceHandle::disabled();
    let reader = trace.attach_memory(0);
    let run = run_on_flint(
        catalog,
        FlintConfig::builder().n_workers(4).trace(trace).build(),
        &small_pagerank(),
    )
    .unwrap();
    let jsonl = reader.to_jsonl();
    let mut prev = None;
    let mut n = 0u64;
    for line in jsonl.lines() {
        let ev = Event::from_json(line).expect("emitted line must parse");
        if let Some(p) = prev {
            assert!(ev.t >= p, "timestamps must be non-decreasing");
        }
        prev = Some(ev.t);
        n += 1;
    }
    assert_eq!(n, reader.len() as u64);
    assert!(n >= run.stats.tasks_run, "at least one event per task");
}
