//! Property-based tests of the engine's core correctness invariant:
//! under ANY revocation schedule, recovery (recomputation + checkpoint
//! restore) produces results bit-identical to a failure-free run.

use flint::core::FlintCheckpointPolicy;
use flint::engine::{
    Driver, DriverConfig, NoCheckpoint, ScriptedInjector, Value, WorkerEvent, WorkerSpec,
};
use flint::simtime::{SimDuration, SimTime};
use proptest::prelude::*;

/// Builds a deterministic multi-stage job and returns its sorted output.
fn run_job(driver: &mut Driver, seed: i64) -> Vec<Value> {
    let src = driver
        .ctx()
        .parallelize((0..400).map(|i| Value::from_i64(i * seed % 101)), 8);
    let pairs = driver.ctx().map(src, |v| {
        Value::pair(Value::Int(v.as_i64().unwrap() % 7), v.clone())
    });
    let grouped = driver.ctx().reduce_by_key(pairs, 5, |a, b| {
        Value::Int(a.as_i64().unwrap_or(0) + b.as_i64().unwrap_or(0))
    });
    let swapped = driver.ctx().map(grouped, |p| {
        let (k, v) = p.clone().into_pair().unwrap();
        Value::pair(v, k)
    });
    let sorted = driver.ctx().sort_by_key(swapped, 3, true);
    let mut out = driver.collect(sorted).unwrap();
    out.sort();
    out
}

/// A revocation schedule: (milliseconds, workers to kill, replace?).
fn schedules() -> impl Strategy<Value = Vec<(u64, u8, bool)>> {
    proptest::collection::vec((1_000u64..600_000, 1u8..4, proptest::bool::ANY), 0..4)
}

fn scripted(events: &[(u64, u8, bool)], n_workers: u64) -> ScriptedInjector {
    let mut evs = Vec::new();
    let mut next_victim = 1u64;
    let mut next_repl = 100u64;
    for (ms, k, replace) in events {
        for _ in 0..*k {
            if next_victim > n_workers {
                break;
            }
            let t = SimTime::from_millis(*ms);
            evs.push((
                t,
                WorkerEvent::Remove {
                    ext_id: next_victim,
                },
            ));
            next_victim += 1;
            if *replace {
                evs.push((
                    t + SimDuration::from_secs(120),
                    WorkerEvent::Add {
                        ext_id: next_repl,
                        spec: WorkerSpec::r3_large(),
                    },
                ));
                next_repl += 1;
            }
        }
    }
    ScriptedInjector::new(evs)
}

/// Mid-wave revocation under parallel wave execution: workers die while
/// a wave's tasks are in flight, forcing lineage recovery. At any
/// `host_threads` the run must produce the same answer AND the same
/// simulated makespan/accounting — parallelism is wall-clock only.
#[test]
fn parallel_recovery_matches_sequential() {
    let run = |host_threads: usize| {
        let mut cfg = DriverConfig::default();
        cfg.cost.size_scale = 5e5;
        cfg.host_threads = host_threads;
        // Kill two workers (one replaced) 20 s in — well inside the
        // first stage at this size_scale — then a third later.
        let inj = scripted(&[(20_000, 2, true), (45_000, 1, false)], 6);
        let mut d = Driver::new(cfg, Box::new(NoCheckpoint), Box::new(inj));
        for ext in 1..=6u64 {
            d.add_worker_with_ext(ext, WorkerSpec::r3_large());
        }
        d.add_worker_with_ext(999, WorkerSpec::r3_large());
        let out = run_job(&mut d, 17);
        (out, d.stats().clone(), d.now())
    };
    let sequential = run(1);
    assert!(
        sequential.1.revocations >= 1,
        "schedule must revoke mid-job (got {:?})",
        sequential.1
    );
    let parallel = run(8);
    assert_eq!(parallel.0, sequential.0, "answers diverged");
    assert_eq!(parallel.2, sequential.2, "simulated makespan diverged");
    assert_eq!(parallel.1, sequential.1, "run statistics diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any revocation schedule (with at least one surviving or replaced
    /// worker) yields byte-identical results, without checkpointing.
    #[test]
    fn recomputation_is_exact(seed in 1i64..50, events in schedules()) {
        let mut clean = Driver::local(6);
        let golden = run_job(&mut clean, seed);

        let mut cfg = DriverConfig::default();
        cfg.cost.size_scale = 5e5; // paper-scale pressure from tiny data
        let mut d = Driver::new(
            cfg,
            Box::new(NoCheckpoint),
            Box::new(scripted(&events, 6)),
        );
        for ext in 1..=6u64 {
            d.add_worker_with_ext(ext, WorkerSpec::r3_large());
        }
        // Guarantee progress even if the schedule kills everyone without
        // replacement.
        d.add_worker_with_ext(999, WorkerSpec::r3_large());

        let got = run_job(&mut d, seed);
        prop_assert_eq!(got, golden);
    }

    /// Same invariant with Flint's adaptive checkpointing active: restores
    /// must also be exact.
    #[test]
    fn checkpointed_recovery_is_exact(seed in 1i64..50, events in schedules()) {
        let mut clean = Driver::local(6);
        let golden = run_job(&mut clean, seed);

        let mut cfg = DriverConfig::default();
        cfg.cost.size_scale = 5e5;
        let mut d = Driver::new(
            cfg,
            Box::new(FlintCheckpointPolicy::with_mttf(SimDuration::from_mins(20))),
            Box::new(scripted(&events, 6)),
        );
        for ext in 1..=6u64 {
            d.add_worker_with_ext(ext, WorkerSpec::r3_large());
        }
        d.add_worker_with_ext(999, WorkerSpec::r3_large());

        let got = run_job(&mut d, seed);
        prop_assert_eq!(got, golden);
    }

    /// Explicitly checkpointed datasets survive arbitrary later failures
    /// and always restore to the same contents.
    #[test]
    fn checkpoint_round_trip(data in proptest::collection::vec(-1000i64..1000, 1..200)) {
        let mut d = Driver::local(3);
        let src = d.ctx().parallelize(data.iter().copied().map(Value::from_i64), 4);
        let mapped = d.ctx().map(src, |v| Value::Int(v.as_i64().unwrap() * 3));
        d.checkpoint_now(mapped).unwrap();

        let mut expect: Vec<i64> = data.iter().map(|x| x * 3).collect();
        expect.sort_unstable();
        let mut got: Vec<i64> = d
            .collect(mapped)
            .unwrap()
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
