//! Property-based tests of the engine's core correctness invariant:
//! under ANY revocation schedule — scripted or seeded chaos, including
//! checkpoint-store corruption and outages — recovery (recomputation +
//! checkpoint restore) either produces results bit-identical to a
//! failure-free run or fails with a typed error. Never a panic, never
//! wrong data.

use flint::core::{FlintCheckpointPolicy, FlintCluster, FlintConfig, Mode, SelectionConfig};
use flint::engine::{
    ChaosConfig, ChaosInjector, ChaosSchedule, CheckpointDirective, CheckpointHooks, Driver,
    DriverConfig, EngineError, EventSink, LineageView, NoCheckpoint, RddId, RunManifest,
    ScriptedInjector, Value, WorkerEvent, WorkerSpec,
};
use flint::market::MarketCatalog;
use flint::simtime::{SimDuration, SimTime};
use flint::trace::{EventKind, TraceHandle};
use proptest::prelude::*;

/// Builds a deterministic multi-stage job and returns its sorted output,
/// or the typed error the engine surfaced.
fn run_job(driver: &mut Driver, seed: i64) -> Result<Vec<Value>, EngineError> {
    let src = driver
        .ctx()
        .parallelize((0..400).map(|i| Value::from_i64(i * seed % 101)), 8);
    let pairs = driver.ctx().map(src, |v| {
        Value::pair(Value::Int(v.as_i64().unwrap() % 7), v.clone())
    });
    let grouped = driver.ctx().reduce_by_key(pairs, 5, |a, b| {
        Value::Int(a.as_i64().unwrap_or(0) + b.as_i64().unwrap_or(0))
    });
    let swapped = driver.ctx().map(grouped, |p| {
        let (k, v) = p.clone().into_pair().unwrap();
        Value::pair(v, k)
    });
    let sorted = driver.ctx().sort_by_key(swapped, 3, true);
    let mut out = driver.collect(sorted)?;
    out.sort();
    Ok(out)
}

/// A revocation schedule: (milliseconds, workers to kill, replace?).
fn schedules() -> impl Strategy<Value = Vec<(u64, u8, bool)>> {
    proptest::collection::vec((1_000u64..600_000, 1u8..4, proptest::bool::ANY), 0..4)
}

fn scripted(events: &[(u64, u8, bool)], n_workers: u64) -> ScriptedInjector {
    let mut evs = Vec::new();
    let mut next_victim = 1u64;
    let mut next_repl = 100u64;
    for (ms, k, replace) in events {
        for _ in 0..*k {
            if next_victim > n_workers {
                break;
            }
            let t = SimTime::from_millis(*ms);
            evs.push((
                t,
                WorkerEvent::Remove {
                    ext_id: next_victim,
                },
            ));
            next_victim += 1;
            if *replace {
                evs.push((
                    t + SimDuration::from_secs(120),
                    WorkerEvent::Add {
                        ext_id: next_repl,
                        spec: WorkerSpec::r3_large(),
                    },
                ));
                next_repl += 1;
            }
        }
    }
    ScriptedInjector::new(evs)
}

/// Mid-wave revocation under parallel wave execution: workers die while
/// a wave's tasks are in flight, forcing lineage recovery. At any
/// `host_threads` the run must produce the same answer AND the same
/// simulated makespan/accounting — parallelism is wall-clock only.
#[test]
fn parallel_recovery_matches_sequential() {
    let run = |host_threads: usize| {
        let mut cfg = DriverConfig::default();
        cfg.cost.size_scale = 5e5;
        cfg.host_threads = host_threads;
        // Kill two workers (one replaced) 20 s in — well inside the
        // first stage at this size_scale — then a third later.
        let inj = scripted(&[(20_000, 2, true), (45_000, 1, false)], 6);
        let mut d = Driver::new(cfg, Box::new(NoCheckpoint), Box::new(inj));
        for ext in 1..=6u64 {
            d.add_worker_with_ext(ext, WorkerSpec::r3_large());
        }
        d.add_worker_with_ext(999, WorkerSpec::r3_large());
        let out = run_job(&mut d, 17).unwrap();
        (out, d.stats().clone(), d.now())
    };
    let sequential = run(1);
    assert!(
        sequential.1.revocations >= 1,
        "schedule must revoke mid-job (got {:?})",
        sequential.1
    );
    let parallel = run(8);
    assert_eq!(parallel.0, sequential.0, "answers diverged");
    assert_eq!(parallel.2, sequential.2, "simulated makespan diverged");
    assert_eq!(parallel.1, sequential.1, "run statistics diverged");
}

/// Chaos-mode checkpoint policy for tests: checkpoint every RDD as it
/// materializes, maximizing traffic through the degraded store.
struct EagerCkpt;

impl CheckpointHooks for EagerCkpt {
    fn on_rdd_materialized(
        &mut self,
        _view: &LineageView<'_>,
        _events: &mut dyn EventSink,
        rdd: RddId,
        _now: SimTime,
    ) -> Vec<CheckpointDirective> {
        vec![CheckpointDirective::Checkpoint(rdd)]
    }
}

/// The classified result of one seeded chaos run.
enum ChaosOutcome {
    /// Completed with output byte-identical to the fault-free run.
    Identical,
    /// Failed with a typed [`EngineError`] — acceptable under chaos.
    Typed(#[allow(dead_code)] EngineError),
    /// Completed with output differing from the fault-free run: an
    /// invariant violation.
    WrongData(String),
    /// Panicked: an invariant violation.
    Panicked,
}

fn golden_output(job_seed: i64) -> &'static Vec<Value> {
    static GOLDEN: std::sync::OnceLock<Vec<Value>> = std::sync::OnceLock::new();
    assert_eq!(job_seed, 23, "golden cache is keyed to one job seed");
    GOLDEN.get_or_init(|| run_job(&mut Driver::local(6), 23).unwrap())
}

/// Runs the standard job under the given chaos campaign — worker churn
/// via [`ChaosInjector`], store degradation via the schedule's
/// [`flint::engine::ChaosStoreFaults`] — and classifies the outcome
/// against the headline invariant.
fn chaos_outcome(ccfg: &ChaosConfig, job_seed: i64) -> ChaosOutcome {
    let golden = golden_output(job_seed);
    let schedule = ChaosSchedule::generate(ccfg);
    let crash_wave = schedule.driver_crash_wave;
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let build = |suspend: Option<u64>| {
            let mut cfg = DriverConfig::default();
            cfg.cost.size_scale = 5e5;
            cfg.store_retry.budget = 4;
            cfg.suspend_after_waves = suspend;
            let mut d = Driver::new(
                cfg,
                Box::new(EagerCkpt),
                Box::new(ChaosInjector::from_schedule(schedule.clone())),
            );
            d.checkpoints_mut()
                .set_fault_policy(Box::new(schedule.store_faults(ccfg)));
            for ext in 1..=u64::from(ccfg.n_workers) {
                d.add_worker_with_ext(ext, WorkerSpec::r3_large());
            }
            // A lifeline worker outside the chaos pool guarantees
            // progress is at least possible; the store can still force
            // typed errors.
            d.add_worker_with_ext(999, WorkerSpec::r3_large());
            d
        };
        let Some(w) = crash_wave else {
            return run_job(&mut build(None), job_seed);
        };
        // Driver-crash fault: kill the first session at the drawn wave
        // boundary, harvest the persisted manifest, and replay a fresh
        // session through `Driver::resume` — which re-verifies the
        // frontier against the manifest as it crosses it.
        let mut a = build(Some(w));
        match run_job(&mut a, job_seed) {
            // The job finished (or failed) before the crash wave.
            Ok(out) => Ok(out),
            Err(EngineError::Suspended { manifest, .. }) => {
                let text = a
                    .checkpoints()
                    .get_manifest(&manifest)
                    .expect("suspension persists its manifest")
                    .to_string();
                let m = RunManifest::decode(&text).expect("manifest decodes");
                let mut b = build(None);
                b.resume(&m)?;
                run_job(&mut b, job_seed)
            }
            Err(e) => Err(e),
        }
    }));
    match result {
        Err(_) => ChaosOutcome::Panicked,
        Ok(Err(e)) => ChaosOutcome::Typed(e),
        Ok(Ok(out)) if &out == golden => ChaosOutcome::Identical,
        Ok(Ok(out)) => ChaosOutcome::WrongData(format!(
            "{} records vs {} in the fault-free run",
            out.len(),
            golden.len()
        )),
    }
}

/// The headline robustness claim, stated as a campaign: 200 consecutive
/// chaos seeds of the default (moderately hostile) campaign — mixed
/// warned/unwarned revocations, correlated mass revocations, flapping
/// workers, delayed replacements, torn/lost checkpoint writes, and store
/// outages — and every run either reproduces the fault-free bytes or
/// fails with a typed error. Zero panics, zero wrong answers.
#[test]
fn chaos_campaign_200_seeds_byte_identical_or_typed() {
    let mut identical = 0u32;
    let mut typed = 0u32;
    for seed in 0..200u64 {
        let mut ccfg = ChaosConfig::new(seed);
        ccfg.n_workers = 6;
        ccfg.groups = vec![vec![1, 2, 3], vec![4, 5, 6]];
        match chaos_outcome(&ccfg, 23) {
            ChaosOutcome::Identical => identical += 1,
            ChaosOutcome::Typed(_) => typed += 1,
            ChaosOutcome::WrongData(msg) => panic!("seed {seed}: wrong data — {msg}"),
            ChaosOutcome::Panicked => panic!("seed {seed}: chaos run panicked"),
        }
    }
    assert_eq!(identical + typed, 200);
    assert!(
        identical > 100,
        "most campaigns should survive (got {identical} identical, {typed} typed)"
    );
}

/// The same campaign with the two degradation-layer fault kinds armed:
/// half the seeds kill the driver at a drawn wave boundary (crash →
/// manifest → resume → replay), and a third collapse every pool market
/// at once (the whole cluster vanishes until a recovery cohort lands).
/// The invariant is unchanged: byte-identical completion or a typed
/// error, zero panics — crash-resume and market collapse are inside
/// the fault envelope, not special cases.
#[test]
fn chaos_campaign_with_driver_crash_and_market_collapse() {
    let mut identical = 0u32;
    let mut typed = 0u32;
    let mut crashes = 0u32;
    let mut collapses = 0u32;
    for seed in 0..200u64 {
        let mut ccfg = ChaosConfig::new(seed);
        ccfg.n_workers = 6;
        ccfg.groups = vec![vec![1, 2, 3], vec![4, 5, 6]];
        ccfg.driver_crash_prob = 0.5;
        ccfg.market_collapse_prob = 0.35;
        let schedule = ChaosSchedule::generate(&ccfg);
        crashes += u32::from(schedule.driver_crash_wave.is_some());
        collapses += u32::from(
            schedule
                .notes
                .iter()
                .any(|(_, k, _)| k == "market_collapse"),
        );
        match chaos_outcome(&ccfg, 23) {
            ChaosOutcome::Identical => identical += 1,
            ChaosOutcome::Typed(_) => typed += 1,
            ChaosOutcome::WrongData(msg) => panic!("seed {seed}: wrong data — {msg}"),
            ChaosOutcome::Panicked => panic!("seed {seed}: chaos run panicked"),
        }
    }
    assert_eq!(identical + typed, 200);
    assert!(
        crashes > 60 && collapses > 30,
        "fault kinds must actually arm: {crashes} crashes, {collapses} collapses"
    );
    assert!(
        identical > 100,
        "most campaigns should survive (got {identical} identical, {typed} typed)"
    );
}

/// Runs the standard job on a [`FlintCluster`] over `catalog` with the
/// given selection mode, returning `(output, Σ InstanceBilled, compute
/// cost)` — or `None` if the run panicked.
#[allow(clippy::type_complexity)]
fn cluster_outcome(
    catalog: &MarketCatalog,
    mode: Mode,
    seed: u64,
) -> Option<(Result<Vec<Value>, EngineError>, f64, f64)> {
    let catalog = catalog.clone();
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        let trace = TraceHandle::disabled();
        let reader = trace.attach_memory(0);
        let config = FlintConfig::builder()
            .n_workers(4)
            .mode(mode)
            .risk_aversion(2.0)
            .seed(seed)
            .trace(trace)
            .build();
        let mut cluster = FlintCluster::launch(catalog, config);
        let out = run_job(cluster.driver_mut(), 9);
        let report = cluster.shutdown();
        let billed: f64 = reader
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::InstanceBilled { cost, .. } => Some(*cost),
                _ => None,
            })
            .sum();
        (out, billed, report.compute_cost)
    }))
    .ok()
}

/// The portfolio arm of the chaos story: 200 consecutive cloud seeds on
/// a *volatile* catalog (2h MTTF, three correlated-by-construction spot
/// markets) whose price spikes revoke whole market slices at once. The
/// portfolio cluster must never panic, every completion must match the
/// greedy cluster's output bytes, and billing must stay exact
/// (Σ `InstanceBilled` == compute cost) on both arms, every seed.
#[test]
fn portfolio_campaign_200_seeds_survives_mass_revocations() {
    let catalog = flint::model::catalog_with_mttf(7, SimDuration::from_days(30), 2.0);
    let golden = golden_output(23);
    assert!(!golden.is_empty());
    let expect = run_job(&mut Driver::local(6), 9).unwrap();
    let mut portfolio_ok = 0u32;
    let mut greedy_ok = 0u32;
    for seed in 0..200u64 {
        let (mode, ok_counter) = if seed % 2 == 0 {
            (Mode::Portfolio, &mut portfolio_ok)
        } else {
            (Mode::Batch, &mut greedy_ok)
        };
        let Some((out, billed, compute_cost)) = cluster_outcome(&catalog, mode, seed) else {
            panic!("seed {seed} ({mode:?}): cluster run panicked");
        };
        assert!(
            (billed - compute_cost).abs() < 1e-9,
            "seed {seed} ({mode:?}): Σ InstanceBilled = {billed} but compute cost = {compute_cost}"
        );
        // Typed errors are acceptable under revocation storms; completed
        // runs must match the fault-free bytes.
        if let Ok(v) = out {
            assert_eq!(v, expect, "seed {seed} ({mode:?}): wrong data");
            *ok_counter += 1;
        }
    }
    assert!(
        portfolio_ok > 50,
        "most portfolio runs should complete (got {portfolio_ok}/100)"
    );
    assert!(
        greedy_ok > 50,
        "most greedy runs should complete (got {greedy_ok}/100)"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any revocation schedule (with at least one surviving or replaced
    /// worker) yields byte-identical results, without checkpointing.
    #[test]
    fn recomputation_is_exact(seed in 1i64..50, events in schedules()) {
        let mut clean = Driver::local(6);
        let golden = run_job(&mut clean, seed).unwrap();

        let mut cfg = DriverConfig::default();
        cfg.cost.size_scale = 5e5; // paper-scale pressure from tiny data
        let mut d = Driver::new(
            cfg,
            Box::new(NoCheckpoint),
            Box::new(scripted(&events, 6)),
        );
        for ext in 1..=6u64 {
            d.add_worker_with_ext(ext, WorkerSpec::r3_large());
        }
        // Guarantee progress even if the schedule kills everyone without
        // replacement.
        d.add_worker_with_ext(999, WorkerSpec::r3_large());

        let got = run_job(&mut d, seed).unwrap();
        prop_assert_eq!(got, golden);
    }

    /// Same invariant with Flint's adaptive checkpointing active: restores
    /// must also be exact.
    #[test]
    fn checkpointed_recovery_is_exact(seed in 1i64..50, events in schedules()) {
        let mut clean = Driver::local(6);
        let golden = run_job(&mut clean, seed).unwrap();

        let mut cfg = DriverConfig::default();
        cfg.cost.size_scale = 5e5;
        let mut d = Driver::new(
            cfg,
            Box::new(FlintCheckpointPolicy::with_mttf(SimDuration::from_mins(20))),
            Box::new(scripted(&events, 6)),
        );
        for ext in 1..=6u64 {
            d.add_worker_with_ext(ext, WorkerSpec::r3_large());
        }
        d.add_worker_with_ext(999, WorkerSpec::r3_large());

        let got = run_job(&mut d, seed).unwrap();
        prop_assert_eq!(got, golden);
    }

    /// Randomized chaos knobs: revocation volume, warning mix, mass
    /// revocations, store corruption/loss rates, and outage windows are
    /// all drawn by proptest; the headline invariant must hold for every
    /// combination.
    #[test]
    fn chaos_knobs_never_corrupt(
        seed in 0u64..100_000,
        revocations in 0u32..12,
        unwarned in 0.0f64..=1.0,
        mass in 0.0f64..=1.0,
        torn in 0.0f64..0.5,
        lost in 0.0f64..0.4,
        outages in 0u32..4,
    ) {
        let mut ccfg = ChaosConfig::new(seed);
        ccfg.n_workers = 6;
        ccfg.revocations = revocations;
        ccfg.unwarned_frac = unwarned;
        ccfg.mass_revoke_prob = mass;
        ccfg.groups = vec![vec![1, 2, 3], vec![4, 5, 6]];
        ccfg.torn_write_prob = torn;
        ccfg.failed_write_prob = lost;
        ccfg.outages = outages;
        match chaos_outcome(&ccfg, 23) {
            ChaosOutcome::Identical => {}
            ChaosOutcome::Typed(_) => {}
            ChaosOutcome::WrongData(msg) => prop_assert!(false, "seed {}: {}", seed, msg),
            ChaosOutcome::Panicked => prop_assert!(false, "seed {}: panicked", seed),
        }
    }

    /// Billing stays consistent under market-driven churn: after
    /// shutdown, the sum of `InstanceBilled` trace events equals the
    /// `CostReport`'s compute cost, with the failure-cooldown window
    /// active so replacement rounds route around failed markets.
    #[test]
    fn billed_events_match_cost_report_under_churn(seed in 0u64..500) {
        let catalog = MarketCatalog::synthetic_ec2(seed, SimDuration::from_days(30));
        let trace = TraceHandle::disabled();
        let reader = trace.attach_memory(0);
        let config = FlintConfig::builder()
            .n_workers(4)
            .mode(Mode::Interactive)
            .selection(SelectionConfig {
                market_cooldown: SimDuration::from_hours(1),
                ..SelectionConfig::default()
            })
            .seed(seed)
            .trace(trace)
            .build();
        let mut cluster = FlintCluster::launch(catalog, config);
        let out = run_job(cluster.driver_mut(), 9).unwrap();
        prop_assert!(!out.is_empty());
        let report = cluster.shutdown();
        let billed: f64 = reader
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::InstanceBilled { cost, .. } => Some(*cost),
                _ => None,
            })
            .sum();
        prop_assert!(
            (billed - report.compute_cost).abs() < 1e-9,
            "Σ InstanceBilled = {} but CostReport.compute_cost = {}",
            billed,
            report.compute_cost
        );
    }

    /// The billing invariant holds for the portfolio policy too: its
    /// multi-market allocations and replacement re-optimizations must
    /// leave Σ `InstanceBilled` equal to the cost report.
    #[test]
    fn portfolio_billed_events_match_cost_report(seed in 0u64..500) {
        let catalog = MarketCatalog::synthetic_ec2(seed, SimDuration::from_days(30));
        let trace = TraceHandle::disabled();
        let reader = trace.attach_memory(0);
        let config = FlintConfig::builder()
            .n_workers(4)
            .mode(Mode::Portfolio)
            .risk_aversion(1.5)
            .selection(SelectionConfig {
                market_cooldown: SimDuration::from_hours(1),
                ..SelectionConfig::default()
            })
            .seed(seed)
            .trace(trace)
            .build();
        let mut cluster = FlintCluster::launch(catalog, config);
        let out = run_job(cluster.driver_mut(), 9).unwrap();
        prop_assert!(!out.is_empty());
        let report = cluster.shutdown();
        let mut billed = 0.0;
        let mut weights = 0u32;
        for e in reader.events().iter() {
            match &e.kind {
                EventKind::InstanceBilled { cost, .. } => billed += *cost,
                EventKind::PortfolioWeight { .. } => weights += 1,
                _ => {}
            }
        }
        prop_assert!(
            (billed - report.compute_cost).abs() < 1e-9,
            "Σ InstanceBilled = {} but CostReport.compute_cost = {}",
            billed,
            report.compute_cost
        );
        prop_assert!(weights > 0, "portfolio decisions must emit weight events");
    }

    /// Explicitly checkpointed datasets survive arbitrary later failures
    /// and always restore to the same contents.
    #[test]
    fn checkpoint_round_trip(data in proptest::collection::vec(-1000i64..1000, 1..200)) {
        let mut d = Driver::local(3);
        let src = d.ctx().parallelize(data.iter().copied().map(Value::from_i64), 4);
        let mapped = d.ctx().map(src, |v| Value::Int(v.as_i64().unwrap() * 3));
        d.checkpoint_now(mapped).unwrap();

        let mut expect: Vec<i64> = data.iter().map(|x| x * 3).collect();
        expect.sort_unstable();
        let mut got: Vec<i64> = d
            .collect(mapped)
            .unwrap()
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
