//! End-to-end integration tests: the full stack (markets → node manager
//! → engine → policies) driven through the public facade.

use flint::core::{FlintCluster, FlintConfig, Mode};
use flint::engine::Value;
use flint::market::MarketCatalog;
use flint::simtime::{SimDuration, SimTime};
use flint::workloads::{PageRank, Tpch, TpchQuery, Workload, WorkloadConfig};

fn catalog() -> MarketCatalog {
    MarketCatalog::synthetic_ec2(99, SimDuration::from_days(90))
}

#[test]
fn batch_cluster_survives_trace_driven_revocations() {
    // Run the same PageRank workload on a healthy local driver and on a
    // Flint batch cluster living through real market-driven revocations;
    // results must be identical and costs far below on-demand.
    let wl = PageRank::new(WorkloadConfig {
        dataset_gb: 0.5,
        partitions: 8,
        iterations: 4,
        seed: 9,
    });
    let mut clean = flint::engine::Driver::local(6);
    let golden = wl.run(&mut clean).unwrap();

    let mut cluster = FlintCluster::launch(
        catalog(),
        FlintConfig::builder()
            .n_workers(6)
            .mode(Mode::Batch)
            .build(),
    );
    // Size the engine like the workload expects.
    let mut cost = *cluster.driver().cost_model();
    cost.size_scale = wl.recommended_size_scale();
    cluster.driver_mut().set_cost_model(cost);

    let got = wl.run(cluster.driver_mut()).unwrap();
    assert_eq!(got.checksum, golden.checksum);

    // Hold for a long window so revocations (if any) and billing play out.
    let until = cluster.driver().now() + SimDuration::from_hours(48);
    cluster.driver_mut().idle_until(until).unwrap();
    let report = cluster.shutdown();
    assert!(report.compute_cost > 0.0);
    assert!(
        report.unit_cost() < 0.5,
        "spot execution should be far below on-demand: {}",
        report.unit_cost()
    );
}

#[test]
fn interactive_cluster_diversifies_and_answers_queries() {
    let wl = Tpch::new(WorkloadConfig {
        dataset_gb: 1.0,
        partitions: 6,
        iterations: 1,
        seed: 3,
    });
    let mut cluster = FlintCluster::launch(
        catalog(),
        FlintConfig::builder()
            .n_workers(8)
            .mode(Mode::Interactive)
            .build(),
    );
    assert!(cluster.node_manager().active_markets().len() >= 2);

    let driver = cluster.driver_mut();
    let tables = wl.prepare(driver).unwrap();
    for q in TpchQuery::ALL {
        let rows = wl.query(driver, &tables, q).unwrap();
        assert!(!rows.is_empty(), "{} returned nothing", q.name());
    }
    // Fault-tolerance state has a finite MTTF and a sane τ.
    let ft = cluster.ft_state();
    let s = ft.lock();
    assert!(s.mttf < SimDuration::MAX);
}

#[test]
fn adaptive_checkpoints_appear_during_long_sessions() {
    let mut cluster = FlintCluster::launch(catalog(), FlintConfig::builder().n_workers(4).build());
    cluster.ft_state().lock().mttf = SimDuration::from_hours(2);
    let driver = cluster.driver_mut();
    let base = driver.ctx().parallelize((0..2000).map(Value::from_i64), 8);
    driver.ctx().persist(base);
    let mut cur = base;
    for i in 0..20 {
        let idle_to = driver.now() + SimDuration::from_mins(5);
        driver.idle_until(idle_to).unwrap();
        let pairs = driver.ctx().map(cur, move |v| {
            Value::pair(Value::Int(v.as_i64().unwrap() % 13), Value::Int(i))
        });
        let agg = driver.ctx().reduce_by_key(pairs, 8, |a, b| {
            Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
        });
        let back = driver.ctx().map(agg, |v| v.key().cloned().unwrap());
        driver.ctx().persist(back);
        assert_eq!(driver.count(back).unwrap(), 13);
        cur = base;
    }
    assert!(
        driver.stats().checkpoints_written > 0,
        "the adaptive policy should have checkpointed across 100min of queries"
    );
    let report = cluster.cost_report();
    assert!(
        report.storage_cost > 0.0,
        "EBS accounting should be non-zero"
    );
}

#[test]
fn gce_catalog_runs_end_to_end() {
    let catalog = MarketCatalog::synthetic_gce(5, SimDuration::from_days(30));
    let mut cluster = FlintCluster::launch(catalog, FlintConfig::builder().n_workers(4).build());
    let driver = cluster.driver_mut();
    let xs = driver.ctx().parallelize((0..500).map(Value::from_i64), 4);
    let doubled = driver
        .ctx()
        .map(xs, |v| Value::Int(v.as_i64().unwrap() * 2));
    let total = driver
        .reduce(doubled, |a, b| {
            Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
        })
        .unwrap();
    assert_eq!(total.as_i64(), Some(2 * (0..500).sum::<i64>()));
    // Preemptible clusters have a finite (~20h) MTTF.
    let mttf = cluster.ft_state().lock().mttf;
    assert!(mttf < SimDuration::from_hours(30));
    assert!(mttf > SimDuration::from_hours(10));
}

#[test]
fn long_session_replaces_revoked_workers_transparently() {
    // A cluster on a volatile catalog, held for 10 days of virtual time
    // with periodic queries: revocations must be replaced and every
    // query must succeed.
    let mut cluster = FlintCluster::launch(
        catalog(),
        FlintConfig::builder()
            .n_workers(5)
            .mode(Mode::Interactive)
            .build(),
    );
    let driver = cluster.driver_mut();
    let xs = driver.ctx().parallelize((0..300).map(Value::from_i64), 5);
    driver.ctx().persist(xs);
    for day in 1..=10u64 {
        let t = SimTime::ZERO + SimDuration::from_days(14 + day);
        driver.idle_until(t).unwrap();
        assert_eq!(driver.count(xs).unwrap(), 300, "query failed on day {day}");
    }
    let report = cluster.cost_report();
    // Revocations are plausible but not guaranteed on this trace; what
    // matters is that the cluster kept answering either way.
    assert!(report.compute_cost > 0.0);
}
