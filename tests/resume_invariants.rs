//! Crash-resume invariants: suspending a run at ANY wave-commit
//! boundary and replaying it through `Driver::resume` must reproduce
//! the uninterrupted run byte for byte — results, `RunStats`, the
//! trace stream (modulo the suspend/resume bookkeeping events), and
//! summed billing — at every `host_threads` setting. The manifest is a
//! verification artifact: a replay that crosses the recorded frontier
//! with different time or stats is rejected with a typed error, never
//! silently continued.

use flint::engine::{
    CheckpointDirective, CheckpointHooks, Driver, DriverConfig, EngineError, EventSink,
    LineageView, RddId, RunManifest, ScriptedInjector, Value, WorkerEvent, WorkerSpec,
};
use flint::simtime::SimTime;
use flint::trace::TraceHandle;
use proptest::prelude::*;

/// Checkpoint every RDD as it materializes, so manifests carry a
/// non-trivial block catalog and resume verifies checkpoint counters.
struct EagerCkpt;

impl CheckpointHooks for EagerCkpt {
    fn on_rdd_materialized(
        &mut self,
        _view: &LineageView<'_>,
        _events: &mut dyn EventSink,
        rdd: RddId,
        _now: SimTime,
    ) -> Vec<CheckpointDirective> {
        vec![CheckpointDirective::Checkpoint(rdd)]
    }
}

/// A deterministic multi-stage job (map → reduce_by_key → sort) with a
/// mid-job revocation and replacement, so waves span recomputation too.
fn run_job(driver: &mut Driver, seed: i64) -> Result<Vec<Value>, EngineError> {
    let src = driver
        .ctx()
        .parallelize((0..400).map(|i| Value::from_i64(i * seed % 101)), 8);
    let pairs = driver.ctx().map(src, |v| {
        Value::pair(Value::Int(v.as_i64().unwrap() % 7), v.clone())
    });
    let grouped = driver.ctx().reduce_by_key(pairs, 5, |a, b| {
        Value::Int(a.as_i64().unwrap_or(0) + b.as_i64().unwrap_or(0))
    });
    let sorted = driver.ctx().sort_by_key(grouped, 3, true);
    let mut out = driver.collect(sorted)?;
    out.sort();
    Ok(out)
}

struct TracedRun {
    driver: Driver,
    reader: flint::trace::MemoryReader,
}

fn launch(host_threads: usize, suspend_after: Option<u64>) -> TracedRun {
    let mut cfg = DriverConfig::default();
    cfg.cost.size_scale = 5e5;
    cfg.host_threads = host_threads;
    cfg.suspend_after_waves = suspend_after;
    let injector = ScriptedInjector::new(vec![
        (
            SimTime::from_millis(25_000),
            WorkerEvent::Remove { ext_id: 2 },
        ),
        (
            SimTime::from_millis(145_000),
            WorkerEvent::Add {
                ext_id: 100,
                spec: WorkerSpec::r3_large(),
            },
        ),
    ]);
    let mut driver = Driver::new(cfg, Box::new(EagerCkpt), Box::new(injector));
    let trace = TraceHandle::disabled();
    let reader = trace.attach_memory(0);
    driver.set_trace(trace);
    for ext in 1..=6u64 {
        driver.add_worker_with_ext(ext, WorkerSpec::r3_large());
    }
    TracedRun { driver, reader }
}

/// Strips the suspend/resume bookkeeping events, which by design exist
/// only in interrupted sessions; everything else must match exactly.
fn canonical_trace(jsonl: &str) -> String {
    jsonl
        .lines()
        .filter(|l| !l.contains("\"RunSuspended\"") && !l.contains("\"RunResumed\""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Sums every billing event in the stream (instance or invocation), so
/// "resumed costs what the uninterrupted run costs" is checked even if
/// the trace comparison were ever relaxed.
fn billed_total(jsonl: &str) -> f64 {
    jsonl
        .lines()
        .filter(|l| l.contains("\"InstanceBilled\"") || l.contains("\"InvocationBilled\""))
        .filter_map(|l| {
            let idx = l.find("\"cost\":")?;
            let rest = &l[idx + 7..];
            let end = rest.find([',', '}'])?;
            rest[..end].parse::<f64>().ok()
        })
        .sum()
}

struct Uninterrupted {
    out: Vec<Value>,
    stats: flint::engine::RunStats,
    now: SimTime,
    trace: String,
    waves: u64,
}

fn uninterrupted(host_threads: usize, seed: i64) -> Uninterrupted {
    let mut run = launch(host_threads, None);
    let out = run_job(&mut run.driver, seed).expect("fault-free run completes");
    Uninterrupted {
        out,
        stats: run.driver.stats().clone(),
        now: run.driver.now(),
        trace: run.reader.to_jsonl(),
        waves: run.driver.waves_committed(),
    }
}

/// Crashes at wave `w`, harvests the persisted manifest, and replays a
/// fresh session through `Driver::resume`. Returns everything needed to
/// compare against the uninterrupted twin.
fn crash_and_resume(
    host_threads: usize,
    seed: i64,
    w: u64,
) -> (Vec<Value>, flint::engine::RunStats, SimTime, String) {
    // Session A: killed at wave w.
    let mut a = launch(host_threads, Some(w));
    let err = run_job(&mut a.driver, seed).expect_err("suspension must interrupt the run");
    let key = match err {
        EngineError::Suspended { manifest, frontier } => {
            assert_eq!(frontier, w, "suspended at the requested wave");
            manifest
        }
        other => panic!("expected Suspended, got {other:?}"),
    };
    let text = a
        .driver
        .checkpoints()
        .get_manifest(&key)
        .expect("manifest persisted durably")
        .to_string();
    let manifest = RunManifest::decode(&text).expect("manifest round-trips");
    assert_eq!(manifest.frontier, w);
    let a_trace = a.reader.to_jsonl();
    assert!(
        a_trace.contains("\"RunSuspended\""),
        "suspension must be traced"
    );

    // Session B: fresh driver, same config, replays and verifies.
    let mut b = launch(host_threads, None);
    b.driver
        .resume(&manifest)
        .expect("config fingerprints match");
    let out = run_job(&mut b.driver, seed).expect("resumed run completes");
    let trace = b.reader.to_jsonl();
    assert!(
        trace.contains("\"RunResumed\""),
        "crossing the frontier must emit RunResumed"
    );
    (out, b.driver.stats().clone(), b.driver.now(), trace)
}

/// The headline invariant, exhaustively: crash at EVERY wave-commit
/// boundary, at every host_threads tier, and demand byte-identity with
/// the uninterrupted twin.
#[test]
fn resume_is_byte_identical_from_every_wave_boundary() {
    for host_threads in [1usize, 2, 8] {
        let golden = uninterrupted(host_threads, 23);
        assert!(
            golden.waves >= 3,
            "job too small to exercise boundaries: {} waves",
            golden.waves
        );
        for w in 1..=golden.waves {
            let (out, stats, now, trace) = crash_and_resume(host_threads, 23, w);
            assert_eq!(
                out, golden.out,
                "results diverged (threads {host_threads}, wave {w})"
            );
            assert_eq!(
                stats, golden.stats,
                "RunStats diverged (threads {host_threads}, wave {w})"
            );
            assert_eq!(
                now, golden.now,
                "makespan diverged (threads {host_threads}, wave {w})"
            );
            assert_eq!(
                canonical_trace(&trace),
                canonical_trace(&golden.trace),
                "trace suffix diverged (threads {host_threads}, wave {w})"
            );
            let (billed, golden_billed) = (billed_total(&trace), billed_total(&golden.trace));
            assert!(
                (billed - golden_billed).abs() < 1e-9,
                "billing diverged: {billed} vs {golden_billed}"
            );
        }
    }
}

/// A replay under a different config must be rejected up front, and a
/// forged manifest must be rejected when the frontier is crossed — with
/// typed errors, never a silent continuation.
#[test]
fn diverging_resume_is_rejected_with_typed_errors() {
    // Crash a real run to obtain a genuine manifest.
    let mut a = launch(1, Some(2));
    let err = run_job(&mut a.driver, 23).expect_err("suspends at wave 2");
    let key = match err {
        EngineError::Suspended { manifest, .. } => manifest,
        other => panic!("expected Suspended, got {other:?}"),
    };
    let manifest = RunManifest::decode(a.driver.checkpoints().get_manifest(&key).unwrap()).unwrap();

    // Different determinism-relevant config: rejected immediately.
    let mut other_cfg = DriverConfig::default();
    other_cfg.cost.size_scale = 5e5;
    other_cfg.max_iterations += 1;
    let mut b = Driver::new(
        other_cfg,
        Box::new(EagerCkpt),
        Box::new(ScriptedInjector::new(Vec::new())),
    );
    match b.resume(&manifest) {
        Err(EngineError::ResumeDiverged { field, .. }) => assert_eq!(field, "config_fp"),
        other => panic!("expected ResumeDiverged, got {other:?}"),
    }

    // Forged stats: accepted up front, rejected at the frontier.
    let mut forged = manifest.clone();
    forged.tasks_run += 1;
    let mut c = launch(1, None);
    c.driver.resume(&forged).expect("fingerprint still matches");
    match run_job(&mut c.driver, 23) {
        Err(EngineError::ResumeDiverged { field, .. }) => assert_eq!(field, "tasks_run"),
        other => panic!("expected ResumeDiverged at the frontier, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random job seeds and crash waves: the invariant is not specific
    /// to one workload shape.
    #[test]
    fn resume_invariant_holds_for_random_seeds(seed in 1i64..500, wave in 1u64..4) {
        let golden = uninterrupted(2, seed);
        // Clamp into the run's actual wave range (the vendored proptest
        // has no prop_assume; clamping keeps every case meaningful).
        let wave = wave.min(golden.waves).max(1);
        let (out, stats, now, trace) = crash_and_resume(2, seed, wave);
        prop_assert_eq!(out, golden.out);
        prop_assert_eq!(stats, golden.stats);
        prop_assert_eq!(now, golden.now);
        prop_assert_eq!(canonical_trace(&trace), canonical_trace(&golden.trace));
    }
}
