//! Golden determinism tests: every workload produces the same checksum
//! on every run, on any cluster size, with or without failures. The
//! pinned values also guard against accidental semantic changes to the
//! engine's operators.

use flint::engine::Driver;
use flint::workloads::{Als, KMeans, PageRank, Tpch, Workload, WorkloadConfig};

fn cfg() -> WorkloadConfig {
    WorkloadConfig {
        dataset_gb: 0.5,
        partitions: 5,
        iterations: 3,
        seed: 1234,
    }
}

fn checksum_on(wl: &dyn Workload, workers: u32) -> u64 {
    let mut d = Driver::local(workers);
    wl.run(&mut d).unwrap().checksum
}

#[test]
fn workloads_invariant_to_cluster_size() {
    let workloads: Vec<Box<dyn Workload>> = vec![
        Box::new(PageRank::new(cfg())),
        Box::new(KMeans::new(cfg())),
        Box::new(Als::new(cfg())),
        Box::new(Tpch::new(cfg())),
    ];
    for wl in &workloads {
        let a = checksum_on(wl.as_ref(), 2);
        let b = checksum_on(wl.as_ref(), 7);
        assert_eq!(a, b, "{} varies with cluster size", wl.name());
    }
}

#[test]
fn workloads_vary_with_seed() {
    let mut other = cfg();
    other.seed = 4321;
    let a = checksum_on(&PageRank::new(cfg()), 3);
    let b = checksum_on(&PageRank::new(other), 3);
    assert_ne!(a, b, "different seeds must change the data");
}

#[test]
fn paper_scale_configs_have_expected_virtual_sizes() {
    // The scale factors must map in-process bytes to the paper's dataset
    // sizes (2 / 16 / 10 / 10 GB).
    let cases: Vec<(Box<dyn Workload>, f64)> = vec![
        (Box::new(PageRank::paper_scale()), 2.0),
        (Box::new(KMeans::paper_scale()), 16.0),
        (Box::new(Als::paper_scale()), 10.0),
        (Box::new(Tpch::paper_scale()), 10.0),
    ];
    for (wl, gb) in cases {
        let scale = wl.recommended_size_scale();
        assert!(
            scale > 1.0,
            "{}: paper-scale factor should scale up, got {scale}",
            wl.name()
        );
        let _ = gb; // documented target; exact check lives in unit tests
    }
}

#[test]
fn paper_scale_runtimes_land_in_paper_band() {
    // The calibrated baselines the figures depend on: PageRank ~2min,
    // KMeans ~22min, ALS ~23min on ten r3.large workers (paper: ~160s,
    // ~25min, ~30min).
    use flint::engine::{DriverConfig, NoCheckpoint, NoFailures, WorkerSpec};

    let cases: Vec<(Box<dyn Workload>, f64, f64)> = vec![
        (Box::new(PageRank::paper_scale()), 60.0, 400.0),
        (Box::new(KMeans::paper_scale()), 600.0, 2400.0),
        (Box::new(Als::paper_scale()), 600.0, 2400.0),
    ];
    for (wl, lo, hi) in cases {
        let mut cfg = DriverConfig::default();
        cfg.cost.size_scale = wl.recommended_size_scale();
        let mut d = Driver::new(cfg, Box::new(NoCheckpoint), Box::new(NoFailures));
        for _ in 0..10 {
            d.add_worker(WorkerSpec::r3_large());
        }
        wl.run(&mut d).unwrap();
        let secs = d.now().since_epoch().as_secs_f64();
        assert!(
            (lo..hi).contains(&secs),
            "{}: {secs:.0}s outside calibration band [{lo}, {hi}]",
            wl.name()
        );
    }
}
