//! Property-based tests of the mean-variance portfolio policy: weight
//! sanity, determinism, and the limit-case equivalences that prove it
//! subsumes the paper's Policy 2 (interactive) and the greedy batch
//! policy.

use flint::core::{
    BatchSelection, BidPolicy, InteractiveSelection, JobProfile, MarketView, PortfolioPolicy,
    SelectionConfig, SelectionPolicy, RISK_POLICY2,
};
use flint::market::{MarketCatalog, MarketId};
use flint::model::catalog_with_mttf;
use flint::simtime::{SimDuration, SimTime};
use flint::store::StorageConfig;
use proptest::prelude::*;

/// Runs `f` with a `MarketView` over `catalog` at day `day`, cluster
/// size `n`.
fn with_view<R>(
    catalog: &MarketCatalog,
    day: u64,
    n: u32,
    f: impl FnOnce(&MarketView<'_>) -> R,
) -> R {
    let cfg = SelectionConfig::default();
    let job = JobProfile::default();
    let view = MarketView {
        catalog,
        now: SimTime::ZERO + SimDuration::from_days(day),
        bid: BidPolicy::OnDemandPrice,
        cfg: &cfg,
        job: &job,
        storage: StorageConfig::default(),
        n,
        cooled: &[],
    };
    f(&view)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Portfolio allocations are complete probability distributions:
    /// every market gets a non-negative count, counts sum to the cluster
    /// size, and the implied weights sum to one.
    #[test]
    fn weights_nonnegative_and_sum_to_one(
        seed in 0u64..6,
        day in 8u64..80,
        n in 1u32..24,
        risk_milli in 0u64..5_000,
    ) {
        let cat = MarketCatalog::synthetic_ec2(seed, SimDuration::from_days(90));
        let picks = with_view(&cat, day, n, |view| {
            PortfolioPolicy::new(risk_milli as f64 / 1000.0).initial(view)
        });
        let total: u32 = picks.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, n, "allocation must cover the whole cluster");
        let mut weight_sum = 0.0;
        for (m, c) in &picks {
            prop_assert!(*c > 0, "market {:?} allocated zero servers", m);
            let w = f64::from(*c) / f64::from(n);
            prop_assert!((0.0..=1.0).contains(&w));
            weight_sum += w;
        }
        prop_assert!((weight_sum - 1.0).abs() < 1e-12, "weights sum to {weight_sum}");
        // No market appears twice.
        for i in 0..picks.len() {
            for j in i + 1..picks.len() {
                prop_assert!(picks[i].0 != picks[j].0);
            }
        }
    }

    /// For a fixed catalog seed and decision time the allocation is a
    /// pure function — byte-identical across repeated evaluations and
    /// fresh policy instances.
    #[test]
    fn allocation_deterministic_for_fixed_seed(
        seed in 0u64..6,
        day in 8u64..80,
        risk_milli in 0u64..5_000,
    ) {
        let cat = MarketCatalog::synthetic_ec2(seed, SimDuration::from_days(90));
        let risk = risk_milli as f64 / 1000.0;
        let a = with_view(&cat, day, 10, |v| PortfolioPolicy::new(risk).initial(v));
        let b = with_view(&cat, day, 10, |v| PortfolioPolicy::new(risk).initial(v));
        prop_assert_eq!(a, b);
    }

    /// λ = 0 removes the variance term, so the optimizer degenerates to
    /// pure cost minimization — exactly the greedy batch policy, for both
    /// initial allocations and replacements.
    #[test]
    fn zero_risk_converges_to_greedy_batch(seed in 0u64..6, day in 8u64..80) {
        let cat = MarketCatalog::synthetic_ec2(seed, SimDuration::from_days(90));
        with_view(&cat, day, 10, |view| {
            let portfolio = PortfolioPolicy::new(0.0).initial(view);
            let batch = BatchSelection.initial(view);
            prop_assert_eq!(&portfolio, &batch);
            let failed = batch[0].0;
            prop_assert_eq!(
                PortfolioPolicy::new(0.0).replacement(view, failed, 3),
                BatchSelection.replacement(view, failed, 3)
            );
        });
    }

    /// λ ≥ RISK_POLICY2 saturates the variance term, recovering Policy
    /// 2's uncorrelated even split (the interactive policy) exactly.
    #[test]
    fn saturated_risk_converges_to_policy2(seed in 0u64..6, day in 10u64..120) {
        let cat = catalog_with_mttf(seed, SimDuration::from_days(150), 8.0);
        with_view(&cat, day, 9, |view| {
            let portfolio = PortfolioPolicy::new(RISK_POLICY2).initial(view);
            let interactive = InteractiveSelection::default().initial(view);
            prop_assert_eq!(&portfolio, &interactive);
            // Policy 2's *restoration* path is stateful (it tops up one
            // remembered market), so the replacement comparison is
            // structural: the portfolio re-optimizes, covering the full
            // count while avoiding the revoked market.
            let failed = interactive[0].0;
            let repl = PortfolioPolicy::new(RISK_POLICY2).replacement(view, failed, 2);
            prop_assert_eq!(repl.iter().map(|(_, c)| *c).sum::<u32>(), 2);
            prop_assert!(repl.iter().all(|(m, _)| *m != failed));
        });
    }

    /// Raising λ never concentrates the portfolio harder: the number of
    /// markets used is monotone (weakly) from the λ = 0 single market to
    /// the saturated Policy-2 spread.
    #[test]
    fn spread_widens_with_risk(seed in 0u64..6, day in 10u64..120) {
        let cat = catalog_with_mttf(seed, SimDuration::from_days(150), 8.0);
        with_view(&cat, day, 9, |view| {
            let spread =
                |risk: f64| PortfolioPolicy::new(risk).initial(view).len();
            let lo = spread(0.0);
            let hi = spread(RISK_POLICY2);
            prop_assert_eq!(lo, 1, "zero risk must go all-in on one market");
            prop_assert!(hi >= lo);
        });
    }
}

/// `MarketId` ordering sanity for the tests above (duplicate detection
/// relies on `!=`).
#[test]
fn market_ids_compare() {
    assert_ne!(MarketId(0), MarketId(1));
}
