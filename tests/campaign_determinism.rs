//! Campaign determinism: fanning Monte-Carlo seeds across host threads
//! must be invisible in the output. The merged report and every
//! per-seed event trace are byte-identical between `--jobs 1` and
//! `--jobs 8`.

use flint::engine::TraceHandle;
use flint::model::{
    catalog_with_mttf, fan_out, run_mc_traced, CampaignConfig, McConfig, PolicyKind,
};
use flint::simtime::SimDuration;

/// FNV-1a over a byte string — the same pinning scheme the golden
/// workload suite uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn base_cfg() -> McConfig {
    McConfig {
        job_length: SimDuration::from_hours(8),
        n_workers: 6,
        policy: PolicyKind::FlintBatch,
        ..McConfig::default()
    }
}

/// Runs the campaign at the given parallelism, capturing each run's
/// full event trace; returns `(report text, per-seed trace hashes)`.
fn run_campaign(jobs: usize) -> (String, Vec<(u64, u64)>) {
    let cat = catalog_with_mttf(17, SimDuration::from_days(90), 3.0);
    let campaign = CampaignConfig::consecutive(base_cfg(), 6, jobs);
    let indices: Vec<usize> = (0..campaign.seeds.len()).collect();
    let outcomes = fan_out(jobs, &indices, |&i| {
        let trace = TraceHandle::disabled();
        let reader = trace.attach_memory(0);
        let res = run_mc_traced(&cat, &campaign.cfg_for(i), trace);
        (res, fnv1a(reader.to_jsonl().as_bytes()))
    });
    let mut report = String::new();
    let mut hashes = Vec::new();
    for (i, (res, hash)) in outcomes.into_iter().enumerate() {
        let seed = campaign.seeds[i];
        report.push_str(&format!(
            "seed {seed}: runtime {} unit {:.6} revs {}/{}\n",
            res.runtime,
            res.unit_cost(),
            res.revocation_events,
            res.servers_revoked
        ));
        hashes.push((seed, hash));
    }
    (report, hashes)
}

#[test]
fn parallel_campaign_is_byte_identical_to_sequential() {
    let (seq_report, seq_hashes) = run_campaign(1);
    let (par_report, par_hashes) = run_campaign(8);
    assert_eq!(
        seq_report, par_report,
        "merged report must not depend on --jobs"
    );
    assert_eq!(
        seq_hashes, par_hashes,
        "per-seed event traces must not depend on --jobs"
    );
    // Sanity: distinct seeds actually produce distinct traces (the
    // equality above isn't vacuous).
    assert!(
        seq_hashes.windows(2).any(|w| w[0].1 != w[1].1),
        "expected seed-dependent traces, got identical hashes: {seq_hashes:?}"
    );
}
