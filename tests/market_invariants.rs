//! Property-based tests of the market simulator: billing, revocation
//! ordering, and trace consistency.

use flint::market::{
    hourly_spot_cost, CloudSim, InstanceEvent, MarketCatalog, PriceTrace, TraceGenerator,
    TraceProfile,
};
use flint::simtime::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = PriceTrace> {
    (0u64..100, 0.05f64..0.5).prop_map(|(seed, od)| {
        let gen = TraceGenerator::new(seed, SimTime::ZERO + SimDuration::from_days(60));
        gen.generate("prop", &TraceProfile::volatile(od))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Billing is non-negative, monotone in interval length, and bounded
    /// by peak-price × ceil(hours).
    #[test]
    fn billing_bounds(trace in arb_trace(), start_h in 0.0f64..500.0, dur_h in 0.0f64..72.0) {
        let start = SimTime::from_hours_f64(start_h);
        let end = start + SimDuration::from_hours_f64(dur_h);
        let c = hourly_spot_cost(&trace, start, end, false);
        prop_assert!(c >= 0.0);
        let longer = hourly_spot_cost(&trace, start, end + SimDuration::from_hours(2), false);
        prop_assert!(longer >= c - 1e-12);
        let hours = dur_h.ceil() + 1.0;
        prop_assert!(c <= trace.max_price() * hours + 1e-9);
        // Provider revocation never costs more than user termination.
        let revoked = hourly_spot_cost(&trace, start, end, true);
        prop_assert!(revoked <= c + 1e-12);
    }

    /// Instance lifecycles are well-ordered: Ready ≤ Warning ≤ Revoked,
    /// and the warning leads by at most the platform's lead time.
    #[test]
    fn lifecycle_ordering(seed in 0u64..20, bid_mult in 0.3f64..3.0, req_h in 0.0f64..200.0) {
        let cat = MarketCatalog::synthetic_ec2(seed, SimDuration::from_days(30));
        let mut cloud = CloudSim::with_seed(cat, seed);
        let m = cloud.catalog().spot_markets()[0].id;
        let bid = cloud.catalog().market(m).on_demand_price * bid_mult;
        let t0 = SimTime::from_hours_f64(req_h);
        let id = cloud.request(m, bid, t0);
        let evs = cloud.events_until(SimTime::ZERO + SimDuration::from_days(40));

        let mut ready = None;
        let mut warn = None;
        let mut revoked = None;
        for (t, ev) in evs {
            if ev.instance() != id { continue; }
            match ev {
                InstanceEvent::Ready { .. } => ready = Some(t),
                InstanceEvent::Warning { .. } => warn = Some(t),
                InstanceEvent::Revoked { .. } => revoked = Some(t),
            }
        }
        let ready = ready.expect("instance must become ready");
        prop_assert!(ready == t0 + CloudSim::DEFAULT_ACQUISITION_DELAY);
        if let Some(r) = revoked {
            let w = warn.expect("revocation must be preceded by a warning");
            prop_assert!(w <= r);
            prop_assert!(r - w <= SimDuration::from_secs(120));
            prop_assert!(w >= ready);
            // The price at the instant of revocation exceeds the bid.
            let price = cloud.catalog().market(m).price_at(r);
            prop_assert!(price > bid, "revoked at price {price} <= bid {bid}");
        }
    }

    /// Trace invariants: sampled prices equal point lookups; the mean over
    /// a window lies within [min, max] of the samples.
    #[test]
    fn trace_consistency(trace in arb_trace(), from_h in 0.0f64..500.0) {
        let from = SimTime::from_hours_f64(from_h);
        let to = from + SimDuration::from_hours(24);
        let step = SimDuration::from_mins(30);
        let samples = trace.sample(from, to, step);
        for (i, s) in samples.iter().enumerate() {
            let t = from + step * i as u64;
            prop_assert_eq!(*s, trace.price_at(t));
        }
        let mean = trace.mean_price(from, to);
        let lo = trace.sample(from, to, SimDuration::from_mins(1)).into_iter().fold(f64::INFINITY, f64::min);
        let hi = trace.max_price();
        prop_assert!(mean >= lo - 1e-12 && mean <= hi + 1e-12);
    }

    /// MTTF estimates shrink (weakly) as the bid drops.
    #[test]
    fn mttf_monotone_in_bid(trace in arb_trace()) {
        let from = SimTime::ZERO;
        let to = SimTime::ZERO + SimDuration::from_days(60);
        let od = 0.5;
        let low = trace.mttf_at(from, to, 0.3 * od);
        let mid = trace.mttf_at(from, to, 1.0 * od);
        let high = trace.mttf_at(from, to, 5.0 * od);
        prop_assert!(low <= mid || low == to - from);
        prop_assert!(mid <= high || mid == to - from);
    }
}
