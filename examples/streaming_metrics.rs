//! A streaming metrics pipeline on transient servers, written against
//! the *typed* dataset API — micro-batches of sensor readings folded
//! into running per-sensor statistics, surviving a mid-stream
//! revocation.
//!
//! ```sh
//! cargo run --release --example streaming_metrics
//! ```

use flint::core::FlintCheckpointPolicy;
use flint::engine::{Dataset, Driver, DriverConfig, ScriptedInjector, WorkerEvent, WorkerSpec};
use flint::simtime::{SimDuration, SimTime};

fn main() {
    // Four workers; two are revoked between the 4th and 5th batch.
    let strike = SimTime::ZERO + SimDuration::from_secs(4 * 30 + 10);
    let mut events = Vec::new();
    for ext in 1..=2u64 {
        events.push((strike, WorkerEvent::Remove { ext_id: ext }));
        events.push((
            strike + SimDuration::from_secs(120),
            WorkerEvent::Add {
                ext_id: 100 + ext,
                spec: WorkerSpec::r3_large(),
            },
        ));
    }
    let mut cfg = DriverConfig::default();
    cfg.cost.size_scale = 2e4; // scale tiny batches to cluster-sized data
    let mut driver = Driver::new(
        cfg,
        Box::new(FlintCheckpointPolicy::with_mttf(SimDuration::from_hours(1))),
        Box::new(ScriptedInjector::new(events)),
    );
    for ext in 1..=4u64 {
        driver.add_worker_with_ext(ext, WorkerSpec::r3_large());
    }

    // Running (count, sum) per sensor, folded batch by batch.
    let mut state: Option<Dataset<(i64, Vec<f64>)>> = None;
    println!("{:<8} {:>10} {:>12}", "batch", "latency", "sensors");
    for batch in 0..8u32 {
        let arrive = driver.now() + SimDuration::from_secs(30);
        driver.idle_until(arrive).expect("idle");
        let started = driver.now();

        // Synthetic readings: 64 sensors, deterministic per batch.
        let readings = Dataset::from_iter(
            driver.ctx(),
            (0..2000).map(move |i| {
                let sensor = i64::from((i * 7 + batch) % 64);
                let value = f64::from((i * 13 + batch * 5) % 100);
                (sensor, vec![1.0, value])
            }),
            8,
        );
        let batch_stats =
            readings.reduce_by_key(driver.ctx(), 8, |a, b| vec![a[0] + b[0], a[1] + b[1]]);
        let merged = match state {
            None => batch_stats,
            Some(prev) => {
                prev.union(driver.ctx(), batch_stats)
                    .reduce_by_key(driver.ctx(), 8, |a, b| vec![a[0] + b[0], a[1] + b[1]])
            }
        }
        .persist(driver.ctx());
        let sensors = merged.count(&mut driver).expect("batch action");

        println!(
            "{:<8} {:>10} {:>12}",
            batch,
            (driver.now() - started).to_string(),
            sensors,
        );
        state = Some(merged);
    }

    // Final dashboard: top sensors by mean reading.
    let finals = state.unwrap().map(driver.ctx(), |(sensor, cs)| {
        (sensor, (cs[1] / cs[0] * 1000.0).round() / 1000.0)
    });
    let mut rows = finals.collect(&mut driver).expect("collect");
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop sensors by mean reading:");
    for (sensor, mean) in rows.iter().take(5) {
        println!("  sensor {sensor:>3}: mean {mean:.3}");
    }
    println!(
        "\nrevocations survived: {}, checkpoints written: {}, restores: {}",
        driver.stats().revocations,
        driver.stats().checkpoints_written,
        driver.stats().restores,
    );
}
