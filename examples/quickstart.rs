//! Quickstart: run a word-count job on a Flint-managed transient cluster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the full stack end to end: a synthetic spot-market
//! region, Flint's batch server selection and adaptive checkpointing, the
//! data-parallel engine, and cost reporting — then the same job again on
//! the serverless backend for a cost comparison.

use flint::core::{BackendSpec, FlintCluster, FlintConfig, Mode};
use flint::engine::{Driver, Value};
use flint::market::MarketCatalog;
use flint::simtime::SimDuration;

/// Classic word count through the engine's RDD API; returns the sorted
/// `(word, count)` rows. Identical lineage on every backend.
fn word_count(driver: &mut Driver) -> Vec<Value> {
    let text = "the quick brown fox jumps over the lazy dog the fox";
    let words = driver.ctx().parallelize(
        text.split_whitespace()
            .map(Value::from_str_)
            .cycle()
            .take(10_000),
        12,
    );
    let pairs = driver
        .ctx()
        .map(words, |w| Value::pair(w.clone(), Value::Int(1)));
    let counts = driver.ctx().reduce_by_key(pairs, 6, |a, b| {
        Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
    });
    let sorted = driver.ctx().sort_by_key(counts, 4, true);
    driver.collect(sorted).expect("job")
}

fn main() {
    // A synthetic EC2-like region: nine spot markets of varying
    // volatility plus an on-demand pool, over 30 days of price history.
    let catalog = MarketCatalog::synthetic_ec2(42, SimDuration::from_days(30));
    println!("markets:");
    for m in catalog.spot_markets() {
        println!("  {:>3}  {}", format!("m{}", m.id.0), m.name);
    }

    // Launch Flint in batch mode with six workers. The default backend
    // (`BackendSpec::TransientVm`) runs on spot VMs: the node manager
    // selects the market minimizing expected cost E[C_k] = E[T_k]·p_k,
    // bids the on-demand price, and replaces any revoked server.
    let mut cluster = FlintCluster::launch(
        catalog.clone(),
        FlintConfig::builder()
            .n_workers(6)
            .mode(Mode::Batch)
            .build(),
    );

    println!("\nword counts:");
    for row in word_count(cluster.driver_mut()) {
        let (k, v) = row.into_pair().unwrap();
        println!("  {:>6}  {}", v.as_i64().unwrap(), k.as_str().unwrap());
    }

    // Hold the cluster for a few hours of virtual time so hourly billing
    // is visible, then shut down and print the bill.
    let until = cluster.driver().now() + SimDuration::from_hours(4);
    cluster.driver_mut().idle_until(until).expect("idle");
    let report = cluster.shutdown();
    println!("\ncost report ({}):", report.policy);
    println!("  compute        ${:.3}", report.compute_cost);
    println!("  ckpt storage   ${:.3}", report.storage_cost);
    println!("  on-demand eq.  ${:.3}", report.on_demand_equivalent());
    println!(
        "  unit cost      {:.2}  (on-demand = 1.0)",
        report.unit_cost()
    );
    println!("  revocations    {}", report.revocations);

    // The same job on the serverless backend: per-invocation 1-core
    // slots billed by the GB-second, shuffles materialized through the
    // durable store, no markets and no revocations. Short bursts like
    // this one are far cheaper than holding VMs for billable hours.
    let mut functions = FlintCluster::launch(
        catalog,
        FlintConfig::builder()
            .n_workers(12)
            .backend(BackendSpec::Serverless(Default::default()))
            .build(),
    );
    let serverless_rows = word_count(functions.driver_mut());
    let bill = functions.shutdown();
    println!("\nserverless rerun ({}):", bill.backend);
    println!("  same answer    {}", serverless_rows.len());
    println!("  invocations    {}", bill.invocations);
    println!("  gb-seconds     {:.2}", bill.invocation_gb_seconds);
    println!("  compute        ${:.6}", bill.compute_cost);
}
