//! Explore the transient-server markets the way Flint's node manager
//! does: backward-looking statistics, expected-cost ranking, and the
//! policies' actual selections.
//!
//! ```sh
//! cargo run --release --example market_explorer
//! ```

use flint::core::{
    BatchSelection, BidPolicy, InteractiveSelection, JobProfile, MarketView, SelectionConfig,
    SelectionPolicy,
};
use flint::market::MarketCatalog;
use flint::simtime::{SimDuration, SimTime};
use flint::store::StorageConfig;

fn main() {
    let catalog = MarketCatalog::synthetic_ec2(42, SimDuration::from_days(60));
    let cfg = SelectionConfig::default();
    let job = JobProfile::default();
    let view = MarketView {
        catalog: &catalog,
        now: SimTime::ZERO + SimDuration::from_days(30),
        bid: BidPolicy::OnDemandPrice,
        cfg: &cfg,
        job: &job,
        storage: StorageConfig::default(),
        n: 10,
        cooled: &[],
    };

    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "market", "current$", "mean$", "MTTF", "E[T]/T", "E[cost]/hr"
    );
    for m in catalog.spot_markets() {
        let s = view.stats(m.id);
        println!(
            "{:<28} {:>10.4} {:>10.4} {:>10} {:>10.4} {:>12.4}",
            m.name,
            s.current_price,
            s.mean_price,
            s.mttf.to_string(),
            view.factor(m.id),
            view.cost_rate(m.id),
        );
    }
    println!(
        "{:<28} {:>10.4} {:>10} {:>10} {:>10.4} {:>12.4}",
        "on-demand",
        view.on_demand_rate(),
        "-",
        "inf",
        1.0,
        view.on_demand_rate(),
    );

    let mut batch = BatchSelection;
    let alloc = batch.initial(&view);
    println!("\nflint-batch picks:");
    for (m, n) in &alloc {
        println!("  {:>2} x {}", n, catalog.market(*m).name);
    }

    let mut interactive = InteractiveSelection::default();
    let alloc = interactive.initial(&view);
    println!("flint-interactive picks (uncorrelated diversification):");
    for (m, n) in &alloc {
        println!("  {:>2} x {}", n, catalog.market(*m).name);
    }

    // Show the correlation structure the interactive policy avoids.
    let ids: Vec<_> = catalog.spot_markets().iter().map(|m| m.id).collect();
    let corr = view.correlations(&ids);
    println!("\npairwise spike correlation (x100):");
    print!("     ");
    for id in &ids {
        print!(" m{:<3}", id.0);
    }
    println!();
    for (i, id) in ids.iter().enumerate() {
        print!("m{:<4}", id.0);
        #[allow(clippy::needless_range_loop)]
        for j in 0..ids.len() {
            print!(" {:>4.0}", corr[i][j] * 100.0);
        }
        println!();
    }
}
