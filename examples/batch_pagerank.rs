//! Batch PageRank on transient servers, with and without Flint's
//! checkpointing — a miniature of the paper's Figure 8a.
//!
//! ```sh
//! cargo run --release --example batch_pagerank
//! ```
//!
//! Runs the paper-scale PageRank workload (2 GB LiveJournal-equivalent,
//! ten iterations, ten r3.large workers) three times: failure-free,
//! with five mid-run revocations and no checkpointing (recomputation
//! cascades back through the lineage), and with five revocations under
//! Flint's adaptive checkpointing (recomputation is bounded). Results
//! are bit-identical across all three runs.

use flint::core::FlintCheckpointPolicy;
use flint::engine::{
    Driver, DriverConfig, NoCheckpoint, ScriptedInjector, WorkerEvent, WorkerSpec,
};
use flint::simtime::{SimDuration, SimTime};
use flint::workloads::{PageRank, Workload};

const N: u64 = 10;

fn driver_with(
    scale: f64,
    hooks: Box<dyn flint::engine::CheckpointHooks>,
    events: Vec<(SimTime, WorkerEvent)>,
) -> Driver {
    let mut cfg = DriverConfig::default();
    cfg.cost.size_scale = scale;
    let mut d = Driver::new(cfg, hooks, Box::new(ScriptedInjector::new(events)));
    for ext in 1..=N {
        d.add_worker_with_ext(ext, WorkerSpec::r3_large());
    }
    d
}

fn revocation_schedule(at: SimTime, k: u64) -> Vec<(SimTime, WorkerEvent)> {
    let warn = at.saturating_sub(SimDuration::from_secs(120));
    let mut evs = Vec::new();
    for ext in 1..=k {
        evs.push((warn, WorkerEvent::Warn { ext_id: ext }));
        evs.push((at, WorkerEvent::Remove { ext_id: ext }));
        evs.push((
            at + SimDuration::from_secs(120),
            WorkerEvent::Add {
                ext_id: 100 + ext,
                spec: WorkerSpec::r3_large(),
            },
        ));
    }
    evs
}

fn main() {
    let wl = PageRank::paper_scale();
    let scale = wl.recommended_size_scale();

    // 1. Failure-free baseline.
    let mut base = driver_with(scale, Box::new(NoCheckpoint), Vec::new());
    let golden = wl.run(&mut base).expect("baseline");
    let t_base = base.now().since_epoch();
    println!(
        "baseline:            {t_base}  (checksum {:#x})",
        golden.checksum
    );

    let strike = SimTime::ZERO + t_base / 2;

    // 2. Five revocations, recomputation only.
    let mut rec = driver_with(
        scale,
        Box::new(NoCheckpoint),
        revocation_schedule(strike, 5),
    );
    let s = wl.run(&mut rec).expect("recompute run");
    assert_eq!(s.checksum, golden.checksum, "recovery must be exact");
    println!(
        "5 revoked, no ckpt:  {}  (+{:.0}%, recompute {}, identical result)",
        rec.now().since_epoch(),
        (rec.now().since_epoch().as_secs_f64() / t_base.as_secs_f64() - 1.0) * 100.0,
        rec.stats().recompute_time,
    );

    // 3. Five revocations with Flint's adaptive checkpointing (cluster
    //    MTTF 20h, the shuffle fast-path protecting shuffle outputs).
    let mut flint = driver_with(
        scale,
        Box::new(FlintCheckpointPolicy::with_mttf(SimDuration::from_hours(
            20,
        ))),
        revocation_schedule(strike, 5),
    );
    let s = wl.run(&mut flint).expect("flint run");
    assert_eq!(s.checksum, golden.checksum, "recovery must be exact");
    println!(
        "5 revoked, Flint:    {}  (+{:.0}%, {} checkpoints, {} restores)",
        flint.now().since_epoch(),
        (flint.now().since_epoch().as_secs_f64() / t_base.as_secs_f64() - 1.0) * 100.0,
        flint.stats().checkpoints_written,
        flint.stats().restores,
    );
}
