//! An interactive TPC-H session on transient servers — the paper's
//! "Spark as an in-memory database" scenario (§5.4, Figure 9).
//!
//! ```sh
//! cargo run --release --example interactive_tpch
//! ```
//!
//! Loads and persists TPC-H tables in cluster memory, answers queries
//! interactively, survives a full-cluster revocation, and shows how
//! checkpointed tables turn a catastrophic re-load into a bounded
//! restore.

use flint::core::FlintCheckpointPolicy;
use flint::engine::{Driver, DriverConfig, ScriptedInjector, WorkerEvent, WorkerSpec};
use flint::simtime::{SimDuration, SimTime};
use flint::workloads::{Tpch, TpchQuery, Workload};

fn main() {
    let wl = Tpch::paper_scale();

    // Ten workers; the entire cluster is revoked at t = 30 min (one spot
    // market spiking), with replacements two minutes later.
    let strike = SimTime::from_hours_f64(0.5);
    let mut events = Vec::new();
    for ext in 1..=10u64 {
        events.push((
            strike.saturating_sub(SimDuration::from_secs(120)),
            WorkerEvent::Warn { ext_id: ext },
        ));
        events.push((strike, WorkerEvent::Remove { ext_id: ext }));
        events.push((
            strike + SimDuration::from_secs(120),
            WorkerEvent::Add {
                ext_id: 100 + ext,
                spec: WorkerSpec::r3_large(),
            },
        ));
    }

    let mut cfg = DriverConfig::default();
    cfg.cost.size_scale = wl.recommended_size_scale();
    let mut driver = Driver::new(
        cfg,
        Box::new(FlintCheckpointPolicy::with_mttf(SimDuration::from_hours(
            10,
        ))),
        Box::new(ScriptedInjector::new(events)),
    );
    for ext in 1..=10u64 {
        driver.add_worker_with_ext(ext, WorkerSpec::r3_large());
    }

    // Load, de-serialize, re-partition, and persist the tables.
    let tables = wl.prepare(&mut driver).expect("prepare tables");
    println!("tables resident at {}", driver.now());

    // Checkpoint the resident tables (Flint's frontier policy covers
    // them at generation time in a long-running service).
    for t in [tables.lineitem, tables.orders, tables.customer] {
        driver.checkpoint_now(t).expect("checkpoint");
    }
    println!(
        "tables checkpointed: {} partitions, {:.1} GB durable",
        driver.checkpoints().store().len(),
        driver.checkpoints().store().total_bytes() as f64 / 1e9,
    );

    // Warm interactive queries.
    println!("\nwarm queries:");
    for q in TpchQuery::ALL {
        driver.reset_stats();
        let rows = wl.query(&mut driver, &tables, q).expect("query");
        println!(
            "  {:3}  {:>8}  ({} rows)",
            q.name(),
            driver.stats().last_action_latency().unwrap().to_string(),
            rows.len(),
        );
    }

    // Ride out the full-cluster revocation.
    driver
        .idle_until(SimTime::from_hours_f64(0.75))
        .expect("idle");
    println!(
        "\nfull cluster revoked at t+30min; {} replacements joined; cache is cold",
        driver.cluster().alive_count(),
    );

    // Post-failure queries: the engine restores table partitions from
    // the durable checkpoints instead of re-fetching from S3.
    println!("post-failure queries:");
    for q in TpchQuery::ALL {
        driver.reset_stats();
        let rows = wl.query(&mut driver, &tables, q).expect("query");
        println!(
            "  {:3}  {:>8}  ({} rows, {} partitions restored)",
            q.name(),
            driver.stats().last_action_latency().unwrap().to_string(),
            rows.len(),
            driver.stats().restores,
        );
    }
}
