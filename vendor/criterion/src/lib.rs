//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion`/`Bencher` API subset the workspace's bench
//! targets use, with genuine wall-clock measurement: each sample times
//! one routine invocation with `std::time::Instant`, after one untimed
//! warm-up call. Reports min/mean/max per benchmark. No statistical
//! analysis, plots, or baselines — the numbers are real, the tooling
//! around them is not.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark: `f` is called once untimed (warm-up), then
    /// once per sample with timing recorded by [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { last: None };
        f(&mut b); // warm-up, discarded
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.last = None;
            f(&mut b);
            samples.push(b.last.expect("bench routine must call Bencher::iter"));
        }
        report(id, &samples);
        self
    }
}

/// Times one routine invocation per call, mirroring `criterion::Bencher`.
pub struct Bencher {
    last: Option<Duration>,
}

impl Bencher {
    /// Runs `routine` once and records its wall-clock duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.last = Some(start.elapsed());
    }
}

fn report(id: &str, samples: &[Duration]) {
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id:<40} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main`, running each group (harness args are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_times() {
        let mut n = 0u32;
        Criterion::default()
            .sample_size(3)
            .bench_function("probe", |b| {
                b.iter(|| {
                    n += 1;
                    n
                })
            });
        // 1 warm-up + 3 samples.
        assert_eq!(n, 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
