//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact API subset the workspace uses — `Rng`
//! (`gen`, `gen_bool`, `gen_range`), `SeedableRng::seed_from_u64`, and
//! `rngs::StdRng` — backed by xoshiro256++ seeded through splitmix64.
//!
//! Streams are *not* bit-compatible with upstream `rand`'s `StdRng`
//! (ChaCha12); they are, however, deterministic, portable, and of high
//! statistical quality, which is all the simulator requires. Every
//! consumer derives its stream from a single experiment seed via
//! `flint_simtime::rng`, so swapping the generator changes concrete
//! draws but never reproducibility.

#![forbid(unsafe_code)]

/// Concrete generator types, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

mod std_rng;

pub use std_rng::StdRng;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64`, expanding it with splitmix64
    /// exactly like upstream `rand`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64: guarantees distinct, well-mixed seed words.
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            for (b, s) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = s;
            }
        }
        Self::from_seed(seed)
    }
}

/// A source of randomness, mirroring the `rand::Rng` surface this
/// workspace uses.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable by [`Rng::gen`] (the subset of `rand`'s `Standard`
/// distribution the workspace uses).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64() as f32
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}

impl_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = r.gen_range(3u32..=9);
            assert!((3..=9).contains(&u));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "gen_bool(0.3) gave {frac}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn mean_of_uniform_draws_is_centered() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "uniform mean {mean}");
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw<R: Rng>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let mut r = StdRng::seed_from_u64(5);
        let direct = StdRng::seed_from_u64(5).next_u64();
        assert_eq!(draw(&mut r), direct);
    }
}
