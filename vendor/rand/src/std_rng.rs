//! The default generator: xoshiro256++.

use crate::{Rng, SeedableRng};

/// A fast, high-quality, deterministic generator (xoshiro256++ 1.0).
///
/// Not a cryptographic RNG and not stream-compatible with upstream
/// `rand::rngs::StdRng`; see the crate docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 1, 2];
        }
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // xoshiro256++ reference output for state [1, 2, 3, 4]
        // (from the public-domain reference implementation).
        let mut r = StdRng { s: [1, 2, 3, 4] };
        let expected: [u64; 4] = [41943041, 58720359, 3588806011781223, 3591011842654386];
        for e in expected {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_does_not_stick() {
        let mut r = StdRng::from_seed([0; 32]);
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}
