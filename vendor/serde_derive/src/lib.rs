//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! marker (no `#[serde(...)]` attributes, no generated serializers are
//! ever invoked — persistence sizes are modeled, not encoded). The
//! derives therefore expand to nothing; `serde`'s traits carry blanket
//! impls so the bounds still hold.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` has a blanket impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` has a blanket impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
