//! The `Strategy` trait and its combinators.

use std::marker::PhantomData;
use std::sync::Arc;

use crate::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Builds recursive values: `f` receives a strategy for the inner
    /// positions (a mix of leaves from `self` and shallower recursive
    /// values), applied `depth` times. The `_desired_size` and
    /// `_expected_branch_size` hints are accepted for signature
    /// compatibility; depth alone bounds generation here.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = f(current).boxed();
            // Mix leaves back in so every level can also bottom out.
            current = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        current
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Uniform choice among boxed strategies (what `prop_oneof!` builds).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rand::Rng::gen_range(rng, 0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

/// The whole-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::Rng::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::Rng::next_u64(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mirror upstream's insistence on special values: one draw in
        // eight is an edge case (NaN, infinities, signed zeros, ...).
        const SPECIAL: [f64; 8] = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            f64::MIN,
        ];
        if rand::Rng::gen_range(rng, 0u32..8) == 0 {
            SPECIAL[rand::Rng::gen_range(rng, 0..SPECIAL.len())]
        } else {
            f64::from_bits(rand::Rng::next_u64(rng))
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// Numeric ranges are strategies over their element type.
impl<T> Strategy for core::ops::Range<T>
where
    core::ops::Range<T>: rand::SampleRange<Output = T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    core::ops::RangeInclusive<T>: rand::SampleRange<Output = T> + Clone,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rand::Rng::gen_range(rng, self.clone())
    }
}

/// `&str` literals are simple-pattern string strategies (see
/// [`crate::patterns`] for the supported subset).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::patterns::generate(self, rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_strategy_tuple!(A: 0, B: 1);
impl_strategy_tuple!(A: 0, B: 1, C: 2);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
