//! Offline stand-in for `proptest`.
//!
//! Implements the combinator subset this workspace's property tests
//! use — `proptest!`, `Strategy` (`prop_map`, `prop_recursive`,
//! `boxed`), `prop_oneof!`, `Just`, `any`, range and tuple strategies,
//! `collection::vec`, `bool::ANY`, simple `[a-z]{m,n}` string patterns,
//! and `prop_assert*` — as a generation-only property runner.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! index and the deterministic per-test seed instead of a minimized
//! input), and case generation is seeded from the test name so runs
//! are reproducible without a persistence file.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;

mod patterns;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// Strategies over `bool`, mirroring `proptest::bool`.
pub mod bool {
    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    /// Uniformly random booleans (mirrors `proptest::bool::ANY`).
    pub const ANY: BoolAny = BoolAny;

    impl crate::Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut crate::TestRng) -> bool {
            rand::Rng::gen(rng)
        }
    }
}

/// The generator driving each test case.
pub type TestRng = rand::StdRng;

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Builds the deterministic per-test generator (seeded from the test
/// name via FNV-1a, so each property gets an independent stream).
pub fn rng_for(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    rand::SeedableRng::seed_from_u64(h)
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
    };
}

/// Defines property tests: each `fn` becomes a `#[test]` that runs the
/// body over `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::rng_for(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest: property `{}` failed at case {}/{}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// Property-scoped assertion; maps to `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-scoped equality assertion; maps to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-scoped inequality assertion; maps to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_tree() -> impl Strategy<Value = usize> {
        // Depth counter: leaves are 0; each recursion level adds one.
        let leaf = Just(0usize);
        leaf.prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a.max(b) + 1)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -4i64..=4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..=4).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        /// Vec strategies respect their length range and element bounds.
        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|x| *x < 5));
        }

        /// Mapped and one-of strategies compose.
        #[test]
        fn mapped_oneof(v in prop_oneof![
            (0u8..10).prop_map(|x| x as u32),
            Just(99u32),
        ]) {
            prop_assert!(v < 10 || v == 99);
        }

        /// String patterns honor the class and repetition count.
        #[test]
        fn string_pattern(s in "[a-c]{1,4}") {
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        /// Recursive strategies stay within the requested depth.
        #[test]
        fn recursion_bounded(d in arb_tree()) {
            prop_assert!(d <= 3);
        }

        /// Tuple + bool::ANY strategies generate.
        #[test]
        fn tuples_and_bools(t in (1u64..5, crate::bool::ANY)) {
            prop_assert!((1..5).contains(&t.0));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::Rng;
        let a = crate::rng_for("x").gen::<u64>();
        let b = crate::rng_for("x").gen::<u64>();
        let c = crate::rng_for("y").gen::<u64>();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
