//! Collection strategies, mirroring `proptest::collection`.

use crate::{Strategy, TestRng};

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: core::ops::Range<usize>,
}

/// A vector whose length is uniform in `len` and whose elements come
/// from `elem`.
pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    assert!(
        !len.is_empty(),
        "collection::vec needs a non-empty length range"
    );
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rand::Rng::gen_range(rng, self.len.clone());
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}
