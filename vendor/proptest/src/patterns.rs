//! Minimal string-pattern generation for `&str` strategies.
//!
//! Supports the subset the workspace uses: sequences of atoms, where an
//! atom is a literal character or a character class `[a-z0-9_]` of
//! single characters and inclusive ranges, optionally followed by a
//! repetition count `{n}` or `{m,n}`. Anything fancier is rejected
//! loudly rather than silently mis-generated.

use crate::TestRng;

/// Generates one string matching `pattern`.
///
/// # Panics
///
/// Panics on syntax outside the supported subset.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let alphabet: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|c| *c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let set = class_alphabet(&chars[i + 1..close], pattern);
                i = close + 1;
                set
            }
            '{' | '}' | ']' | '*' | '+' | '?' | '|' | '(' | ')' | '.' => {
                panic!("unsupported pattern syntax {:?} in {pattern:?}", chars[i])
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|c| *c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            parse_counts(&spec, pattern)
        } else {
            (1, 1)
        };
        let n = rand::Rng::gen_range(rng, lo..=hi);
        for _ in 0..n {
            let k = rand::Rng::gen_range(rng, 0..alphabet.len());
            out.push(alphabet[k]);
        }
    }
    out
}

fn class_alphabet(body: &[char], pattern: &str) -> Vec<char> {
    assert!(!body.is_empty(), "empty [] in pattern {pattern:?}");
    let mut set = Vec::new();
    let mut j = 0;
    while j < body.len() {
        if j + 2 < body.len() && body[j + 1] == '-' {
            let (lo, hi) = (body[j], body[j + 2]);
            assert!(lo <= hi, "reversed range in pattern {pattern:?}");
            for c in lo..=hi {
                set.push(c);
            }
            j += 3;
        } else {
            set.push(body[j]);
            j += 1;
        }
    }
    set
}

fn parse_counts(spec: &str, pattern: &str) -> (usize, usize) {
    let parse = |s: &str| -> usize {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad repetition {spec:?} in pattern {pattern:?}"))
    };
    match spec.split_once(',') {
        Some((lo, hi)) => {
            let (lo, hi) = (parse(lo), parse(hi));
            assert!(lo <= hi, "reversed repetition in pattern {pattern:?}");
            (lo, hi)
        }
        None => {
            let n = parse(spec);
            (n, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_range_and_counts() {
        let mut rng = crate::rng_for("patterns");
        for _ in 0..200 {
            let s = generate("[a-z]{0,8}", &mut rng);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_fixed_counts() {
        let mut rng = crate::rng_for("patterns2");
        let s = generate("x[01]{3}y", &mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with('x') && s.ends_with('y'));
        assert!(s[1..4].chars().all(|c| c == '0' || c == '1'));
    }

    #[test]
    #[should_panic(expected = "unsupported pattern")]
    fn rejects_unsupported_syntax() {
        let mut rng = crate::rng_for("patterns3");
        generate("a+", &mut rng);
    }
}
