//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` purely as markers —
//! no serializer is ever driven (on-disk sizes are modeled by the cost
//! model, not produced by encoding). The traits here are empty with
//! blanket impls, so every `T: Serialize` bound in the codebase is
//! satisfied without generating any code.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`; blanket-implemented.
pub mod de {
    /// Owned deserialization marker, mirroring `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Probe {
        a: u32,
        b: String,
    }

    fn assert_serialize<T: super::Serialize>() {}
    fn assert_deserialize_owned<T: super::de::DeserializeOwned>() {}

    #[test]
    fn derives_compile_and_bounds_hold() {
        assert_serialize::<Probe>();
        assert_deserialize_owned::<Probe>();
        let p = Probe {
            a: 1,
            b: "x".into(),
        };
        assert_eq!(
            p,
            Probe {
                a: 1,
                b: "x".into()
            }
        );
    }
}
