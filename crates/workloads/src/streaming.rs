//! A Spark-Streaming-style micro-batch workload (the paper's §6 points
//! at streaming systems as future beneficiaries of Flint's policies).
//!
//! Discretized streams process arriving data in fixed micro-batches,
//! folding each batch into a running state RDD — exactly the shape of
//! Spark Streaming's `updateStateByKey`. The interesting metric on
//! transient servers is the *per-batch latency*, and in particular how
//! far it spikes when a revocation lands between batches: the state RDD
//! embodies the whole stream history, so without checkpoints a loss
//! replays everything.

use flint_engine::{Driver, RddRef, Result, Value};
use flint_simtime::rng::stream;
use flint_simtime::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{f64_bits, fold_checksum, Workload, WorkloadConfig, WorkloadSummary};

/// `(per-batch records, final (key, total) state sorted by key)`.
pub type StreamOutcome = (Vec<BatchRecord>, Vec<(i64, f64)>);

/// Per-batch timing of a streaming run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchRecord {
    /// Batch sequence number.
    pub batch: u32,
    /// Virtual instant the batch started processing.
    pub started: SimTime,
    /// Processing latency of the batch.
    pub latency: SimDuration,
}

/// Micro-batch streaming aggregation: each batch of keyed events is
/// reduced and merged into a persisted running-state RDD.
#[derive(Debug, Clone)]
pub struct Streaming {
    cfg: WorkloadConfig,
    /// Number of micro-batches to process (`cfg.iterations`).
    pub batches: u32,
    /// Events per micro-batch.
    pub events_per_batch: u32,
    /// Distinct keys in the stream.
    pub keys: u32,
    /// Wall-clock interval between batch arrivals.
    pub batch_interval: SimDuration,
}

impl Streaming {
    /// Creates the workload (~200 events/batch per logical GB).
    pub fn new(cfg: WorkloadConfig) -> Self {
        Streaming {
            cfg,
            batches: cfg.iterations.max(1),
            events_per_batch: ((cfg.dataset_gb * 200.0).round() as u32).max(50),
            keys: 64,
            batch_interval: SimDuration::from_secs(30),
        }
    }

    /// A paper-scale configuration: 4 GB of stream state over 20 batches.
    pub fn paper_scale() -> Self {
        Streaming::new(WorkloadConfig {
            dataset_gb: 4.0,
            partitions: 20,
            iterations: 20,
            seed: 42,
        })
    }

    fn batch_events(&self, batch: u32) -> Vec<Value> {
        let mut rng = stream(self.cfg.seed ^ u64::from(batch), "stream-batch");
        (0..self.events_per_batch)
            .map(|_| {
                let k = rng.gen_range(0..self.keys) as i64;
                let v = rng.gen_range(0.0..100.0);
                Value::pair(Value::Int(k), Value::Float(v))
            })
            .collect()
    }

    fn real_bytes(&self) -> u64 {
        u64::from(self.events_per_batch) * u64::from(self.batches) * 80
    }

    /// Runs the stream to completion, returning per-batch records and the
    /// final per-key state.
    pub fn run_stream(&self, driver: &mut Driver) -> Result<StreamOutcome> {
        let parts = self.cfg.partitions;
        let mut records = Vec::new();
        let mut state: Option<RddRef> = None;

        for batch in 0..self.batches {
            // Wait for the batch to arrive.
            let arrive = driver.now() + self.batch_interval;
            driver.idle_until(arrive)?;
            let started = driver.now();

            let events = driver.ctx().parallelize(self.batch_events(batch), parts);
            let reduced = driver.ctx().reduce_by_key(events, parts, |a, b| {
                Value::Float(a.as_f64().unwrap_or(0.0) + b.as_f64().unwrap_or(0.0))
            });
            let new_state = match state {
                None => reduced,
                Some(prev) => {
                    // updateStateByKey: merge this batch into the running
                    // totals.
                    let merged = driver.ctx().union(prev, reduced);
                    driver.ctx().reduce_by_key(merged, parts, |a, b| {
                        Value::Float(a.as_f64().unwrap_or(0.0) + b.as_f64().unwrap_or(0.0))
                    })
                }
            };
            driver.ctx().persist(new_state);
            // The batch's output action (e.g. publish counters).
            driver.count(new_state)?;
            records.push(BatchRecord {
                batch,
                started,
                latency: driver.now() - started,
            });
            state = Some(new_state);
        }

        let final_state = state.expect("at least one batch");
        let mut totals: Vec<(i64, f64)> = driver
            .collect(final_state)?
            .into_iter()
            .filter_map(|v| {
                let (k, t) = v.into_pair()?;
                Some((k.as_i64()?, t.as_f64()?))
            })
            .collect();
        totals.sort_by_key(|(k, _)| *k);
        Ok((records, totals))
    }
}

impl Workload for Streaming {
    fn name(&self) -> &'static str {
        "streaming"
    }

    fn run(&self, driver: &mut Driver) -> Result<WorkloadSummary> {
        let (records, totals) = self.run_stream(driver)?;
        let checksum = totals.iter().fold(0u64, |acc, (k, t)| {
            fold_checksum(acc, *k as u64 ^ f64_bits(*t))
        });
        Ok(WorkloadSummary {
            name: self.name().into(),
            checksum,
            records: records.len() as u64,
        })
    }

    fn recommended_size_scale(&self) -> f64 {
        self.cfg.dataset_gb * 1e9 / self.real_bytes().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_engine::{DriverConfig, NoCheckpoint, ScriptedInjector, WorkerEvent, WorkerSpec};

    fn small() -> Streaming {
        Streaming::new(WorkloadConfig {
            dataset_gb: 0.5,
            partitions: 4,
            iterations: 6,
            seed: 7,
        })
    }

    #[test]
    fn totals_match_manual_accumulation() {
        let wl = small();
        let mut d = Driver::local(3);
        let (records, totals) = wl.run_stream(&mut d).unwrap();
        assert_eq!(records.len(), 6);

        // Manual reference over the generated batches.
        let mut expect = std::collections::BTreeMap::new();
        for b in 0..6 {
            for ev in wl.batch_events(b) {
                let (k, v) = ev.into_pair().unwrap();
                *expect.entry(k.as_i64().unwrap()).or_insert(0.0) += v.as_f64().unwrap();
            }
        }
        assert_eq!(totals.len(), expect.len());
        for (k, t) in &totals {
            let e = expect[k];
            assert!(
                (t - e).abs() < 1e-6 * e.abs().max(1.0),
                "key {k}: {t} vs {e}"
            );
        }
    }

    #[test]
    fn batches_are_paced_by_the_interval() {
        let wl = small();
        let mut d = Driver::local(3);
        let (records, _) = wl.run_stream(&mut d).unwrap();
        for w in records.windows(2) {
            let gap = w[1].started - w[0].started;
            assert!(gap >= wl.batch_interval, "batches must not start early");
        }
    }

    #[test]
    fn revocation_mid_stream_preserves_totals() {
        let wl = small();
        let mut clean = Driver::local(3);
        let golden = wl.run(&mut clean).unwrap();

        let mut cfg = DriverConfig::default();
        cfg.cost.size_scale = wl.recommended_size_scale();
        let mut d = flint_engine::Driver::new(
            cfg,
            Box::new(NoCheckpoint),
            Box::new(ScriptedInjector::new(vec![(
                // Between batches 2 and 3 (batches arrive every 30 s).
                SimTime::from_millis(80_000),
                WorkerEvent::Remove { ext_id: 1 },
            )])),
        );
        for ext in 1..=3u64 {
            d.add_worker_with_ext(ext, WorkerSpec::r3_large());
        }
        let got = wl.run(&mut d).unwrap();
        assert_eq!(got.checksum, golden.checksum);
        assert_eq!(d.stats().revocations, 1);
    }

    #[test]
    fn deterministic_across_cluster_sizes() {
        let wl = small();
        let mut a = Driver::local(2);
        let mut b = Driver::local(5);
        assert_eq!(
            wl.run(&mut a).unwrap().checksum,
            wl.run(&mut b).unwrap().checksum
        );
    }
}
