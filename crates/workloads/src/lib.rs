//! The paper's evaluation workloads (§5.1), implemented against the
//! engine's public API exactly as their Spark counterparts are written:
//!
//! * [`PageRank`] — iterative graph processing over a synthetic power-law
//!   web graph (the paper uses the 2 GB LiveJournal snapshot with
//!   GraphX's optimized implementation): shuffle-heavy, many RDDs per
//!   iteration.
//! * [`KMeans`] — Lloyd's clustering over Gaussian mixtures (the paper
//!   uses MLlib's DenseKMeans on 16 GB): compute-intensive narrow stages
//!   plus one shuffle per iteration.
//! * [`Als`] — alternating least squares collaborative filtering (MLlib's
//!   MovieLensALS on 10 GB): shuffle-intensive with expensive
//!   transformations.
//! * [`Tpch`] — an in-memory SQL-ish analytics server answering TPC-H
//!   queries 1, 3 and 6 over generated `lineitem`/`orders`/`customer`
//!   tables persisted as RDDs; the *interactive* workload whose response
//!   latency Fig. 9 studies.
//!
//! Each workload has a [`WorkloadConfig`]-driven size and a *scale
//! factor* mapping its in-process bytes to the paper's dataset sizes, so
//! the virtual-time engine reproduces paper-scale running times, memory
//! pressure, and checkpoint volumes from megabyte-scale real data.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod als;
mod graph;
mod kmeans;
mod pagerank;
mod streaming;
mod tpch;

pub use als::Als;
pub use graph::{power_law_graph, GraphConfig};
pub use kmeans::KMeans;
pub use pagerank::PageRank;
pub use streaming::{BatchRecord, StreamOutcome, Streaming};
pub use tpch::{Tpch, TpchQuery, TpchTables};

use flint_engine::{Driver, Result};
use serde::{Deserialize, Serialize};

/// Size/shape parameters shared by workload constructors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Logical dataset size in (paper-scale) gigabytes.
    pub dataset_gb: f64,
    /// Number of partitions for the main datasets.
    pub partitions: u32,
    /// Iterations (for the iterative workloads).
    pub iterations: u32,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            dataset_gb: 2.0,
            partitions: 20,
            iterations: 5,
            seed: 42,
        }
    }
}

/// Outcome of one workload run: a checksum for correctness comparison
/// across failure schedules, plus headline counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSummary {
    /// Workload name.
    pub name: String,
    /// Deterministic digest of the results (identical across failure
    /// scenarios if recovery is correct).
    pub checksum: u64,
    /// Number of output records.
    pub records: u64,
}

/// A runnable benchmark workload.
pub trait Workload {
    /// The workload's name.
    fn name(&self) -> &'static str;

    /// Builds the lineage and runs the workload to completion on
    /// `driver`, returning a summary.
    fn run(&self, driver: &mut Driver) -> Result<WorkloadSummary>;

    /// The `size_scale` (virtual bytes per real byte) that makes this
    /// workload's in-process data represent `dataset_gb` at paper scale.
    fn recommended_size_scale(&self) -> f64;
}

/// Deterministic digest helper used by all workloads.
pub(crate) fn fold_checksum(acc: u64, x: u64) -> u64 {
    acc.rotate_left(17) ^ x.wrapping_mul(0x9e3779b97f4a7c15)
}

/// Hashes an `f64` stably (used in checksums).
pub(crate) fn f64_bits(x: f64) -> u64 {
    // Quantize so tiny float-association differences under different
    // partition merge orders do not flip checksums.
    (x * 1e6).round() as i64 as u64
}
