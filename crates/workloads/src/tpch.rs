//! A TPC-H-style interactive analytics workload (the paper's §5.1
//! "Spark as an in-memory database server").

use flint_engine::{
    AggField, AggKernel, Driver, KeyExpr, MapKernel, NumExpr, PayloadExpr, PredKernel, RddRef,
    Result, ScalarExpr, Value,
};
use flint_simtime::rng::stream;
use rand::Rng;

use crate::{f64_bits, fold_checksum, Workload, WorkloadConfig, WorkloadSummary};

/// Market segments for `customer.mktsegment`.
const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
/// Return flags / line statuses for `lineitem`.
const FLAGS: [&str; 3] = ["A", "N", "R"];
const STATUSES: [&str; 2] = ["F", "O"];

/// The TPC-H queries implemented (the paper's evaluation uses query one
/// as its medium-length query and query three as its short query).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TpchQuery {
    /// Pricing summary report: scan + wide aggregation over `lineitem`.
    Q1,
    /// Shipping priority: customer ⋈ orders ⋈ lineitem, top revenue.
    Q3,
    /// Forecasting revenue change: selective scan + global sum.
    Q6,
    /// Returned-item reporting: top customers by lost revenue
    /// (customer ⋈ orders ⋈ returned lineitems).
    Q10,
}

impl TpchQuery {
    /// All implemented queries.
    pub const ALL: [TpchQuery; 4] = [TpchQuery::Q1, TpchQuery::Q3, TpchQuery::Q6, TpchQuery::Q10];

    /// The query's name.
    pub fn name(&self) -> &'static str {
        match self {
            TpchQuery::Q1 => "Q1",
            TpchQuery::Q3 => "Q3",
            TpchQuery::Q6 => "Q6",
            TpchQuery::Q10 => "Q10",
        }
    }
}

/// Handles to the persisted in-memory tables.
#[derive(Debug, Clone, Copy)]
pub struct TpchTables {
    /// The `lineitem` fact table.
    pub lineitem: RddRef,
    /// The `orders` table.
    pub orders: RddRef,
    /// The `customer` table.
    pub customer: RddRef,
}

/// The TPC-H workload: generate tables, persist them in memory, and
/// answer queries interactively.
///
/// Row encodings (`Value::List` columns):
/// * `lineitem`: `[orderkey, quantity, extendedprice, discount,
///   returnflag, linestatus, shipdate]`
/// * `orders`: `[orderkey, custkey, orderdate, shippriority]`
/// * `customer`: `[custkey, mktsegment]`
///
/// Dates are day numbers in `[0, 2557)`.
#[derive(Debug, Clone)]
pub struct Tpch {
    cfg: WorkloadConfig,
    lineitems: u32,
    orders: u32,
    customers: u32,
}

impl Tpch {
    /// Creates the workload (~800 lineitem rows per logical GB).
    pub fn new(cfg: WorkloadConfig) -> Self {
        let lineitems = ((cfg.dataset_gb * 800.0).round() as u32).max(400);
        Tpch {
            cfg,
            lineitems,
            orders: (lineitems / 4).max(50),
            customers: (lineitems / 20).max(20),
        }
    }

    /// The paper's 10 GB configuration.
    pub fn paper_scale() -> Self {
        Tpch::new(WorkloadConfig {
            dataset_gb: 10.0,
            partitions: 20,
            iterations: 1,
            seed: 42,
        })
    }

    fn gen_lineitem(&self) -> Vec<Value> {
        let mut rng = stream(self.cfg.seed, "tpch-lineitem");
        (0..self.lineitems)
            .map(|_| {
                let orderkey = rng.gen_range(0..self.orders) as i64;
                let qty = rng.gen_range(1.0..50.0_f64).round();
                let price = rng.gen_range(900.0..105_000.0_f64).round();
                let disc = (rng.gen_range(0.0..0.11_f64) * 100.0).round() / 100.0;
                let flag = FLAGS[rng.gen_range(0..FLAGS.len())];
                let status = STATUSES[rng.gen_range(0..STATUSES.len())];
                let shipdate = rng.gen_range(0..2557_i64);
                Value::list(vec![
                    Value::Int(orderkey),
                    Value::Float(qty),
                    Value::Float(price),
                    Value::Float(disc),
                    Value::from_str_(flag),
                    Value::from_str_(status),
                    Value::Int(shipdate),
                ])
            })
            .collect()
    }

    fn gen_orders(&self) -> Vec<Value> {
        let mut rng = stream(self.cfg.seed, "tpch-orders");
        (0..self.orders)
            .map(|ok| {
                let custkey = rng.gen_range(0..self.customers) as i64;
                let orderdate = rng.gen_range(0..2557_i64);
                let prio = rng.gen_range(0..5_i64);
                Value::list(vec![
                    Value::Int(i64::from(ok)),
                    Value::Int(custkey),
                    Value::Int(orderdate),
                    Value::Int(prio),
                ])
            })
            .collect()
    }

    fn gen_customer(&self) -> Vec<Value> {
        let mut rng = stream(self.cfg.seed, "tpch-customer");
        (0..self.customers)
            .map(|ck| {
                let seg = SEGMENTS[rng.gen_range(0..SEGMENTS.len())];
                Value::list(vec![Value::Int(i64::from(ck)), Value::from_str_(seg)])
            })
            .collect()
    }

    fn real_bytes(&self) -> u64 {
        // Dominated by lineitem: ~7 columns ≈ 140 bytes a row.
        u64::from(self.lineitems) * 140
            + u64::from(self.orders) * 70
            + u64::from(self.customers) * 40
    }

    /// Loads, "de-serializes", re-partitions, and persists the tables in
    /// memory (§5.1: Flint de-serializes and re-partitions the raw files
    /// first and then persists them as RDDs so queries run from memory).
    pub fn prepare(&self, driver: &mut Driver) -> Result<TpchTables> {
        let parts = self.cfg.partitions;
        let mk = |driver: &mut Driver, raw: Vec<Value>| -> Result<RddRef> {
            let src = driver.ctx().parallelize(raw, parts);
            // The deserialization/repartition pass (cost factor ~2).
            let table = driver
                .ctx()
                .map_partitions(src, 2.0, |_, data| data.to_vec());
            driver.ctx().persist(table);
            // Materialize now so queries hit memory.
            driver.count(table)?;
            Ok(table)
        };
        Ok(TpchTables {
            lineitem: mk(driver, self.gen_lineitem())?,
            orders: mk(driver, self.gen_orders())?,
            customer: mk(driver, self.gen_customer())?,
        })
    }

    /// Executes one query against prepared tables, returning result rows.
    pub fn query(
        &self,
        driver: &mut Driver,
        tables: &TpchTables,
        q: TpchQuery,
    ) -> Result<Vec<Value>> {
        match q {
            TpchQuery::Q1 => self.q1(driver, tables),
            TpchQuery::Q3 => self.q3(driver, tables),
            TpchQuery::Q6 => self.q6(driver, tables),
            TpchQuery::Q10 => self.q10(driver, tables),
        }
    }

    /// Q1: pricing summary report (group by returnflag, linestatus).
    ///
    /// Declared entirely through batch kernels: the shipdate filter, the
    /// six-column aggregate projection keyed by `(returnflag,
    /// linestatus)`, and the running sums all run vectorized over the
    /// lineitem columns when columnar execution is on, and through the
    /// kernel-generated row closures (same arithmetic, same order)
    /// otherwise.
    fn q1(&self, driver: &mut Driver, t: &TpchTables) -> Result<Vec<Value>> {
        let filtered = driver.ctx().filter_kernel(
            t.lineitem,
            PredKernel::IntLe {
                field: 6,
                max: 2400,
            },
        );
        let keyed = driver.ctx().map_kernel(
            filtered,
            MapKernel::Pair {
                key: KeyExpr::PairOfFields(4, 5),
                val: PayloadExpr::List(vec![
                    ScalarExpr::Field(1),
                    ScalarExpr::Field(2),
                    ScalarExpr::Num(discounted_price()),
                    ScalarExpr::Num(NumExpr::Mul(
                        Box::new(discounted_price()),
                        Box::new(NumExpr::Lit(1.06)),
                    )),
                    ScalarExpr::Field(3),
                    ScalarExpr::IntLit(1),
                ]),
            },
        );
        let agg = driver.ctx().reduce_by_key_kernel(
            keyed,
            6,
            AggKernel::SumRow(vec![
                AggField::Float,
                AggField::Float,
                AggField::Float,
                AggField::Float,
                AggField::Float,
                AggField::Int,
            ]),
        );
        let sorted = driver.ctx().sort_by_key(agg, 2, true);
        driver.collect(sorted)
    }

    /// Q3: shipping priority (3-way join, top revenue orders).
    fn q3(&self, driver: &mut Driver, t: &TpchTables) -> Result<Vec<Value>> {
        let parts = self.cfg.partitions;
        let cutoff = 1800_i64;

        // customers in the BUILDING segment, keyed by custkey. The Null
        // payload has no kernel encoding, so the keying map stays a row
        // closure.
        let building = driver.ctx().filter_kernel(
            t.customer,
            PredKernel::StrEq {
                field: 1,
                expect: "BUILDING".into(),
            },
        );
        let cust_keyed = driver.ctx().map(building, |row| {
            let c = row.as_list().expect("row");
            Value::pair(c[0].clone(), Value::Null)
        });

        // Orders before the cutoff, keyed by custkey.
        let orders = driver.ctx().filter_kernel(
            t.orders,
            PredKernel::IntInRange {
                field: 2,
                lo: i64::MIN,
                hi: cutoff,
            },
        );
        let orders_keyed = driver.ctx().map_kernel(
            orders,
            MapKernel::Pair {
                key: KeyExpr::Field(1),
                val: PayloadExpr::List(vec![
                    ScalarExpr::Field(0),
                    ScalarExpr::Field(2),
                    ScalarExpr::Field(3),
                ]),
            },
        );

        // (custkey, [null, order]) -> (orderkey, [orderdate, prio]).
        let co = driver.ctx().join(cust_keyed, orders_keyed, parts);
        let co_by_order = driver.ctx().flat_map(co, |v| {
            let Some((_, payload)) = v.clone().into_pair() else {
                return vec![];
            };
            let Some(sides) = payload.as_list() else {
                return vec![];
            };
            let Some(order) = sides[1].as_list() else {
                return vec![];
            };
            vec![Value::pair(
                order[0].clone(),
                Value::list(vec![order[1].clone(), order[2].clone()]),
            )]
        });

        // Lineitems shipped after the cutoff: (orderkey, revenue).
        let late_items = driver.ctx().filter_kernel(
            t.lineitem,
            PredKernel::IntGt {
                field: 6,
                min: cutoff,
            },
        );
        let revenue = driver.ctx().map_kernel(
            late_items,
            MapKernel::Pair {
                key: KeyExpr::Field(0),
                val: PayloadExpr::Scalar(ScalarExpr::Num(discounted_price())),
            },
        );

        // Join and aggregate revenue per order.
        let joined = driver.ctx().join(co_by_order, revenue, parts);
        let per_order = driver.ctx().map(joined, |v| {
            let (orderkey, payload) = v.clone().into_pair().expect("pair");
            let sides = payload.as_list().expect("sides");
            let meta = sides[0].clone();
            let rev = sides[1].as_f64().unwrap_or(0.0);
            Value::pair(Value::list(vec![orderkey, meta]), Value::Float(rev))
        });
        let total = driver
            .ctx()
            .reduce_by_key_kernel(per_order, parts, AggKernel::SumFloat);
        // Sort by revenue descending, take 10.
        let by_rev = driver.ctx().map(total, |v| {
            let (k, rev) = v.clone().into_pair().expect("pair");
            Value::pair(rev, k)
        });
        let sorted = driver.ctx().sort_by_key(by_rev, 4, false);
        driver.take(sorted, 10)
    }

    /// Q10: returned-item reporting — for returned lineitems (`R` flag)
    /// in a date window, the top customers by lost revenue.
    fn q10(&self, driver: &mut Driver, t: &TpchTables) -> Result<Vec<Value>> {
        let parts = self.cfg.partitions;
        // Returned lineitems in the window, keyed by orderkey.
        let returned = driver.ctx().filter_kernel(
            t.lineitem,
            PredKernel::And(vec![
                PredKernel::StrEq {
                    field: 4,
                    expect: "R".into(),
                },
                PredKernel::IntInRange {
                    field: 6,
                    lo: 600,
                    hi: 1800,
                },
            ]),
        );
        let rev_by_order = driver.ctx().map_kernel(
            returned,
            MapKernel::Pair {
                key: KeyExpr::Field(0),
                val: PayloadExpr::Scalar(ScalarExpr::Num(discounted_price())),
            },
        );
        // Orders keyed by orderkey carry the custkey.
        let orders_keyed = driver.ctx().map_kernel(
            t.orders,
            MapKernel::Pair {
                key: KeyExpr::Field(0),
                val: PayloadExpr::Scalar(ScalarExpr::Field(1)),
            },
        );
        // (orderkey, [revenue, custkey]) -> (custkey, revenue).
        let joined = driver.ctx().join(rev_by_order, orders_keyed, parts);
        let by_cust = driver.ctx().flat_map(joined, |v| {
            let Some(payload) = v.val().and_then(Value::as_list) else {
                return vec![];
            };
            vec![Value::pair(payload[1].clone(), payload[0].clone())]
        });
        let total = driver
            .ctx()
            .reduce_by_key_kernel(by_cust, parts, AggKernel::SumFloat);
        // Attach the customer's market segment, sort by revenue desc.
        let cust_keyed = driver.ctx().map_kernel(
            t.customer,
            MapKernel::Pair {
                key: KeyExpr::Field(0),
                val: PayloadExpr::Scalar(ScalarExpr::Field(1)),
            },
        );
        let with_seg = driver.ctx().join(total, cust_keyed, parts);
        let ranked = driver.ctx().map(with_seg, |v| {
            let (custkey, payload) = v.clone().into_pair().expect("pair");
            let sides = payload.as_list().expect("sides");
            Value::pair(
                sides[0].clone(), // revenue as sort key
                Value::list(vec![custkey, sides[1].clone()]),
            )
        });
        let sorted = driver.ctx().sort_by_key(ranked, 4, false);
        driver.take(sorted, 20)
    }

    /// Q6: forecasting revenue change (selective scan + sum).
    fn q6(&self, driver: &mut Driver, t: &TpchTables) -> Result<Vec<Value>> {
        let filtered = driver.ctx().filter_kernel(
            t.lineitem,
            PredKernel::And(vec![
                PredKernel::IntInRange {
                    field: 6,
                    lo: 1900,
                    hi: 2265,
                },
                PredKernel::FloatInRangeIncl {
                    field: 3,
                    lo: 0.04,
                    hi: 0.08,
                },
                PredKernel::FloatLt {
                    field: 1,
                    max: 24.0,
                },
            ]),
        );
        let revenue = driver.ctx().map_kernel(
            filtered,
            MapKernel::Scalar(ScalarExpr::Num(NumExpr::Mul(
                Box::new(NumExpr::Field(2)),
                Box::new(NumExpr::Field(3)),
            ))),
        );
        let sum = driver.reduce(revenue, |a, b| {
            Value::Float(a.as_f64().unwrap_or(0.0) + b.as_f64().unwrap_or(0.0))
        });
        match sum {
            Ok(v) => Ok(vec![v]),
            Err(flint_engine::EngineError::EmptyDataset) => Ok(vec![Value::Float(0.0)]),
            Err(e) => Err(e),
        }
    }
}

impl Workload for Tpch {
    fn name(&self) -> &'static str {
        "tpch"
    }

    fn run(&self, driver: &mut Driver) -> Result<WorkloadSummary> {
        let tables = self.prepare(driver)?;
        let mut checksum = 0u64;
        let mut records = 0u64;
        for q in TpchQuery::ALL {
            let rows = self.query(driver, &tables, q)?;
            records += rows.len() as u64;
            for r in rows {
                checksum = fold_checksum(checksum, row_digest(&r));
            }
        }
        Ok(WorkloadSummary {
            name: self.name().into(),
            checksum,
            records,
        })
    }

    fn recommended_size_scale(&self) -> f64 {
        self.cfg.dataset_gb * 1e9 / self.real_bytes().max(1) as f64
    }
}

/// `extendedprice * (1 - discount)` over the lineitem layout — the
/// revenue expression shared by Q1, Q3, and Q10.
fn discounted_price() -> NumExpr {
    NumExpr::Mul(
        Box::new(NumExpr::Field(2)),
        Box::new(NumExpr::Sub(
            Box::new(NumExpr::Lit(1.0)),
            Box::new(NumExpr::Field(3)),
        )),
    )
}

fn row_digest(v: &Value) -> u64 {
    match v {
        Value::Null => 0,
        Value::Bool(b) => u64::from(*b),
        Value::Int(i) => *i as u64,
        Value::Float(f) => f64_bits(*f),
        Value::Str(s) => s.bytes().fold(7u64, |a, b| fold_checksum(a, u64::from(b))),
        Value::Pair(p) => fold_checksum(row_digest(p.key()), row_digest(p.val())),
        Value::Vector(xs) => xs.iter().fold(11u64, |a, x| fold_checksum(a, f64_bits(*x))),
        Value::List(xs) => xs
            .iter()
            .fold(13u64, |a, x| fold_checksum(a, row_digest(x))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tpch {
        Tpch::new(WorkloadConfig {
            dataset_gb: 2.0,
            partitions: 4,
            iterations: 1,
            seed: 17,
        })
    }

    #[test]
    fn q1_groups_cover_flag_status_combinations() {
        let wl = small();
        let mut d = Driver::local(4);
        let t = wl.prepare(&mut d).unwrap();
        let rows = wl.query(&mut d, &t, TpchQuery::Q1).unwrap();
        // 3 flags × 2 statuses = 6 groups.
        assert_eq!(rows.len(), 6);
        // Counts must sum to the number of filtered lineitems.
        let total: i64 = rows
            .iter()
            .map(|r| {
                r.val()
                    .and_then(Value::as_list)
                    .and_then(|l| l[5].as_i64())
                    .unwrap_or(0)
            })
            .sum();
        assert!(total > 0);
    }

    #[test]
    fn q3_returns_top_orders_by_revenue_desc() {
        let wl = small();
        let mut d = Driver::local(4);
        let t = wl.prepare(&mut d).unwrap();
        let rows = wl.query(&mut d, &t, TpchQuery::Q3).unwrap();
        assert!(rows.len() <= 10);
        let revs: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.key().and_then(Value::as_f64))
            .collect();
        assert!(!revs.is_empty(), "Q3 should find qualifying orders");
        for w in revs.windows(2) {
            assert!(w[0] >= w[1], "revenues must be descending: {revs:?}");
        }
    }

    #[test]
    fn q6_matches_manual_scan() {
        let wl = small();
        let mut d = Driver::local(4);
        let t = wl.prepare(&mut d).unwrap();
        let got = wl.query(&mut d, &t, TpchQuery::Q6).unwrap()[0]
            .as_f64()
            .unwrap();
        // Manual reference over the raw generator output.
        let expect: f64 = wl
            .gen_lineitem()
            .iter()
            .filter_map(|row| {
                let c = row.as_list()?;
                let (qty, price, disc, ship) = (
                    c[1].as_f64()?,
                    c[2].as_f64()?,
                    c[3].as_f64()?,
                    c[6].as_i64()?,
                );
                if (1900..2265).contains(&ship) && (0.04..=0.08).contains(&disc) && qty < 24.0 {
                    Some(price * disc)
                } else {
                    None
                }
            })
            .sum();
        assert!(
            (got - expect).abs() < 1e-6 * expect.abs().max(1.0),
            "Q6: {got} vs manual {expect}"
        );
    }

    #[test]
    fn q10_ranks_customers_by_returned_revenue() {
        let wl = small();
        let mut d = Driver::local(4);
        let t = wl.prepare(&mut d).unwrap();
        let rows = wl.query(&mut d, &t, TpchQuery::Q10).unwrap();
        assert!(!rows.is_empty() && rows.len() <= 20);
        let revs: Vec<f64> = rows
            .iter()
            .filter_map(|r| r.key().and_then(Value::as_f64))
            .collect();
        for w in revs.windows(2) {
            assert!(w[0] >= w[1], "Q10 must be sorted by revenue desc");
        }
        // Cross-check the top customer's revenue against a manual scan.
        let top_rev = revs[0];
        assert!(top_rev > 0.0);
    }

    #[test]
    fn queries_from_memory_are_fast_after_prepare() {
        let wl = small();
        let mut d = Driver::local(4);
        let t = wl.prepare(&mut d).unwrap();
        d.reset_stats();
        let _ = wl.query(&mut d, &t, TpchQuery::Q6).unwrap();
        let latency = d.stats().last_action_latency().unwrap();
        // In-memory scan of a small table: seconds, not minutes.
        assert!(
            latency.as_secs_f64() < 60.0,
            "warm Q6 latency {latency} too high"
        );
    }

    #[test]
    fn full_workload_is_deterministic() {
        let wl = small();
        let mut d1 = Driver::local(3);
        let mut d2 = Driver::local(5);
        let s1 = wl.run(&mut d1).unwrap();
        let s2 = wl.run(&mut d2).unwrap();
        assert_eq!(s1.checksum, s2.checksum);
        assert!(s1.records > 0);
    }
}
