//! PageRank over a power-law web graph (the paper's graph workload).

use flint_engine::{
    AggKernel, Driver, KeyExpr, MapKernel, NumExpr, PayloadExpr, Result, ScalarExpr, Value,
};

use crate::graph::{power_law_graph, GraphConfig};
use crate::{f64_bits, fold_checksum, Workload, WorkloadConfig, WorkloadSummary};

/// Iterative PageRank, structured exactly like the canonical Spark
/// implementation: a persisted `links` RDD joined with the evolving
/// `ranks` RDD each iteration, contributions shuffled by destination.
///
/// This is the paper's checkpoint-friendliest workload: every iteration
/// pushes the lineage frontier forward through two shuffles, so
/// recomputation without checkpoints cascades to the source (Fig. 8a).
///
/// # Examples
///
/// ```
/// use flint_engine::Driver;
/// use flint_workloads::{PageRank, Workload, WorkloadConfig};
///
/// let wl = PageRank::new(WorkloadConfig {
///     dataset_gb: 2.0,
///     partitions: 4,
///     iterations: 2,
///     seed: 1,
/// });
/// let mut driver = Driver::local(4);
/// let summary = wl.run(&mut driver).unwrap();
/// assert!(summary.records > 0);
/// ```
#[derive(Debug, Clone)]
pub struct PageRank {
    cfg: WorkloadConfig,
    graph: GraphConfig,
}

impl PageRank {
    /// Creates the workload; graph size follows `cfg.dataset_gb`
    /// (~1000 vertices per logical GB keeps in-process data tiny while
    /// the scale factor restores paper-sized virtual bytes).
    pub fn new(cfg: WorkloadConfig) -> Self {
        let nodes = ((cfg.dataset_gb * 1000.0).round() as u32).max(100);
        PageRank {
            cfg,
            graph: GraphConfig {
                nodes,
                avg_degree: 16,
                seed: cfg.seed,
            },
        }
    }

    /// The paper's 2 GB LiveJournal-equivalent configuration.
    pub fn paper_scale() -> Self {
        PageRank::new(WorkloadConfig {
            dataset_gb: 2.0,
            partitions: 20,
            iterations: 10,
            seed: 42,
        })
    }

    fn adjacency_values(&self) -> Vec<Value> {
        power_law_graph(&self.graph)
            .into_iter()
            .map(|(src, dsts)| {
                Value::pair(
                    Value::Int(i64::from(src)),
                    Value::list(dsts.into_iter().map(|d| Value::Int(i64::from(d))).collect()),
                )
            })
            .collect()
    }

    fn real_bytes(&self) -> u64 {
        self.adjacency_values().iter().map(Value::size_bytes).sum()
    }

    /// Runs PageRank and returns the final ranks.
    pub fn run_ranks(&self, driver: &mut Driver) -> Result<Vec<(i64, f64)>> {
        let parts = self.cfg.partitions;
        let links = driver.ctx().parallelize(self.adjacency_values(), parts);
        driver.ctx().persist(links);

        let mut ranks = driver.ctx().map_kernel(
            links,
            MapKernel::Pair {
                key: KeyExpr::PairKey,
                val: PayloadExpr::Scalar(ScalarExpr::Num(NumExpr::Lit(1.0))),
            },
        );
        driver.ctx().persist(ranks);

        for _ in 0..self.cfg.iterations {
            // GraphX-style tight loop: cogroup links with ranks and emit
            // contributions directly, with no intermediate join RDD.
            let grouped = driver.ctx().cogroup(links, ranks, parts);
            let contribs = driver.ctx().flat_map(grouped, |v| {
                // v = (node, [[dsts...], [rank]])
                let Some(groups) = v.val().and_then(Value::as_list) else {
                    return vec![];
                };
                let (Some(adj), Some(rankside)) = (groups[0].as_list(), groups[1].as_list()) else {
                    return vec![];
                };
                let Some(dsts) = adj.first().and_then(Value::as_list) else {
                    return vec![];
                };
                let rank = rankside.first().and_then(Value::as_f64).unwrap_or(0.0);
                let share = rank / dsts.len().max(1) as f64;
                dsts.iter()
                    .map(|d| Value::pair(d.clone(), Value::Float(share)))
                    .collect()
            });
            let summed = driver
                .ctx()
                .reduce_by_key_kernel(contribs, parts, AggKernel::SumFloat);
            // rank' = 0.15 + 0.85 * Σ contributions, vectorized over the
            // summed pair columns.
            ranks = driver.ctx().map_kernel(
                summed,
                MapKernel::Pair {
                    key: KeyExpr::PairKey,
                    val: PayloadExpr::Scalar(ScalarExpr::Num(NumExpr::Add(
                        Box::new(NumExpr::Lit(0.15)),
                        Box::new(NumExpr::Mul(
                            Box::new(NumExpr::Lit(0.85)),
                            Box::new(NumExpr::Input),
                        )),
                    ))),
                },
            );
            driver.ctx().persist(ranks);
        }

        let out = driver.collect(ranks)?;
        let mut ranks: Vec<(i64, f64)> = out
            .into_iter()
            .filter_map(|v| {
                let (k, r) = v.into_pair()?;
                Some((k.as_i64()?, r.as_f64()?))
            })
            .collect();
        ranks.sort_by_key(|(k, _)| *k);
        Ok(ranks)
    }
}

impl Workload for PageRank {
    fn name(&self) -> &'static str {
        "pagerank"
    }

    fn run(&self, driver: &mut Driver) -> Result<WorkloadSummary> {
        let ranks = self.run_ranks(driver)?;
        let checksum = ranks.iter().fold(0u64, |acc, (k, r)| {
            fold_checksum(acc, *k as u64 ^ f64_bits(*r))
        });
        Ok(WorkloadSummary {
            name: self.name().into(),
            checksum,
            records: ranks.len() as u64,
        })
    }

    fn recommended_size_scale(&self) -> f64 {
        let real = self.real_bytes().max(1) as f64;
        self.cfg.dataset_gb * 1e9 / real
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_engine::{DriverConfig, NoCheckpoint, ScriptedInjector, WorkerEvent, WorkerSpec};
    use flint_simtime::SimTime;

    fn small() -> PageRank {
        PageRank::new(WorkloadConfig {
            dataset_gb: 0.3,
            partitions: 4,
            iterations: 3,
            seed: 5,
        })
    }

    #[test]
    fn ranks_form_probability_like_distribution() {
        let wl = small();
        let mut d = Driver::local(4);
        let ranks = wl.run_ranks(&mut d).unwrap();
        assert!(ranks.len() as u32 >= 200);
        // All ranks at least the damping floor; total near node count.
        assert!(ranks.iter().all(|(_, r)| *r >= 0.15));
        let total: f64 = ranks.iter().map(|(_, r)| r).sum();
        let n = ranks.len() as f64;
        assert!(
            (total / n - 1.0).abs() < 0.5,
            "mean rank {:.3} should be near 1",
            total / n
        );
    }

    #[test]
    fn deterministic_across_drivers() {
        let wl = small();
        let mut d1 = Driver::local(4);
        let mut d2 = Driver::local(2);
        let s1 = wl.run(&mut d1).unwrap();
        let s2 = wl.run(&mut d2).unwrap();
        assert_eq!(
            s1.checksum, s2.checksum,
            "partitioning must not change results"
        );
    }

    #[test]
    fn identical_results_under_revocation() {
        let wl = small();
        let mut clean = Driver::local(4);
        let golden = wl.run(&mut clean).unwrap();

        // Time the failure-free run at the same scale, then strike at
        // the midpoint.
        let mut cfg = DriverConfig::default();
        cfg.cost.size_scale = wl.recommended_size_scale();
        let mut timing = Driver::new(
            cfg.clone(),
            Box::new(NoCheckpoint),
            Box::new(flint_engine::NoFailures),
        );
        for ext in 1..=4u64 {
            timing.add_worker_with_ext(ext, WorkerSpec::r3_large());
        }
        let _ = wl.run(&mut timing).unwrap();
        let mid = SimTime::ZERO + timing.now().since_epoch() / 2;

        let mut d = Driver::new(
            cfg,
            Box::new(NoCheckpoint),
            Box::new(ScriptedInjector::new(vec![
                (mid, WorkerEvent::Remove { ext_id: 1 }),
                (mid, WorkerEvent::Remove { ext_id: 2 }),
            ])),
        );
        for ext in 1..=4u64 {
            d.add_worker_with_ext(ext, WorkerSpec::r3_large());
        }
        let got = wl.run(&mut d).unwrap();
        assert_eq!(got.checksum, golden.checksum);
        assert!(d.stats().revocations >= 1);
        assert!(d.stats().recompute_time > flint_simtime::SimDuration::ZERO);
    }

    #[test]
    fn scale_factor_restores_paper_size() {
        let wl = PageRank::paper_scale();
        let scale = wl.recommended_size_scale();
        let virtual_gb = wl.real_bytes() as f64 * scale / 1e9;
        assert!(
            (virtual_gb - 2.0).abs() < 0.01,
            "virtual size {virtual_gb} GB"
        );
    }
}
