//! Synthetic power-law web-graph generation (a LiveJournal-like shape).

use flint_simtime::rng::stream;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Shape of a generated graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraphConfig {
    /// Number of vertices.
    pub nodes: u32,
    /// Average out-degree.
    pub avg_degree: u32,
    /// Seed.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            nodes: 2_000,
            avg_degree: 8,
            seed: 7,
        }
    }
}

/// Generates adjacency lists `(src, Vec<dst>)` with a power-law-ish
/// in-degree distribution via preferential attachment sampling.
///
/// Real social/web graphs (the paper's LiveJournal input) are heavy-
/// tailed; the tail matters here because PageRank's shuffle volume per
/// key is skewed, stressing the shuffle path non-uniformly.
///
/// # Examples
///
/// ```
/// use flint_workloads::{power_law_graph, GraphConfig};
///
/// let g = power_law_graph(&GraphConfig { nodes: 100, avg_degree: 4, seed: 1 });
/// assert_eq!(g.len(), 100);
/// let edges: usize = g.iter().map(|(_, d)| d.len()).sum();
/// assert!(edges >= 300 && edges <= 500);
/// ```
pub fn power_law_graph(cfg: &GraphConfig) -> Vec<(u32, Vec<u32>)> {
    let mut rng = stream(cfg.seed, "graph");
    let n = cfg.nodes.max(2);
    let mut out: Vec<(u32, Vec<u32>)> = (0..n).map(|v| (v, Vec::new())).collect();
    // Preferential attachment: destinations are sampled from a growing
    // pool where popular nodes repeat, yielding heavy-tailed in-degree.
    let mut pool: Vec<u32> = (0..n.min(16)).collect();
    for src in 0..n {
        let degree = 1 + rng.gen_range(0..cfg.avg_degree.max(1) * 2);
        let mut dsts = Vec::with_capacity(degree as usize);
        for _ in 0..degree {
            let dst = if rng.gen_bool(0.7) && !pool.is_empty() {
                pool[rng.gen_range(0..pool.len())]
            } else {
                rng.gen_range(0..n)
            };
            if dst != src {
                dsts.push(dst);
                pool.push(dst);
            }
        }
        dsts.sort_unstable();
        dsts.dedup();
        // Guarantee no dangling nodes (simplifies PageRank).
        if dsts.is_empty() {
            dsts.push((src + 1) % n);
        }
        out[src as usize].1 = dsts;
        // Keep the pool bounded.
        if pool.len() > 4096 {
            let excess = pool.len() - 4096;
            pool.drain(0..excess);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GraphConfig::default();
        assert_eq!(power_law_graph(&cfg), power_law_graph(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = power_law_graph(&GraphConfig {
            seed: 1,
            ..GraphConfig::default()
        });
        let b = power_law_graph(&GraphConfig {
            seed: 2,
            ..GraphConfig::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = power_law_graph(&GraphConfig {
            nodes: 5_000,
            avg_degree: 8,
            seed: 3,
        });
        let mut indeg = vec![0u32; 5_000];
        for (_, dsts) in &g {
            for d in dsts {
                indeg[*d as usize] += 1;
            }
        }
        let max = *indeg.iter().max().unwrap();
        let mean = indeg.iter().sum::<u32>() as f64 / indeg.len() as f64;
        assert!(
            f64::from(max) > 10.0 * mean,
            "max in-degree {max} should dwarf mean {mean:.1}"
        );
    }

    #[test]
    fn no_self_loops_or_empty_adjacency() {
        let g = power_law_graph(&GraphConfig {
            nodes: 500,
            avg_degree: 4,
            seed: 9,
        });
        for (src, dsts) in &g {
            assert!(!dsts.is_empty());
            assert!(!dsts.contains(src));
        }
    }
}
