//! KMeans clustering (the paper's compute-intensive workload).

use std::sync::Arc;

use flint_engine::{AggKernel, Driver, MapKernel, Result, Value};
use flint_simtime::rng::stream;
use rand::Rng;

use crate::{f64_bits, fold_checksum, Workload, WorkloadConfig, WorkloadSummary};

/// Lloyd's KMeans over a Gaussian mixture, structured like MLlib's
/// DenseKMeans: a persisted points RDD; each iteration assigns points to
/// the nearest centroid in a CPU-heavy `map_partitions` (narrow), then
/// one shuffle aggregates per-cluster sums, and the driver updates the
/// centroids.
#[derive(Debug, Clone)]
pub struct KMeans {
    cfg: WorkloadConfig,
    /// Number of clusters.
    pub k: u32,
    /// Point dimensionality.
    pub dim: u32,
    points_count: u32,
}

impl KMeans {
    /// Creates the workload (≈600 points per logical GB, 16-dimensional).
    pub fn new(cfg: WorkloadConfig) -> Self {
        KMeans {
            cfg,
            k: 10,
            dim: 16,
            points_count: ((cfg.dataset_gb * 600.0).round() as u32).max(200),
        }
    }

    /// The paper's 16 GB configuration.
    pub fn paper_scale() -> Self {
        KMeans::new(WorkloadConfig {
            dataset_gb: 16.0,
            partitions: 20,
            iterations: 6,
            seed: 42,
        })
    }

    /// The well-separated ground-truth centers points jitter around.
    pub fn true_centers(k: u32, dim: u32) -> Vec<Vec<f64>> {
        (0..k)
            .map(|c| {
                let mut rng = stream(0xC3A5, &format!("center{c}"));
                (0..dim).map(|_| rng.gen_range(0.0..100.0)).collect()
            })
            .collect()
    }

    fn points(&self) -> Vec<Value> {
        let mut rng = stream(self.cfg.seed, "kmeans-points");
        let k = self.k as usize;
        let centers = Self::true_centers(self.k, self.dim);
        (0..self.points_count)
            .map(|i| {
                let c = &centers[(i as usize) % k];
                let p: Vec<f64> = c.iter().map(|x| x + rng.gen_range(-0.5..0.5)).collect();
                Value::vector(p)
            })
            .collect()
    }

    fn real_bytes(&self) -> u64 {
        u64::from(self.points_count) * (24 + 8 * u64::from(self.dim))
    }

    /// Runs KMeans and returns the final centroids.
    pub fn run_centroids(&self, driver: &mut Driver) -> Result<Vec<Vec<f64>>> {
        let parts = self.cfg.partitions;
        let points = driver.ctx().parallelize(self.points(), parts);
        driver.ctx().persist(points);

        // Initial centroids: the first k points (deterministic).
        let init = driver.take(points, self.k as usize)?;
        let mut centroids: Vec<Vec<f64>> = init
            .iter()
            .filter_map(|v| v.as_vector().map(<[f64]>::to_vec))
            .collect();

        // Distance evaluation costs ~k·dim flops per point-byte; reflect
        // that in the charged compute intensity.
        let assign_cost = f64::from(self.k * self.dim) / 4.0;

        for _ in 0..self.cfg.iterations {
            // The CPU-heavy assignment runs as a vectorized
            // nearest-center kernel over the point columns when columnar
            // execution is on; its row fallback replays the same
            // distance loop point by point.
            let assigned = driver.ctx().map_partitions_kernel(
                points,
                assign_cost,
                MapKernel::NearestCenter {
                    centers: Arc::new(centroids.clone()),
                },
            );
            let sums = driver
                .ctx()
                .reduce_by_key_kernel(assigned, self.k, AggKernel::VecSumCount);
            let collected = driver.collect(sums)?;
            for v in collected {
                let Some((k, payload)) = v.into_pair() else {
                    continue;
                };
                let Some(idx) = k.as_i64() else { continue };
                let Some(list) = payload.as_list() else {
                    continue;
                };
                let (Some(sum), Some(n)) = (list[0].as_vector(), list[1].as_i64()) else {
                    continue;
                };
                if n > 0 {
                    centroids[idx as usize] = sum.iter().map(|x| x / n as f64).collect();
                }
            }
        }
        Ok(centroids)
    }
}

impl Workload for KMeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn run(&self, driver: &mut Driver) -> Result<WorkloadSummary> {
        let centroids = self.run_centroids(driver)?;
        let checksum = centroids
            .iter()
            .flatten()
            .fold(0u64, |acc, x| fold_checksum(acc, f64_bits(*x)));
        Ok(WorkloadSummary {
            name: self.name().into(),
            checksum,
            records: centroids.len() as u64,
        })
    }

    fn recommended_size_scale(&self) -> f64 {
        self.cfg.dataset_gb * 1e9 / self.real_bytes().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> KMeans {
        KMeans::new(WorkloadConfig {
            dataset_gb: 1.0,
            partitions: 4,
            iterations: 4,
            seed: 3,
        })
    }

    #[test]
    fn centroids_converge_to_lattice_centers() {
        let wl = small();
        let mut d = Driver::local(4);
        let cents = wl.run_centroids(&mut d).unwrap();
        assert_eq!(cents.len(), 10);
        // Each learned centroid should be close to SOME ground-truth
        // center (within the ±0.5 jitter).
        let truth = KMeans::true_centers(10, 16);
        let mut matched = 0;
        for c in &cents {
            let best: f64 = truth
                .iter()
                .map(|t| {
                    t.iter()
                        .zip(c)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt()
                })
                .fold(f64::INFINITY, f64::min);
            if best < 1.5 {
                matched += 1;
            }
        }
        assert!(matched >= 8, "only {matched}/10 centroids converged");
    }

    #[test]
    fn deterministic_checksum() {
        let wl = small();
        let mut d1 = Driver::local(3);
        let mut d2 = Driver::local(5);
        assert_eq!(
            wl.run(&mut d1).unwrap().checksum,
            wl.run(&mut d2).unwrap().checksum
        );
    }

    #[test]
    fn compute_heavy_cost_factor_dominates_runtime() {
        // The same dataset with a trivial map should finish much faster
        // than the KMeans assignment stage, because of the cost factor.
        let wl = small();
        let mut cfg = flint_engine::DriverConfig::default();
        cfg.cost.size_scale = wl.recommended_size_scale();
        let mut d = Driver::new(
            cfg,
            Box::new(flint_engine::NoCheckpoint),
            Box::new(flint_engine::NoFailures),
        );
        for _ in 0..4 {
            d.add_worker(flint_engine::WorkerSpec::r3_large());
        }
        let _ = wl.run(&mut d).unwrap();
        let kmeans_compute = d.stats().compute_time;
        assert!(
            kmeans_compute.as_secs_f64() > 60.0,
            "assignment stages should dominate: {kmeans_compute}"
        );
    }
}
