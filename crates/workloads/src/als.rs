//! Alternating least squares (the paper's shuffle-intensive ML workload).

use flint_engine::{Driver, RddRef, Result, Value};
use flint_simtime::rng::stream;
use rand::Rng;

use crate::{f64_bits, fold_checksum, Workload, WorkloadConfig, WorkloadSummary};

/// ALS matrix factorization in the MovieLensALS shape: a persisted
/// ratings RDD keyed both ways, with each half-iteration joining ratings
/// against the opposite side's factors, shuffling contributions by
/// entity, and solving per-entity updates in a CPU-heavy reducer.
///
/// The per-entity solve is simplified to a regularized weighted average
/// of the counterpart factors (not a true normal-equations solve); the
/// data movement, lineage shape (two shuffles per half-iteration), and
/// compute intensity — which are what Flint's policies react to — match
/// the paper's description of ALS as "more shuffle-intensive [than
/// KMeans], where each transformation takes more time".
#[derive(Debug, Clone)]
pub struct Als {
    cfg: WorkloadConfig,
    /// Latent factor rank.
    pub rank: u32,
    users: u32,
    items: u32,
    ratings_count: u32,
}

impl Als {
    /// Creates the workload (~400 ratings per logical GB).
    pub fn new(cfg: WorkloadConfig) -> Self {
        let ratings = ((cfg.dataset_gb * 400.0).round() as u32).max(200);
        Als {
            cfg,
            rank: 8,
            users: (ratings / 8).max(10),
            items: (ratings / 16).max(10),
            ratings_count: ratings,
        }
    }

    /// The paper's 10 GB MovieLens-style configuration.
    pub fn paper_scale() -> Self {
        Als::new(WorkloadConfig {
            dataset_gb: 10.0,
            partitions: 20,
            iterations: 5,
            seed: 42,
        })
    }

    /// Ratings as `(user, (item, rating))` triples.
    fn ratings(&self) -> Vec<(i64, i64, f64)> {
        let mut rng = stream(self.cfg.seed, "als-ratings");
        (0..self.ratings_count)
            .map(|_| {
                let u = rng.gen_range(0..self.users) as i64;
                let i = rng.gen_range(0..self.items) as i64;
                let r = rng.gen_range(1.0..5.0);
                (u, i, r)
            })
            .collect()
    }

    fn real_bytes(&self) -> u64 {
        u64::from(self.ratings_count) * 64
    }

    fn init_factors(&self, driver: &mut Driver, n: u32, label: u64) -> RddRef {
        let rank = self.rank as usize;
        let seed = self.cfg.seed ^ label;
        let vals: Vec<Value> = (0..n)
            .map(|e| {
                let mut rng = stream(seed, &format!("fac{e}"));
                Value::pair(
                    Value::Int(i64::from(e)),
                    Value::vector((0..rank).map(|_| rng.gen_range(0.1..1.0)).collect()),
                )
            })
            .collect();
        let r = driver.ctx().parallelize(vals, self.cfg.partitions);
        driver.ctx().persist(r);
        r
    }

    /// One half-iteration: update `side` factors from the other side's.
    fn half_step(
        &self,
        driver: &mut Driver,
        ratings_by_other: RddRef,
        other_factors: RddRef,
    ) -> RddRef {
        let parts = self.cfg.partitions;
        let rank = self.rank as usize;
        // (other, [ (this, rating), ofac ]) for every rating.
        let joined = driver.ctx().join(ratings_by_other, other_factors, parts);
        // Contribution of each rating to "this" entity's factor.
        let contribs = driver.ctx().flat_map(joined, move |v| {
            let Some((_, payload)) = v.clone().into_pair() else {
                return vec![];
            };
            let Some(sides) = payload.as_list() else {
                return vec![];
            };
            let (Some(tr), Some(ofac)) = (sides[0].as_list(), sides[1].as_vector()) else {
                return vec![];
            };
            let (Some(this), Some(rating)) = (tr[0].as_i64(), tr[1].as_f64()) else {
                return vec![];
            };
            let weighted: Vec<f64> = ofac.iter().map(|x| x * rating / 5.0).collect();
            vec![Value::pair(
                Value::Int(this),
                Value::list(vec![Value::vector(weighted), Value::Int(1)]),
            )]
        });
        // Heavy aggregation: the regularized "solve" per entity. The
        // combine itself is cheap; the solve cost (~rank² per rating) is
        // charged through a follow-up map_partitions.
        let summed = driver.ctx().reduce_by_key(contribs, parts, |a, b| {
            let av = a.as_list().unwrap();
            let bv = b.as_list().unwrap();
            let sa = av[0].as_vector().unwrap();
            let sb = bv[0].as_vector().unwrap();
            let sum: Vec<f64> = sa.iter().zip(sb).map(|(x, y)| x + y).collect();
            Value::list(vec![
                Value::vector(sum),
                Value::Int(av[1].as_i64().unwrap() + bv[1].as_i64().unwrap()),
            ])
        });
        let solve_cost = (rank * rank) as f64 / 3.0;
        let new_factors = driver
            .ctx()
            .map_partitions(summed, solve_cost, move |_, data| {
                data.iter()
                    .filter_map(|v| {
                        let (k, payload) = v.clone().into_pair()?;
                        let list = payload.as_list()?.to_vec();
                        let sum = list[0].as_vector()?.to_vec();
                        let n = list[1].as_i64()? as f64;
                        // Regularized average.
                        let fac: Vec<f64> = sum.iter().map(|x| x / (n + 0.1)).collect();
                        Some(Value::pair(k, Value::vector(fac)))
                    })
                    .collect()
            });
        driver.ctx().persist(new_factors);
        new_factors
    }

    /// Runs ALS, returning `(user_factors, item_factors)` sorted by id.
    #[allow(clippy::type_complexity)]
    pub fn run_factors(
        &self,
        driver: &mut Driver,
    ) -> Result<(Vec<(i64, Vec<f64>)>, Vec<(i64, Vec<f64>)>)> {
        let parts = self.cfg.partitions;
        let ratings = self.ratings();

        // Ratings keyed by item: (item, (user, rating)).
        let by_item_vals: Vec<Value> = ratings
            .iter()
            .map(|(u, i, r)| {
                Value::pair(
                    Value::Int(*i),
                    Value::list(vec![Value::Int(*u), Value::Float(*r)]),
                )
            })
            .collect();
        let by_item = driver.ctx().parallelize(by_item_vals, parts);
        driver.ctx().persist(by_item);

        // Ratings keyed by user: (user, (item, rating)).
        let by_user_vals: Vec<Value> = ratings
            .iter()
            .map(|(u, i, r)| {
                Value::pair(
                    Value::Int(*u),
                    Value::list(vec![Value::Int(*i), Value::Float(*r)]),
                )
            })
            .collect();
        let by_user = driver.ctx().parallelize(by_user_vals, parts);
        driver.ctx().persist(by_user);

        let mut user_f = self.init_factors(driver, self.users, 0x55);
        let mut item_f = self.init_factors(driver, self.items, 0xAA);

        for _ in 0..self.cfg.iterations {
            // Update users from item factors (join keyed by item).
            user_f = self.half_step(driver, by_item, item_f);
            // Update items from user factors (join keyed by user).
            item_f = self.half_step(driver, by_user, user_f);
        }

        let extract = |vals: Vec<Value>| {
            let mut out: Vec<(i64, Vec<f64>)> = vals
                .into_iter()
                .filter_map(|v| {
                    let (k, f) = v.into_pair()?;
                    Some((k.as_i64()?, f.as_vector()?.to_vec()))
                })
                .collect();
            out.sort_by_key(|(k, _)| *k);
            out
        };
        let u = extract(driver.collect(user_f)?);
        let i = extract(driver.collect(item_f)?);
        Ok((u, i))
    }
}

impl Workload for Als {
    fn name(&self) -> &'static str {
        "als"
    }

    fn run(&self, driver: &mut Driver) -> Result<WorkloadSummary> {
        let (u, i) = self.run_factors(driver)?;
        let checksum = u.iter().chain(i.iter()).fold(0u64, |acc, (k, fac)| {
            let inner = fac
                .iter()
                .fold(*k as u64, |a, x| fold_checksum(a, f64_bits(*x)));
            fold_checksum(acc, inner)
        });
        Ok(WorkloadSummary {
            name: self.name().into(),
            checksum,
            records: (u.len() + i.len()) as u64,
        })
    }

    fn recommended_size_scale(&self) -> f64 {
        self.cfg.dataset_gb * 1e9 / self.real_bytes().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Als {
        Als::new(WorkloadConfig {
            dataset_gb: 1.0,
            partitions: 4,
            iterations: 2,
            seed: 11,
        })
    }

    #[test]
    fn produces_factors_for_rated_entities() {
        let wl = small();
        let mut d = Driver::local(4);
        let (u, i) = wl.run_factors(&mut d).unwrap();
        assert!(!u.is_empty());
        assert!(!i.is_empty());
        // Factors stay finite and bounded.
        for (_, f) in u.iter().chain(i.iter()) {
            assert_eq!(f.len(), 8);
            assert!(f.iter().all(|x| x.is_finite() && *x >= 0.0 && *x < 10.0));
        }
    }

    #[test]
    fn deterministic_across_cluster_sizes() {
        let wl = small();
        let mut d1 = Driver::local(2);
        let mut d2 = Driver::local(6);
        assert_eq!(
            wl.run(&mut d1).unwrap().checksum,
            wl.run(&mut d2).unwrap().checksum
        );
    }

    #[test]
    fn als_is_shuffle_heavy() {
        let wl = small();
        let mut d = Driver::local(4);
        let _ = wl.run(&mut d).unwrap();
        // Each half-step = one cogroup (2 shuffle edges) + one
        // reduce_by_key (1 edge); 2 half-steps × 2 iterations = 12 edges.
        let shuffle_edges: usize = d
            .lineage()
            .ids()
            .map(|id| d.lineage().meta(id).op.input_shuffles().len())
            .sum();
        assert!(
            shuffle_edges >= 12,
            "expected many shuffle edges, got {shuffle_edges}"
        );
    }
}
