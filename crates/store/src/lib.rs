//! Durable checkpoint storage for Flint, modeled after HDFS on EBS.
//!
//! The paper stores RDD checkpoints in HDFS backed by network-attached EBS
//! volumes (§4, "Checkpoint Storage"): data survives revocations, writes
//! are replicated and bandwidth-bound, and the volumes cost $0.10 per
//! GB-month. This crate reproduces those three properties:
//!
//! * [`DurableStore`] — a keyed object store whose contents survive any
//!   worker revocation; supports put/get/delete and keeps a GB-hour
//!   integral for cost accounting.
//! * [`StorageConfig`] — the bandwidth/latency model used to charge
//!   virtual time for checkpoint writes and restore reads, including the
//!   replication write amplification and an optional cross-availability-
//!   zone bandwidth factor (§5.2's multi-AZ experiment).
//!
//! # Examples
//!
//! ```
//! use flint_store::{DurableStore, StorageConfig};
//! use flint_simtime::SimTime;
//!
//! let mut store: DurableStore<Vec<u8>> = DurableStore::new(StorageConfig::default());
//! store.put("rdd-3/part-0", vec![1, 2, 3], 64 << 20, SimTime::ZERO);
//! assert!(store.contains("rdd-3/part-0"));
//!
//! // Writing 64 MiB over 10 parallel writers at the default bandwidth.
//! let d = store.config().write_time(64 << 20, 10);
//! assert!(d.as_secs_f64() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use flint_market::EbsCostModel;
use flint_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Bandwidth and replication model for durable storage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageConfig {
    /// Aggregate write bandwidth per writer node, MiB/s. The paper's
    /// `r3.large` workers are EBS-bandwidth-limited to ~500 Mbps
    /// (~60 MiB/s) shared by the whole node.
    pub write_mib_s_per_node: f64,
    /// Aggregate read bandwidth per reader node, MiB/s.
    pub read_mib_s_per_node: f64,
    /// HDFS replication factor (the paper uses 3).
    pub replication: u32,
    /// Fixed per-operation latency (metadata round trips).
    pub op_latency: SimDuration,
    /// Bandwidth divisor for cross-availability-zone traffic; `1.0`
    /// within a zone. §5.2 reports checkpoint writes are bandwidth- not
    /// latency-sensitive, so multi-AZ mostly shows up here.
    pub cross_zone_factor: f64,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            write_mib_s_per_node: 60.0,
            read_mib_s_per_node: 60.0,
            replication: 3,
            op_latency: SimDuration::from_millis(20),
            cross_zone_factor: 1.0,
        }
    }
}

impl StorageConfig {
    /// Time to durably write `bytes` spread over `parallel_writers` nodes.
    ///
    /// HDFS replicates through a *pipeline*: the client streams each
    /// block once and downstream datanodes forward it concurrently, so
    /// the client-visible write time scales with the bytes written, not
    /// with the replication factor (replication costs capacity, charged
    /// in [`DurableStore::storage_cost`], and a small pipeline overhead
    /// charged here).
    pub fn write_time(&self, bytes: u64, parallel_writers: u32) -> SimDuration {
        let writers = parallel_writers.max(1) as f64;
        // ~10% pipeline overhead per extra replica.
        let pipeline = 1.0 + 0.1 * (self.replication.max(1) - 1) as f64;
        let per_node = bytes as f64 * pipeline / writers;
        let bw = (self.write_mib_s_per_node / self.cross_zone_factor.max(1.0)).max(1e-6);
        self.op_latency + SimDuration::from_secs_f64(per_node / (bw * 1024.0 * 1024.0))
    }

    /// Time to read `bytes` spread over `parallel_readers` nodes.
    ///
    /// Reads hit a single replica, so no replication amplification.
    pub fn read_time(&self, bytes: u64, parallel_readers: u32) -> SimDuration {
        let readers = parallel_readers.max(1) as f64;
        let per_node = bytes as f64 / readers;
        let bw = (self.read_mib_s_per_node / self.cross_zone_factor.max(1.0)).max(1e-6);
        self.op_latency + SimDuration::from_secs_f64(per_node / (bw * 1024.0 * 1024.0))
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoredObject<T> {
    payload: T,
    bytes: u64,
    written_at: SimTime,
}

/// A durable, revocation-proof keyed object store.
///
/// Payloads are arbitrary (`T`); the store separately tracks each object's
/// *virtual* size in bytes, which may be scaled up from the in-process
/// payload to represent paper-scale datasets.
///
/// The store integrates byte-hours so EBS-style $/GB-month charges can be
/// computed exactly even as checkpoints are garbage-collected.
#[derive(Debug, Clone)]
pub struct DurableStore<T> {
    cfg: StorageConfig,
    objects: BTreeMap<String, StoredObject<T>>,
    total_bytes: u64,
    peak_bytes: u64,
    /// Integral of stored bytes over time, in byte-milliseconds.
    byte_ms_integral: f64,
    last_update: SimTime,
    /// Cumulative bytes ever written (for reporting write amplification).
    bytes_written: u64,
}

impl<T> DurableStore<T> {
    /// Creates an empty store with the given bandwidth model.
    pub fn new(cfg: StorageConfig) -> Self {
        DurableStore {
            cfg,
            objects: BTreeMap::new(),
            total_bytes: 0,
            peak_bytes: 0,
            byte_ms_integral: 0.0,
            last_update: SimTime::ZERO,
            bytes_written: 0,
        }
    }

    /// Returns the bandwidth/replication model.
    pub fn config(&self) -> &StorageConfig {
        &self.cfg
    }

    /// Replaces the bandwidth/replication model (for experiments).
    pub fn set_config(&mut self, cfg: StorageConfig) {
        self.cfg = cfg;
    }

    fn integrate_to(&mut self, now: SimTime) {
        if now > self.last_update {
            let dt = (now - self.last_update).as_millis() as f64;
            self.byte_ms_integral += self.total_bytes as f64 * dt;
            self.last_update = now;
        }
    }

    /// Stores `payload` under `key` with a virtual size of `bytes`,
    /// overwriting any previous object.
    pub fn put(&mut self, key: &str, payload: T, bytes: u64, now: SimTime) {
        self.integrate_to(now);
        if let Some(old) = self.objects.remove(key) {
            self.total_bytes -= old.bytes;
        }
        self.objects.insert(
            key.to_string(),
            StoredObject {
                payload,
                bytes,
                written_at: now,
            },
        );
        self.total_bytes += bytes;
        self.bytes_written += bytes;
        self.peak_bytes = self.peak_bytes.max(self.total_bytes);
    }

    /// Returns the payload stored under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&T> {
        self.objects.get(key).map(|o| &o.payload)
    }

    /// Returns the payload stored under `key` mutably, if present.
    ///
    /// In-place payload mutation changes neither the object's recorded
    /// size nor any cost accounting (no write is simulated) — it is for
    /// representation changes that preserve the logical object, such as
    /// re-bucketing a shuffle block.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut T> {
        self.objects.get_mut(key).map(|o| &mut o.payload)
    }

    /// Returns the instant the object under `key` was written, if
    /// present (e.g. for checkpoint-age policies).
    pub fn written_at(&self, key: &str) -> Option<SimTime> {
        self.objects.get(key).map(|o| o.written_at)
    }

    /// Returns an object's virtual size in bytes.
    pub fn size_of(&self, key: &str) -> Option<u64> {
        self.objects.get(key).map(|o| o.bytes)
    }

    /// Returns `true` if `key` is stored.
    pub fn contains(&self, key: &str) -> bool {
        self.objects.contains_key(key)
    }

    /// Deletes the object under `key`, returning `true` if it existed.
    pub fn delete(&mut self, key: &str, now: SimTime) -> bool {
        self.integrate_to(now);
        if let Some(old) = self.objects.remove(key) {
            self.total_bytes -= old.bytes;
            true
        } else {
            false
        }
    }

    /// Deletes every object whose key starts with `prefix`, returning the
    /// number removed. Used by checkpoint garbage collection, which drops
    /// all partitions of an unreachable RDD at once.
    pub fn delete_prefix(&mut self, prefix: &str, now: SimTime) -> usize {
        self.integrate_to(now);
        let doomed: Vec<String> = self
            .objects
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.clone())
            .collect();
        for k in &doomed {
            if let Some(old) = self.objects.remove(k) {
                self.total_bytes -= old.bytes;
            }
        }
        doomed.len()
    }

    /// Returns the keys with a given prefix, in sorted order.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<&str> {
        self.objects
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, _)| k.as_str())
            .collect()
    }

    /// Returns the footprint in virtual bytes of the objects with a
    /// given key prefix — e.g. `"shuffle/"` to measure how much
    /// shuffle data a serverless session is holding in the store.
    pub fn bytes_with_prefix(&self, prefix: &str) -> u64 {
        self.objects
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, o)| o.bytes)
            .sum()
    }

    /// Returns the number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Returns the current footprint in virtual bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Returns the peak footprint in virtual bytes.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Returns the cumulative bytes ever written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Computes the EBS bill for holding the store's contents up to
    /// `until`, from the exact byte-hour integral.
    ///
    /// The replicated footprint is what occupies the volumes, so the
    /// integral is multiplied by the replication factor.
    pub fn storage_cost(&mut self, ebs: &EbsCostModel, until: SimTime) -> f64 {
        self.integrate_to(until);
        let gb_ms = self.byte_ms_integral / 1e9 * self.cfg.replication.max(1) as f64;
        let gb_hours = gb_ms / 3_600_000.0;
        ebs.price_per_gb_month * gb_hours / (24.0 * 30.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_millis(secs * 1000)
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut s: DurableStore<&str> = DurableStore::new(StorageConfig::default());
        s.put("a", "hello", 100, t(0));
        assert_eq!(s.get("a"), Some(&"hello"));
        assert_eq!(s.size_of("a"), Some(100));
        assert!(s.delete("a", t(1)));
        assert!(!s.delete("a", t(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn overwrite_replaces_bytes() {
        let mut s: DurableStore<u32> = DurableStore::new(StorageConfig::default());
        s.put("k", 1, 100, t(0));
        s.put("k", 2, 300, t(1));
        assert_eq!(s.total_bytes(), 300);
        assert_eq!(s.get("k"), Some(&2));
        assert_eq!(s.bytes_written(), 400);
        assert_eq!(s.peak_bytes(), 300);
    }

    #[test]
    fn prefix_operations() {
        let mut s: DurableStore<u32> = DurableStore::new(StorageConfig::default());
        s.put("rdd-1/part-0", 0, 10, t(0));
        s.put("rdd-1/part-1", 1, 10, t(0));
        s.put("rdd-2/part-0", 2, 10, t(0));
        assert_eq!(
            s.keys_with_prefix("rdd-1/"),
            vec!["rdd-1/part-0", "rdd-1/part-1"]
        );
        assert_eq!(s.delete_prefix("rdd-1/", t(1)), 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_bytes(), 10);
    }

    #[test]
    fn bytes_with_prefix_sums_only_matching_objects() {
        let mut s: DurableStore<u32> = DurableStore::new(StorageConfig::default());
        s.put("shuffle/0/0", 0, 100, t(0));
        s.put("shuffle/0/1", 1, 250, t(0));
        s.put("rdd-1/part-0", 2, 999, t(0));
        assert_eq!(s.bytes_with_prefix("shuffle/"), 350);
        assert_eq!(s.bytes_with_prefix("rdd-"), 999);
        assert_eq!(s.bytes_with_prefix("nope/"), 0);
        assert_eq!(
            s.bytes_with_prefix(""),
            s.total_bytes(),
            "the empty prefix covers everything"
        );
    }

    #[test]
    fn write_time_scales_with_bytes_and_parallelism() {
        let cfg = StorageConfig::default();
        let small = cfg.write_time(1 << 20, 1);
        let big = cfg.write_time(100 << 20, 1);
        assert!(big > small);
        let parallel = cfg.write_time(100 << 20, 10);
        assert!(parallel < big);
        // 10x parallelism ~ 10x faster (minus latency floor).
        let serial_s = big.as_secs_f64() - cfg.op_latency.as_secs_f64();
        let par_s = parallel.as_secs_f64() - cfg.op_latency.as_secs_f64();
        assert!((serial_s / par_s - 10.0).abs() < 0.1);
    }

    #[test]
    fn replication_adds_mild_pipeline_overhead_to_writes_only() {
        let r1 = StorageConfig {
            replication: 1,
            ..StorageConfig::default()
        };
        let r3 = StorageConfig {
            replication: 3,
            ..StorageConfig::default()
        };
        let w1 = r1.write_time(100 << 20, 1).as_secs_f64();
        let w3 = r3.write_time(100 << 20, 1).as_secs_f64();
        // Pipelined: slightly slower, far from 3x.
        assert!(w3 > w1);
        assert!(
            w3 < 1.5 * w1,
            "pipelined replication must not triple writes"
        );
        assert_eq!(r3.read_time(10 << 20, 1), r1.read_time(10 << 20, 1));
    }

    #[test]
    fn cross_zone_slows_io() {
        let near = StorageConfig::default();
        let far = StorageConfig {
            cross_zone_factor: 2.0,
            ..StorageConfig::default()
        };
        assert!(far.write_time(50 << 20, 4) > near.write_time(50 << 20, 4));
    }

    #[test]
    fn storage_cost_integrates_over_time() {
        let mut s: DurableStore<()> = DurableStore::new(StorageConfig {
            replication: 1,
            ..StorageConfig::default()
        });
        let ebs = EbsCostModel {
            price_per_gb_month: 0.10,
        };
        // 1 GB held for 30 days = $0.10.
        s.put("k", (), 1_000_000_000, SimTime::ZERO);
        let until = SimTime::ZERO + SimDuration::from_days(30);
        let cost = s.storage_cost(&ebs, until);
        assert!((cost - 0.10).abs() < 1e-6, "cost {cost}");
    }

    #[test]
    fn gc_reduces_future_cost() {
        let cfg = StorageConfig {
            replication: 1,
            ..StorageConfig::default()
        };
        let ebs = EbsCostModel {
            price_per_gb_month: 0.10,
        };
        let gb = 1_000_000_000;
        let month = SimDuration::from_days(30);

        let mut kept: DurableStore<()> = DurableStore::new(cfg);
        kept.put("k", (), gb, SimTime::ZERO);
        let kept_cost = kept.storage_cost(&ebs, SimTime::ZERO + month);

        let mut gced: DurableStore<()> = DurableStore::new(cfg);
        gced.put("k", (), gb, SimTime::ZERO);
        gced.delete("k", SimTime::ZERO + SimDuration::from_days(15));
        let gced_cost = gced.storage_cost(&ebs, SimTime::ZERO + month);

        assert!((gced_cost - kept_cost / 2.0).abs() < 1e-6);
    }

    #[test]
    fn replication_amplifies_storage_cost() {
        let ebs = EbsCostModel {
            price_per_gb_month: 0.10,
        };
        let gb = 1_000_000_000;
        let month = SimDuration::from_days(30);
        let mut r3: DurableStore<()> = DurableStore::new(StorageConfig::default());
        r3.put("k", (), gb, SimTime::ZERO);
        let c = r3.storage_cost(&ebs, SimTime::ZERO + month);
        assert!(
            (c - 0.30).abs() < 1e-6,
            "3-way replication triples cost, got {c}"
        );
    }
}
