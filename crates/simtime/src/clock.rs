//! A monotonically advancing virtual clock.

use crate::{SimDuration, SimTime};

/// A virtual clock that only moves forward.
///
/// The clock is deliberately minimal: components that need to *wait* do so
/// by scheduling events on an [`crate::EventQueue`] and advancing the clock
/// to each event's timestamp as it is popped.
///
/// # Examples
///
/// ```
/// use flint_simtime::{Clock, SimDuration};
///
/// let mut clock = Clock::new();
/// clock.advance(SimDuration::from_mins(2));
/// assert_eq!(clock.now().since_epoch(), SimDuration::from_mins(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// Creates a clock positioned at the simulation epoch.
    pub fn new() -> Self {
        Clock { now: SimTime::ZERO }
    }

    /// Creates a clock positioned at `start`.
    pub fn starting_at(start: SimTime) -> Self {
        Clock { now: start }
    }

    /// Returns the current virtual instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Moves the clock to `t`.
    ///
    /// Moving to an instant in the past is a no-op: the clock is monotonic,
    /// which keeps event processing robust against ties and stale events.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let mut c = Clock::new();
        c.advance_to(SimTime::from_millis(100));
        c.advance_to(SimTime::from_millis(50));
        assert_eq!(c.now(), SimTime::from_millis(100));
    }

    #[test]
    fn advance_accumulates() {
        let mut c = Clock::starting_at(SimTime::from_millis(10));
        c.advance(SimDuration::from_millis(15));
        c.advance(SimDuration::from_millis(5));
        assert_eq!(c.now(), SimTime::from_millis(30));
    }
}
