//! Virtual time primitives for the Flint transient-server simulator.
//!
//! Every component of the Flint reproduction — the spot-market simulator,
//! the data-parallel engine, and the policy layer — measures time with the
//! types in this crate rather than the wall clock. This makes hour- and
//! month-scale experiments run in milliseconds and, because all randomness
//! is routed through explicitly seeded generators (see [`rng`]), makes
//! every experiment reproducible bit-for-bit.
//!
//! The crate provides:
//!
//! * [`SimTime`] / [`SimDuration`] — millisecond-resolution instants and
//!   spans with saturating arithmetic and human-oriented constructors
//!   (`SimDuration::from_hours(50)`).
//! * [`Clock`] — a monotonically advancing virtual clock.
//! * [`EventQueue`] — a deterministic priority queue of timed events with
//!   stable FIFO ordering for simultaneous events.
//! * [`rng`] — helpers for deriving independent, named sub-streams from a
//!   single experiment seed.
//!
//! # Examples
//!
//! ```
//! use flint_simtime::{Clock, EventQueue, SimDuration, SimTime};
//!
//! let mut clock = Clock::new();
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_secs(30), "warning");
//! queue.schedule(SimTime::ZERO + SimDuration::from_secs(120), "revocation");
//!
//! let (t, event) = queue.pop().unwrap();
//! clock.advance_to(t);
//! assert_eq!(event, "warning");
//! assert_eq!(clock.now().as_secs_f64(), 30.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod events;
pub mod rng;
mod time;

pub use clock::Clock;
pub use events::EventQueue;
pub use time::{SimDuration, SimTime};
