//! A deterministic timed event queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::SimTime;

/// A priority queue of `(SimTime, E)` pairs popped in timestamp order.
///
/// Events scheduled for the same instant are popped in the order they were
/// scheduled (stable FIFO), which keeps simulations deterministic without
/// requiring `E: Ord`.
///
/// # Examples
///
/// ```
/// use flint_simtime::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(10), "b");
/// q.schedule(SimTime::from_millis(5), "a");
/// q.schedule(SimTime::from_millis(10), "c");
///
/// assert_eq!(q.pop(), Some((SimTime::from_millis(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at instant `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Returns the timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Removes and returns the earliest event only if it fires at or before
    /// `deadline`.
    pub fn pop_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (t, e) in [(30u64, 3), (10, 1), (20, 2)] {
            q.schedule(SimTime::from_millis(t), e);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for e in 0..100 {
            q.schedule(SimTime::from_millis(7), e);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_before_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "early");
        q.schedule(SimTime::from_millis(100), "late");
        assert_eq!(
            q.pop_before(SimTime::from_millis(50)),
            Some((SimTime::from_millis(10), "early"))
        );
        assert_eq!(q.pop_before(SimTime::from_millis(50)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
