//! Deterministic randomness helpers.
//!
//! Every experiment in the Flint reproduction is driven by a single `u64`
//! seed. Components derive independent sub-streams from that seed with
//! [`derive_seed`], so adding a new consumer of randomness never perturbs
//! the streams seen by existing components (a common source of accidental
//! non-reproducibility in simulators).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives a child seed from `(parent, label)`.
///
/// The derivation is a fixed FNV-1a-style hash — stable across platforms,
/// Rust versions, and process runs, unlike `std::hash`.
///
/// # Examples
///
/// ```
/// use flint_simtime::rng::derive_seed;
///
/// let a = derive_seed(42, "market:us-east-1a.m3.2xlarge");
/// let b = derive_seed(42, "market:us-east-1b.m3.2xlarge");
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, "market:us-east-1a.m3.2xlarge"));
/// ```
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET ^ parent.rotate_left(17);
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finalizer) so nearby labels diverge fully.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^ (h >> 31)
}

/// Creates a [`StdRng`] for the sub-stream `(parent, label)`.
///
/// # Examples
///
/// ```
/// use flint_simtime::rng::stream;
/// use rand::Rng;
///
/// let mut r1 = stream(7, "workload");
/// let mut r2 = stream(7, "workload");
/// assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
/// ```
pub fn stream(parent: u64, label: &str) -> StdRng {
    StdRng::seed_from_u64(derive_seed(parent, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derivation_is_stable() {
        // Pinned value: changing the derivation silently breaks every
        // recorded experiment, so lock it with a golden assertion.
        assert_eq!(derive_seed(0, ""), derive_seed(0, ""));
        let v = derive_seed(123, "abc");
        assert_eq!(v, derive_seed(123, "abc"));
        assert_ne!(v, derive_seed(124, "abc"));
        assert_ne!(v, derive_seed(123, "abd"));
    }

    #[test]
    fn streams_are_independent() {
        let mut a = stream(1, "a");
        let mut b = stream(1, "b");
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn similar_labels_diverge() {
        let a = derive_seed(9, "market:0");
        let b = derive_seed(9, "market:1");
        // The avalanche step should flip roughly half the bits.
        assert!((a ^ b).count_ones() > 10);
    }
}
