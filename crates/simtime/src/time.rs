//! Millisecond-resolution virtual instants and durations.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of virtual time with millisecond resolution.
///
/// Arithmetic saturates instead of overflowing: the simulator treats
/// `SimDuration::MAX` as "effectively forever" (for example, the MTTF of an
/// on-demand server that is never revoked).
///
/// # Examples
///
/// ```
/// use flint_simtime::SimDuration;
///
/// let tau = SimDuration::from_hours(2) + SimDuration::from_mins(30);
/// assert_eq!(tau.as_secs_f64(), 9000.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration; used as "never" / "infinite".
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs.saturating_mul(1_000))
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins.saturating_mul(60_000))
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours.saturating_mul(3_600_000))
    }

    /// Creates a duration from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days.saturating_mul(86_400_000))
    }

    /// Creates a duration from fractional seconds, rounding to milliseconds.
    ///
    /// Negative or non-finite inputs clamp to zero; values beyond the
    /// representable range clamp to [`SimDuration::MAX`].
    pub fn from_secs_f64(secs: f64) -> Self {
        Self::from_hours_f64(secs / 3600.0)
    }

    /// Creates a duration from fractional hours, rounding to milliseconds.
    ///
    /// Negative or non-finite inputs clamp to zero; values beyond the
    /// representable range clamp to [`SimDuration::MAX`].
    pub fn from_hours_f64(hours: f64) -> Self {
        if !hours.is_finite() || hours <= 0.0 {
            if hours.is_infinite() && hours > 0.0 {
                return SimDuration::MAX;
            }
            return SimDuration::ZERO;
        }
        let ms = hours * 3_600_000.0;
        if ms >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ms.round() as u64)
        }
    }

    /// Returns the duration in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Returns `true` if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Multiplies the duration by a non-negative factor, saturating.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor.max(0.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == SimDuration::MAX {
            return write!(f, "inf");
        }
        let ms = self.0;
        if ms < 1_000 {
            write!(f, "{}ms", ms)
        } else if ms < 60_000 {
            write!(f, "{:.2}s", self.as_secs_f64())
        } else if ms < 3_600_000 {
            write!(f, "{:.2}min", ms as f64 / 60_000.0)
        } else {
            write!(f, "{:.2}h", self.as_hours_f64())
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// An instant on the virtual timeline, measured from the simulation epoch.
///
/// # Examples
///
/// ```
/// use flint_simtime::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_hours(1);
/// assert_eq!(t.since_epoch().as_hours_f64(), 1.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The end of virtual time; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ms` milliseconds after the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from fractional hours after the epoch.
    pub fn from_hours_f64(hours: f64) -> Self {
        SimTime(SimDuration::from_hours_f64(hours).as_millis())
    }

    /// Returns the elapsed time since the epoch.
    pub const fn since_epoch(self) -> SimDuration {
        SimDuration(self.0)
    }

    /// Returns the instant in whole milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Returns the instant in fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the instant in fractional hours since the epoch.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000.0
    }

    /// Returns the duration from `earlier` to `self`, or zero if `earlier`
    /// is in the future.
    pub const fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating subtraction of a duration.
    pub const fn saturating_sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(d.as_millis()))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_millis()))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_mins(1), SimDuration::from_secs(60));
        assert_eq!(SimDuration::from_hours(1), SimDuration::from_mins(60));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
    }

    #[test]
    fn fractional_conversions_round_trip() {
        let d = SimDuration::from_secs_f64(12.345);
        assert!((d.as_secs_f64() - 12.345).abs() < 1e-3);
        let h = SimDuration::from_hours_f64(2.5);
        assert!((h.as_hours_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn negative_and_nan_durations_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-5.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
    }

    #[test]
    fn saturating_arithmetic() {
        assert_eq!(
            SimDuration::from_secs(1) - SimDuration::from_secs(5),
            SimDuration::ZERO
        );
        assert_eq!(
            SimDuration::MAX + SimDuration::from_secs(1),
            SimDuration::MAX
        );
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
    }

    #[test]
    fn instant_duration_algebra() {
        let t0 = SimTime::from_millis(500);
        let t1 = t0 + SimDuration::from_secs(2);
        assert_eq!(t1 - t0, SimDuration::from_secs(2));
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_millis(12).to_string(), "12ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.00s");
        assert_eq!(SimDuration::from_mins(5).to_string(), "5.00min");
        assert_eq!(SimDuration::from_hours(2).to_string(), "2.00h");
        assert_eq!(SimDuration::MAX.to_string(), "inf");
    }

    #[test]
    fn div_by_zero_is_safe() {
        assert_eq!(SimDuration::from_secs(10) / 0, SimDuration::from_secs(10));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
