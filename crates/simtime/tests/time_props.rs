//! Property tests of the virtual-time algebra.

use flint_simtime::{EventQueue, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Duration addition is commutative and associative (with saturation).
    #[test]
    fn duration_addition_laws(a in 0u64..1u64<<40, b in 0u64..1u64<<40, c in 0u64..1u64<<40) {
        let (a, b, c) = (
            SimDuration::from_millis(a),
            SimDuration::from_millis(b),
            SimDuration::from_millis(c),
        );
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + SimDuration::ZERO, a);
    }

    /// Instant/duration algebra round-trips: (t + d) - t == d and
    /// (t + d) - d == t.
    #[test]
    fn instant_round_trip(t in 0u64..1u64<<40, d in 0u64..1u64<<40) {
        let t = SimTime::from_millis(t);
        let d = SimDuration::from_millis(d);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
    }

    /// Subtraction saturates at zero: never panics, never wraps.
    #[test]
    fn saturating_subtraction(a in 0u64..1u64<<40, b in 0u64..1u64<<40) {
        let (da, db) = (SimDuration::from_millis(a), SimDuration::from_millis(b));
        let diff = da - db;
        if a >= b {
            prop_assert_eq!(diff.as_millis(), a - b);
        } else {
            prop_assert_eq!(diff, SimDuration::ZERO);
        }
    }

    /// Fractional-hours conversion round-trips within a millisecond.
    #[test]
    fn hours_round_trip(h in 0.0f64..100_000.0) {
        let d = SimDuration::from_hours_f64(h);
        prop_assert!((d.as_hours_f64() - h).abs() < 1.0 / 3_600_000.0 + 1e-9);
    }

    /// The event queue pops every scheduled event exactly once, in
    /// non-decreasing time order with FIFO ties.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1000, 0..50)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(*t), i);
        }
        let mut popped = Vec::new();
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "ties must pop in schedule order");
                }
            }
            last = Some((t, i));
            popped.push(i);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }
}
