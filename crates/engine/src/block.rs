//! Per-worker block management: memory cache, disk spill, hard loss.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use crate::column::ColumnBatch;
use crate::rdd::{PartitionData, RddId};
use crate::shuffle::{BucketedBlock, ShuffleId};
use crate::WorkerId;

/// Key of a cached block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockKey {
    /// A materialized RDD partition.
    RddPart {
        /// The RDD.
        rdd: RddId,
        /// The partition index.
        part: u32,
    },
    /// The map-side output of a shuffle for one map partition.
    ShuffleMap {
        /// The shuffle.
        shuffle: ShuffleId,
        /// The map partition index.
        map_part: u32,
    },
}

impl std::fmt::Display for BlockKey {
    /// Compact label used in trace events: `rdd(3:1)` / `shuffle(2:0)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockKey::RddPart { rdd, part } => write!(f, "rdd({}:{})", rdd.0, part),
            BlockKey::ShuffleMap { shuffle, map_part } => {
                write!(f, "shuffle({}:{})", shuffle.0, map_part)
            }
        }
    }
}

/// The payload of a cached or checkpointed block.
///
/// RDD partitions are `Flat` or — when the columnar path encoded them —
/// `Columnar`, the same record sequence as typed column vectors.
/// Shuffle map outputs start `Flat` and become `Bucketed` once their
/// partitioner is known — eagerly for hash shuffles, lazily (at the
/// barrier, when the [`RangePartitioner`] resolves) for range shuffles.
/// All forms hold the same record multiset, so payload-byte and
/// wire-size accounting are identical; only the access path differs.
///
/// [`RangePartitioner`]: crate::shuffle::RangePartitioner
#[derive(Debug, Clone)]
pub enum BlockData {
    /// Records in production order (RDD partitions, unresolved-range
    /// shuffle map outputs).
    Flat(PartitionData),
    /// A shuffle map output pre-partitioned into reduce buckets.
    Bucketed(Arc<BucketedBlock>),
    /// An RDD partition in columnar form: the identical record sequence
    /// stored as typed column vectors (see [`ColumnBatch`]).
    Columnar(Arc<ColumnBatch>),
}

impl BlockData {
    /// The flat partition payload, or `None` for other forms.
    pub fn flat(&self) -> Option<&PartitionData> {
        match self {
            BlockData::Flat(d) => Some(d),
            BlockData::Bucketed(_) | BlockData::Columnar(_) => None,
        }
    }

    /// The bucketed payload, or `None` for other forms.
    pub fn bucketed(&self) -> Option<&Arc<BucketedBlock>> {
        match self {
            BlockData::Bucketed(b) => Some(b),
            BlockData::Flat(_) | BlockData::Columnar(_) => None,
        }
    }

    /// The columnar payload, or `None` for other forms.
    pub fn columnar(&self) -> Option<&Arc<ColumnBatch>> {
        match self {
            BlockData::Columnar(b) => Some(b),
            BlockData::Flat(_) | BlockData::Bucketed(_) => None,
        }
    }

    /// The record sequence regardless of form: `Flat` hands out its
    /// payload for a refcount bump, `Columnar` decodes (allocating),
    /// and `Bucketed` returns `None` (buckets reorder records, so there
    /// is no single production-order view).
    pub fn rows(&self) -> Option<PartitionData> {
        match self {
            BlockData::Flat(d) => Some(Arc::clone(d)),
            BlockData::Columnar(b) => Some(Arc::new(b.to_rows())),
            BlockData::Bucketed(_) => None,
        }
    }

    /// Record count (identical across forms).
    pub fn len(&self) -> usize {
        match self {
            BlockData::Flat(d) => d.len(),
            BlockData::Bucketed(b) => b.len(),
            BlockData::Columnar(b) => b.len(),
        }
    }

    /// `true` when the block holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Payload bytes: the sum of every record's
    /// [`size_bytes`](crate::Value::size_bytes), identical across forms
    /// (bucketing reorders records and columnar re-lays them out;
    /// neither changes the multiset or the size formula).
    pub fn payload_bytes(&self) -> u64 {
        match self {
            BlockData::Flat(d) => d.iter().map(crate::Value::size_bytes).sum(),
            BlockData::Bucketed(b) => b.payload_bytes(),
            BlockData::Columnar(b) => b.payload_bytes(),
        }
    }

    /// Byte-exact serialized checkpoint size: the same framing walk as
    /// [`crate::checkpoint::wire_size`] (8-byte count plus a 4-byte
    /// frame per record), order- and form-independent.
    pub fn wire_size(&self) -> u64 {
        match self {
            BlockData::Flat(d) => crate::checkpoint::wire_size(d),
            BlockData::Bucketed(b) => 8 + b.payload_bytes() + 4 * b.len() as u64,
            BlockData::Columnar(b) => 8 + b.payload_bytes() + 4 * b.len() as u64,
        }
    }
}

impl From<PartitionData> for BlockData {
    fn from(d: PartitionData) -> Self {
        BlockData::Flat(d)
    }
}

impl From<Arc<BucketedBlock>> for BlockData {
    fn from(b: Arc<BucketedBlock>) -> Self {
        BlockData::Bucketed(b)
    }
}

impl From<Arc<ColumnBatch>> for BlockData {
    fn from(b: Arc<ColumnBatch>) -> Self {
        BlockData::Columnar(b)
    }
}

/// What one [`BlockManager::insert_traced`] call did to the cache:
/// which victims it displaced and whether the new block found a home.
/// The driver folds this into `CacheInsert`/`CacheSpill`/`CacheEvict`
/// trace events.
#[derive(Debug, Default, Clone)]
pub struct InsertOutcome {
    /// The inserted block was stored (memory or disk).
    pub stored: bool,
    /// `(victim, vbytes)` demoted memory → disk to make room.
    pub spilled: Vec<(BlockKey, u64)>,
    /// `(victim, vbytes)` dropped entirely (includes the inserted block
    /// itself when nothing could hold it).
    pub dropped: Vec<(BlockKey, u64)>,
}

/// Where a block currently lives on a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockLocation {
    /// In the worker's memory cache.
    Memory,
    /// Spilled to the worker's local disk.
    Disk,
}

#[derive(Debug, Clone)]
struct Block {
    data: BlockData,
    vbytes: u64,
    last_use: u64,
}

/// One storage tier (memory or disk): the block map plus an ordered
/// `(last_use, key)` index kept in exact sync with it, so the LRU victim
/// is an O(log n) `first()` lookup instead of a full map scan. Stamps
/// come from the manager's global clock and are unique, but the index
/// orders by `(last_use, key)` anyway — the same tie-break the old
/// linear `min_by_key` scan used, so eviction victims are identical.
#[derive(Debug, Clone, Default)]
struct Tier {
    map: HashMap<BlockKey, Block>,
    lru: BTreeSet<(u64, BlockKey)>,
    used: u64,
}

impl Tier {
    fn insert(&mut self, key: BlockKey, b: Block) {
        debug_assert!(!self.map.contains_key(&key), "caller removes first");
        self.lru.insert((b.last_use, key));
        self.used += b.vbytes;
        self.map.insert(key, b);
    }

    fn remove(&mut self, key: &BlockKey) -> Option<Block> {
        let b = self.map.remove(key)?;
        self.lru.remove(&(b.last_use, *key));
        self.used -= b.vbytes;
        Some(b)
    }

    /// Re-stamps `key` to `lu`, keeping the index in sync. Returns
    /// `true` if the block exists in this tier.
    fn touch(&mut self, key: &BlockKey, lu: u64) -> bool {
        let Some(b) = self.map.get_mut(key) else {
            return false;
        };
        self.lru.remove(&(b.last_use, *key));
        b.last_use = lu;
        self.lru.insert((lu, *key));
        true
    }

    /// The least-recently-used block: minimum `(last_use, key)`.
    fn lru_key(&self) -> Option<BlockKey> {
        self.lru.first().map(|(_, k)| *k)
    }

    fn clear(&mut self) {
        self.map.clear();
        self.lru.clear();
        self.used = 0;
    }
}

/// A single worker's block store: an LRU memory cache backed by local
/// disk, both of which vanish when the worker is revoked.
///
/// Capacities are in *virtual* bytes (real payload bytes × the cost
/// model's scale factor), so a scaled-down in-process dataset exerts
/// paper-scale memory pressure — this is what reproduces Figure 3.
#[derive(Debug, Clone)]
pub struct BlockManager {
    mem: Tier,
    disk: Tier,
    mem_capacity: u64,
    disk_capacity: u64,
    clock: u64,
    /// Cumulative virtual bytes spilled memory→disk.
    pub spilled_bytes: u64,
    /// Cumulative virtual bytes dropped entirely (cache + disk full).
    pub dropped_bytes: u64,
}

impl BlockManager {
    /// Creates a block manager with the given virtual capacities.
    pub fn new(mem_capacity: u64, disk_capacity: u64) -> Self {
        BlockManager {
            mem: Tier::default(),
            disk: Tier::default(),
            mem_capacity,
            disk_capacity,
            clock: 0,
            spilled_bytes: 0,
            dropped_bytes: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Inserts a block, evicting LRU blocks to disk (and dropping from
    /// disk) as needed. Returns `false` if the block itself could not be
    /// stored anywhere.
    pub fn insert(&mut self, key: BlockKey, data: impl Into<BlockData>, vbytes: u64) -> bool {
        self.insert_traced(key, data, vbytes).stored
    }

    /// [`BlockManager::insert`] with a full account of the cache churn
    /// it caused, so callers can trace spills and evictions.
    pub fn insert_traced(
        &mut self,
        key: BlockKey,
        data: impl Into<BlockData>,
        vbytes: u64,
    ) -> InsertOutcome {
        let data = data.into();
        let mut outcome = InsertOutcome::default();
        // Refuse pathological single blocks bigger than both tiers.
        if vbytes > self.mem_capacity && vbytes > self.disk_capacity {
            self.dropped_bytes += vbytes;
            outcome.dropped.push((key, vbytes));
            return outcome;
        }
        self.remove(&key);
        let lu = self.tick();
        if vbytes <= self.mem_capacity {
            while self.mem.used + vbytes > self.mem_capacity {
                if !self.evict_one_to_disk(&mut outcome) {
                    break;
                }
            }
            if self.mem.used + vbytes <= self.mem_capacity {
                self.mem.insert(
                    key,
                    Block {
                        data,
                        vbytes,
                        last_use: lu,
                    },
                );
                outcome.stored = true;
                return outcome;
            }
        }
        // Fall back to disk.
        outcome.stored = self.store_on_disk(key, data, vbytes, &mut outcome.dropped);
        outcome
    }

    fn store_on_disk(
        &mut self,
        key: BlockKey,
        data: BlockData,
        vbytes: u64,
        dropped: &mut Vec<(BlockKey, u64)>,
    ) -> bool {
        if vbytes > self.disk_capacity {
            self.dropped_bytes += vbytes;
            dropped.push((key, vbytes));
            return false;
        }
        while self.disk.used + vbytes > self.disk_capacity {
            if let Some(victim) = self.disk.lru_key() {
                if let Some(b) = self.disk.remove(&victim) {
                    self.dropped_bytes += b.vbytes;
                    dropped.push((victim, b.vbytes));
                }
            } else {
                break;
            }
        }
        if self.disk.used + vbytes > self.disk_capacity {
            self.dropped_bytes += vbytes;
            dropped.push((key, vbytes));
            return false;
        }
        let lu = self.tick();
        self.disk.insert(
            key,
            Block {
                data,
                vbytes,
                last_use: lu,
            },
        );
        true
    }

    /// Evicts the least-recently-used memory block to disk. Returns
    /// `false` when memory is already empty.
    fn evict_one_to_disk(&mut self, outcome: &mut InsertOutcome) -> bool {
        let Some(victim) = self.mem.lru_key() else {
            return false;
        };
        let b = self.mem.remove(&victim).expect("victim exists");
        self.spilled_bytes += b.vbytes;
        outcome.spilled.push((victim, b.vbytes));
        let _ = self.store_on_disk(victim, b.data, b.vbytes, &mut outcome.dropped);
        true
    }

    /// Looks up a block, touching its LRU stamp. Disk hits are *not*
    /// promoted automatically; the caller charges the disk-read time and
    /// may re-insert.
    pub fn get(&mut self, key: &BlockKey) -> Option<(BlockData, BlockLocation, u64)> {
        let lu = self.tick();
        if self.mem.touch(key, lu) {
            let b = &self.mem.map[key];
            return Some((b.data.clone(), BlockLocation::Memory, b.vbytes));
        }
        if self.disk.touch(key, lu) {
            let b = &self.disk.map[key];
            return Some((b.data.clone(), BlockLocation::Disk, b.vbytes));
        }
        None
    }

    /// Looks up a block's data without touching LRU state.
    ///
    /// This is the read half of [`BlockManager::get`], split out so the
    /// parallel wave executor can read a consistent snapshot from many
    /// host threads (`&self`) and replay the LRU bumps later, in
    /// deterministic task order, via [`BlockManager::touch`].
    pub fn peek_data(&self, key: &BlockKey) -> Option<(BlockData, BlockLocation, u64)> {
        if let Some(b) = self.mem.map.get(key) {
            return Some((b.data.clone(), BlockLocation::Memory, b.vbytes));
        }
        if let Some(b) = self.disk.map.get(key) {
            return Some((b.data.clone(), BlockLocation::Disk, b.vbytes));
        }
        None
    }

    /// Bumps a block's LRU stamp without reading its data — the write
    /// half of [`BlockManager::get`]. Returns `true` if the block exists.
    pub fn touch(&mut self, key: &BlockKey) -> bool {
        let lu = self.tick();
        self.mem.touch(key, lu) || self.disk.touch(key, lu)
    }

    /// Replaces a block's payload in place, without touching its LRU
    /// stamp, virtual size, or the eviction clock. `f` returns `None` to
    /// leave the payload untouched (already in the target form), which
    /// skips the write entirely instead of re-cloning the block.
    ///
    /// This is the lazy-bucketing hook: when a range shuffle's
    /// partitioner resolves at the barrier, the driver converts that
    /// shuffle's resident map blocks from [`BlockData::Flat`] to
    /// [`BlockData::Bucketed`]. The conversion preserves the record
    /// multiset and all accounting, so cache behavior (LRU order,
    /// spills, drops) is bit-identical to a run that never converted.
    pub fn replace_payload(
        &mut self,
        key: &BlockKey,
        f: impl FnOnce(&BlockData) -> Option<BlockData>,
    ) {
        if let Some(b) = self.mem.map.get_mut(key) {
            if let Some(new) = f(&b.data) {
                b.data = new;
            }
        } else if let Some(b) = self.disk.map.get_mut(key) {
            if let Some(new) = f(&b.data) {
                b.data = new;
            }
        }
    }

    /// Returns the location of a block without touching LRU state.
    pub fn peek(&self, key: &BlockKey) -> Option<(BlockLocation, u64)> {
        if let Some(b) = self.mem.map.get(key) {
            return Some((BlockLocation::Memory, b.vbytes));
        }
        if let Some(b) = self.disk.map.get(key) {
            return Some((BlockLocation::Disk, b.vbytes));
        }
        None
    }

    /// Removes a block from both tiers, returning `true` if it existed.
    pub fn remove(&mut self, key: &BlockKey) -> bool {
        let in_mem = self.mem.remove(key).is_some();
        let on_disk = self.disk.remove(key).is_some();
        in_mem || on_disk
    }

    /// Returns all keys currently held (memory then disk, unordered).
    pub fn keys(&self) -> Vec<BlockKey> {
        self.mem
            .map
            .keys()
            .chain(self.disk.map.keys())
            .copied()
            .collect()
    }

    /// Virtual bytes resident in memory.
    pub fn mem_used(&self) -> u64 {
        self.mem.used
    }

    /// Virtual bytes resident on disk.
    pub fn disk_used(&self) -> u64 {
        self.disk.used
    }

    /// Memory capacity in virtual bytes.
    pub fn mem_capacity(&self) -> u64 {
        self.mem_capacity
    }

    /// Drops every block (worker revoked).
    pub fn clear(&mut self) {
        self.mem.clear();
        self.disk.clear();
    }
}

/// A cluster-wide summary of cached blocks, used by baselines (e.g.
/// systems-level checkpointing must write *all* worker state) and by
/// diagnostics.
#[derive(Debug, Clone)]
pub struct BlockStoreSnapshot {
    /// Virtual bytes in memory across alive workers.
    pub mem_bytes: u64,
    /// Virtual bytes on disk across alive workers.
    pub disk_bytes: u64,
    /// `(worker, key, vbytes)` for every resident block.
    pub blocks: Vec<(WorkerId, BlockKey, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;
    use std::sync::Arc;

    fn data(n: usize) -> PartitionData {
        Arc::new(vec![Value::Int(0); n])
    }

    fn key(i: u32) -> BlockKey {
        BlockKey::RddPart {
            rdd: RddId(0),
            part: i,
        }
    }

    #[test]
    fn insert_and_get() {
        let mut bm = BlockManager::new(1000, 1000);
        assert!(bm.insert(key(0), data(1), 100));
        let (_, loc, bytes) = bm.get(&key(0)).unwrap();
        assert_eq!(loc, BlockLocation::Memory);
        assert_eq!(bytes, 100);
        assert_eq!(bm.mem_used(), 100);
    }

    #[test]
    fn lru_eviction_spills_to_disk() {
        let mut bm = BlockManager::new(250, 1000);
        bm.insert(key(0), data(1), 100);
        bm.insert(key(1), data(1), 100);
        // Touch 0 so 1 becomes LRU.
        let _ = bm.get(&key(0));
        bm.insert(key(2), data(1), 100);
        assert_eq!(bm.peek(&key(1)).unwrap().0, BlockLocation::Disk);
        assert_eq!(bm.peek(&key(0)).unwrap().0, BlockLocation::Memory);
        assert_eq!(bm.spilled_bytes, 100);
    }

    #[test]
    fn disk_overflow_drops_blocks() {
        let mut bm = BlockManager::new(100, 150);
        bm.insert(key(0), data(1), 100);
        bm.insert(key(1), data(1), 100); // spills 0 to disk
        bm.insert(key(2), data(1), 100); // spills 1; disk can't hold both
        let resident = bm.keys().len();
        assert!(resident < 3, "something must have been dropped");
        assert!(bm.dropped_bytes > 0);
    }

    #[test]
    fn oversized_block_rejected() {
        let mut bm = BlockManager::new(100, 100);
        assert!(!bm.insert(key(0), data(1), 500));
        assert!(bm.get(&key(0)).is_none());
        assert_eq!(bm.dropped_bytes, 500);
    }

    #[test]
    fn block_bigger_than_memory_goes_to_disk() {
        let mut bm = BlockManager::new(100, 1000);
        assert!(bm.insert(key(0), data(1), 500));
        assert_eq!(bm.peek(&key(0)).unwrap().0, BlockLocation::Disk);
    }

    #[test]
    fn overwrite_replaces() {
        let mut bm = BlockManager::new(1000, 1000);
        bm.insert(key(0), data(1), 100);
        bm.insert(key(0), data(2), 200);
        assert_eq!(bm.mem_used(), 200);
        let (d, _, _) = bm.get(&key(0)).unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn clear_loses_everything() {
        let mut bm = BlockManager::new(1000, 1000);
        bm.insert(key(0), data(1), 100);
        bm.insert(key(1), data(1), 900); // forces a spill
        bm.clear();
        assert_eq!(bm.mem_used(), 0);
        assert_eq!(bm.disk_used(), 0);
        assert!(bm.keys().is_empty());
    }

    #[test]
    fn peek_data_then_touch_equals_get() {
        // Two managers, same inserts: peek_data + touch must leave the
        // LRU state identical to a plain get.
        let mut a = BlockManager::new(250, 1000);
        let mut b = BlockManager::new(250, 1000);
        for bm in [&mut a, &mut b] {
            bm.insert(key(0), data(1), 100);
            bm.insert(key(1), data(1), 100);
        }
        let (da, loc_a, vb_a) = a.get(&key(0)).unwrap();
        let (db, loc_b, vb_b) = b.peek_data(&key(0)).unwrap();
        assert!(b.touch(&key(0)));
        assert_eq!((da.len(), loc_a, vb_a), (db.len(), loc_b, vb_b));
        // Same eviction victim afterwards (key 1 is LRU in both).
        a.insert(key(2), data(1), 100);
        b.insert(key(2), data(1), 100);
        assert_eq!(a.peek(&key(1)).unwrap().0, BlockLocation::Disk);
        assert_eq!(b.peek(&key(1)).unwrap().0, BlockLocation::Disk);
    }

    #[test]
    fn touch_missing_block_is_noop() {
        let mut bm = BlockManager::new(100, 100);
        assert!(!bm.touch(&key(9)));
        assert!(bm.peek_data(&key(9)).is_none());
    }

    #[test]
    fn remove_returns_presence() {
        let mut bm = BlockManager::new(1000, 1000);
        bm.insert(key(0), data(1), 100);
        assert!(bm.remove(&key(0)));
        assert!(!bm.remove(&key(0)));
        assert_eq!(bm.mem_used(), 0);
    }
}
