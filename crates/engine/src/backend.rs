//! The execution-backend seam: provisioning model, invocation
//! overhead, shuffle-data transport, and billing.
//!
//! The driver's scheduling loop is backend-agnostic: it plans waves,
//! admits tasks onto cluster cores, and commits effects in `TaskKey`
//! order. Everything that *differs* between running on long-lived
//! transient VMs and running on ephemeral functions is funnelled
//! through the [`Backend`] trait:
//!
//! * **Invocation overhead** — charged at task admission. VMs have
//!   none; serverless tasks pay a seeded cold-start latency when their
//!   function slot's container has gone cold.
//! * **Shuffle transport** — where shuffle map outputs live between
//!   stages. VMs keep them in worker memory (the block manager);
//!   serverless materializes them through the durable [`flint_store`]
//!   store, because invocations cannot serve remote reads after they
//!   return.
//! * **Billing** — VMs are billed per instance-hour by the market
//!   layer (`InstanceBilled` events); serverless bills every committed
//!   task per GB-second plus a per-request fee (`InvocationBilled`
//!   events), accumulated here so Σ bills == compute cost *exactly*.
//!
//! [`TransientVmBackend`] is the default and is a guaranteed no-op:
//! every hook returns `None`/zero, draws no randomness, and emits no
//! events, so installing it explicitly is byte-identical to the
//! pre-abstraction engine (the golden-trace gate pins this).

use crate::cluster::WorkerId;
use flint_simtime::{rng, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::BTreeMap;

/// Which execution substrate a backend models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Long-lived transient VMs (spot instances) managed by a node
    /// manager — the paper's setting.
    TransientVm,
    /// Ephemeral per-invocation function slots with cold starts and
    /// per-GB-second billing.
    Serverless,
}

impl BackendKind {
    /// Stable wire name (`"vm"` / `"serverless"`), used in traces and
    /// cost reports.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::TransientVm => "vm",
            BackendKind::Serverless => "serverless",
        }
    }
}

/// Where shuffle map outputs are materialized between stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleTransport {
    /// Map outputs stay in the producing worker's block manager and are
    /// fetched peer-to-peer (the Spark/VM model).
    WorkerMemory,
    /// Map outputs are written to the durable store at commit and read
    /// back from it by reducers (the serverless model — invocations
    /// cannot serve remote reads after returning).
    ExternalStore,
}

/// Returned by [`Backend::on_task_admitted`] when the task counts as a
/// billable invocation.
#[derive(Debug, Clone, Copy)]
pub struct InvocationStart {
    /// Monotone invocation id (1-based, admission order).
    pub invocation: u64,
    /// Cold-start latency in virtual millis (0 for a warm container).
    pub cold_ms: u64,
    /// Startup overhead added to the task's duration (warm or cold).
    pub overhead: SimDuration,
}

/// Returned by [`Backend::on_task_committed`] when the task produced a
/// per-invocation bill.
#[derive(Debug, Clone, Copy)]
pub struct InvocationBill {
    /// The invocation id assigned at admission.
    pub invocation: u64,
    /// GB-seconds consumed: task duration × function memory.
    pub gb_seconds: f64,
    /// Dollars charged: GB-seconds × rate + per-request fee.
    pub cost: f64,
}

/// The executor/cluster seam: how workers are provisioned and billed
/// and how shuffle data moves between stages.
///
/// All hooks run on the driver thread at deterministic points
/// (admission and commit order are both fixed by the wave executor's
/// `TaskKey` ordering), so a backend may consume seeded randomness and
/// still replay byte-identically at any `host_threads` setting.
pub trait Backend {
    /// Which substrate this backend models.
    fn kind(&self) -> BackendKind;

    /// Where shuffle map outputs are materialized.
    fn shuffle_transport(&self) -> ShuffleTransport {
        ShuffleTransport::WorkerMemory
    }

    /// Called once per admitted task, before its duration is fixed.
    /// `start` is the instant the task will begin executing on its
    /// reserved core. Return `Some` to charge startup overhead and
    /// register a billable invocation; the default (VM) registers
    /// nothing.
    fn on_task_admitted(&mut self, _worker: WorkerId, _start: SimTime) -> Option<InvocationStart> {
        None
    }

    /// Called once per committed task (commit order). `invocation` is
    /// the id assigned at admission (0 when admission registered no
    /// invocation). Return `Some` to emit a per-invocation bill.
    fn on_task_committed(
        &mut self,
        _invocation: u64,
        _worker: WorkerId,
        _duration: SimDuration,
        _now: SimTime,
    ) -> Option<InvocationBill> {
        None
    }

    /// Total compute dollars billed so far. VM backends return 0.0 —
    /// their compute cost is owned by the market layer.
    fn compute_cost(&self) -> f64 {
        0.0
    }

    /// Invocations admitted so far.
    fn invocations(&self) -> u64 {
        0
    }

    /// Invocations billed so far. Can trail [`Backend::invocations`]:
    /// billing fires at task commit, and tasks still in flight when the
    /// run's final job completes are admitted but never committed.
    fn invocations_billed(&self) -> u64 {
        0
    }

    /// Σ GB-seconds billed so far.
    fn billed_gb_seconds(&self) -> f64 {
        0.0
    }

    /// Invocations that paid a cold-start penalty. VM backends have no
    /// invocation lifecycle, so the default is 0.
    fn cold_starts(&self) -> u64 {
        0
    }
}

/// The transient-VM backend: today's `Cluster` semantics, unchanged.
///
/// Every hook is an exact no-op — no randomness, no overhead, no
/// events — so a driver carrying this backend is byte-identical to the
/// pre-abstraction engine. Worker lifecycle stays with the
/// [`FailureInjector`](crate::FailureInjector) and billing with the
/// market layer's `InstanceBilled` stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransientVmBackend;

impl Backend for TransientVmBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::TransientVm
    }
}

/// Pricing and latency model for [`ServerlessBackend`].
///
/// Defaults model a Lambda-like offering: 4 GB function slots at
/// $0.0000166667 per GB-second plus $0.0000002 per request, cold
/// starts of 150 ms plus an exponential tail (mean 350 ms), 5 ms warm
/// dispatch, and a 10-minute container keepalive.
#[derive(Debug, Clone)]
pub struct ServerlessConfig {
    /// Function memory per invocation, GB (also sizes the slot's
    /// result cache).
    pub memory_gb: f64,
    /// Dollars per GB-second of invocation time.
    pub price_per_gb_second: f64,
    /// Flat dollars per invocation (request fee).
    pub price_per_invocation: f64,
    /// Deterministic floor of a cold start.
    pub cold_start_base: SimDuration,
    /// Mean of the exponential cold-start tail added to the floor.
    pub cold_start_mean_extra: SimDuration,
    /// Dispatch latency onto an already-warm container.
    pub warm_start: SimDuration,
    /// How long a container stays warm after an invocation starts or
    /// commits on its slot.
    pub keepalive: SimDuration,
    /// On-demand VM price used as the cost-report reference (the
    /// paper's r3.large at $0.175/h), so serverless unit costs stay
    /// comparable to VM unit costs.
    pub on_demand_equiv: f64,
}

impl Default for ServerlessConfig {
    fn default() -> Self {
        ServerlessConfig {
            memory_gb: 4.0,
            price_per_gb_second: 0.000_016_666_7,
            price_per_invocation: 0.000_000_2,
            cold_start_base: SimDuration::from_millis(150),
            cold_start_mean_extra: SimDuration::from_millis(350),
            warm_start: SimDuration::from_millis(5),
            keepalive: SimDuration::from_mins(10),
            on_demand_equiv: 0.175,
        }
    }
}

/// The serverless backend: per-invocation function slots.
///
/// Each cluster worker models one unit of function concurrency (a
/// 1-core slot). A task admitted onto a slot whose container has gone
/// cold — never used, or idle past [`ServerlessConfig::keepalive`] —
/// pays a seeded cold-start latency drawn from the
/// `rng::stream(seed, "serverless:coldstart")` sub-stream; admission
/// order is deterministic, so the draws (and thus the whole trace)
/// replay byte-identically for any `host_threads`. Every committed
/// task is billed duration × memory × rate + request fee, accumulated
/// so that Σ `InvocationBilled` events equals [`Backend::compute_cost`]
/// exactly. Shuffle map outputs travel through the external store.
#[derive(Debug)]
pub struct ServerlessBackend {
    cfg: ServerlessConfig,
    rng: StdRng,
    /// Per-slot warm horizon: the container answers warm to any
    /// invocation starting at or before this instant.
    warm_until: BTreeMap<WorkerId, SimTime>,
    invocations: u64,
    warm_invocations: u64,
    billed: u64,
    cost: f64,
    gb_seconds: f64,
}

impl ServerlessBackend {
    /// Creates a serverless backend; `seed` parents the cold-start
    /// randomness sub-stream.
    pub fn new(cfg: ServerlessConfig, seed: u64) -> Self {
        ServerlessBackend {
            cfg,
            rng: rng::stream(seed, "serverless:coldstart"),
            warm_until: BTreeMap::new(),
            invocations: 0,
            warm_invocations: 0,
            billed: 0,
            cost: 0.0,
            gb_seconds: 0.0,
        }
    }

    /// The pricing / latency model.
    pub fn config(&self) -> &ServerlessConfig {
        &self.cfg
    }
}

impl Backend for ServerlessBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Serverless
    }

    fn shuffle_transport(&self) -> ShuffleTransport {
        ShuffleTransport::ExternalStore
    }

    fn on_task_admitted(&mut self, worker: WorkerId, start: SimTime) -> Option<InvocationStart> {
        self.invocations += 1;
        let warm = self.warm_until.get(&worker).is_some_and(|&t| start <= t);
        let (overhead, cold_ms) = if warm {
            self.warm_invocations += 1;
            (self.cfg.warm_start, 0)
        } else {
            // Cold start: deterministic floor plus an exponential tail
            // drawn from the seeded sub-stream (inverse-CDF transform).
            let u: f64 = self.rng.gen::<f64>();
            let extra = self
                .cfg
                .cold_start_mean_extra
                .mul_f64(-(1.0 - u).max(1e-12).ln());
            let overhead = self.cfg.cold_start_base + extra;
            (overhead, overhead.as_millis())
        };
        // Provisional warm horizon from the invocation's start; commit
        // extends it from the finish instant. Back-to-back tasks queued
        // on the same slot therefore see a warm container as long as
        // each predecessor fits inside the keepalive window.
        let horizon = start + overhead + self.cfg.keepalive;
        let entry = self.warm_until.entry(worker).or_insert(horizon);
        *entry = (*entry).max(horizon);
        Some(InvocationStart {
            invocation: self.invocations,
            cold_ms,
            overhead,
        })
    }

    fn on_task_committed(
        &mut self,
        invocation: u64,
        worker: WorkerId,
        duration: SimDuration,
        now: SimTime,
    ) -> Option<InvocationBill> {
        self.billed += 1;
        let gb_seconds = duration.as_secs_f64() * self.cfg.memory_gb;
        let cost = gb_seconds * self.cfg.price_per_gb_second + self.cfg.price_per_invocation;
        self.gb_seconds += gb_seconds;
        self.cost += cost;
        let horizon = now + self.cfg.keepalive;
        let entry = self.warm_until.entry(worker).or_insert(horizon);
        *entry = (*entry).max(horizon);
        Some(InvocationBill {
            invocation,
            gb_seconds,
            cost,
        })
    }

    fn compute_cost(&self) -> f64 {
        self.cost
    }

    fn invocations(&self) -> u64 {
        self.invocations
    }

    fn invocations_billed(&self) -> u64 {
        self.billed
    }

    fn billed_gb_seconds(&self) -> f64 {
        self.gb_seconds
    }

    fn cold_starts(&self) -> u64 {
        self.invocations - self.warm_invocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_backend_is_a_total_no_op() {
        let mut b = TransientVmBackend;
        assert_eq!(b.kind().name(), "vm");
        assert_eq!(b.shuffle_transport(), ShuffleTransport::WorkerMemory);
        assert!(b.on_task_admitted(WorkerId(1), SimTime::ZERO).is_none());
        assert!(b
            .on_task_committed(0, WorkerId(1), SimDuration::from_secs(1), SimTime::ZERO)
            .is_none());
        assert_eq!(b.compute_cost(), 0.0);
        assert_eq!(b.invocations(), 0);
        assert_eq!(b.billed_gb_seconds(), 0.0);
    }

    #[test]
    fn cold_then_warm_then_cold_after_keepalive() {
        let cfg = ServerlessConfig::default();
        let keepalive = cfg.keepalive;
        let mut b = ServerlessBackend::new(cfg, 7);
        let w = WorkerId(0);
        let first = b.on_task_admitted(w, SimTime::ZERO).unwrap();
        assert!(first.cold_ms >= 150, "first touch must be cold");
        // A task starting immediately after hits the warm container.
        let t1 = SimTime::ZERO + first.overhead + SimDuration::from_secs(1);
        let second = b.on_task_admitted(w, t1).unwrap();
        assert_eq!(second.cold_ms, 0);
        assert_eq!(second.overhead, SimDuration::from_millis(5));
        // Past the keepalive horizon the container is cold again.
        let t2 = t1 + second.overhead + keepalive + SimDuration::from_secs(1);
        let third = b.on_task_admitted(w, t2).unwrap();
        assert!(third.cold_ms >= 150);
        assert_eq!(b.invocations(), 3);
        // A different slot is always cold on first touch.
        let other = b.on_task_admitted(WorkerId(1), t1).unwrap();
        assert!(other.cold_ms >= 150);
    }

    #[test]
    fn same_seed_replays_identical_draws() {
        let draws = |seed: u64| -> Vec<u64> {
            let mut b = ServerlessBackend::new(ServerlessConfig::default(), seed);
            (0..20)
                .map(|i| {
                    b.on_task_admitted(WorkerId(i), SimTime::ZERO)
                        .unwrap()
                        .cold_ms
                })
                .collect()
        };
        assert_eq!(draws(42), draws(42));
        assert_ne!(draws(42), draws(43), "different seeds must diverge");
    }

    #[test]
    fn billing_accumulates_exactly() {
        let cfg = ServerlessConfig::default();
        let mut b = ServerlessBackend::new(cfg.clone(), 1);
        let mut total = 0.0;
        let mut gbs = 0.0;
        for i in 0..50u64 {
            let dur = SimDuration::from_millis(100 + i * 37);
            let bill = b
                .on_task_committed(i + 1, WorkerId((i % 4) as u32), dur, SimTime::ZERO)
                .unwrap();
            let expect_gbs = dur.as_secs_f64() * cfg.memory_gb;
            assert!((bill.gb_seconds - expect_gbs).abs() < 1e-12);
            assert!(
                (bill.cost - (expect_gbs * cfg.price_per_gb_second + cfg.price_per_invocation))
                    .abs()
                    < 1e-15
            );
            total += bill.cost;
            gbs += bill.gb_seconds;
        }
        // Exact: the backend accumulates in the same order we did.
        assert_eq!(b.compute_cost(), total);
        assert_eq!(b.billed_gb_seconds(), gbs);
    }
}
