//! A from-scratch, lineage-tracked data-parallel engine.
//!
//! This crate is the Spark-equivalent substrate the Flint paper builds on,
//! reimplemented for the transient-server simulator. It provides:
//!
//! * **Resilient datasets** — immutable, partitioned collections of
//!   [`Value`] records ([`RddRef`]) created from source data or by
//!   transformations (map, filter, flat_map, union, reduce_by_key, join,
//!   sort_by_key, …). Every transformation is recorded in a [`Lineage`]
//!   graph so any lost partition can be recomputed from its youngest
//!   surviving ancestor — or its checkpoint.
//! * **A stage-splitting DAG scheduler** ([`Driver`]) that cuts jobs at
//!   shuffle boundaries, schedules one task per partition onto a cluster
//!   of simulated workers, and handles worker loss mid-job: lost cache
//!   blocks and shuffle outputs trigger recursive recomputation exactly as
//!   in Spark (§2.2 of the paper).
//! * **Virtual-time execution** — tasks really execute their closures over
//!   real data (so results are exact), but the time they take is charged
//!   from a calibrated [`CostModel`]; a 10-hour job simulates in
//!   milliseconds. Failure schedules come from a pluggable
//!   [`FailureInjector`].
//! * **Partition-level checkpointing** to a durable [`flint_store`] store,
//!   with a policy hook ([`CheckpointHooks`]) that Flint's fault-tolerance
//!   manager implements (frontier-of-lineage checkpointing, adaptive τ).
//! * **A per-worker block manager** with an LRU memory cache, disk spill,
//!   and hard loss on revocation — reproducing the memory-pressure cliff
//!   of the paper's Figure 3.
//!
//! # Examples
//!
//! ```
//! use flint_engine::{Driver, DriverConfig, Value};
//!
//! let mut driver = Driver::local(4); // 4 healthy workers, no failures
//! let nums = driver.ctx().parallelize((0..100).map(Value::from_i64), 8);
//! let evens = driver.ctx().filter(nums, |v| v.as_i64().unwrap() % 2 == 0);
//! let result = driver.count(evens).unwrap();
//! assert_eq!(result, 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod block;
mod chaos;
mod checkpoint;
mod cluster;
mod column;
mod context;
mod cost;
mod dataset;
mod driver;
mod error;
mod executor;
mod hooks;
mod injector;
mod lineage;
mod manifest;
mod rdd;
mod shuffle;
mod stats;
mod value;

pub use backend::{
    Backend, BackendKind, InvocationBill, InvocationStart, ServerlessBackend, ServerlessConfig,
    ShuffleTransport, TransientVmBackend,
};
pub use block::{BlockData, BlockKey, BlockLocation, BlockManager, BlockStoreSnapshot};
pub use chaos::{ChaosConfig, ChaosInjector, ChaosSchedule, ChaosStoreFaults};
pub use checkpoint::{
    checkpoint_key, wire_size, CheckpointStore, HealthyStore, ReadFault, StoreFaultPolicy,
    WriteFault,
};
pub use cluster::{Cluster, Worker, WorkerId, WorkerSpec};
pub use column::{
    AggField, AggKernel, Column, ColumnBatch, KeyExpr, MapKernel, NumExpr, OpKernel, PayloadExpr,
    PredKernel, ScalarExpr,
};
pub use context::EngineContext;
pub use cost::CostModel;
pub use dataset::{Dataset, Datum, DenseVector};
pub use driver::{Driver, DriverConfig, DriverConfigBuilder, RetryPolicy};
pub use error::{EngineError, Result};
pub use hooks::{CheckpointDirective, CheckpointHooks, LineageView, NoCheckpoint};
pub use injector::{FailureInjector, NoFailures, ScriptedInjector, WorkerEvent};
pub use lineage::Lineage;
pub use manifest::{ManifestError, RunManifest};
pub use rdd::{Dependency, PartitionData, RddId, RddMeta, RddOp, RddRef};
pub use shuffle::{
    scan_flat_bucket, Bucket, BucketedBlock, HashPartitioner, Partitioner, RangePartitioner,
    ShuffleId, ShuffleInfo, ShuffleKind,
};
pub use stats::{ActionRecord, RunStats};
pub use value::{ListVal, PairVal, Value};

// Re-exported so policy crates implementing [`CheckpointHooks`] can name
// the sink types without a direct `flint-trace` dependency.
pub use flint_trace::{Event, EventKind, EventSink, TraceHandle};
