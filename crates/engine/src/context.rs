//! The RDD construction API.

use std::sync::Arc;

use crate::column::{AggKernel, MapKernel, OpKernel, PredKernel};
use crate::lineage::Lineage;
use crate::rdd::{RddId, RddOp, RddRef};
use crate::shuffle::ShuffleKind;
use crate::Value;

/// Builds RDDs and records their lineage.
///
/// The context is the engine's equivalent of a `SparkContext`: programs
/// create source datasets with [`EngineContext::parallelize`] and derive
/// new ones with transformations; nothing executes until an action is run
/// through the [`crate::Driver`].
///
/// # Examples
///
/// ```
/// use flint_engine::{Driver, Value};
///
/// let mut driver = Driver::local(2);
/// let words = driver.ctx().parallelize(
///     ["a", "b", "a"].iter().map(|s| Value::from_str_(s)),
///     2,
/// );
/// let pairs = driver.ctx().map(words, |w| Value::pair(w.clone(), Value::Int(1)));
/// let counts = driver.ctx().reduce_by_key(pairs, 2, |a, b| {
///     Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
/// });
/// let mut out = driver.collect(counts).unwrap();
/// out.sort();
/// assert_eq!(out.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct EngineContext {
    lineage: Lineage,
}

impl EngineContext {
    /// Creates an empty context.
    pub fn new() -> Self {
        EngineContext {
            lineage: Lineage::new(),
        }
    }

    /// Returns the lineage graph.
    pub fn lineage(&self) -> &Lineage {
        &self.lineage
    }

    /// Returns the lineage graph mutably (driver internals).
    pub(crate) fn lineage_mut(&mut self) -> &mut Lineage {
        &mut self.lineage
    }

    fn add(&mut self, name: &str, op: RddOp, parents: Vec<RddId>, num_partitions: u32) -> RddRef {
        let id = self.lineage.add_rdd(name, op, parents, num_partitions);
        RddRef { id }
    }

    /// Creates a source RDD from an iterator, split into `parts`
    /// partitions round-robin. Source data is durable (never lost to
    /// revocations), like input files on S3/HDFS.
    pub fn parallelize(&mut self, data: impl IntoIterator<Item = Value>, parts: u32) -> RddRef {
        let parts = parts.max(1);
        let mut partitions: Vec<Vec<Value>> = (0..parts).map(|_| Vec::new()).collect();
        for (i, v) in data.into_iter().enumerate() {
            partitions[i % parts as usize].push(v);
        }
        self.parallelize_parts(partitions)
    }

    /// Creates a source RDD from explicit partitions.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is empty.
    pub fn parallelize_parts(&mut self, partitions: Vec<Vec<Value>>) -> RddRef {
        assert!(!partitions.is_empty(), "need at least one partition");
        let n = partitions.len() as u32;
        self.add(
            "parallelize",
            RddOp::Parallelize {
                data: Arc::new(partitions),
            },
            vec![],
            n,
        )
    }

    /// Element-wise transformation.
    pub fn map(
        &mut self,
        r: RddRef,
        f: impl Fn(&Value) -> Value + Send + Sync + 'static,
    ) -> RddRef {
        let n = self.lineage.meta(r.id).num_partitions;
        self.add("map", RddOp::Map { f: Arc::new(f) }, vec![r.id], n)
    }

    /// Keeps elements satisfying `p`.
    pub fn filter(
        &mut self,
        r: RddRef,
        p: impl Fn(&Value) -> bool + Send + Sync + 'static,
    ) -> RddRef {
        let n = self.lineage.meta(r.id).num_partitions;
        self.add("filter", RddOp::Filter { p: Arc::new(p) }, vec![r.id], n)
    }

    /// Element-to-many transformation.
    pub fn flat_map(
        &mut self,
        r: RddRef,
        f: impl Fn(&Value) -> Vec<Value> + Send + Sync + 'static,
    ) -> RddRef {
        let n = self.lineage.meta(r.id).num_partitions;
        self.add("flat_map", RddOp::FlatMap { f: Arc::new(f) }, vec![r.id], n)
    }

    /// Whole-partition transformation. `cost_factor` scales the charged
    /// compute time relative to a plain map (use > 1 for CPU-heavy
    /// kernels).
    pub fn map_partitions(
        &mut self,
        r: RddRef,
        cost_factor: f64,
        f: impl Fn(u32, &[Value]) -> Vec<Value> + Send + Sync + 'static,
    ) -> RddRef {
        let n = self.lineage.meta(r.id).num_partitions;
        self.add(
            "map_partitions",
            RddOp::MapPartitions {
                f: Arc::new(f),
                cost_factor,
            },
            vec![r.id],
            n,
        )
    }

    /// Element-wise transformation declared as a [`MapKernel`]: the row
    /// closure is generated from the kernel, and the executor may run
    /// the kernel's vectorized batch evaluator instead — the two agree
    /// by construction, and non-encodable partitions fall back to the
    /// row path transparently.
    ///
    /// The kernel must be total (`Scalar`/`Pair` shapes);
    /// [`MapKernel::NearestCenter`] has filter-map semantics and must go
    /// through [`EngineContext::map_partitions_kernel`] instead.
    pub fn map_kernel(&mut self, r: RddRef, kernel: MapKernel) -> RddRef {
        assert!(
            !matches!(kernel, MapKernel::NearestCenter { .. }),
            "NearestCenter skips records; use map_partitions_kernel"
        );
        let n = self.lineage.meta(r.id).num_partitions;
        let k = kernel.clone();
        let id = self.lineage.add_rdd(
            "map",
            RddOp::Map {
                f: Arc::new(move |v| k.eval_value(v).unwrap_or_else(|| v.clone())),
            },
            vec![r.id],
            n,
        );
        self.lineage.set_kernel(id, OpKernel::Map(kernel));
        RddRef { id }
    }

    /// Filter declared as a [`PredKernel`], with a vectorized mask+gather
    /// batch path (see [`EngineContext::map_kernel`] for the contract).
    pub fn filter_kernel(&mut self, r: RddRef, pred: PredKernel) -> RddRef {
        let n = self.lineage.meta(r.id).num_partitions;
        let p = pred.clone();
        let id = self.lineage.add_rdd(
            "filter",
            RddOp::Filter {
                p: Arc::new(move |v| p.eval_value(v)),
            },
            vec![r.id],
            n,
        );
        self.lineage.set_kernel(id, OpKernel::Filter(pred));
        RddRef { id }
    }

    /// Whole-partition transformation declared as a [`MapKernel`] with
    /// filter-map semantics (records the kernel declines are dropped,
    /// like [`MapKernel::NearestCenter`] on non-vector records).
    /// `cost_factor` scales the charged compute time as in
    /// [`EngineContext::map_partitions`].
    pub fn map_partitions_kernel(
        &mut self,
        r: RddRef,
        cost_factor: f64,
        kernel: MapKernel,
    ) -> RddRef {
        let n = self.lineage.meta(r.id).num_partitions;
        let k = kernel.clone();
        let id = self.lineage.add_rdd(
            "map_partitions",
            RddOp::MapPartitions {
                f: Arc::new(move |_part, data| {
                    let mut out = Vec::with_capacity(data.len());
                    out.extend(data.iter().filter_map(|v| k.eval_value(v)));
                    out
                }),
                cost_factor,
            },
            vec![r.id],
            n,
        );
        self.lineage
            .set_kernel(id, OpKernel::PartsFilterMap(kernel));
        RddRef { id }
    }

    /// Keyed aggregation declared as an [`AggKernel`]: the combine
    /// closure (map-side and reduce-side) is generated from the kernel,
    /// the shuffle is marked batch-capable so map outputs may be
    /// bucketed as columnar row groups, and the reducer may run the
    /// typed accumulation path.
    pub fn reduce_by_key_kernel(&mut self, r: RddRef, parts: u32, kernel: AggKernel) -> RddRef {
        let k = kernel.clone();
        let f: crate::rdd::AggFn = Arc::new(move |a, b| k.combine_values(a, b));
        let shuffle = self.lineage.add_shuffle_with_combine(
            r.id,
            ShuffleKind::Hash {
                parts: parts.max(1),
            },
            f.clone(),
        );
        self.lineage.set_agg_kernel(shuffle, kernel);
        self.add(
            "reduce_by_key",
            RddOp::ShuffleAgg {
                shuffle,
                combine: f,
            },
            vec![r.id],
            parts.max(1),
        )
    }

    /// Concatenates two RDDs (partition lists are appended).
    pub fn union(&mut self, a: RddRef, b: RddRef) -> RddRef {
        let n = self.lineage.meta(a.id).num_partitions + self.lineage.meta(b.id).num_partitions;
        self.add("union", RddOp::Union, vec![a.id, b.id], n)
    }

    /// Deterministic Bernoulli sample.
    pub fn sample(&mut self, r: RddRef, fraction: f64, seed: u64) -> RddRef {
        let n = self.lineage.meta(r.id).num_partitions;
        self.add(
            "sample",
            RddOp::Sample {
                fraction: fraction.clamp(0.0, 1.0),
                seed,
            },
            vec![r.id],
            n,
        )
    }

    /// Aggregates pair elements by key with an associative combiner.
    ///
    /// Like Spark's `reduceByKey`, the combiner also runs map-side, so
    /// shuffle volume collapses to roughly one record per key per map
    /// partition.
    pub fn reduce_by_key(
        &mut self,
        r: RddRef,
        parts: u32,
        f: impl Fn(&Value, &Value) -> Value + Send + Sync + 'static,
    ) -> RddRef {
        let f: crate::rdd::AggFn = Arc::new(f);
        let shuffle = self.lineage.add_shuffle_with_combine(
            r.id,
            ShuffleKind::Hash {
                parts: parts.max(1),
            },
            f.clone(),
        );
        self.add(
            "reduce_by_key",
            RddOp::ShuffleAgg {
                shuffle,
                combine: f,
            },
            vec![r.id],
            parts.max(1),
        )
    }

    /// Groups pair elements by key into `(k, List(values))`.
    pub fn group_by_key(&mut self, r: RddRef, parts: u32) -> RddRef {
        let shuffle = self.lineage.add_shuffle(
            r.id,
            ShuffleKind::Hash {
                parts: parts.max(1),
            },
        );
        // Grouping has no combine, so columnar map outputs can bucket
        // without decoding whenever the upstream produced a batch.
        self.lineage.mark_batch_shuffle(shuffle);
        self.add(
            "group_by_key",
            RddOp::ShuffleGroup { shuffle },
            vec![r.id],
            parts.max(1),
        )
    }

    /// Groups two pair RDDs by key into
    /// `(k, List[List(values from a), List(values from b)])`.
    pub fn cogroup(&mut self, a: RddRef, b: RddRef, parts: u32) -> RddRef {
        let parts = parts.max(1);
        let sa = self.lineage.add_shuffle(a.id, ShuffleKind::Hash { parts });
        let sb = self.lineage.add_shuffle(b.id, ShuffleKind::Hash { parts });
        self.add(
            "cogroup",
            RddOp::CoGroup {
                shuffles: vec![sa, sb],
            },
            vec![a.id, b.id],
            parts,
        )
    }

    /// Inner-joins two pair RDDs: output `(k, List[va, vb])` for every
    /// combination of values sharing a key.
    pub fn join(&mut self, a: RddRef, b: RddRef, parts: u32) -> RddRef {
        let grouped = self.cogroup(a, b, parts);
        self.flat_map(grouped, |v| {
            let Value::Pair(p) = v else { return vec![] };
            let groups = match p.val().as_list() {
                Some(g) if g.len() == 2 => g,
                _ => return vec![],
            };
            let left = groups[0].as_list().unwrap_or(&[]);
            let right = groups[1].as_list().unwrap_or(&[]);
            let mut out = Vec::with_capacity(left.len() * right.len());
            for l in left {
                for r in right {
                    out.push(Value::pair(
                        p.key().clone(),
                        Value::list(vec![l.clone(), r.clone()]),
                    ));
                }
            }
            out
        })
    }

    /// Globally sorts pair elements by key via range partitioning.
    pub fn sort_by_key(&mut self, r: RddRef, parts: u32, ascending: bool) -> RddRef {
        let shuffle = self.lineage.add_shuffle(
            r.id,
            ShuffleKind::Range {
                parts: parts.max(1),
                ascending,
            },
        );
        self.add(
            "sort_by_key",
            RddOp::SortByKey { shuffle, ascending },
            vec![r.id],
            parts.max(1),
        )
    }

    /// Removes duplicate elements (via a shuffle).
    pub fn distinct(&mut self, r: RddRef, parts: u32) -> RddRef {
        let paired = self.map(r, |v| Value::pair(v.clone(), Value::Null));
        let reduced = self.reduce_by_key(paired, parts, |a, _| a.clone());
        self.map(reduced, |p| p.key().cloned().unwrap_or(Value::Null))
    }

    /// Redistributes elements into `parts` partitions (via a shuffle on a
    /// synthetic key).
    pub fn repartition(&mut self, r: RddRef, parts: u32) -> RddRef {
        let keyed = self.map(r, |v| {
            // Key by the value itself: deterministic spread.
            Value::pair(v.clone(), v.clone())
        });
        let grouped = self.group_by_key(keyed, parts);
        self.flat_map(grouped, |p| {
            p.val()
                .and_then(Value::as_list)
                .map(<[Value]>::to_vec)
                .unwrap_or_default()
        })
    }

    /// Narrow N→M repartitioning (Spark's `coalesce` without a shuffle):
    /// contiguous runs of parent partitions are concatenated.
    pub fn coalesce(&mut self, r: RddRef, parts: u32) -> RddRef {
        let n = self.lineage.meta(r.id).num_partitions;
        let parts = parts.clamp(1, n);
        let group = n.div_ceil(parts);
        let out = n.div_ceil(group);
        self.add("coalesce", RddOp::Coalesce { group }, vec![r.id], out)
    }

    /// Transforms only the value side of pair elements, keeping keys.
    pub fn map_values(
        &mut self,
        r: RddRef,
        f: impl Fn(&Value) -> Value + Send + Sync + 'static,
    ) -> RddRef {
        self.map(r, move |p| match p {
            Value::Pair(kv) => Value::pair(kv.key().clone(), f(kv.val())),
            other => other.clone(),
        })
    }

    /// Projects pair elements to their keys.
    pub fn keys(&mut self, r: RddRef) -> RddRef {
        self.map(r, |p| p.key().cloned().unwrap_or(Value::Null))
    }

    /// Projects pair elements to their values.
    pub fn values(&mut self, r: RddRef) -> RddRef {
        self.map(r, |p| p.val().cloned().unwrap_or(Value::Null))
    }

    /// Marks an RDD for in-memory caching across jobs (Spark `persist`).
    pub fn persist(&mut self, r: RddRef) -> RddRef {
        self.lineage.persist(r.id);
        r
    }

    /// Returns the number of partitions of `r`.
    pub fn num_partitions(&self, r: RddRef) -> u32 {
        self.lineage.meta(r.id).num_partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelize_splits_round_robin() {
        let mut ctx = EngineContext::new();
        let r = ctx.parallelize((0..10).map(Value::from_i64), 3);
        assert_eq!(ctx.num_partitions(r), 3);
        let meta = ctx.lineage().meta(r.id());
        match &meta.op {
            RddOp::Parallelize { data } => {
                assert_eq!(data.len(), 3);
                assert_eq!(data[0].len(), 4); // 0,3,6,9
                assert_eq!(data[1].len(), 3);
            }
            _ => panic!("expected parallelize"),
        }
    }

    #[test]
    fn transformations_record_lineage() {
        let mut ctx = EngineContext::new();
        let a = ctx.parallelize((0..4).map(Value::from_i64), 2);
        let b = ctx.map(a, |v| v.clone());
        let c = ctx.reduce_by_key(b, 4, |x, _| x.clone());
        assert_eq!(ctx.lineage().meta(c.id()).parents, vec![b.id()]);
        assert_eq!(ctx.lineage().meta(c.id()).num_partitions, 4);
        assert!(ctx.lineage().meta(c.id()).op.is_shuffle());
        assert_eq!(ctx.lineage().frontier(), vec![c.id()]);
    }

    #[test]
    fn union_partition_count() {
        let mut ctx = EngineContext::new();
        let a = ctx.parallelize((0..4).map(Value::from_i64), 2);
        let b = ctx.parallelize((0..9).map(Value::from_i64), 3);
        let u = ctx.union(a, b);
        assert_eq!(ctx.num_partitions(u), 5);
    }

    #[test]
    fn persist_marks_lineage() {
        let mut ctx = EngineContext::new();
        let a = ctx.parallelize((0..4).map(Value::from_i64), 2);
        assert!(!ctx.lineage().is_persisted(a.id()));
        ctx.persist(a);
        assert!(ctx.lineage().is_persisted(a.id()));
    }

    #[test]
    fn zero_partition_requests_clamp_to_one() {
        let mut ctx = EngineContext::new();
        let a = ctx.parallelize((0..4).map(Value::from_i64), 0);
        assert_eq!(ctx.num_partitions(a), 1);
        let g = ctx.group_by_key(a, 0);
        assert_eq!(ctx.num_partitions(g), 1);
    }
}
