//! A typed facade over the dynamic RDD core.
//!
//! The engine's internals are dynamically typed ([`Value`]) so the
//! lineage graph stays homogeneous and recovery is generic. For user
//! code, this module offers a compile-time-typed view: a [`Dataset<T>`]
//! wraps an RDD whose records encode a `T`, and transformations take
//! ordinary Rust closures over `T`.
//!
//! # Examples
//!
//! ```
//! use flint_engine::{Dataset, Driver};
//!
//! let mut driver = Driver::local(4);
//! let nums: Dataset<i64> = Dataset::from_iter(driver.ctx(), 0..100, 8);
//! let pairs = nums.map(driver.ctx(), |n| (n % 7, 1i64));
//! let counts = pairs.reduce_by_key(driver.ctx(), 4, |a, b| a + b);
//! let mut out = counts.collect(&mut driver).unwrap();
//! out.sort();
//! assert_eq!(out.len(), 7);
//! assert_eq!(out.iter().map(|(_, c)| c).sum::<i64>(), 100);
//! ```

use std::marker::PhantomData;

use crate::context::EngineContext;
use crate::driver::Driver;
use crate::error::Result;
use crate::rdd::RddRef;
use crate::value::Value;

/// A Rust type with a stable encoding into the engine's [`Value`] datum.
pub trait Datum: Sized + Send + Sync + 'static {
    /// Encodes `self` into a [`Value`].
    fn encode(self) -> Value;
    /// Decodes a [`Value`] back; `None` on a type mismatch.
    fn decode(v: &Value) -> Option<Self>;
}

impl Datum for i64 {
    fn encode(self) -> Value {
        Value::Int(self)
    }
    fn decode(v: &Value) -> Option<Self> {
        v.as_i64()
    }
}

impl Datum for f64 {
    fn encode(self) -> Value {
        Value::Float(self)
    }
    fn decode(v: &Value) -> Option<Self> {
        v.as_f64()
    }
}

impl Datum for bool {
    fn encode(self) -> Value {
        Value::Bool(self)
    }
    fn decode(v: &Value) -> Option<Self> {
        v.as_bool()
    }
}

impl Datum for String {
    fn encode(self) -> Value {
        Value::from_str_(&self)
    }
    fn decode(v: &Value) -> Option<Self> {
        v.as_str().map(str::to_string)
    }
}

/// A dense numeric vector encoded as [`Value::Vector`] (compact; the
/// generic `Vec<T>` impl encodes as a heterogeneous list instead).
#[derive(Debug, Clone, PartialEq)]
pub struct DenseVector(pub Vec<f64>);

impl Datum for DenseVector {
    fn encode(self) -> Value {
        Value::vector(self.0)
    }
    fn decode(v: &Value) -> Option<Self> {
        v.as_vector().map(|x| DenseVector(x.to_vec()))
    }
}

impl<K: Datum, V: Datum> Datum for (K, V) {
    fn encode(self) -> Value {
        Value::pair(self.0.encode(), self.1.encode())
    }
    fn decode(v: &Value) -> Option<Self> {
        let k = K::decode(v.key()?)?;
        let val = V::decode(v.val()?)?;
        Some((k, val))
    }
}

impl<T: Datum> Datum for Vec<T> {
    fn encode(self) -> Value {
        Value::list(self.into_iter().map(Datum::encode).collect())
    }
    fn decode(v: &Value) -> Option<Self> {
        v.as_list()?.iter().map(T::decode).collect()
    }
}

/// Decodes or panics with a diagnosable message: a decode failure in a
/// typed pipeline is a programming error (the lineage holds records of a
/// different shape than the `Dataset`'s type parameter claims).
fn decode_or_panic<T: Datum>(v: &Value) -> T {
    T::decode(v).unwrap_or_else(|| {
        panic!(
            "typed dataset decode failure: record {v} does not match {}",
            std::any::type_name::<T>()
        )
    })
}

/// A typed view of an RDD.
///
/// `Dataset<T>` is a zero-cost wrapper: it stores only the RDD handle.
/// Transformations borrow the [`EngineContext`]; actions borrow the
/// [`Driver`].
///
/// # Panics
///
/// Actions and downstream transformations panic if the underlying
/// records do not decode as `T` (a type-confusion bug in user code, not
/// a data error).
#[derive(Debug)]
pub struct Dataset<T> {
    rdd: RddRef,
    _t: PhantomData<fn() -> T>,
}

// Manual impls: `Dataset` is Copy regardless of `T`.
impl<T> Clone for Dataset<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Dataset<T> {}

impl<T: Datum> Dataset<T> {
    /// Wraps an untyped RDD the caller knows to contain `T`-encoded
    /// records.
    pub fn from_rdd(rdd: RddRef) -> Self {
        Dataset {
            rdd,
            _t: PhantomData,
        }
    }

    /// Returns the underlying untyped handle.
    pub fn rdd(&self) -> RddRef {
        self.rdd
    }

    /// Creates a typed source dataset.
    pub fn from_iter(
        ctx: &mut EngineContext,
        data: impl IntoIterator<Item = T>,
        parts: u32,
    ) -> Self {
        let rdd = ctx.parallelize(data.into_iter().map(Datum::encode), parts);
        Dataset::from_rdd(rdd)
    }

    /// Element-wise transformation.
    pub fn map<U: Datum>(
        self,
        ctx: &mut EngineContext,
        f: impl Fn(T) -> U + Send + Sync + 'static,
    ) -> Dataset<U> {
        let rdd = ctx.map(self.rdd, move |v| f(decode_or_panic::<T>(v)).encode());
        Dataset::from_rdd(rdd)
    }

    /// Keeps elements satisfying `f`.
    pub fn filter(
        self,
        ctx: &mut EngineContext,
        f: impl Fn(&T) -> bool + Send + Sync + 'static,
    ) -> Dataset<T> {
        let rdd = ctx.filter(self.rdd, move |v| f(&decode_or_panic::<T>(v)));
        Dataset::from_rdd(rdd)
    }

    /// Element-to-many transformation.
    pub fn flat_map<U: Datum>(
        self,
        ctx: &mut EngineContext,
        f: impl Fn(T) -> Vec<U> + Send + Sync + 'static,
    ) -> Dataset<U> {
        let rdd = ctx.flat_map(self.rdd, move |v| {
            f(decode_or_panic::<T>(v))
                .into_iter()
                .map(Datum::encode)
                .collect()
        });
        Dataset::from_rdd(rdd)
    }

    /// Concatenates two datasets.
    pub fn union(self, ctx: &mut EngineContext, other: Dataset<T>) -> Dataset<T> {
        Dataset::from_rdd(ctx.union(self.rdd, other.rdd))
    }

    /// Removes duplicates (via a shuffle).
    pub fn distinct(self, ctx: &mut EngineContext, parts: u32) -> Dataset<T> {
        Dataset::from_rdd(ctx.distinct(self.rdd, parts))
    }

    /// Marks the dataset for in-memory caching across jobs.
    pub fn persist(self, ctx: &mut EngineContext) -> Dataset<T> {
        ctx.persist(self.rdd);
        self
    }

    /// Deterministic Bernoulli sample.
    pub fn sample(self, ctx: &mut EngineContext, fraction: f64, seed: u64) -> Dataset<T> {
        Dataset::from_rdd(ctx.sample(self.rdd, fraction, seed))
    }

    /// Narrow repartitioning into at most `parts` partitions.
    pub fn coalesce(self, ctx: &mut EngineContext, parts: u32) -> Dataset<T> {
        Dataset::from_rdd(ctx.coalesce(self.rdd, parts))
    }

    /// Materializes and returns all elements in partition order.
    pub fn collect(self, driver: &mut Driver) -> Result<Vec<T>> {
        Ok(driver
            .collect(self.rdd)?
            .iter()
            .map(decode_or_panic::<T>)
            .collect())
    }

    /// Materializes and counts elements.
    pub fn count(self, driver: &mut Driver) -> Result<u64> {
        driver.count(self.rdd)
    }

    /// Materializes and folds elements with `f`.
    ///
    /// Returns [`crate::EngineError::EmptyDataset`] when empty.
    pub fn reduce(self, driver: &mut Driver, f: impl Fn(T, T) -> T) -> Result<T> {
        let v = driver.reduce(self.rdd, move |a, b| {
            f(decode_or_panic::<T>(a), decode_or_panic::<T>(b)).encode()
        })?;
        Ok(decode_or_panic::<T>(&v))
    }

    /// Materializes and returns up to `n` elements.
    pub fn take(self, driver: &mut Driver, n: usize) -> Result<Vec<T>> {
        Ok(driver
            .take(self.rdd, n)?
            .iter()
            .map(decode_or_panic::<T>)
            .collect())
    }

    /// Materializes and returns the `n` smallest elements by the
    /// engine's total value order.
    pub fn take_ordered(self, driver: &mut Driver, n: usize) -> Result<Vec<T>> {
        Ok(driver
            .take_ordered(self.rdd, n)?
            .iter()
            .map(decode_or_panic::<T>)
            .collect())
    }
}

impl<K: Datum, V: Datum> Dataset<(K, V)> {
    /// Aggregates by key with an associative combiner (map-side combined,
    /// like Spark's `reduceByKey`).
    pub fn reduce_by_key(
        self,
        ctx: &mut EngineContext,
        parts: u32,
        f: impl Fn(V, V) -> V + Send + Sync + 'static,
    ) -> Dataset<(K, V)> {
        let rdd = ctx.reduce_by_key(self.rdd, parts, move |a, b| {
            f(decode_or_panic::<V>(a), decode_or_panic::<V>(b)).encode()
        });
        Dataset::from_rdd(rdd)
    }

    /// Groups values by key.
    pub fn group_by_key(self, ctx: &mut EngineContext, parts: u32) -> Dataset<(K, Vec<V>)> {
        Dataset::from_rdd(ctx.group_by_key(self.rdd, parts))
    }

    /// Globally sorts by key.
    pub fn sort_by_key(
        self,
        ctx: &mut EngineContext,
        parts: u32,
        ascending: bool,
    ) -> Dataset<(K, V)> {
        Dataset::from_rdd(ctx.sort_by_key(self.rdd, parts, ascending))
    }

    /// Transforms only values, keeping keys.
    pub fn map_values<U: Datum>(
        self,
        ctx: &mut EngineContext,
        f: impl Fn(V) -> U + Send + Sync + 'static,
    ) -> Dataset<(K, U)> {
        let rdd = ctx.map_values(self.rdd, move |v| f(decode_or_panic::<V>(v)).encode());
        Dataset::from_rdd(rdd)
    }

    /// Projects to keys.
    pub fn keys(self, ctx: &mut EngineContext) -> Dataset<K> {
        Dataset::from_rdd(ctx.keys(self.rdd))
    }

    /// Projects to values.
    pub fn values(self, ctx: &mut EngineContext) -> Dataset<V> {
        Dataset::from_rdd(ctx.values(self.rdd))
    }

    /// Materializes and counts elements per key.
    pub fn count_by_key(self, driver: &mut Driver) -> Result<std::collections::BTreeMap<K, u64>>
    where
        K: Ord,
    {
        Ok(driver
            .count_by_key(self.rdd)?
            .iter()
            .map(|(k, c)| (decode_or_panic::<K>(k), *c))
            .collect())
    }

    /// Inner-joins with another keyed dataset.
    pub fn join<W: Datum>(
        self,
        ctx: &mut EngineContext,
        other: Dataset<(K, W)>,
        parts: u32,
    ) -> Dataset<(K, Vec<Value>)> {
        // The join payload is heterogeneous ([v, w]); expose it as raw
        // values and let callers decode per side.
        Dataset::from_rdd(ctx.join(self.rdd, other.rdd, parts))
    }
}

impl Datum for Value {
    fn encode(self) -> Value {
        self
    }
    fn decode(v: &Value) -> Option<Self> {
        Some(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_word_count() {
        let mut d = Driver::local(3);
        let words = Dataset::from_iter(
            d.ctx(),
            ["a", "b", "a", "c", "a"].iter().map(|s| s.to_string()),
            2,
        );
        let counts = words
            .map(d.ctx(), |w| (w, 1i64))
            .reduce_by_key(d.ctx(), 2, |a, b| a + b);
        let mut out = counts.collect(&mut d).unwrap();
        out.sort();
        assert_eq!(out, vec![("a".into(), 3), ("b".into(), 1), ("c".into(), 1)]);
    }

    #[test]
    fn typed_pipeline_chain() {
        let mut d = Driver::local(2);
        let nums = Dataset::from_iter(d.ctx(), 0i64..100, 4);
        let result = nums
            .filter(d.ctx(), |n| n % 2 == 0)
            .map(d.ctx(), |n| n * n)
            .reduce(&mut d, |a, b| a + b)
            .unwrap();
        let expect: i64 = (0..100).filter(|n| n % 2 == 0).map(|n| n * n).sum();
        assert_eq!(result, expect);
    }

    #[test]
    fn typed_group_and_sort() {
        let mut d = Driver::local(2);
        let pairs = Dataset::from_iter(d.ctx(), (0i64..12).map(|i| (i % 3, i)), 3);
        let grouped = pairs.group_by_key(d.ctx(), 2);
        let mut sizes: Vec<(i64, usize)> = grouped
            .collect(&mut d)
            .unwrap()
            .into_iter()
            .map(|(k, vs)| (k, vs.len()))
            .collect();
        sizes.sort();
        assert_eq!(sizes, vec![(0, 4), (1, 4), (2, 4)]);

        let sorted = pairs.sort_by_key(d.ctx(), 2, false);
        let keys: Vec<i64> = sorted
            .collect(&mut d)
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn typed_vectors_and_values_projection() {
        let mut d = Driver::local(2);
        let vecs = Dataset::from_iter(
            d.ctx(),
            (0..10).map(|i| (i as i64, DenseVector(vec![f64::from(i), 1.0]))),
            2,
        );
        let norms = vecs.map_values(d.ctx(), |v| v.0.iter().map(|x| x * x).sum::<f64>().sqrt());
        let vals = norms.values(d.ctx());
        assert_eq!(vals.count(&mut d).unwrap(), 10);
        let keys = norms.keys(d.ctx()).distinct(d.ctx(), 2);
        assert_eq!(keys.count(&mut d).unwrap(), 10);
    }

    #[test]
    #[should_panic(expected = "typed dataset decode failure")]
    fn type_confusion_panics() {
        let mut d = Driver::local(1);
        let nums = Dataset::<i64>::from_iter(d.ctx(), 0..5, 1);
        // Reinterpret as strings: decoding must fail loudly.
        let lied: Dataset<String> = Dataset::from_rdd(nums.rdd());
        let _ = lied.collect(&mut d);
    }

    #[test]
    fn typed_sample_coalesce_and_ordered() {
        let mut d = Driver::local(3);
        let nums = Dataset::from_iter(d.ctx(), 0i64..1000, 8);
        let sampled = nums.sample(d.ctx(), 0.25, 7);
        let n = sampled.count(&mut d).unwrap();
        assert!(n > 120 && n < 400, "25% sample gave {n}");
        let co = nums.coalesce(d.ctx(), 2);
        assert_eq!(co.count(&mut d).unwrap(), 1000);
        assert_eq!(nums.take_ordered(&mut d, 3).unwrap(), vec![0, 1, 2]);
        let pairs = nums.map(d.ctx(), |x| (x % 4, x));
        let counts = pairs.count_by_key(&mut d).unwrap();
        assert_eq!(counts.len(), 4);
        assert!(counts.values().all(|c| *c == 250));
    }

    #[test]
    fn typed_union_and_take() {
        let mut d = Driver::local(2);
        let a = Dataset::from_iter(d.ctx(), 0i64..5, 1);
        let b = Dataset::from_iter(d.ctx(), 5i64..10, 1);
        let u = a.union(d.ctx(), b).persist(d.ctx());
        assert_eq!(u.count(&mut d).unwrap(), 10);
        assert_eq!(u.take(&mut d, 3).unwrap().len(), 3);
    }
}
