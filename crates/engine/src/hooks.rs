//! Policy hooks: how checkpointing decisions are injected into the driver.
//!
//! The engine provides the checkpoint *mechanism* (durable partition
//! writes, restore-on-miss, garbage collection); *policy* — what to
//! checkpoint and when — is supplied by an implementation of
//! [`CheckpointHooks`]. Flint's fault-tolerance manager (in `flint-core`)
//! implements the paper's frontier policy with the adaptive interval
//! `τ = √(2·δ·MTTF)`; baselines implement no-op or whole-memory variants.

use flint_simtime::{SimDuration, SimTime};
use flint_store::StorageConfig;
use flint_trace::EventSink;

use crate::{CheckpointStore, CostModel, Lineage, RddId};

/// Read-only context handed to policy hooks.
pub struct LineageView<'a> {
    /// The lineage graph.
    pub lineage: &'a Lineage,
    /// Current durable checkpoints.
    pub checkpoints: &'a CheckpointStore,
    /// Number of alive workers (write parallelism for δ estimation).
    pub alive_workers: usize,
    /// The cost model (for virtual sizing).
    pub cost: &'a CostModel,
    /// The storage bandwidth model (for δ estimation).
    pub storage: &'a StorageConfig,
}

impl LineageView<'_> {
    /// Estimated virtual size of `rdd` from recorded partition sizes.
    pub fn rdd_vbytes(&self, rdd: RddId) -> u64 {
        self.cost.vbytes(self.lineage.known_size(rdd))
    }

    /// Estimated time δ to checkpoint `rdd` with the cluster's current
    /// write parallelism.
    pub fn checkpoint_delta(&self, rdd: RddId) -> SimDuration {
        self.storage
            .write_time(self.rdd_vbytes(rdd), self.alive_workers.max(1) as u32)
    }

    /// Estimated time δ to checkpoint the *collective* execution frontier
    /// (§3.1.2: δ is based on "the collective size of the RDDs at the
    /// frontier of the lineage chain").
    pub fn frontier_delta(&self) -> SimDuration {
        let bytes: u64 = self
            .lineage
            .execution_frontier()
            .iter()
            .map(|r| self.rdd_vbytes(*r))
            .sum();
        self.storage
            .write_time(bytes, self.alive_workers.max(1) as u32)
    }
}

/// A policy decision returned from a hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointDirective {
    /// Durably write every partition of this RDD.
    Checkpoint(RddId),
    /// Durably write every cached block on every worker (the
    /// systems-level baseline of Fig. 6b).
    CheckpointAllCached,
}

/// Checkpointing policy callbacks, invoked by the driver.
///
/// All methods have no-op defaults so trivial policies stay trivial.
/// Decision-point hooks also receive the run's [`EventSink`], so a policy
/// can narrate *why* it decided (e.g. τ re-estimation) into the same
/// ordered stream the engine's lifecycle events land in.
pub trait CheckpointHooks {
    /// Called when every partition of `rdd` has been materialized for the
    /// first time. This is the paper's "new RDD generated at the frontier"
    /// moment: returning a directive here implements mark-on-generation.
    fn on_rdd_materialized(
        &mut self,
        _view: &LineageView<'_>,
        _events: &mut dyn EventSink,
        _rdd: RddId,
        _now: SimTime,
    ) -> Vec<CheckpointDirective> {
        Vec::new()
    }

    /// Called on every scheduler event-loop step; lets timer-based
    /// policies (e.g. periodic whole-memory checkpoints) fire without a
    /// materialization event.
    fn poll(
        &mut self,
        _view: &LineageView<'_>,
        _events: &mut dyn EventSink,
        _now: SimTime,
    ) -> Vec<CheckpointDirective> {
        Vec::new()
    }

    /// Called when a checkpoint write for `(rdd, part)` completes.
    fn on_checkpoint_written(
        &mut self,
        _rdd: RddId,
        _part: u32,
        _vbytes: u64,
        _wall: SimDuration,
        _now: SimTime,
    ) {
    }

    /// Called when a revocation warning arrives for a worker.
    fn on_warning(&mut self, _ext_id: u64, _now: SimTime) {}

    /// Called when a worker is revoked.
    fn on_revocation(&mut self, _ext_id: u64, _now: SimTime) {}
}

/// The null policy: never checkpoints (the paper's "Recomputation"
/// baseline).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCheckpoint;

impl CheckpointHooks for NoCheckpoint {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdd::RddOp;
    use std::sync::Arc;

    #[test]
    fn view_estimates_delta_from_sizes() {
        let mut lineage = Lineage::new();
        let a = lineage.add_rdd(
            "src",
            RddOp::Parallelize {
                data: Arc::new(vec![vec![], vec![]]),
            },
            vec![],
            2,
        );
        lineage.record_partition_size(a, 0, 50 << 20);
        lineage.record_partition_size(a, 1, 50 << 20);
        let ckpt = CheckpointStore::new(StorageConfig::default());
        let cost = CostModel::default();
        let storage = StorageConfig::default();
        let view = LineageView {
            lineage: &lineage,
            checkpoints: &ckpt,
            alive_workers: 10,
            cost: &cost,
            storage: &storage,
        };
        assert_eq!(view.rdd_vbytes(a), 100 << 20);
        let d10 = view.checkpoint_delta(a);
        let view1 = LineageView {
            alive_workers: 1,
            ..view
        };
        let d1 = view1.checkpoint_delta(a);
        assert!(d10 < d1, "more workers should checkpoint faster");
    }

    #[test]
    fn no_checkpoint_yields_nothing() {
        let lineage = Lineage::new();
        let ckpt = CheckpointStore::new(StorageConfig::default());
        let cost = CostModel::default();
        let storage = StorageConfig::default();
        let view = LineageView {
            lineage: &lineage,
            checkpoints: &ckpt,
            alive_workers: 1,
            cost: &cost,
            storage: &storage,
        };
        let mut h = NoCheckpoint;
        let mut sink = flint_trace::TraceHandle::disabled();
        assert!(h.poll(&view, &mut sink, SimTime::ZERO).is_empty());
        assert!(h
            .on_rdd_materialized(&view, &mut sink, RddId(0), SimTime::ZERO)
            .is_empty());
    }
}
