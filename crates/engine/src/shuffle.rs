//! Shuffle identifiers and partitioners.

use std::sync::Arc;

use crate::rdd::PartitionData;
use crate::value::stable_hash;
use crate::Value;

/// Identifier of a shuffle (one per wide dependency edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShuffleId(pub u32);

/// Maps shuffle keys to reduce-side partitions.
pub trait Partitioner {
    /// Returns the reduce partition for `key`, in `0..num_partitions()`.
    fn partition_for(&self, key: &Value) -> u32;
    /// The number of reduce partitions.
    fn num_partitions(&self) -> u32;
}

/// Deterministic hash partitioning (used by `reduce_by_key`,
/// `group_by_key`, `join`).
///
/// # Examples
///
/// ```
/// use flint_engine::{HashPartitioner, Partitioner, Value};
///
/// let p = HashPartitioner::new(4);
/// let k = Value::from_str_("user-17");
/// assert!(p.partition_for(&k) < 4);
/// // Stable across calls.
/// assert_eq!(p.partition_for(&k), p.partition_for(&k));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPartitioner {
    parts: u32,
}

impl HashPartitioner {
    /// Creates a hash partitioner over `parts` partitions (at least 1).
    pub fn new(parts: u32) -> Self {
        HashPartitioner {
            parts: parts.max(1),
        }
    }
}

impl Partitioner for HashPartitioner {
    fn partition_for(&self, key: &Value) -> u32 {
        (stable_hash(key) % u64::from(self.parts)) as u32
    }

    fn num_partitions(&self) -> u32 {
        self.parts
    }
}

/// Range partitioning for `sort_by_key`: keys ≤ `bounds[0]` go to
/// partition 0, and so on. With `ascending = false` the partition order is
/// reversed so concatenating partitions yields a descending sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangePartitioner {
    /// Ascending boundary keys; `bounds.len() + 1` partitions.
    bounds: Vec<Value>,
    ascending: bool,
}

impl RangePartitioner {
    /// Builds a partitioner with `parts` partitions from a sample of keys.
    ///
    /// The sample is sorted and evenly-spaced boundaries are chosen, the
    /// same approach Spark's `RangePartitioner` takes.
    pub fn from_sample(mut sample: Vec<Value>, parts: u32, ascending: bool) -> Self {
        let parts = parts.max(1);
        sample.sort();
        sample.dedup();
        let mut bounds = Vec::new();
        if !sample.is_empty() {
            for i in 1..parts {
                let idx = (i as usize * sample.len()) / parts as usize;
                let idx = idx.min(sample.len() - 1);
                let b = sample[idx].clone();
                if bounds.last() != Some(&b) {
                    bounds.push(b);
                }
            }
        }
        RangePartitioner { bounds, ascending }
    }

    /// Returns the boundary keys.
    pub fn bounds(&self) -> &[Value] {
        &self.bounds
    }

    /// Returns the sort direction.
    pub fn ascending(&self) -> bool {
        self.ascending
    }
}

impl Partitioner for RangePartitioner {
    fn partition_for(&self, key: &Value) -> u32 {
        let idx = match self.bounds.binary_search(key) {
            Ok(i) => i, // on-boundary keys go left
            Err(i) => i,
        } as u32;
        if self.ascending {
            idx
        } else {
            self.num_partitions() - 1 - idx
        }
    }

    fn num_partitions(&self) -> u32 {
        self.bounds.len() as u32 + 1
    }
}

/// A shuffle map output pre-partitioned into its reduce buckets.
///
/// Built once when the map block materializes (or lazily, for range
/// shuffles, once the [`RangePartitioner`] is resolved at the barrier):
/// records are routed to `num_partitions()` buckets in original block
/// order, and each bucket's payload bytes are summed as a side effect.
/// Reduce tasks then read their bucket in O(1) instead of rescanning and
/// rehashing the whole block, and the per-fetch byte accounting is a
/// lookup instead of a walk.
///
/// Buckets are `Arc`-shared ([`PartitionData`]): a reduce-side fetch
/// takes a refcount-bumped handle via [`BucketedBlock::bucket_shared`]
/// rather than copying the records.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketedBlock {
    /// Per-reduce-partition records, original order preserved within
    /// each bucket, shared with every fetcher.
    buckets: Vec<PartitionData>,
    /// Per-bucket payload bytes (sum of [`Value::size_bytes`], no
    /// per-partition framing overhead) — exactly what a reduce-side scan
    /// of the flat block would have accumulated for that bucket.
    bucket_bytes: Vec<u64>,
}

impl BucketedBlock {
    /// Partitions `records` into `p.num_partitions()` reduce buckets.
    ///
    /// Routing matches the reduce-side scan it replaces: pairs are
    /// bucketed by key, non-pair records by the value itself.
    pub fn partition(records: &[Value], p: &dyn Partitioner) -> Self {
        let n = p.num_partitions().max(1) as usize;
        let mut buckets: Vec<Vec<Value>> = vec![Vec::new(); n];
        let mut bucket_bytes = vec![0u64; n];
        for v in records {
            let key = v.key().unwrap_or(v);
            let idx = p.partition_for(key) as usize;
            // A record routed outside `0..n` would never match any reduce
            // task's `partition_for(key) == part` scan, so drop it here
            // too (cannot happen for the engine's partitioners).
            if let Some(b) = buckets.get_mut(idx) {
                bucket_bytes[idx] += v.size_bytes();
                b.push(v.clone());
            }
        }
        BucketedBlock {
            buckets: buckets.into_iter().map(Arc::new).collect(),
            bucket_bytes,
        }
    }

    /// The number of reduce buckets.
    pub fn num_buckets(&self) -> u32 {
        self.buckets.len() as u32
    }

    /// The records routed to reduce partition `part` (empty for an
    /// out-of-range partition).
    pub fn bucket(&self, part: u32) -> &[Value] {
        self.buckets
            .get(part as usize)
            .map(|b| b.as_slice())
            .unwrap_or(&[])
    }

    /// A shared handle to reduce partition `part`'s records: an O(1)
    /// refcount bump, no record copies (empty for an out-of-range
    /// partition).
    pub fn bucket_shared(&self, part: u32) -> PartitionData {
        self.buckets.get(part as usize).cloned().unwrap_or_default()
    }

    /// Payload bytes of bucket `part` (sum of record sizes).
    pub fn bucket_bytes(&self, part: u32) -> u64 {
        self.bucket_bytes.get(part as usize).copied().unwrap_or(0)
    }

    /// Total records across all buckets.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.len()).sum()
    }

    /// `true` when no bucket holds any record.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| b.is_empty())
    }

    /// Total payload bytes across all buckets (no framing overhead).
    pub fn payload_bytes(&self) -> u64 {
        self.bucket_bytes.iter().sum()
    }

    /// Iterates every record, bucket-major. Byte and count totals are
    /// identical to the flat block's; only the order differs.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.buckets.iter().flat_map(|b| b.iter())
    }
}

/// The partitioning scheme declared for a shuffle at RDD-creation time.
///
/// Range bounds cannot be known until the map side has produced keys, so
/// `Range` carries only the requested shape; the driver resolves the
/// concrete [`RangePartitioner`] at the shuffle barrier and caches it for
/// deterministic recomputation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShuffleKind {
    /// Hash partitioning into `parts` partitions.
    Hash {
        /// Reduce partition count.
        parts: u32,
    },
    /// Range partitioning into `parts` partitions, resolved at runtime.
    Range {
        /// Reduce partition count.
        parts: u32,
        /// Sort direction.
        ascending: bool,
    },
}

impl ShuffleKind {
    /// The number of reduce partitions this shuffle produces.
    pub fn num_partitions(&self) -> u32 {
        match self {
            ShuffleKind::Hash { parts } | ShuffleKind::Range { parts, .. } => (*parts).max(1),
        }
    }
}

/// Static description of a shuffle edge.
#[derive(Clone)]
pub struct ShuffleInfo {
    /// The shuffle id.
    pub id: ShuffleId,
    /// The map-side (parent) RDD.
    pub parent: crate::RddId,
    /// Partitioning scheme.
    pub kind: ShuffleKind,
    /// Map-side combiner (Spark's `reduceByKey` pre-aggregation): pairs
    /// with equal keys within one map output are combined before the
    /// block is stored, collapsing shuffle volume to ~one record per key
    /// per map partition.
    pub combine: Option<crate::rdd::AggFn>,
}

impl std::fmt::Debug for ShuffleInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShuffleInfo")
            .field("id", &self.id)
            .field("parent", &self.parent)
            .field("kind", &self.kind)
            .field("combine", &self.combine.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_covers_all_partitions() {
        let p = HashPartitioner::new(8);
        let mut seen = [false; 8];
        for i in 0..1000 {
            let part = p.partition_for(&Value::Int(i));
            seen[part as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all partitions should receive keys"
        );
    }

    #[test]
    fn hash_partitioner_minimum_one_partition() {
        let p = HashPartitioner::new(0);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.partition_for(&Value::Int(42)), 0);
    }

    #[test]
    fn range_partitioner_orders_keys() {
        let sample: Vec<Value> = (0..100).map(Value::Int).collect();
        let p = RangePartitioner::from_sample(sample, 4, true);
        assert_eq!(p.num_partitions(), 4);
        // Partition index must be monotone in the key.
        let mut last = 0;
        for k in 0..100 {
            let part = p.partition_for(&Value::Int(k));
            assert!(part >= last);
            last = part;
        }
        assert_eq!(p.partition_for(&Value::Int(0)), 0);
        assert_eq!(p.partition_for(&Value::Int(99)), 3);
    }

    #[test]
    fn descending_range_partitioner_reverses() {
        let sample: Vec<Value> = (0..100).map(Value::Int).collect();
        let p = RangePartitioner::from_sample(sample, 4, false);
        assert_eq!(p.partition_for(&Value::Int(0)), 3);
        assert_eq!(p.partition_for(&Value::Int(99)), 0);
    }

    #[test]
    fn range_partitioner_handles_tiny_samples() {
        let p = RangePartitioner::from_sample(vec![Value::Int(5)], 4, true);
        // One distinct key cannot produce 3 distinct bounds; everything
        // still lands in a valid partition.
        let part = p.partition_for(&Value::Int(5));
        assert!(part < p.num_partitions());

        let empty = RangePartitioner::from_sample(vec![], 4, true);
        assert_eq!(empty.num_partitions(), 1);
        assert_eq!(empty.partition_for(&Value::Int(1)), 0);
    }

    #[test]
    fn shuffle_kind_partition_counts() {
        assert_eq!(ShuffleKind::Hash { parts: 5 }.num_partitions(), 5);
        assert_eq!(
            ShuffleKind::Range {
                parts: 0,
                ascending: true
            }
            .num_partitions(),
            1
        );
    }
}
