//! Shuffle identifiers and partitioners.

use std::sync::Arc;

use crate::column::ColumnBatch;
use crate::rdd::PartitionData;
use crate::value::stable_hash;
use crate::Value;

/// Identifier of a shuffle (one per wide dependency edge).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShuffleId(pub u32);

/// Maps shuffle keys to reduce-side partitions.
pub trait Partitioner {
    /// Returns the reduce partition for `key`, in `0..num_partitions()`.
    fn partition_for(&self, key: &Value) -> u32;
    /// The number of reduce partitions.
    fn num_partitions(&self) -> u32;
}

/// Deterministic hash partitioning (used by `reduce_by_key`,
/// `group_by_key`, `join`).
///
/// # Examples
///
/// ```
/// use flint_engine::{HashPartitioner, Partitioner, Value};
///
/// let p = HashPartitioner::new(4);
/// let k = Value::from_str_("user-17");
/// assert!(p.partition_for(&k) < 4);
/// // Stable across calls.
/// assert_eq!(p.partition_for(&k), p.partition_for(&k));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPartitioner {
    parts: u32,
}

impl HashPartitioner {
    /// Creates a hash partitioner over `parts` partitions (at least 1).
    pub fn new(parts: u32) -> Self {
        HashPartitioner {
            parts: parts.max(1),
        }
    }
}

impl Partitioner for HashPartitioner {
    fn partition_for(&self, key: &Value) -> u32 {
        (stable_hash(key) % u64::from(self.parts)) as u32
    }

    fn num_partitions(&self) -> u32 {
        self.parts
    }
}

/// Range partitioning for `sort_by_key`: keys ≤ `bounds[0]` go to
/// partition 0, and so on. With `ascending = false` the partition order is
/// reversed so concatenating partitions yields a descending sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangePartitioner {
    /// Ascending boundary keys; `bounds.len() + 1` partitions.
    bounds: Vec<Value>,
    ascending: bool,
}

impl RangePartitioner {
    /// Builds a partitioner with `parts` partitions from a sample of keys.
    ///
    /// The sample is sorted and evenly-spaced boundaries are chosen, the
    /// same approach Spark's `RangePartitioner` takes.
    pub fn from_sample(mut sample: Vec<Value>, parts: u32, ascending: bool) -> Self {
        let parts = parts.max(1);
        sample.sort();
        sample.dedup();
        let mut bounds = Vec::new();
        if !sample.is_empty() {
            for i in 1..parts {
                let idx = (i as usize * sample.len()) / parts as usize;
                let idx = idx.min(sample.len() - 1);
                let b = sample[idx].clone();
                if bounds.last() != Some(&b) {
                    bounds.push(b);
                }
            }
        }
        RangePartitioner { bounds, ascending }
    }

    /// Returns the boundary keys.
    pub fn bounds(&self) -> &[Value] {
        &self.bounds
    }

    /// Returns the sort direction.
    pub fn ascending(&self) -> bool {
        self.ascending
    }
}

impl Partitioner for RangePartitioner {
    fn partition_for(&self, key: &Value) -> u32 {
        let idx = match self.bounds.binary_search(key) {
            Ok(i) => i, // on-boundary keys go left
            Err(i) => i,
        } as u32;
        if self.ascending {
            idx
        } else {
            self.num_partitions() - 1 - idx
        }
    }

    fn num_partitions(&self) -> u32 {
        self.bounds.len() as u32 + 1
    }
}

/// A shuffle map output pre-partitioned into its reduce buckets.
///
/// Built once when the map block materializes (or lazily, for range
/// shuffles, once the [`RangePartitioner`] is resolved at the barrier):
/// records are routed to `num_partitions()` buckets in original block
/// order, and each bucket's payload bytes are summed as a side effect.
/// Reduce tasks then read their bucket in O(1) instead of rescanning and
/// rehashing the whole block, and the per-fetch byte accounting is a
/// lookup instead of a walk.
///
/// Buckets are `Arc`-shared: a reduce-side fetch takes a
/// refcount-bumped handle via [`BucketedBlock::bucket_shared`] (or
/// [`BucketedBlock::bucket_batch`] for columnar row groups) rather than
/// copying the records.
#[derive(Debug, Clone, PartialEq)]
pub struct BucketedBlock {
    /// Per-reduce-partition records, original order preserved within
    /// each bucket, shared with every fetcher.
    buckets: Vec<Bucket>,
    /// Per-bucket payload bytes (sum of [`Value::size_bytes`], no
    /// per-partition framing overhead) — exactly what a reduce-side scan
    /// of the flat block would have accumulated for that bucket.
    bucket_bytes: Vec<u64>,
}

/// One reduce bucket of a [`BucketedBlock`]: row records (the default)
/// or a columnar row group when the map output was batch-encoded.
///
/// Both forms decode to the same record sequence and account the same
/// payload bytes; the columnar form lets batch-capable reducers consume
/// contiguous typed slices without rebuilding per-record `Value`s.
#[derive(Debug, Clone, PartialEq)]
pub enum Bucket {
    /// `Arc`-shared row records.
    Rows(PartitionData),
    /// `Arc`-shared columnar row group.
    Col(Arc<ColumnBatch>),
}

impl Bucket {
    /// Records in this bucket.
    pub fn len(&self) -> usize {
        match self {
            Bucket::Rows(d) => d.len(),
            Bucket::Col(b) => b.len(),
        }
    }

    /// `true` when the bucket holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bucket's records in row form: an O(1) refcount bump for row
    /// buckets, a decode for columnar ones.
    pub fn rows(&self) -> PartitionData {
        match self {
            Bucket::Rows(d) => Arc::clone(d),
            Bucket::Col(b) => Arc::new(b.to_rows()),
        }
    }
}

impl BucketedBlock {
    /// Partitions `records` into `p.num_partitions()` reduce buckets.
    ///
    /// Routing matches the reduce-side scan it replaces: pairs are
    /// bucketed by key, non-pair records by the value itself.
    pub fn partition(records: &[Value], p: &dyn Partitioner) -> Self {
        let n = p.num_partitions().max(1) as usize;
        // Pre-size each bucket for the uniform-routing expectation so the
        // hot push loop rarely reallocates.
        let per = records.len() / n + 1;
        let mut buckets: Vec<Vec<Value>> = (0..n).map(|_| Vec::with_capacity(per)).collect();
        let mut bucket_bytes = vec![0u64; n];
        for v in records {
            let key = v.key().unwrap_or(v);
            let idx = p.partition_for(key) as usize;
            // A record routed outside `0..n` would never match any reduce
            // task's `partition_for(key) == part` scan, so drop it here
            // too (cannot happen for the engine's partitioners).
            if let Some(b) = buckets.get_mut(idx) {
                bucket_bytes[idx] += v.size_bytes();
                b.push(v.clone());
            }
        }
        BucketedBlock {
            buckets: buckets
                .into_iter()
                .map(|b| Bucket::Rows(Arc::new(b)))
                .collect(),
            bucket_bytes,
        }
    }

    /// Partitions a columnar batch into `parts` hash buckets without
    /// decoding to rows, using the typed per-row key hashes.
    ///
    /// Routing is byte-identical to [`BucketedBlock::partition`] under a
    /// [`HashPartitioner`]: the key of a pair batch is its key column,
    /// any other batch hashes the record itself, and the bucket index is
    /// `stable_hash(key) % parts`. Returns `None` when the batch has no
    /// hashable key column (e.g. vector keys or row-layout batches) —
    /// the caller then falls back to the row path. Bucket byte sums use
    /// the same per-record size constants as the row path.
    pub fn partition_columnar(batch: &ColumnBatch, parts: u32) -> Option<Self> {
        let parts = parts.max(1);
        let n = parts as usize;
        let mut idx: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut bucket_bytes = vec![0u64; n];
        for i in 0..batch.len() {
            let h = batch.route_hash_at(i)?;
            let b = (h % u64::from(parts)) as usize;
            bucket_bytes[b] += batch.size_at(i);
            idx[b].push(i as u32);
        }
        let buckets = idx
            .iter()
            .map(|ix| Bucket::Col(Arc::new(batch.gather(ix))))
            .collect();
        Some(BucketedBlock {
            buckets,
            bucket_bytes,
        })
    }

    /// The number of reduce buckets.
    pub fn num_buckets(&self) -> u32 {
        self.buckets.len() as u32
    }

    /// A shared handle to reduce partition `part`'s records in row form:
    /// an O(1) refcount bump for row buckets, a decode for columnar ones
    /// (empty for an out-of-range partition).
    pub fn bucket_shared(&self, part: u32) -> PartitionData {
        match self.buckets.get(part as usize) {
            Some(Bucket::Rows(d)) => Arc::clone(d),
            Some(Bucket::Col(b)) => Arc::new(b.to_rows()),
            None => PartitionData::default(),
        }
    }

    /// The columnar row group of reduce partition `part`, when this map
    /// output was batch-partitioned (`None` for row buckets or an
    /// out-of-range partition).
    pub fn bucket_batch(&self, part: u32) -> Option<&Arc<ColumnBatch>> {
        match self.buckets.get(part as usize) {
            Some(Bucket::Col(b)) => Some(b),
            _ => None,
        }
    }

    /// Payload bytes of bucket `part` (sum of record sizes).
    pub fn bucket_bytes(&self, part: u32) -> u64 {
        self.bucket_bytes.get(part as usize).copied().unwrap_or(0)
    }

    /// Total records across all buckets.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Bucket::len).sum()
    }

    /// `true` when no bucket holds any record.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(Bucket::is_empty)
    }

    /// Total payload bytes across all buckets (no framing overhead).
    pub fn payload_bytes(&self) -> u64 {
        self.bucket_bytes.iter().sum()
    }
}

/// Reduce-side fallback scan over a flat (un-bucketed) map block:
/// collects the records routed to reduce partition `part` along with
/// their payload-byte sum.
///
/// Iterates by reference and clones only the matching records, so the
/// non-matching majority costs no refcount traffic at 64×64 fan-out.
pub fn scan_flat_bucket(records: &[Value], p: &dyn Partitioner, part: u32) -> (Vec<Value>, u64) {
    let mut out = Vec::with_capacity(records.len() / p.num_partitions().max(1) as usize + 1);
    let mut bytes = 0u64;
    for v in records {
        let key = v.key().unwrap_or(v);
        if p.partition_for(key) == part {
            bytes += v.size_bytes();
            out.push(v.clone());
        }
    }
    (out, bytes)
}

/// The partitioning scheme declared for a shuffle at RDD-creation time.
///
/// Range bounds cannot be known until the map side has produced keys, so
/// `Range` carries only the requested shape; the driver resolves the
/// concrete [`RangePartitioner`] at the shuffle barrier and caches it for
/// deterministic recomputation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShuffleKind {
    /// Hash partitioning into `parts` partitions.
    Hash {
        /// Reduce partition count.
        parts: u32,
    },
    /// Range partitioning into `parts` partitions, resolved at runtime.
    Range {
        /// Reduce partition count.
        parts: u32,
        /// Sort direction.
        ascending: bool,
    },
}

impl ShuffleKind {
    /// The number of reduce partitions this shuffle produces.
    pub fn num_partitions(&self) -> u32 {
        match self {
            ShuffleKind::Hash { parts } | ShuffleKind::Range { parts, .. } => (*parts).max(1),
        }
    }
}

/// Static description of a shuffle edge.
#[derive(Clone)]
pub struct ShuffleInfo {
    /// The shuffle id.
    pub id: ShuffleId,
    /// The map-side (parent) RDD.
    pub parent: crate::RddId,
    /// Partitioning scheme.
    pub kind: ShuffleKind,
    /// Map-side combiner (Spark's `reduceByKey` pre-aggregation): pairs
    /// with equal keys within one map output are combined before the
    /// block is stored, collapsing shuffle volume to ~one record per key
    /// per map partition.
    pub combine: Option<crate::rdd::AggFn>,
}

impl std::fmt::Debug for ShuffleInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShuffleInfo")
            .field("id", &self.id)
            .field("parent", &self.parent)
            .field("kind", &self.kind)
            .field("combine", &self.combine.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_covers_all_partitions() {
        let p = HashPartitioner::new(8);
        let mut seen = [false; 8];
        for i in 0..1000 {
            let part = p.partition_for(&Value::Int(i));
            seen[part as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all partitions should receive keys"
        );
    }

    #[test]
    fn hash_partitioner_minimum_one_partition() {
        let p = HashPartitioner::new(0);
        assert_eq!(p.num_partitions(), 1);
        assert_eq!(p.partition_for(&Value::Int(42)), 0);
    }

    #[test]
    fn range_partitioner_orders_keys() {
        let sample: Vec<Value> = (0..100).map(Value::Int).collect();
        let p = RangePartitioner::from_sample(sample, 4, true);
        assert_eq!(p.num_partitions(), 4);
        // Partition index must be monotone in the key.
        let mut last = 0;
        for k in 0..100 {
            let part = p.partition_for(&Value::Int(k));
            assert!(part >= last);
            last = part;
        }
        assert_eq!(p.partition_for(&Value::Int(0)), 0);
        assert_eq!(p.partition_for(&Value::Int(99)), 3);
    }

    #[test]
    fn descending_range_partitioner_reverses() {
        let sample: Vec<Value> = (0..100).map(Value::Int).collect();
        let p = RangePartitioner::from_sample(sample, 4, false);
        assert_eq!(p.partition_for(&Value::Int(0)), 3);
        assert_eq!(p.partition_for(&Value::Int(99)), 0);
    }

    #[test]
    fn range_partitioner_handles_tiny_samples() {
        let p = RangePartitioner::from_sample(vec![Value::Int(5)], 4, true);
        // One distinct key cannot produce 3 distinct bounds; everything
        // still lands in a valid partition.
        let part = p.partition_for(&Value::Int(5));
        assert!(part < p.num_partitions());

        let empty = RangePartitioner::from_sample(vec![], 4, true);
        assert_eq!(empty.num_partitions(), 1);
        assert_eq!(empty.partition_for(&Value::Int(1)), 0);
    }

    #[test]
    fn columnar_partition_matches_row_partition() {
        let rows: Vec<Value> = (0..200)
            .map(|i| {
                Value::pair(
                    Value::from_str_(&format!("key-{}", i % 17)),
                    Value::Float(f64::from(i) * 0.5),
                )
            })
            .collect();
        let batch = ColumnBatch::from_rows(&rows).expect("str-keyed pairs encode");
        let p = HashPartitioner::new(8);
        let by_rows = BucketedBlock::partition(&rows, &p);
        let by_cols = BucketedBlock::partition_columnar(&batch, 8).expect("hashable key column");
        assert_eq!(by_rows.num_buckets(), by_cols.num_buckets());
        for part in 0..8 {
            assert_eq!(
                by_rows.bucket_shared(part),
                by_cols.bucket_shared(part),
                "bucket {part} records"
            );
            assert_eq!(
                by_rows.bucket_bytes(part),
                by_cols.bucket_bytes(part),
                "bucket {part} bytes"
            );
            assert!(by_cols.bucket_batch(part).is_some());
        }
        assert_eq!(by_rows.len(), by_cols.len());
        assert_eq!(by_rows.payload_bytes(), by_cols.payload_bytes());
    }

    #[test]
    fn columnar_partition_refuses_unhashable_keys() {
        let rows: Vec<Value> = (0..4)
            .map(|i| Value::vector(vec![f64::from(i), 1.0]))
            .collect();
        let batch = ColumnBatch::from_rows(&rows).expect("vectors encode");
        assert!(BucketedBlock::partition_columnar(&batch, 4).is_none());
    }

    #[test]
    fn flat_scan_matches_partition_bucket() {
        let rows: Vec<Value> = (0..100)
            .map(|i| Value::pair(Value::Int(i), Value::Int(i * 2)))
            .collect();
        let p = HashPartitioner::new(4);
        let bb = BucketedBlock::partition(&rows, &p);
        for part in 0..4 {
            let (scanned, bytes) = scan_flat_bucket(&rows, &p, part);
            assert_eq!(scanned.as_slice(), &bb.bucket_shared(part)[..]);
            assert_eq!(bytes, bb.bucket_bytes(part));
        }
    }

    #[test]
    fn shuffle_kind_partition_counts() {
        assert_eq!(ShuffleKind::Hash { parts: 5 }.num_partitions(), 5);
        assert_eq!(
            ShuffleKind::Range {
                parts: 0,
                ascending: true
            }
            .num_partitions(),
            1
        );
    }
}
