//! The driver: stage planning, virtual-time task execution, failure
//! handling, and checkpoint orchestration.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

use flint_simtime::{Clock, SimDuration, SimTime};
use flint_store::StorageConfig;
use flint_trace::{EventKind, TraceHandle};

use crate::backend::{Backend, ShuffleTransport, TransientVmBackend};
use crate::block::{BlockData, BlockKey, InsertOutcome};
use crate::checkpoint::{CheckpointStore, ReadFault, WriteFault};
use crate::cluster::{Cluster, WorkerId, WorkerSpec};
use crate::context::EngineContext;
use crate::cost::CostModel;
use crate::error::{EngineError, Result};
use crate::executor::{self, CacheEffect, TaskOutput, WaveCtx};
use crate::hooks::{CheckpointDirective, CheckpointHooks, LineageView, NoCheckpoint};
use crate::injector::{FailureInjector, NoFailures, WorkerEvent};
use crate::manifest::RunManifest;
use crate::rdd::{PartitionData, RddId, RddOp, RddRef};
use crate::shuffle::{BucketedBlock, RangePartitioner, ShuffleId};
use crate::stats::{ActionRecord, RunStats};
use crate::value::Value;

/// A unified retry policy: an attempt budget plus capped exponential
/// backoff in virtual time.
///
/// One shape covers the driver's historically ad-hoc retry loops — the
/// store-outage wait, the gather re-run loop — so chaos campaigns and
/// callers tune a single kind of knob. `backoff(attempt)` doubles from
/// `backoff_base` per attempt and saturates at `backoff_cap`; a zero
/// base means "retry immediately" (no virtual time passes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts allowed before the loop gives up with a typed error.
    pub budget: u64,
    /// First backoff; each further attempt doubles it. `ZERO` retries
    /// without advancing virtual time.
    pub backoff_base: SimDuration,
    /// Ceiling on the backoff.
    pub backoff_cap: SimDuration,
}

impl RetryPolicy {
    /// A policy of `budget` immediate retries (no backoff).
    pub fn immediate(budget: u64) -> Self {
        RetryPolicy {
            budget,
            backoff_base: SimDuration::ZERO,
            backoff_cap: SimDuration::ZERO,
        }
    }

    /// A policy of `budget` retries with capped exponential backoff.
    pub fn backoff(budget: u64, base: SimDuration, cap: SimDuration) -> Self {
        RetryPolicy {
            budget,
            backoff_base: base,
            backoff_cap: cap,
        }
    }

    /// `true` once `attempt` retries have been spent.
    pub fn exhausted(&self, attempt: u64) -> bool {
        attempt >= self.budget
    }

    /// The wait before retry number `attempt` (0-based): capped
    /// exponential doubling, or `ZERO` for a no-backoff policy.
    pub fn delay(&self, attempt: u64) -> SimDuration {
        if self.backoff_base == SimDuration::ZERO {
            return SimDuration::ZERO;
        }
        let base = self.backoff_base.as_millis().max(1);
        let cap = self.backoff_cap.as_millis().max(base);
        SimDuration::from_millis(base.saturating_mul(1u64 << attempt.min(32)).min(cap))
    }
}

/// Tuning knobs for a [`Driver`].
///
/// Construct through [`DriverConfig::builder`] — the supported path, kept
/// stable as fields are added (struct-literal construction is
/// deprecated-in-spirit and may break when this becomes
/// `#[non_exhaustive]`).
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// The virtual-time cost model.
    pub cost: CostModel,
    /// The durable-storage bandwidth model.
    pub storage: StorageConfig,
    /// Hard cap on scheduler loop iterations per action, guarding against
    /// revocation livelock (MTTF far below task granularity).
    pub max_iterations: u64,
    /// Host threads used to materialize each scheduling wave's tasks in
    /// parallel (real wall-clock parallelism; virtual time is
    /// unaffected). Results are committed in fixed task-key order on the
    /// driver thread, so any value — including 1 — produces bit-identical
    /// results, statistics, and virtual-time trajectories. See the
    /// `executor` module docs for the compute/commit split.
    pub host_threads: usize,
    /// Retry policy for transient checkpoint-store outages: how many
    /// capped-exponential backoff waits a restore spends before failing
    /// the action with [`EngineError::StoreUnavailable`].
    pub store_retry: RetryPolicy,
    /// Retry policy for the gather loop: how many times the driver
    /// re-runs the job when a result block vanishes between completion
    /// and gather (same-instant revocation) before failing with
    /// [`EngineError::RetryBudgetExhausted`].
    pub gather_retry: RetryPolicy,
    /// Budget of integrity-check restore fallbacks (each one forces a
    /// lineage recompute) allowed per action before it fails with
    /// [`EngineError::RetryBudgetExhausted`]. `u64::MAX` disables the
    /// budget (the default).
    pub recompute_depth_budget: u64,
    /// Sliding window over which repeated revocations of the same
    /// external id count as flapping.
    pub flap_window: SimDuration,
    /// Revocations of one external id within [`DriverConfig::flap_window`]
    /// that quarantine it (further joins are ignored). `0` disables
    /// quarantining.
    pub flap_threshold: u32,
    /// Enables the columnar batch execution path: partitions of
    /// batch-capable ops (built through the `*_kernel` context
    /// constructors) are stored as typed column vectors and run through
    /// vectorized kernels; everything else stays on the per-record
    /// path. Either setting produces bit-identical results, virtual
    /// sizes, and traces — only host wall-clock changes. On by default.
    pub columnar: bool,
    /// When set, the driver suspends the run at the first wave-commit
    /// boundary where the committed-wave counter reaches this value: a
    /// [`RunManifest`] is persisted through the durable store and the
    /// in-flight action returns [`EngineError::Suspended`]. `None` (the
    /// default) never suspends and leaves every trace byte-identical.
    /// This is the deterministic stand-in for a driver crash — chaos
    /// campaigns wire [`crate::ChaosSchedule::driver_crash_wave`] here.
    pub suspend_after_waves: Option<u64>,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            cost: CostModel::default(),
            storage: StorageConfig::default(),
            max_iterations: 5_000_000,
            host_threads: 1,
            store_retry: RetryPolicy::backoff(
                6,
                SimDuration::from_secs(1),
                SimDuration::from_secs(60),
            ),
            gather_retry: RetryPolicy::immediate(3),
            recompute_depth_budget: u64::MAX,
            flap_window: SimDuration::from_secs(600),
            flap_threshold: 3,
            columnar: true,
            suspend_after_waves: None,
        }
    }
}

impl DriverConfig {
    /// Starts a builder preloaded with the defaults (the §5.5 cost model,
    /// default EBS bandwidth, one host thread).
    pub fn builder() -> DriverConfigBuilder {
        DriverConfigBuilder::default()
    }

    /// FNV-1a fingerprint of the determinism-relevant configuration.
    ///
    /// Covers every knob that shapes results, virtual time, or the
    /// trace; deliberately excludes `host_threads` and `columnar`
    /// (proven bit-identical by the determinism suite) and
    /// `suspend_after_waves` (which necessarily differs between a
    /// crashing run and its resume replay). [`Driver::resume`] rejects
    /// a manifest whose fingerprint does not match.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |s: &str| {
            for b in s.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&format!(
            "{:?}|{:?}|{}|{:?}|{:?}|{}|{:?}|{}",
            self.cost,
            self.storage,
            self.max_iterations,
            self.store_retry,
            self.gather_retry,
            self.recompute_depth_budget,
            self.flap_window,
            self.flap_threshold,
        ));
        h
    }
}

/// Fluent builder for [`DriverConfig`];
/// `DriverConfig::builder().build()` equals `DriverConfig::default()`.
///
/// # Examples
///
/// ```
/// use flint_engine::DriverConfig;
///
/// let cfg = DriverConfig::builder()
///     .host_threads(8)
///     .size_scale(5e5)
///     .build();
/// assert_eq!(cfg.host_threads, 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DriverConfigBuilder {
    cfg: DriverConfig,
}

impl DriverConfigBuilder {
    /// The virtual-time cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cfg.cost = cost;
        self
    }

    /// The durable-storage bandwidth model.
    pub fn storage(mut self, storage: StorageConfig) -> Self {
        self.cfg.storage = storage;
        self
    }

    /// Hard cap on scheduler loop iterations per action.
    pub fn max_iterations(mut self, max: u64) -> Self {
        self.cfg.max_iterations = max;
        self
    }

    /// Host threads used to materialize each wave in parallel. Any value
    /// produces bit-identical results; see [`DriverConfig::host_threads`].
    pub fn host_threads(mut self, threads: usize) -> Self {
        self.cfg.host_threads = threads;
        self
    }

    /// Convenience: sets the cost model's virtual-size multiplier
    /// (`cost.size_scale`), the usual knob for simulating paper-scale
    /// datasets from small in-memory collections.
    pub fn size_scale(mut self, scale: f64) -> Self {
        self.cfg.cost.size_scale = scale;
        self
    }

    /// Retry policy for transient checkpoint-store outages.
    pub fn store_retry(mut self, policy: RetryPolicy) -> Self {
        self.cfg.store_retry = policy;
        self
    }

    /// Retry policy for the gather re-run loop.
    pub fn gather_retry(mut self, policy: RetryPolicy) -> Self {
        self.cfg.gather_retry = policy;
        self
    }

    /// Transient-store read retries before an action fails with
    /// [`EngineError::StoreUnavailable`] (shorthand for adjusting
    /// `store_retry.budget`).
    pub fn store_retry_limit(mut self, retries: u64) -> Self {
        self.cfg.store_retry.budget = retries;
        self
    }

    /// First store-retry backoff (doubles per attempt).
    pub fn store_backoff_base(mut self, base: SimDuration) -> Self {
        self.cfg.store_retry.backoff_base = base;
        self
    }

    /// Ceiling on the store-retry backoff.
    pub fn store_backoff_cap(mut self, cap: SimDuration) -> Self {
        self.cfg.store_retry.backoff_cap = cap;
        self
    }

    /// Suspend the run once this many waves have committed (see
    /// [`DriverConfig::suspend_after_waves`]).
    pub fn suspend_after_waves(mut self, waves: u64) -> Self {
        self.cfg.suspend_after_waves = Some(waves);
        self
    }

    /// Per-action budget of integrity-check restore fallbacks.
    pub fn recompute_depth_budget(mut self, budget: u64) -> Self {
        self.cfg.recompute_depth_budget = budget;
        self
    }

    /// Sliding window for flapping-worker detection.
    pub fn flap_window(mut self, window: SimDuration) -> Self {
        self.cfg.flap_window = window;
        self
    }

    /// Revocations within the flap window that quarantine an external
    /// id (`0` disables).
    pub fn flap_threshold(mut self, threshold: u32) -> Self {
        self.cfg.flap_threshold = threshold;
        self
    }

    /// Enables or disables the columnar batch path (on by default);
    /// results are bit-identical either way, see
    /// [`DriverConfig::columnar`].
    pub fn columnar(mut self, on: bool) -> Self {
        self.cfg.columnar = on;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> DriverConfig {
        self.cfg
    }
}

/// A schedulable unit of work.
///
/// The derived `Ord` defines the commit order within a wave: outputs are
/// admitted in ascending `TaskKey` order regardless of which host thread
/// computed them first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum TaskKey {
    /// Produce the shuffle map output block for `(shuffle, map_part)`.
    ShuffleMap { shuffle: ShuffleId, map_part: u32 },
    /// Materialize and cache partition `part` of the job target.
    Output { rdd: RddId, part: u32 },
    /// Durably write a checkpoint.
    Ckpt(CkptJob),
}

/// A pending checkpoint write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum CkptJob {
    /// Checkpoint `(rdd, part)`.
    RddPart(RddId, u32),
    /// Checkpoint a shuffle map output (systems-level baseline).
    Shuffle(ShuffleId, u32),
}

/// What to do when a running task completes.
#[derive(Debug, Clone)]
enum Commit {
    /// Insert a block into the executing worker's store.
    Block(BlockKey),
    /// Write a checkpoint object of `wire` serialized bytes.
    Checkpoint { job: CkptJob, wire: u64 },
}

#[derive(Debug, Clone)]
struct Running {
    key: TaskKey,
    worker: WorkerId,
    finish: SimTime,
    data: BlockData,
    vbytes: u64,
    duration: SimDuration,
    commit: Commit,
    touched: Vec<(RddId, u32, u64)>,
    seq: u64,
    /// Backend invocation id assigned at admission (0 = the backend
    /// registered no invocation for this task).
    invocation: u64,
}

/// Internal materialization failure: a required shuffle input vanished
/// between planning and execution (cannot normally happen; handled by
/// replanning).
#[derive(Debug)]
pub(crate) struct MissingShuffle;

/// The execution engine: owns the lineage context, the simulated cluster,
/// the checkpoint store, and the virtual clock.
///
/// See the [crate-level documentation](crate) for the execution model.
pub struct Driver {
    ctx: EngineContext,
    cluster: Cluster,
    ckpt: CheckpointStore,
    backend: Box<dyn Backend>,
    hooks: Box<dyn CheckpointHooks>,
    injector: Box<dyn FailureInjector>,
    clock: Clock,
    stats: RunStats,
    trace: TraceHandle,
    config: DriverConfig,
    range_cache: BTreeMap<ShuffleId, RangePartitioner>,
    computed_once: HashSet<(RddId, u32)>,
    fired_materialized: HashSet<RddId>,
    marked_ckpt: HashSet<RddId>,
    ckpt_queue: VecDeque<CkptJob>,
    ckpt_queued: BTreeSet<CkptJob>,
    running: Vec<Running>,
    in_flight: BTreeSet<TaskKey>,
    last_pumped: SimTime,
    next_local_ext: u64,
    task_seq: u64,
    /// Blocks whose corrupt/unavailable checkpoint the driver has
    /// already paired with a `RestoreFallback` event (dedup across
    /// planning iterations).
    corrupt_reported: HashSet<String>,
    /// Recent revocation instants per external id (flap detection).
    remove_times: HashMap<u64, VecDeque<SimTime>>,
    /// External ids quarantined for flapping: their joins are ignored.
    quarantined: HashSet<u64>,
    /// Integrity-check restore fallbacks admitted during the current
    /// action (checked against `config.recompute_depth_budget`).
    fallback_recomputes: u64,
    /// Committed-wave frontier: `advance_and_commit` calls that landed
    /// at least one task. Deterministic across `host_threads`, so it is
    /// the resume-manifest's notion of progress.
    waves_committed: u64,
    /// Session tag naming this run's manifest key in the durable store.
    session: String,
    /// A suspension is armed and fires at the next loop boundary.
    pending_suspend: bool,
    /// Manifest a resume replay must cross and verify against.
    resume_check: Option<RunManifest>,
    /// A resume replay diverged from its manifest; surfaced as a typed
    /// error at the next loop boundary.
    resume_failed: Option<EngineError>,
}

impl Driver {
    /// Creates a driver with explicit policy hooks and failure injector.
    pub fn new(
        config: DriverConfig,
        hooks: Box<dyn CheckpointHooks>,
        injector: Box<dyn FailureInjector>,
    ) -> Self {
        let storage = config.storage;
        Driver {
            ctx: EngineContext::new(),
            cluster: Cluster::new(),
            ckpt: CheckpointStore::new(storage),
            backend: Box::new(TransientVmBackend),
            hooks,
            injector,
            clock: Clock::new(),
            stats: RunStats::default(),
            trace: TraceHandle::disabled(),
            config,
            range_cache: BTreeMap::new(),
            computed_once: HashSet::new(),
            fired_materialized: HashSet::new(),
            marked_ckpt: HashSet::new(),
            ckpt_queue: VecDeque::new(),
            ckpt_queued: BTreeSet::new(),
            running: Vec::new(),
            in_flight: BTreeSet::new(),
            last_pumped: SimTime::ZERO,
            next_local_ext: 1 << 40,
            task_seq: 0,
            corrupt_reported: HashSet::new(),
            remove_times: HashMap::new(),
            quarantined: HashSet::new(),
            fallback_recomputes: 0,
            waves_committed: 0,
            session: "run".to_string(),
            pending_suspend: false,
            resume_check: None,
            resume_failed: None,
        }
    }

    /// Creates a driver with `n` healthy local workers, no checkpointing
    /// policy, and no failures — a correctness sandbox. Wave execution
    /// uses all available host cores (results are identical to
    /// `host_threads = 1` by construction).
    pub fn local(n: u32) -> Self {
        let mut d = Driver::new(
            DriverConfig {
                host_threads: std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
                ..DriverConfig::default()
            },
            Box::new(NoCheckpoint),
            Box::new(NoFailures),
        );
        for _ in 0..n.max(1) {
            d.add_worker(WorkerSpec::r3_large());
        }
        d
    }

    /// Adds a worker immediately (outside the failure injector).
    pub fn add_worker(&mut self, spec: WorkerSpec) -> WorkerId {
        let ext = self.next_local_ext;
        self.next_local_ext += 1;
        self.cluster.add_worker(ext, spec, self.clock.now())
    }

    /// Adds a worker with a caller-chosen external id, so scripted
    /// injectors can later target it with `WorkerEvent::Remove`.
    pub fn add_worker_with_ext(&mut self, ext_id: u64, spec: WorkerSpec) -> WorkerId {
        self.cluster.add_worker(ext_id, spec, self.clock.now())
    }

    /// Returns the RDD construction context.
    pub fn ctx(&mut self) -> &mut EngineContext {
        &mut self.ctx
    }

    /// Returns the lineage graph.
    pub fn lineage(&self) -> &crate::Lineage {
        self.ctx.lineage()
    }

    /// Returns the current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Jumps the virtual clock forward to `t` without simulating the gap
    /// (used to start a session mid-trace so backward-looking market
    /// statistics have history). Injector events in the skipped span are
    /// delivered on the next pump.
    pub fn warp_to(&mut self, t: SimTime) {
        self.clock.advance_to(t);
    }

    /// Returns accumulated execution statistics.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Resets execution statistics (e.g. after warm-up).
    pub fn reset_stats(&mut self) {
        self.stats = RunStats::default();
    }

    /// Sets the session tag naming this run's manifest key in the
    /// durable store (`manifest/<tag>`). A run that may suspend and its
    /// resume replay must agree on the tag.
    pub fn set_session(&mut self, tag: impl Into<String>) {
        self.session = tag.into();
    }

    /// The committed-wave frontier so far: scheduler advances that
    /// landed at least one task commit. Deterministic across
    /// `host_threads`, so it is the [`RunManifest`] notion of progress.
    pub fn waves_committed(&self) -> u64 {
        self.waves_committed
    }

    /// Snapshots the current run state as a [`RunManifest`] — exactly
    /// what a suspension persists to the durable store.
    pub fn manifest(&self) -> RunManifest {
        self.build_manifest()
    }

    /// Arms a resume replay against `manifest`.
    ///
    /// The engine is deterministic, so crash recovery is re-launching
    /// the identical session and replaying it; the manifest is the
    /// verification artifact. Call on a freshly built driver (same
    /// config, workload, and injector as the crashed run) before
    /// re-running the actions: when the replay's committed-wave frontier
    /// crosses `manifest.frontier`, the driver checks virtual time and
    /// stats against the manifest and emits `RunResumed` — a mismatch
    /// surfaces as [`EngineError::ResumeDiverged`] instead of silently
    /// continuing a divergent run. Rejects a manifest whose config
    /// fingerprint does not match this driver's.
    pub fn resume(&mut self, manifest: &RunManifest) -> Result<()> {
        let fp = self.config.fingerprint();
        if manifest.config_fp != fp {
            return Err(EngineError::ResumeDiverged {
                field: "config_fp",
                expected: manifest.config_fp,
                actual: fp,
            });
        }
        self.session.clone_from(&manifest.session);
        if manifest.frontier == 0 {
            // Crashed before any wave committed: nothing to verify.
            let key = manifest.store_key();
            let now = self.clock.now();
            self.trace.emit_with(now, || EventKind::RunResumed {
                manifest: key.clone(),
                frontier: 0,
            });
            return Ok(());
        }
        self.resume_check = Some(manifest.clone());
        Ok(())
    }

    fn build_manifest(&self) -> RunManifest {
        let mut blocks: Vec<String> = self
            .ckpt
            .store()
            .keys_with_prefix("")
            .into_iter()
            .map(str::to_string)
            .collect();
        blocks.retain(|k| !k.starts_with("manifest/"));
        RunManifest {
            version: 1,
            session: self.session.clone(),
            config_fp: self.config.fingerprint(),
            frontier: self.waves_committed,
            now_ms: self.clock.now().as_millis(),
            tasks_run: self.stats.tasks_run,
            revocations: self.stats.revocations,
            checkpoints_written: self.stats.checkpoints_written,
            blocks,
        }
    }

    /// Persists the run manifest and returns the typed suspension
    /// error the in-flight action propagates.
    fn suspend_now(&mut self) -> EngineError {
        let now = self.clock.now();
        let m = self.build_manifest();
        let key = m.store_key();
        let frontier = m.frontier;
        self.ckpt.put_manifest(&key, &m.encode(), now);
        self.trace.emit_with(now, || EventKind::RunSuspended {
            manifest: key.clone(),
            frontier,
        });
        EngineError::Suspended {
            manifest: key,
            frontier,
        }
    }

    /// Typed interruption pending at a scheduler loop boundary: an
    /// armed suspension or a failed resume verification. `None` on the
    /// hot path when neither feature is in use.
    fn take_interrupt(&mut self) -> Option<EngineError> {
        if let Some(e) = self.resume_failed.take() {
            return Some(e);
        }
        if self.pending_suspend {
            self.pending_suspend = false;
            return Some(self.suspend_now());
        }
        None
    }

    /// Verifies a resume replay the moment its frontier reaches the
    /// manifest's: virtual time and stats must match exactly, or the
    /// replay is flagged divergent.
    fn check_resume_frontier(&mut self) {
        let due = self
            .resume_check
            .as_ref()
            .map(|m| self.waves_committed >= m.frontier)
            .unwrap_or(false);
        if !due {
            return;
        }
        let m = self.resume_check.take().expect("checked above");
        let now_ms = self.clock.now().as_millis();
        let mismatch = if self.waves_committed > m.frontier {
            Some(("frontier", m.frontier, self.waves_committed))
        } else if now_ms != m.now_ms {
            Some(("now_ms", m.now_ms, now_ms))
        } else if self.stats.tasks_run != m.tasks_run {
            Some(("tasks_run", m.tasks_run, self.stats.tasks_run))
        } else if self.stats.revocations != m.revocations {
            Some(("revocations", m.revocations, self.stats.revocations))
        } else if self.stats.checkpoints_written != m.checkpoints_written {
            Some((
                "checkpoints_written",
                m.checkpoints_written,
                self.stats.checkpoints_written,
            ))
        } else {
            None
        };
        match mismatch {
            Some((field, expected, actual)) => {
                self.resume_failed = Some(EngineError::ResumeDiverged {
                    field,
                    expected,
                    actual,
                });
            }
            None => {
                let now = self.clock.now();
                let key = m.store_key();
                let frontier = m.frontier;
                self.trace.emit_with(now, || EventKind::RunResumed {
                    manifest: key.clone(),
                    frontier,
                });
            }
        }
    }

    /// Returns the cluster view.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Returns the checkpoint store.
    pub fn checkpoints(&self) -> &CheckpointStore {
        &self.ckpt
    }

    /// Returns the checkpoint store mutably (cost accounting).
    pub fn checkpoints_mut(&mut self) -> &mut CheckpointStore {
        &mut self.ckpt
    }

    /// Returns the cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.config.cost
    }

    /// Replaces the cost model (calibration).
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.config.cost = cost;
    }

    /// Number of queued (not yet written) checkpoint partitions.
    pub fn pending_checkpoints(&self) -> usize {
        self.ckpt_queue.len()
            + self
                .running
                .iter()
                .filter(|r| matches!(r.key, TaskKey::Ckpt(_)))
                .count()
    }

    /// Runs checkpoint garbage collection, returning deleted objects.
    pub fn gc_checkpoints(&mut self) -> usize {
        let now = self.clock.now();
        self.ckpt.gc(self.ctx.lineage(), now)
    }

    // ------------------------------------------------------------------
    // Actions
    // ------------------------------------------------------------------

    /// Materializes `r` and returns all its elements in partition order.
    pub fn collect(&mut self, r: RddRef) -> Result<Vec<Value>> {
        let parts = self.run_action(r.id, "collect")?;
        let total = parts.iter().map(|p| p.len()).sum();
        let mut out = Vec::with_capacity(total);
        for p in parts {
            out.extend_from_slice(&p);
        }
        Ok(out)
    }

    /// Materializes `r` and returns its element count.
    pub fn count(&mut self, r: RddRef) -> Result<u64> {
        let parts = self.run_action(r.id, "count")?;
        Ok(parts.iter().map(|p| p.len() as u64).sum())
    }

    /// Materializes `r` and folds its elements with `f`.
    ///
    /// Returns [`EngineError::EmptyDataset`] if `r` is empty.
    pub fn reduce(&mut self, r: RddRef, f: impl Fn(&Value, &Value) -> Value) -> Result<Value> {
        let parts = self.run_action(r.id, "reduce")?;
        let mut acc: Option<Value> = None;
        for p in parts {
            for v in p.iter() {
                acc = Some(match acc {
                    None => v.clone(),
                    Some(a) => f(&a, v),
                });
            }
        }
        acc.ok_or(EngineError::EmptyDataset)
    }

    /// Materializes `r` and returns up to `n` elements in partition order.
    pub fn take(&mut self, r: RddRef, n: usize) -> Result<Vec<Value>> {
        let parts = self.run_action(r.id, "take")?;
        let mut out = Vec::with_capacity(n);
        for p in parts {
            for v in p.iter() {
                if out.len() >= n {
                    return Ok(out);
                }
                out.push(v.clone());
            }
        }
        Ok(out)
    }

    /// Materializes `r` and returns its first element, if any.
    pub fn first(&mut self, r: RddRef) -> Result<Option<Value>> {
        Ok(self.take(r, 1)?.into_iter().next())
    }

    /// Materializes `r` and returns the `n` smallest elements (by total
    /// order), like Spark's `takeOrdered`.
    pub fn take_ordered(&mut self, r: RddRef, n: usize) -> Result<Vec<Value>> {
        let mut all = self.collect(r)?;
        all.sort();
        all.truncate(n);
        Ok(all)
    }

    /// Materializes a pair RDD and counts elements per key.
    pub fn count_by_key(&mut self, r: RddRef) -> Result<std::collections::BTreeMap<Value, u64>> {
        let parts = self.run_action(r.id, "count_by_key")?;
        let mut counts = std::collections::BTreeMap::new();
        for p in parts {
            for v in p.iter() {
                let key = v.key().cloned().unwrap_or(Value::Null);
                *counts.entry(key).or_insert(0u64) += 1;
            }
        }
        Ok(counts)
    }

    /// Explicitly checkpoints `r` (like Spark's `rdd.checkpoint()` +
    /// materialization): runs a job to materialize it, then enqueues
    /// durable writes and drains them.
    pub fn checkpoint_now(&mut self, r: RddRef) -> Result<()> {
        self.run_action(r.id, "checkpoint")?;
        self.apply_directives(vec![CheckpointDirective::Checkpoint(r.id)]);
        self.drain_checkpoints()?;
        Ok(())
    }

    /// Advances virtual time to `t`, draining checkpoint writes and
    /// processing failure events while "idle" (an interactive session
    /// between queries).
    pub fn idle_until(&mut self, t: SimTime) -> Result<()> {
        let mut iterations = 0u64;
        loop {
            iterations += 1;
            if iterations > self.config.max_iterations {
                return Err(EngineError::JobBudgetExhausted {
                    phase: "idle",
                    iterations,
                });
            }
            if let Some(e) = self.take_interrupt() {
                return Err(e);
            }
            self.poll_hooks();
            self.assign_checkpoint_jobs();
            let now = self.clock.now();
            if now >= t && self.running.is_empty() {
                return Ok(());
            }
            let t_task = self.running.iter().map(|r| r.finish).min();
            let t_inj = self.injector.next_event_after(now);
            let mut next = t;
            if let Some(tt) = t_task {
                next = next.min(tt);
            }
            if let Some(ti) = t_inj {
                next = next.min(ti);
            }
            if next <= now {
                // Running tasks that finish exactly now, or we are done.
                if t_task.map(|tt| tt <= now).unwrap_or(false) {
                    self.advance_and_commit(now);
                    continue;
                }
                if now >= t {
                    // Only tasks beyond `t` remain: let them finish.
                    if let Some(tt) = t_task {
                        self.advance_and_commit(tt);
                        continue;
                    }
                    return Ok(());
                }
                self.clock
                    .advance_to(t.min(next.max(now + SimDuration::from_millis(1))));
                self.pump_injector();
                continue;
            }
            self.advance_and_commit(next);
        }
    }

    // ------------------------------------------------------------------
    // The scheduler loop
    // ------------------------------------------------------------------

    /// Runs a job materializing every partition of `target`, then gathers
    /// the partitions to the driver. Records an [`ActionRecord`].
    fn run_action(&mut self, target: RddId, label: &str) -> Result<Vec<PartitionData>> {
        if !self.ctx.lineage().contains(target) {
            return Err(EngineError::UnknownRdd(target));
        }
        let started = self.clock.now();
        let name = format!("{label}(rdd-{})", target.0);
        self.trace
            .emit_with(started, || EventKind::ActionStarted { name: name.clone() });
        self.fallback_recomputes = 0;
        self.pump_injector();
        self.run_job(target)?;
        let parts = self.gather(target)?;
        let finished = self.clock.now();
        self.trace
            .emit_with(finished, || EventKind::ActionFinished {
                name: name.clone(),
                millis: (finished - started).as_millis(),
            });
        self.stats.actions.push(ActionRecord {
            name,
            started,
            finished,
        });
        Ok(parts)
    }

    fn run_job(&mut self, target: RddId) -> Result<()> {
        let mut iterations = 0u64;
        loop {
            iterations += 1;
            if iterations > self.config.max_iterations {
                return Err(EngineError::RetryBudgetExhausted { rdd: target });
            }
            if self.fallback_recomputes > self.config.recompute_depth_budget {
                return Err(EngineError::RetryBudgetExhausted { rdd: target });
            }
            if let Some(e) = self.take_interrupt() {
                return Err(e);
            }

            self.poll_hooks();

            let (ready, done) = self.plan_ready(target);
            if done {
                return Ok(());
            }
            self.report_unreadable_shuffles(&ready);

            // Materialize every ready task in parallel against the
            // wave-start snapshot, then admit the results sequentially in
            // fixed task-key order (`plan_ready` yields sorted keys), so
            // scheduling and accounting are bit-identical for any
            // `host_threads` setting. Checkpoint writes follow.
            let pending: Vec<TaskKey> = ready
                .into_iter()
                .filter(|k| !self.in_flight.contains(k))
                .collect();
            let mut assigned_any = false;
            if !pending.is_empty() && self.cluster.alive_count() > 0 {
                self.trace
                    .emit_with(self.clock.now(), || EventKind::WaveStarted {
                        tasks: pending.len() as u64,
                    });
                let outputs = self.compute_wave(&pending);
                for (key, out) in pending.into_iter().zip(outputs) {
                    if let Some(out) = out {
                        if self.admit_task(key, out) {
                            assigned_any = true;
                        }
                    }
                }
            }
            self.assign_checkpoint_jobs();

            let now = self.clock.now();
            let t_task = self.running.iter().map(|r| r.finish).min();
            let t_inj = self.injector.next_event_after(now);

            match (t_task, t_inj) {
                (None, None) => {
                    if !assigned_any {
                        return Err(EngineError::NoWorkers);
                    }
                }
                (None, Some(ti)) => {
                    // Stalled waiting for workers.
                    self.stats.stall_time += ti - now;
                    self.trace.emit_with(now, || EventKind::Stalled {
                        millis: (ti - now).as_millis(),
                    });
                    self.clock.advance_to(ti);
                    self.pump_injector();
                }
                (Some(tt), Some(ti)) if ti < tt => {
                    self.clock.advance_to(ti);
                    self.pump_injector();
                }
                (Some(tt), _) => {
                    self.advance_and_commit(tt);
                }
            }
        }
    }

    /// Advances the clock to `t`, processing injector events at or before
    /// `t` first (ties: revocations beat completions), then committing
    /// every running task that finishes by `t` on a still-alive worker.
    fn advance_and_commit(&mut self, t: SimTime) {
        self.clock.advance_to(t);
        self.pump_injector();
        let mut finished: Vec<Running> = Vec::new();
        let mut rest: Vec<Running> = Vec::new();
        for r in self.running.drain(..) {
            if r.finish <= t {
                finished.push(r);
            } else {
                rest.push(r);
            }
        }
        self.running = rest;
        finished.sort_by_key(|r| (r.finish, r.seq));
        let committed_any = !finished.is_empty();
        for r in finished {
            self.in_flight.remove(&r.key);
            self.commit_task(r);
        }
        if committed_any {
            self.waves_committed += 1;
            if self.config.suspend_after_waves == Some(self.waves_committed) {
                self.pending_suspend = true;
            }
            self.check_resume_frontier();
        }
    }

    /// Delivers all failure-injector events up to the current instant,
    /// interleaving any planted-fault notes (chaos campaigns) into the
    /// trace by time so the stream stays chronologically ordered.
    fn pump_injector(&mut self) {
        let now = self.clock.now();
        if now < self.last_pumped {
            return;
        }
        let from = self.last_pumped;
        let events = self.injector.events(from, now);
        let notes = self.injector.fault_notes(from, now);
        self.last_pumped = now;
        let mut notes = notes.into_iter().peekable();
        for (t, ev) in events {
            while notes.peek().map(|(nt, _, _)| *nt <= t).unwrap_or(false) {
                let (nt, kind, target) = notes.next().expect("peeked");
                self.trace.emit_with(nt, || EventKind::FaultInjected {
                    kind: kind.clone(),
                    target: target.clone(),
                });
            }
            match ev {
                WorkerEvent::Add { ext_id, spec } => {
                    if self.quarantined.contains(&ext_id) {
                        // A flapping instance rejoining: refuse it so
                        // its next revocation cannot strand tasks again.
                        continue;
                    }
                    self.cluster.add_worker(ext_id, spec, t);
                    self.trace
                        .emit_with(t, || EventKind::WorkerAdded { ext: ext_id });
                }
                WorkerEvent::Warn { ext_id } => {
                    self.stats.warnings += 1;
                    self.trace
                        .emit_with(t, || EventKind::RevocationWarning { ext: ext_id });
                    self.hooks.on_warning(ext_id, t);
                }
                WorkerEvent::Remove { ext_id } => {
                    if let Some(wid) = self.cluster.remove_by_ext(ext_id) {
                        self.stats.revocations += 1;
                        self.trace
                            .emit_with(t, || EventKind::WorkerRevoked { ext: ext_id });
                        self.hooks.on_revocation(ext_id, t);
                        self.invalidate_worker(wid);
                        self.note_remove(ext_id, t);
                    }
                }
            }
        }
        for (nt, kind, target) in notes {
            self.trace.emit_with(nt, || EventKind::FaultInjected {
                kind: kind.clone(),
                target: target.clone(),
            });
        }
    }

    /// Flap detection: a worker revoked [`DriverConfig::flap_threshold`]
    /// times within [`DriverConfig::flap_window`] is quarantined — its
    /// future joins are ignored, so replacement capacity comes from
    /// stable instances instead.
    fn note_remove(&mut self, ext_id: u64, t: SimTime) {
        if self.config.flap_threshold == 0 || self.quarantined.contains(&ext_id) {
            return;
        }
        let window = self.config.flap_window;
        let times = self.remove_times.entry(ext_id).or_default();
        times.push_back(t);
        while times.front().map(|&f| f + window < t).unwrap_or(false) {
            times.pop_front();
        }
        if times.len() as u32 >= self.config.flap_threshold {
            let removes = times.len() as u64;
            self.quarantined.insert(ext_id);
            self.remove_times.remove(&ext_id);
            self.trace.emit_with(t, || EventKind::WorkerQuarantined {
                ext: ext_id,
                removes,
            });
        }
    }

    /// Discards in-flight tasks on a dead worker; checkpoint jobs are
    /// requeued, compute tasks are replanned naturally.
    fn invalidate_worker(&mut self, wid: WorkerId) {
        let mut keep: Vec<Running> = Vec::new();
        for r in self.running.drain(..) {
            if r.worker == wid {
                self.in_flight.remove(&r.key);
                if let TaskKey::Ckpt(job) = r.key {
                    if self.ckpt_queued.insert(job) {
                        self.ckpt_queue.push_back(job);
                    }
                }
            } else {
                keep.push(r);
            }
        }
        self.running = keep;
    }

    // ------------------------------------------------------------------
    // Planning
    // ------------------------------------------------------------------

    fn rdd_part_available(&self, rdd: RddId, part: u32) -> bool {
        self.ckpt.readable(rdd, part, self.clock.now())
            || self
                .cluster
                .locate(&BlockKey::RddPart { rdd, part })
                .is_some()
    }

    fn shuffle_block_available(&self, s: ShuffleId, mp: u32) -> bool {
        self.cluster
            .locate(&BlockKey::ShuffleMap {
                shuffle: s,
                map_part: mp,
            })
            .is_some()
            || self.ckpt.shuffle_readable(s, mp, self.clock.now())
    }

    /// Emits the detection/fallback event pair for shuffle checkpoints
    /// the planner just declared unreadable (corrupt or mid-outage):
    /// the scheduled `ShuffleMap` recompute in `ready` is their
    /// fallback. RDD-part fallbacks are reported by the executor at the
    /// restore site; this covers the shuffle side, where "fallback"
    /// means the planner re-runs the map task instead. Deduplicated per
    /// block so replanning iterations do not repeat the pair.
    fn report_unreadable_shuffles(&mut self, ready: &[TaskKey]) {
        let now = self.clock.now();
        for key in ready {
            let TaskKey::ShuffleMap { shuffle, map_part } = *key else {
                continue;
            };
            if !self.ckpt.has_shuffle(shuffle, map_part) {
                continue;
            }
            let Some(fault) = self.ckpt.shuffle_read_fault(shuffle, map_part, now) else {
                continue;
            };
            let block = BlockKey::ShuffleMap { shuffle, map_part }.to_string();
            if !self.corrupt_reported.insert(block.clone()) {
                continue;
            }
            self.fallback_recomputes += 1;
            if fault == ReadFault::Corrupt {
                self.trace
                    .emit_with(now, || EventKind::CheckpointCorruptDetected {
                        block: block.clone(),
                    });
            }
            self.trace.emit_with(now, || EventKind::RestoreFallback {
                block: block.clone(),
                reason: match fault {
                    ReadFault::Corrupt => "corrupt",
                    ReadFault::Unavailable => "outage",
                }
                .to_string(),
            });
        }
    }

    /// Collects missing shuffle inputs for computing `(rdd, part)`
    /// through its narrow cone.
    fn missing_deps(&self, rdd: RddId, part: u32, acc: &mut BTreeSet<(ShuffleId, u32)>) {
        if self.rdd_part_available(rdd, part) {
            return;
        }
        let meta = self.ctx.lineage().meta(rdd);
        match &meta.op {
            RddOp::Parallelize { .. } => {}
            RddOp::Union => {
                let (p, pp) = self.ctx.lineage().union_source(rdd, part);
                self.missing_deps(p, pp, acc);
            }
            RddOp::Coalesce { group } => {
                let parent = meta.parents[0];
                let n = self.ctx.lineage().meta(parent).num_partitions;
                let lo = part * group;
                let hi = (lo + group).min(n);
                for pp in lo..hi {
                    self.missing_deps(parent, pp, acc);
                }
            }
            op if op.is_shuffle() => {
                for s in op.input_shuffles() {
                    let parent = self.ctx.lineage().shuffle(s).parent;
                    let m = self.ctx.lineage().meta(parent).num_partitions;
                    for mp in 0..m {
                        if !self.shuffle_block_available(s, mp) {
                            acc.insert((s, mp));
                        }
                    }
                }
            }
            _ => {
                // Narrow single-parent ops are partition-aligned.
                let parent = meta.parents[0];
                self.missing_deps(parent, part, acc);
            }
        }
    }

    /// Returns the currently runnable tasks for `target`, and whether the
    /// target is fully available.
    fn plan_ready(&self, target: RddId) -> (Vec<TaskKey>, bool) {
        let n = self.ctx.lineage().meta(target).num_partitions;
        let missing: Vec<u32> = (0..n)
            .filter(|p| !self.rdd_part_available(target, *p))
            .collect();
        if missing.is_empty() {
            return (Vec::new(), true);
        }
        let mut ready: BTreeSet<TaskKey> = BTreeSet::new();
        let mut seen: BTreeSet<TaskKey> = BTreeSet::new();
        let mut queue: VecDeque<TaskKey> = missing
            .into_iter()
            .map(|part| TaskKey::Output { rdd: target, part })
            .collect();
        while let Some(task) = queue.pop_front() {
            if !seen.insert(task) {
                continue;
            }
            let (rdd, part) = match task {
                TaskKey::Output { rdd, part } => (rdd, part),
                TaskKey::ShuffleMap { shuffle, map_part } => {
                    (self.ctx.lineage().shuffle(shuffle).parent, map_part)
                }
                TaskKey::Ckpt(_) => continue,
            };
            let mut deps = BTreeSet::new();
            self.missing_deps(rdd, part, &mut deps);
            // A shuffle-map task for an *available* parent partition still
            // needs to run (to produce the map output block); its deps are
            // then empty by construction.
            if deps.is_empty() {
                ready.insert(task);
            } else {
                for (s, mp) in deps {
                    queue.push_back(TaskKey::ShuffleMap {
                        shuffle: s,
                        map_part: mp,
                    });
                }
            }
        }
        (ready.into_iter().collect(), false)
    }

    // ------------------------------------------------------------------
    // Assignment & commit
    // ------------------------------------------------------------------

    /// Prefers the worker already caching the narrow-chain input of
    /// `(rdd, part)`.
    fn preferred_worker(&self, rdd: RddId, part: u32) -> Option<WorkerId> {
        let mut cur = (rdd, part);
        loop {
            if let Some((wid, _, _)) = self.cluster.locate(&BlockKey::RddPart {
                rdd: cur.0,
                part: cur.1,
            }) {
                return Some(wid);
            }
            let meta = self.ctx.lineage().meta(cur.0);
            match &meta.op {
                RddOp::Union => {
                    cur = self.ctx.lineage().union_source(cur.0, cur.1);
                }
                RddOp::Coalesce { group } => {
                    cur = (meta.parents[0], cur.1 * group);
                }
                op if op.is_shuffle() || matches!(op, RddOp::Parallelize { .. }) => {
                    return None;
                }
                _ => {
                    cur = (meta.parents[0], cur.1);
                }
            }
        }
    }

    fn pick_worker(&self, prefer: Option<WorkerId>) -> Option<WorkerId> {
        let alive = self.cluster.alive();
        if alive.is_empty() {
            return None;
        }
        let now = self.clock.now();
        let least_loaded = alive
            .into_iter()
            .min_by_key(|w| (self.cluster.worker(*w).earliest_free(now), w.0))?;
        if let Some(p) = prefer {
            let pw = self.cluster.worker(p);
            if pw.alive {
                // Delay scheduling (Spark-style bounded locality wait):
                // prefer the data-local worker unless it is backed up well
                // past the least-loaded one — then eat the network fetch
                // rather than pile tasks onto one node's cores.
                let locality_wait = SimDuration::from_secs(3);
                if pw.earliest_free(now)
                    <= self.cluster.worker(least_loaded).earliest_free(now) + locality_wait
                {
                    return Some(p);
                }
            }
        }
        Some(least_loaded)
    }

    /// Attaches the shared trace handle; the driver emits all engine
    /// lifecycle events on it, in commit order.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The driver's trace handle (disabled by default).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// Installs the execution backend. The default
    /// [`TransientVmBackend`] is a guaranteed no-op, so calling this
    /// with it (or never calling it) leaves every trace byte-identical
    /// to the pre-abstraction engine. Install before running actions:
    /// swapping backends mid-job would orphan in-flight invocations.
    pub fn set_backend(&mut self, backend: Box<dyn Backend>) {
        self.backend = backend;
    }

    /// The installed execution backend.
    pub fn backend(&self) -> &dyn Backend {
        self.backend.as_ref()
    }

    /// Emits the cache-churn events for one traced block insert: any
    /// spills and evictions the insert forced, then the insert itself.
    fn emit_cache(&self, t: SimTime, ext: u64, key: BlockKey, vbytes: u64, out: &InsertOutcome) {
        if !self.trace.is_enabled() {
            return;
        }
        for (bk, vb) in &out.spilled {
            self.trace.emit(
                t,
                EventKind::CacheSpill {
                    worker: ext,
                    block: bk.to_string(),
                    vbytes: *vb,
                },
            );
        }
        for (bk, vb) in &out.dropped {
            self.trace.emit(
                t,
                EventKind::CacheEvict {
                    worker: ext,
                    block: bk.to_string(),
                    vbytes: *vb,
                },
            );
        }
        if out.stored {
            self.trace.emit(
                t,
                EventKind::CacheInsert {
                    worker: ext,
                    block: key.to_string(),
                    vbytes,
                },
            );
        }
    }

    /// Builds the immutable snapshot the wave executor's host threads
    /// read. Borrowing rules guarantee the snapshot cannot change while a
    /// wave is computing.
    fn wave_ctx(&self) -> WaveCtx<'_> {
        WaveCtx {
            lineage: self.ctx.lineage(),
            cluster: &self.cluster,
            ckpt: &self.ckpt,
            cost: &self.config.cost,
            computed_once: &self.computed_once,
            range_cache: &self.range_cache,
            now: self.clock.now(),
            trace_enabled: self.trace.is_enabled(),
            columnar: self.config.columnar,
        }
    }

    /// Materializes a wave of compute tasks in parallel. Outputs come
    /// back in input order; `None` marks a transient shuffle miss.
    fn compute_wave(&self, keys: &[TaskKey]) -> Vec<Option<TaskOutput>> {
        let ctx = self.wave_ctx();
        executor::run_wave(self.config.host_threads, keys, |k| {
            executor::compute_task(&ctx, *k)
        })
    }

    /// Serializes a wave of checkpoint jobs in parallel. `None` marks a
    /// vanished payload (dropped silently, as the job is replanned or
    /// moot).
    fn compute_ckpt_wave(&self, jobs: &[CkptJob]) -> Vec<Option<TaskOutput>> {
        let ctx = self.wave_ctx();
        executor::run_wave(self.config.host_threads, jobs, |j| {
            executor::compute_ckpt(&ctx, *j)
        })
    }

    /// Applies a computed task's recorded side effects — stat deltas,
    /// resolved range partitioners, `computed_once` entries, and deferred
    /// cache mutations — against the now-chosen `worker`, and prices the
    /// task's network reads (charged only when the source worker is not
    /// the executing one). Runs on the driver thread, in admission order.
    fn apply_output_effects(&mut self, out: &TaskOutput, worker: WorkerId) -> SimDuration {
        self.stats.restores += out.restores;
        self.stats.restore_time += out.restore_time;
        self.stats.recompute_time += out.recompute_time;
        self.fallback_recomputes += out.fallbacks;
        let now = self.clock.now();
        if self.trace.is_enabled() {
            // Compute-phase events were buffered in the effect ledger;
            // replaying them here (admission order) keeps the stream
            // identical for every `host_threads` setting.
            for ev in &out.events {
                self.trace.emit(now, ev.clone());
            }
        }
        for (s, rp) in &out.resolved {
            // First admitted resolution wins; later tasks resolved the
            // same bounds from the same snapshot. The winning insert also
            // converts the shuffle's resident map blocks to bucketed
            // form, so subsequent waves take the O(1) fetch path.
            if !self.range_cache.contains_key(s) {
                self.range_cache.insert(*s, rp.clone());
                self.bucketize_resolved_shuffle(*s, rp);
            }
        }
        for cp in &out.computed {
            self.computed_once.insert(*cp);
        }
        for e in &out.effects {
            match e {
                CacheEffect::Touch(wid, bk) => self.cluster.touch(*wid, bk),
                CacheEffect::TouchLocal(bk) => self.cluster.touch(worker, bk),
                CacheEffect::Insert(bk, data, vb) => {
                    let w = self.cluster.worker_mut(worker);
                    if w.alive {
                        let ext = w.ext_id;
                        let outcome = w.blocks.insert_traced(*bk, data.clone(), *vb);
                        self.emit_cache(now, ext, *bk, *vb, &outcome);
                    }
                }
            }
        }
        let mut net = SimDuration::ZERO;
        for f in &out.net {
            if f.source != worker {
                net += self.config.cost.net_time(f.vbytes);
            }
        }
        net
    }

    /// Converts a freshly-resolved range shuffle's resident map blocks —
    /// cluster caches and durable snapshots — from flat to bucketed
    /// form, in place.
    ///
    /// Runs exactly once per shuffle, at the deterministic admission
    /// point where the partitioner enters `range_cache`, so every wave
    /// snapshot sees either all-flat (pre-resolution) or bucketed state.
    /// The conversion preserves record multisets, virtual sizes, LRU
    /// stamps, and the eviction clock, so cache behavior and all
    /// accounting are bit-identical to a run that never converted; map
    /// blocks recomputed after this point bucket eagerly in
    /// `compute_task` instead.
    fn bucketize_resolved_shuffle(&mut self, s: ShuffleId, rp: &RangePartitioner) {
        let parent = self.ctx.lineage().shuffle(s).parent;
        let m = self.ctx.lineage().meta(parent).num_partitions;
        for mp in 0..m {
            let bk = BlockKey::ShuffleMap {
                shuffle: s,
                map_part: mp,
            };
            let convert = |bd: &BlockData| match bd {
                BlockData::Flat(d) => Some(BlockData::Bucketed(Arc::new(
                    BucketedBlock::partition(d, rp),
                ))),
                // Already bucketed: nothing to do, skip the write.
                // Columnar cannot occur: range shuffle map outputs are
                // forced to row form until resolution.
                BlockData::Bucketed(_) | BlockData::Columnar(_) => None,
            };
            self.cluster.replace_payload_everywhere(&bk, convert);
            self.ckpt.replace_shuffle_payload(s, mp, convert);
        }
    }

    /// Admits one computed task: picks the worker, applies the recorded
    /// effects, prices network time, and reserves a core. Returns `false`
    /// if no worker is available.
    fn admit_task(&mut self, key: TaskKey, out: TaskOutput) -> bool {
        let (rdd, part, commit) = match key {
            TaskKey::Output { rdd, part } => {
                (rdd, part, Commit::Block(BlockKey::RddPart { rdd, part }))
            }
            TaskKey::ShuffleMap { shuffle, map_part } => {
                let parent = self.ctx.lineage().shuffle(shuffle).parent;
                (
                    parent,
                    map_part,
                    Commit::Block(BlockKey::ShuffleMap { shuffle, map_part }),
                )
            }
            TaskKey::Ckpt(_) => return false,
        };
        let Some(worker) = self.pick_worker(self.preferred_worker(rdd, part)) else {
            return false;
        };
        let net = self.apply_output_effects(&out, worker);
        let mut dur = out.base_dur + net + self.config.cost.task_overhead;
        // Under external shuffle transport the map output is written to
        // the durable store at commit; the producing task pays the
        // store-write time up front (reducers pay the store read in
        // `fetch_shuffle_bucket`, exactly like a checkpointed shuffle).
        if self.backend.shuffle_transport() == ShuffleTransport::ExternalStore
            && matches!(key, TaskKey::ShuffleMap { .. })
        {
            dur += self.ckpt.config().write_time(out.vbytes, 1);
        }
        let now = self.clock.now();
        // Core choice and start instant from an immutable view first, so
        // the backend hook (which needs `&mut self.backend`) can observe
        // the start before the reservation is written back.
        let (core, start) = {
            let w = self.cluster.worker(worker);
            let core = w.earliest_free_core();
            (core, w.cores_busy_until[core].max(now))
        };
        let mut invocation = 0;
        if let Some(inv) = self.backend.on_task_admitted(worker, start) {
            invocation = inv.invocation;
            dur += inv.overhead;
            let ext = self.cluster.worker(worker).ext_id;
            self.trace.emit_with(now, || EventKind::InvocationStarted {
                invocation: inv.invocation,
                worker: ext,
                cold_ms: inv.cold_ms,
            });
        }
        let finish = start + dur;
        self.cluster.worker_mut(worker).cores_busy_until[core] = finish;
        self.task_seq += 1;
        self.running.push(Running {
            key,
            worker,
            finish,
            data: out.data,
            vbytes: out.vbytes,
            duration: dur,
            commit,
            touched: out.touched,
            seq: self.task_seq,
            invocation,
        });
        self.in_flight.insert(key);
        true
    }

    /// True when a queued checkpoint job needs no work: it is already in
    /// flight or its object is already durable.
    fn ckpt_satisfied(&self, job: CkptJob) -> bool {
        if self.in_flight.contains(&TaskKey::Ckpt(job)) {
            return true;
        }
        match job {
            CkptJob::RddPart(rdd, part) => self.ckpt.has(rdd, part),
            CkptJob::Shuffle(s, mp) => self.ckpt.has_shuffle(s, mp),
        }
    }

    /// Assigns every queued checkpoint write to a worker core. The
    /// serialization walks and any payload materialization run on the
    /// wave executor's host threads; admission (worker choice, core
    /// reservation, contention stalls) stays in queue order on the driver
    /// thread.
    fn assign_checkpoint_jobs(&mut self) {
        if self.ckpt_queue.is_empty() || self.cluster.alive_count() == 0 {
            return; // keep the queue intact until workers exist
        }
        let mut todo: Vec<CkptJob> = Vec::with_capacity(self.ckpt_queue.len());
        while let Some(job) = self.ckpt_queue.pop_front() {
            if !self.ckpt_satisfied(job) {
                todo.push(job);
            }
        }
        self.ckpt_queued.clear();
        if todo.is_empty() {
            return;
        }
        let outputs = self.compute_ckpt_wave(&todo);
        for (job, out) in todo.into_iter().zip(outputs) {
            // A vanished payload (dead shuffle block, missing shuffle
            // input) is dropped silently; the partition is replanned or
            // moot.
            let Some(out) = out else { continue };
            if !self.admit_ckpt(job, out) && self.ckpt_queued.insert(job) {
                // Lost the worker between compute and admit: requeue.
                self.ckpt_queue.push_back(job);
            }
        }
    }

    /// Admits one serialized checkpoint job. Returns `false` if no worker
    /// can host the write.
    fn admit_ckpt(&mut self, job: CkptJob, out: TaskOutput) -> bool {
        let worker = match job {
            CkptJob::RddPart(rdd, part) => {
                match self.pick_worker(self.preferred_worker(rdd, part)) {
                    Some(w) => w,
                    None => return false,
                }
            }
            // A shuffle snapshot is written by the worker holding the
            // map output block.
            CkptJob::Shuffle(..) => match out.source {
                Some(w) if self.cluster.worker(w).alive => w,
                _ => return false,
            },
        };
        // Materialization time (including network reads) is discarded:
        // Flint's checkpoint tasks capture partitions as they are
        // produced (§4), so no recomputation is charged — but bookkeeping
        // side effects (restores, cache inserts, LRU bumps) still apply.
        let _net = self.apply_output_effects(&out, worker);
        // Durable-write bandwidth is a per-NODE resource shared by all
        // cores; with one writer per core, each sees 1/cores of the
        // node's EBS bandwidth.
        let cores = u64::from(self.cluster.worker(worker).spec.cores.max(1));
        let write = self.ckpt.config().write_time(out.vbytes * cores, 1);
        self.start_ckpt_task(TaskKey::Ckpt(job), worker, out, write, job);
        true
    }

    fn start_ckpt_task(
        &mut self,
        key: TaskKey,
        worker: WorkerId,
        out: TaskOutput,
        dur: SimDuration,
        job: CkptJob,
    ) {
        let mut dur = dur;
        let now = self.clock.now();
        let contention = self.config.cost.ckpt_contention.clamp(0.0, 1.0);
        // The write saturates the node's shared EBS/NIC bandwidth,
        // stalling concurrent compute on its sibling cores. The stall
        // models the write itself, so invocation startup overhead
        // (added below) is excluded.
        let stall = dur.mul_f64(contention);
        let (core, start) = {
            let w = self.cluster.worker(worker);
            let core = w.earliest_free_core();
            (core, w.cores_busy_until[core].max(now))
        };
        let mut invocation = 0;
        if let Some(inv) = self.backend.on_task_admitted(worker, start) {
            invocation = inv.invocation;
            dur += inv.overhead;
            let ext = self.cluster.worker(worker).ext_id;
            self.trace.emit_with(now, || EventKind::InvocationStarted {
                invocation: inv.invocation,
                worker: ext,
                cold_ms: inv.cold_ms,
            });
        }
        let finish = start + dur;
        let w = self.cluster.worker_mut(worker);
        w.cores_busy_until[core] = finish;
        for (i, busy) in w.cores_busy_until.iter_mut().enumerate() {
            if i != core {
                *busy = (*busy).max(now) + stall;
            }
        }
        self.task_seq += 1;
        self.running.push(Running {
            key,
            worker,
            finish,
            data: out.data,
            vbytes: out.vbytes,
            duration: dur,
            commit: Commit::Checkpoint {
                job,
                wire: out.wire,
            },
            touched: out.touched,
            seq: self.task_seq,
            invocation,
        });
        self.in_flight.insert(key);
    }

    fn commit_task(&mut self, mut r: Running) {
        let now = self.clock.now();
        // Per-invocation billing fires for every commit, in commit
        // order — also for checkpoint tasks and for writes the store
        // subsequently faults (the invocation ran either way). The VM
        // backend returns `None` here, so this is a no-op for it.
        if let Some(bill) = self
            .backend
            .on_task_committed(r.invocation, r.worker, r.duration, now)
        {
            let invocation = r.invocation;
            self.trace.emit_with(now, || EventKind::InvocationBilled {
                invocation,
                gb_seconds: bill.gb_seconds,
                cost: bill.cost,
            });
        }
        match r.commit {
            Commit::Block(key) => {
                self.stats.tasks_run += 1;
                self.stats.compute_time += r.duration;
                let ext = self.cluster.worker(r.worker).ext_id;
                self.trace.emit_with(now, || {
                    let (kind, id, part) = match r.key {
                        TaskKey::ShuffleMap { shuffle, map_part } => {
                            ("shuffle", u64::from(shuffle.0), u64::from(map_part))
                        }
                        TaskKey::Output { rdd, part } => {
                            ("output", u64::from(rdd.0), u64::from(part))
                        }
                        TaskKey::Ckpt(_) => unreachable!("ckpt tasks commit as Checkpoint"),
                    };
                    EventKind::TaskFinished {
                        kind: kind.to_string(),
                        id,
                        part,
                        worker: ext,
                        millis: r.duration.as_millis(),
                    }
                });
                let external_shuffle = self.backend.shuffle_transport()
                    == ShuffleTransport::ExternalStore
                    && matches!(key, BlockKey::ShuffleMap { .. });
                if let (
                    true,
                    BlockKey::ShuffleMap {
                        shuffle: s,
                        map_part: mp,
                    },
                ) = (external_shuffle, key)
                {
                    // Serverless invocations cannot serve remote reads
                    // after returning: the map output goes to the
                    // durable store instead of worker memory. Reducers
                    // find it via `shuffle_block_available` /
                    // `fetch_shuffle_bucket`'s existing store path. A
                    // failed write leaves nothing durable and the
                    // planner re-runs the map task.
                    let fault = self.ckpt.put_shuffle(s, mp, r.data, r.vbytes, now);
                    match fault {
                        WriteFault::Fail => {
                            self.trace.emit_with(now, || EventKind::FaultInjected {
                                kind: "shuffle_ext_fail".to_string(),
                                target: key.to_string(),
                            });
                        }
                        WriteFault::Torn => {
                            self.trace.emit_with(now, || EventKind::FaultInjected {
                                kind: "shuffle_ext_torn".to_string(),
                                target: key.to_string(),
                            });
                        }
                        WriteFault::None => {}
                    }
                    if fault != WriteFault::Fail {
                        let vbytes = r.vbytes;
                        self.trace
                            .emit_with(now, || EventKind::ShuffleExternalized {
                                shuffle: u64::from(s.0),
                                map_part: u64::from(mp),
                                vbytes,
                            });
                    }
                } else {
                    let w = self.cluster.worker_mut(r.worker);
                    if w.alive {
                        let outcome = w.blocks.insert_traced(key, r.data, r.vbytes);
                        self.emit_cache(now, ext, key, r.vbytes, &outcome);
                    }
                }
                if let BlockKey::RddPart { rdd, part } = key {
                    self.computed_once.insert((rdd, part));
                }
                // Record sizes and fire materialization hooks
                // *interleaved* in chain order (ancestors before
                // descendants), so each RDD is observed at its
                // execution-frontier moment — before its own child's
                // completion is visible — the paper's mark-on-generation.
                for (rdd, part, bytes) in r.touched {
                    self.ctx
                        .lineage_mut()
                        .record_partition_size(rdd, part, bytes);
                    self.fire_materialized(rdd, now);
                }
            }
            Commit::Checkpoint { job, wire } => {
                self.apply_touched(std::mem::take(&mut r.touched), now);
                let block = match job {
                    CkptJob::RddPart(rdd, part) => BlockKey::RddPart { rdd, part }.to_string(),
                    CkptJob::Shuffle(shuffle, map_part) => {
                        BlockKey::ShuffleMap { shuffle, map_part }.to_string()
                    }
                };
                let fault = match job {
                    CkptJob::RddPart(rdd, part) => {
                        let n = self.ctx.lineage().meta(rdd).num_partitions;
                        self.ckpt.put(rdd, part, n, r.data, r.vbytes, now)
                    }
                    CkptJob::Shuffle(s, mp) => self.ckpt.put_shuffle(s, mp, r.data, r.vbytes, now),
                };
                match fault {
                    WriteFault::Fail => {
                        // The store dropped the object: nothing durable
                        // exists, so neither the written event nor the
                        // checkpoint stats fire (keeping the trace
                        // aggregate consistent with `RunStats`).
                        self.trace.emit_with(now, || EventKind::FaultInjected {
                            kind: "ckpt_write_fail".to_string(),
                            target: block.clone(),
                        });
                        return;
                    }
                    WriteFault::Torn => {
                        // The write "succeeded" from the client's view;
                        // the note records the planted corruption the
                        // restore-time integrity check will catch.
                        self.trace.emit_with(now, || EventKind::FaultInjected {
                            kind: "ckpt_torn".to_string(),
                            target: block.clone(),
                        });
                    }
                    WriteFault::None => {}
                }
                self.stats.checkpoint_time += r.duration;
                self.stats.checkpoints_written += 1;
                self.stats.checkpoint_bytes += r.vbytes;
                self.stats.checkpoint_wire_bytes += wire;
                self.trace.emit_with(now, || EventKind::CheckpointWritten {
                    block: block.clone(),
                    vbytes: r.vbytes,
                    wire_bytes: wire,
                    millis: r.duration.as_millis(),
                });
                if let CkptJob::RddPart(rdd, part) = job {
                    self.hooks
                        .on_checkpoint_written(rdd, part, r.vbytes, r.duration, now);
                    if self.ckpt.is_fully_checkpointed(rdd) {
                        // Paper §4: checkpointing an RDD terminates its
                        // lineage; ancestors' checkpoints become garbage.
                        let deleted = self.ckpt.gc(self.ctx.lineage(), now);
                        if deleted > 0 {
                            self.trace.emit_with(now, || EventKind::CheckpointGc {
                                rdd: u64::from(rdd.0),
                                blocks: deleted as u64,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Records computed partition sizes in chain order.
    fn apply_touched(&mut self, touched: Vec<(RddId, u32, u64)>, _now: SimTime) {
        for (rdd, part, bytes) in touched {
            self.ctx
                .lineage_mut()
                .record_partition_size(rdd, part, bytes);
        }
    }

    /// Fires the materialization hook for `rdd` the first time it becomes
    /// fully materialized.
    fn fire_materialized(&mut self, rdd: RddId, now: SimTime) {
        if self.fired_materialized.contains(&rdd) || !self.ctx.lineage().is_fully_materialized(rdd)
        {
            return;
        }
        self.fired_materialized.insert(rdd);
        let view = LineageView {
            lineage: self.ctx.lineage(),
            checkpoints: &self.ckpt,
            alive_workers: self.cluster.alive_count(),
            cost: &self.config.cost,
            storage: self.ckpt.config(),
        };
        let directives = self
            .hooks
            .on_rdd_materialized(&view, &mut self.trace, rdd, now);
        self.apply_directives(directives);
    }

    fn poll_hooks(&mut self) {
        let now = self.clock.now();
        let view = LineageView {
            lineage: self.ctx.lineage(),
            checkpoints: &self.ckpt,
            alive_workers: self.cluster.alive_count(),
            cost: &self.config.cost,
            storage: self.ckpt.config(),
        };
        let directives = self.hooks.poll(&view, &mut self.trace, now);
        self.apply_directives(directives);
    }

    fn apply_directives(&mut self, directives: Vec<CheckpointDirective>) {
        for d in directives {
            match d {
                CheckpointDirective::Checkpoint(rdd) => {
                    if !self.ctx.lineage().contains(rdd) {
                        continue;
                    }
                    if !self.marked_ckpt.insert(rdd) {
                        continue;
                    }
                    let n = self.ctx.lineage().meta(rdd).num_partitions;
                    let mut enqueued = 0u64;
                    for part in 0..n {
                        if !self.ckpt.has(rdd, part) {
                            let job = CkptJob::RddPart(rdd, part);
                            if self.ckpt_queued.insert(job) {
                                self.ckpt_queue.push_back(job);
                                enqueued += 1;
                            }
                        }
                    }
                    if self.trace.is_enabled() {
                        let view = LineageView {
                            lineage: self.ctx.lineage(),
                            checkpoints: &self.ckpt,
                            alive_workers: self.cluster.alive_count(),
                            cost: &self.config.cost,
                            storage: self.ckpt.config(),
                        };
                        let delta_ms = view.checkpoint_delta(rdd).as_millis();
                        self.trace.emit(
                            self.clock.now(),
                            EventKind::CheckpointScheduled {
                                rdd: u64::from(rdd.0),
                                parts: enqueued,
                                delta_ms,
                            },
                        );
                    }
                }
                CheckpointDirective::CheckpointAllCached => {
                    let snap = self.cluster.snapshot();
                    for (_, key, _) in snap.blocks {
                        let job = match key {
                            BlockKey::RddPart { rdd, part } => {
                                if self.ckpt.has(rdd, part) {
                                    continue;
                                }
                                CkptJob::RddPart(rdd, part)
                            }
                            BlockKey::ShuffleMap { shuffle, map_part } => {
                                if self.ckpt.has_shuffle(shuffle, map_part) {
                                    continue;
                                }
                                CkptJob::Shuffle(shuffle, map_part)
                            }
                        };
                        if self.ckpt_queued.insert(job) {
                            self.ckpt_queue.push_back(job);
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Gather
    // ------------------------------------------------------------------

    /// Waits (in virtual time) until a *present* checkpoint of
    /// `(rdd, part)` is restorable. Transient outages are retried with
    /// capped exponential backoff; a corrupt object returns `Ok(false)`
    /// (with the detection/fallback event pair) so the caller falls
    /// back to cluster state or recomputation — corrupt bytes are never
    /// served. Exhausting the retry budget returns
    /// [`EngineError::StoreUnavailable`].
    fn await_store_readable(&mut self, rdd: RddId, part: u32) -> Result<bool> {
        let mut attempt = 0u64;
        loop {
            match self.ckpt.read_fault(rdd, part, self.clock.now()) {
                None => return Ok(true),
                Some(ReadFault::Corrupt) => {
                    let now = self.clock.now();
                    let block = BlockKey::RddPart { rdd, part }.to_string();
                    if self.corrupt_reported.insert(block.clone()) {
                        self.trace
                            .emit_with(now, || EventKind::CheckpointCorruptDetected {
                                block: block.clone(),
                            });
                        self.trace.emit_with(now, || EventKind::RestoreFallback {
                            block: block.clone(),
                            reason: "corrupt".to_string(),
                        });
                    }
                    return Ok(false);
                }
                Some(ReadFault::Unavailable) => {
                    let retry = self.config.store_retry;
                    if retry.exhausted(attempt) {
                        return Err(EngineError::StoreUnavailable { retries: attempt });
                    }
                    let wait_ms = retry.delay(attempt).as_millis();
                    attempt += 1;
                    self.trace
                        .emit_with(self.clock.now(), || EventKind::BackoffScheduled {
                            attempt,
                            millis: wait_ms,
                        });
                    self.clock.advance(SimDuration::from_millis(wait_ms));
                    self.pump_injector();
                }
            }
        }
    }

    /// Fetches every partition of `target` to the driver, charging
    /// parallel transfer time. A vanished block (same-instant
    /// revocation) re-runs the job under
    /// [`DriverConfig::gather_retry`].
    fn gather(&mut self, target: RddId) -> Result<Vec<PartitionData>> {
        let retry = self.config.gather_retry;
        let mut attempt = 0u64;
        loop {
            let n = self.ctx.lineage().meta(target).num_partitions;
            let mut parts = Vec::with_capacity(n as usize);
            let mut total_vb = 0u64;
            let mut ok = true;
            for p in 0..n {
                if self.ckpt.has(target, p) && self.await_store_readable(target, p)? {
                    let d = self.ckpt.get(target, p).expect("bitmap agrees").clone();
                    total_vb += self.ckpt.size_of(target, p).unwrap_or(0);
                    self.stats.restores += 1;
                    // Gather reads count as restores but charge no restore
                    // time (the transfer is priced below), hence millis: 0.
                    self.trace
                        .emit_with(self.clock.now(), || EventKind::Restored {
                            block: BlockKey::RddPart {
                                rdd: target,
                                part: p,
                            }
                            .to_string(),
                            millis: 0,
                        });
                    parts.push(d);
                } else if let Some((_, d, _, vb)) = self.cluster.fetch(&BlockKey::RddPart {
                    rdd: target,
                    part: p,
                }) {
                    total_vb += vb;
                    parts.push(d.rows().expect("RDD partition blocks decode to rows"));
                } else {
                    ok = false;
                    break;
                }
            }
            if ok {
                // Workers stream to the driver in parallel.
                let streams = self.cluster.alive_count().max(1) as u64;
                let dur = self.config.cost.net_time(total_vb / streams);
                self.clock.advance(dur);
                return Ok(parts);
            }
            // A block vanished between job completion and gather (e.g. a
            // same-instant revocation): re-run the job.
            attempt += 1;
            if retry.exhausted(attempt) {
                break;
            }
            let wait = retry.delay(attempt - 1);
            if wait > SimDuration::ZERO {
                self.clock.advance(wait);
                self.pump_injector();
            }
            self.run_job(target)?;
        }
        Err(EngineError::RetryBudgetExhausted { rdd: target })
    }

    /// Drains the checkpoint queue to completion (used by explicit
    /// `checkpoint_now`).
    fn drain_checkpoints(&mut self) -> Result<()> {
        let mut iterations = 0u64;
        while self.pending_checkpoints() > 0 {
            iterations += 1;
            if iterations > self.config.max_iterations {
                return Err(EngineError::JobBudgetExhausted {
                    phase: "drain-checkpoints",
                    iterations,
                });
            }
            if let Some(e) = self.take_interrupt() {
                return Err(e);
            }
            self.assign_checkpoint_jobs();
            let Some(tt) = self.running.iter().map(|r| r.finish).min() else {
                // Nothing running and nothing assignable: need workers.
                let now = self.clock.now();
                match self.injector.next_event_after(now) {
                    Some(ti) => {
                        self.stats.stall_time += ti - now;
                        self.trace.emit_with(now, || EventKind::Stalled {
                            millis: (ti - now).as_millis(),
                        });
                        self.clock.advance_to(ti);
                        self.pump_injector();
                        continue;
                    }
                    None => return Err(EngineError::NoWorkers),
                }
            };
            self.advance_and_commit(tt);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_pairs(d: &mut Driver, r: RddRef) -> Vec<(i64, i64)> {
        let mut out: Vec<(i64, i64)> = d
            .collect(r)
            .unwrap()
            .into_iter()
            .map(|v| {
                let (k, val) = v.into_pair().unwrap();
                (k.as_i64().unwrap(), val.as_i64().unwrap())
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn map_filter_pipeline() {
        let mut d = Driver::local(3);
        let src = d.ctx().parallelize((0..100).map(Value::from_i64), 8);
        let doubled = d.ctx().map(src, |v| Value::Int(v.as_i64().unwrap() * 2));
        let big = d.ctx().filter(doubled, |v| v.as_i64().unwrap() >= 100);
        let out = d.collect(big).unwrap();
        assert_eq!(out.len(), 50);
        assert!(out.iter().all(|v| v.as_i64().unwrap() % 2 == 0));
        assert!(d.now() > SimTime::ZERO, "virtual time must advance");
        assert!(d.stats().tasks_run >= 8);
    }

    #[test]
    fn word_count_reduce_by_key() {
        let mut d = Driver::local(2);
        let words = d.ctx().parallelize(
            ["a", "b", "a", "c", "b", "a"]
                .iter()
                .map(|s| Value::from_str_(s)),
            3,
        );
        let pairs = d
            .ctx()
            .map(words, |w| Value::pair(w.clone(), Value::Int(1)));
        let counts = d.ctx().reduce_by_key(pairs, 2, |a, b| {
            Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
        });
        let mut out: Vec<(String, i64)> = d
            .collect(counts)
            .unwrap()
            .into_iter()
            .map(|v| {
                let (k, c) = v.into_pair().unwrap();
                (k.as_str().unwrap().to_string(), c.as_i64().unwrap())
            })
            .collect();
        out.sort();
        assert_eq!(out, vec![("a".into(), 3), ("b".into(), 2), ("c".into(), 1)]);
    }

    #[test]
    fn join_matches_keys() {
        let mut d = Driver::local(2);
        let left = d.ctx().parallelize(
            vec![
                Value::pair(Value::Int(1), Value::from_str_("x")),
                Value::pair(Value::Int(2), Value::from_str_("y")),
            ],
            2,
        );
        let right = d.ctx().parallelize(
            vec![
                Value::pair(Value::Int(1), Value::Int(10)),
                Value::pair(Value::Int(1), Value::Int(11)),
                Value::pair(Value::Int(3), Value::Int(30)),
            ],
            2,
        );
        let joined = d.ctx().join(left, right, 3);
        let out = d.collect(joined).unwrap();
        // Key 1 joins with two right values; keys 2 and 3 do not match.
        assert_eq!(out.len(), 2);
        for v in &out {
            assert_eq!(v.key().unwrap().as_i64(), Some(1));
        }
    }

    #[test]
    fn sort_by_key_orders_globally() {
        let mut d = Driver::local(3);
        let vals: Vec<Value> = [5i64, 3, 9, 1, 7, 2, 8, 0, 6, 4]
            .iter()
            .map(|i| Value::pair(Value::Int(*i), Value::Int(*i * 10)))
            .collect();
        let src = d.ctx().parallelize(vals, 4);
        let sorted = d.ctx().sort_by_key(src, 3, true);
        let keys: Vec<i64> = d
            .collect(sorted)
            .unwrap()
            .iter()
            .map(|v| v.key().unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());

        let sorted_desc = d.ctx().sort_by_key(src, 3, false);
        let keys: Vec<i64> = d
            .collect(sorted_desc)
            .unwrap()
            .iter()
            .map(|v| v.key().unwrap().as_i64().unwrap())
            .collect();
        assert_eq!(keys, (0..10).rev().collect::<Vec<_>>());
    }

    #[test]
    fn count_reduce_take_actions() {
        let mut d = Driver::local(2);
        let src = d.ctx().parallelize((1..=10).map(Value::from_i64), 4);
        assert_eq!(d.count(src).unwrap(), 10);
        let total = d
            .reduce(src, |a, b| {
                Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
            })
            .unwrap();
        assert_eq!(total.as_i64(), Some(55));
        assert_eq!(d.take(src, 3).unwrap().len(), 3);
        assert_eq!(d.stats().actions.len(), 3);
    }

    #[test]
    fn reduce_on_empty_errors() {
        let mut d = Driver::local(1);
        let src = d.ctx().parallelize(std::iter::empty(), 2);
        let e = d.reduce(src, |a, _| a.clone()).unwrap_err();
        assert_eq!(e, EngineError::EmptyDataset);
    }

    #[test]
    fn distinct_and_union() {
        let mut d = Driver::local(2);
        let a = d.ctx().parallelize([1, 2, 2, 3].map(Value::from_i64), 2);
        let b = d.ctx().parallelize([3, 4].map(Value::from_i64), 1);
        let u = d.ctx().union(a, b);
        assert_eq!(d.count(u).unwrap(), 6);
        let dist = d.ctx().distinct(u, 2);
        let mut vals: Vec<i64> = d
            .collect(dist)
            .unwrap()
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        vals.sort();
        assert_eq!(vals, vec![1, 2, 3, 4]);
    }

    #[test]
    fn sample_is_deterministic() {
        let mut d1 = Driver::local(2);
        let s1 = d1.ctx().parallelize((0..1000).map(Value::from_i64), 4);
        let samp1 = d1.ctx().sample(s1, 0.3, 42);
        let c1 = d1.count(samp1).unwrap();
        let mut d2 = Driver::local(2);
        let s2 = d2.ctx().parallelize((0..1000).map(Value::from_i64), 4);
        let samp2 = d2.ctx().sample(s2, 0.3, 42);
        let c2 = d2.count(samp2).unwrap();
        assert_eq!(c1, c2);
        assert!(c1 > 150 && c1 < 450, "sample count {c1} wildly off 30%");
    }

    #[test]
    fn revocation_mid_job_recovers_with_identical_result() {
        // Golden result without failures.
        let build = |d: &mut Driver| {
            let src = d.ctx().parallelize((0..500).map(Value::from_i64), 10);
            let pairs = d.ctx().map(src, |v| {
                Value::pair(Value::Int(v.as_i64().unwrap() % 7), Value::Int(1))
            });
            d.ctx().reduce_by_key(pairs, 5, |a, b| {
                Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
            })
        };
        let mut golden_driver = Driver::local(4);
        let g = build(&mut golden_driver);
        let golden = sum_pairs(&mut golden_driver, g);

        // Same job with two workers revoked mid-run (and never replaced;
        // two survivors carry on).
        let mut d = Driver::new(
            DriverConfig::default(),
            Box::new(NoCheckpoint),
            Box::new(crate::ScriptedInjector::new(vec![
                (SimTime::from_millis(50), WorkerEvent::Remove { ext_id: 1 }),
                (SimTime::from_millis(60), WorkerEvent::Remove { ext_id: 2 }),
            ])),
        );
        for ext in 1..=4u64 {
            d.cluster
                .add_worker(ext, WorkerSpec::r3_large(), SimTime::ZERO);
        }
        let r = build(&mut d);
        let out = sum_pairs(&mut d, r);
        assert_eq!(out, golden);
        assert_eq!(d.stats().revocations, 2);
    }

    #[test]
    fn all_workers_lost_then_replaced() {
        let mut d = Driver::new(
            DriverConfig::default(),
            Box::new(NoCheckpoint),
            Box::new(crate::ScriptedInjector::new(vec![
                (SimTime::from_millis(10), WorkerEvent::Remove { ext_id: 1 }),
                (SimTime::from_millis(10), WorkerEvent::Remove { ext_id: 2 }),
                (
                    SimTime::from_millis(120_000),
                    WorkerEvent::Add {
                        ext_id: 3,
                        spec: WorkerSpec::r3_large(),
                    },
                ),
            ])),
        );
        d.cluster
            .add_worker(1, WorkerSpec::r3_large(), SimTime::ZERO);
        d.cluster
            .add_worker(2, WorkerSpec::r3_large(), SimTime::ZERO);
        let src = d.ctx().parallelize((0..200).map(Value::from_i64), 6);
        let sq = d.ctx().map(src, |v| Value::Int(v.as_i64().unwrap().pow(2)));
        assert_eq!(d.count(sq).unwrap(), 200);
        // The job must have stalled waiting for the replacement.
        assert!(d.stats().stall_time > SimDuration::from_secs(60));
        assert_eq!(d.stats().revocations, 2);
    }

    #[test]
    fn no_workers_and_no_events_errors() {
        let mut d = Driver::new(
            DriverConfig::default(),
            Box::new(NoCheckpoint),
            Box::new(NoFailures),
        );
        let src = d.ctx().parallelize((0..10).map(Value::from_i64), 2);
        assert_eq!(d.count(src).unwrap_err(), EngineError::NoWorkers);
    }

    #[test]
    fn persisted_rdd_cached_and_reused() {
        let mut d = Driver::local(2);
        let src = d.ctx().parallelize((0..100).map(Value::from_i64), 4);
        let heavy = d.ctx().map(src, |v| v.clone());
        d.ctx().persist(heavy);
        let _ = d.count(heavy).unwrap();
        let t1 = d.stats().actions[0].latency();
        let _ = d.count(heavy).unwrap();
        let t2 = d.stats().actions[1].latency();
        assert!(t2 < t1, "cached second run ({t2}) should beat first ({t1})");
    }

    #[test]
    fn explicit_checkpoint_survives_total_cluster_loss() {
        let mut d = Driver::new(
            DriverConfig::default(),
            Box::new(NoCheckpoint),
            Box::new(crate::ScriptedInjector::new(vec![
                (
                    SimTime::from_hours_f64(1.0),
                    WorkerEvent::Remove { ext_id: 1 },
                ),
                (
                    SimTime::from_hours_f64(1.0),
                    WorkerEvent::Remove { ext_id: 2 },
                ),
                (
                    SimTime::from_hours_f64(1.1),
                    WorkerEvent::Add {
                        ext_id: 10,
                        spec: WorkerSpec::r3_large(),
                    },
                ),
                (
                    SimTime::from_hours_f64(1.1),
                    WorkerEvent::Add {
                        ext_id: 11,
                        spec: WorkerSpec::r3_large(),
                    },
                ),
            ])),
        );
        d.cluster
            .add_worker(1, WorkerSpec::r3_large(), SimTime::ZERO);
        d.cluster
            .add_worker(2, WorkerSpec::r3_large(), SimTime::ZERO);

        let src = d.ctx().parallelize((0..300).map(Value::from_i64), 6);
        let mapped = d.ctx().map(src, |v| Value::Int(v.as_i64().unwrap() + 1));
        d.checkpoint_now(mapped).unwrap();
        assert!(d.checkpoints().is_fully_checkpointed(mapped.id()));

        // Lose the whole cluster, get new workers, and re-read: the data
        // must come back from the durable store (restores > 0).
        d.idle_until(SimTime::from_hours_f64(1.2)).unwrap();
        assert_eq!(d.cluster().alive_count(), 2);
        let before = d.stats().restores;
        let total = d
            .reduce(mapped, |a, b| {
                Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
            })
            .unwrap();
        assert_eq!(total.as_i64(), Some((1..=300).sum::<i64>()));
        assert!(d.stats().restores > before);
    }

    #[test]
    fn recompute_time_tracked_after_loss() {
        // Scale the tiny in-process dataset up so durations exceed the
        // millisecond resolution of virtual time.
        let mut config = DriverConfig::default();
        config.cost.size_scale = 1e6;
        let mut d = Driver::new(
            config,
            Box::new(NoCheckpoint),
            Box::new(crate::ScriptedInjector::new(vec![(
                SimTime::from_hours_f64(0.5),
                WorkerEvent::Remove { ext_id: 1 },
            )])),
        );
        d.cluster
            .add_worker(1, WorkerSpec::r3_large(), SimTime::ZERO);
        d.cluster
            .add_worker(2, WorkerSpec::r3_large(), SimTime::ZERO);
        let src = d.ctx().parallelize((0..400).map(Value::from_i64), 8);
        let pairs = d.ctx().map(src, |v| {
            Value::pair(Value::Int(v.as_i64().unwrap() % 5), Value::Int(1))
        });
        let red = d.ctx().reduce_by_key(pairs, 4, |a, b| {
            Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
        });
        let _ = d.count(red).unwrap();
        assert_eq!(d.stats().recompute_time, SimDuration::ZERO);

        // Idle across the revocation, then ask again: half the cache is
        // gone, so some recomputation must happen.
        d.idle_until(SimTime::from_hours_f64(0.6)).unwrap();
        let _ = d.count(red).unwrap();
        assert!(d.stats().recompute_time > SimDuration::ZERO);
    }

    #[test]
    fn coalesce_preserves_data_with_fewer_partitions() {
        let mut d = Driver::local(3);
        let src = d.ctx().parallelize((0..100).map(Value::from_i64), 8);
        let co = d.ctx().coalesce(src, 3);
        assert_eq!(d.ctx().num_partitions(co), 3);
        let mut vals: Vec<i64> = d
            .collect(co)
            .unwrap()
            .iter()
            .map(|v| v.as_i64().unwrap())
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..100).collect::<Vec<_>>());
        // Coalescing to more partitions than exist clamps.
        let same = d.ctx().coalesce(src, 100);
        assert_eq!(d.ctx().num_partitions(same), 8);
        assert_eq!(d.count(same).unwrap(), 100);
    }

    #[test]
    fn coalesce_survives_revocation() {
        let mut d = Driver::new(
            DriverConfig::default(),
            Box::new(NoCheckpoint),
            Box::new(crate::ScriptedInjector::new(vec![(
                SimTime::from_millis(40),
                WorkerEvent::Remove { ext_id: 1 },
            )])),
        );
        for ext in 1..=3u64 {
            d.add_worker_with_ext(ext, WorkerSpec::r3_large());
        }
        let src = d.ctx().parallelize((0..60).map(Value::from_i64), 6);
        let co = d.ctx().coalesce(src, 2);
        let total = d
            .reduce(co, |a, b| {
                Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
            })
            .unwrap();
        assert_eq!(total.as_i64(), Some((0..60).sum::<i64>()));
    }

    #[test]
    fn pair_projection_helpers() {
        let mut d = Driver::local(2);
        let pairs = d.ctx().parallelize(
            (0..10).map(|i| Value::pair(Value::Int(i % 3), Value::Int(i))),
            2,
        );
        let doubled = d
            .ctx()
            .map_values(pairs, |v| Value::Int(v.as_i64().unwrap() * 2));
        let vals = d.ctx().values(doubled);
        let total = d
            .reduce(vals, |a, b| {
                Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
            })
            .unwrap();
        assert_eq!(total.as_i64(), Some(2 * (0..10).sum::<i64>()));

        let keys = d.ctx().keys(pairs);
        let distinct = d.ctx().distinct(keys, 2);
        assert_eq!(d.count(distinct).unwrap(), 3);
    }

    #[test]
    fn ordered_and_keyed_actions() {
        let mut d = Driver::local(2);
        let src = d.ctx().parallelize([5, 1, 9, 3, 7].map(Value::from_i64), 3);
        assert_eq!(
            d.take_ordered(src, 2).unwrap(),
            vec![Value::Int(1), Value::Int(3)]
        );
        assert!(d.first(src).unwrap().is_some());

        let pairs = d.ctx().parallelize(
            (0..12).map(|i| Value::pair(Value::Int(i % 3), Value::Int(i))),
            3,
        );
        let counts = d.count_by_key(pairs).unwrap();
        assert_eq!(counts.len(), 3);
        assert!(counts.values().all(|c| *c == 4));

        let empty = d.ctx().parallelize(std::iter::empty(), 1);
        assert_eq!(d.first(empty).unwrap(), None);
    }

    #[test]
    fn cogroup_groups_both_sides() {
        let mut d = Driver::local(2);
        let a = d.ctx().parallelize(
            vec![
                Value::pair(Value::Int(1), Value::from_str_("a1")),
                Value::pair(Value::Int(2), Value::from_str_("a2")),
            ],
            2,
        );
        let b = d
            .ctx()
            .parallelize(vec![Value::pair(Value::Int(1), Value::from_str_("b1"))], 1);
        let cg = d.ctx().cogroup(a, b, 2);
        let out = d.collect(cg).unwrap();
        assert_eq!(out.len(), 2); // keys 1 and 2
        for v in out {
            let (k, groups) = v.into_pair().unwrap();
            let groups = groups.as_list().unwrap().to_vec();
            assert_eq!(groups.len(), 2);
            if k.as_i64() == Some(2) {
                assert_eq!(groups[1].as_list().unwrap().len(), 0);
            } else {
                assert_eq!(groups[1].as_list().unwrap().len(), 1);
            }
        }
    }
}
