//! The dynamic datum type flowing through the engine.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A dynamically-typed record.
///
/// Using one datum type keeps the lineage graph homogeneous (any RDD is a
/// collection of `Value`s regardless of the logical schema), which is what
/// lets the scheduler recompute *any* lost partition generically. Keyed
/// operations (`reduce_by_key`, `join`, `sort_by_key`) interpret records
/// as [`Value::Pair`]s.
///
/// `Value` implements total equality, ordering, and hashing — floats
/// compare and hash by their IEEE total order, so values can serve as
/// shuffle keys.
///
/// Every variant clones in O(1): compound values (`Pair`, `List`,
/// `Vector`, `Str`) are `Arc`-backed, so cloning a record anywhere in the
/// engine is a refcount bump, never a structural copy. Records are
/// immutable once constructed — sharing is always safe.
///
/// # Examples
///
/// ```
/// use flint_engine::Value;
///
/// let pair = Value::pair(Value::from_str_("page-7"), Value::from_f64(0.15));
/// assert_eq!(pair.key().unwrap().as_str().unwrap(), "page-7");
/// assert_eq!(pair.val().unwrap().as_f64().unwrap(), 0.15);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// The absent value.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// An immutable string.
    Str(Arc<str>),
    /// A key/value pair (the unit of keyed operations).
    Pair(Arc<PairVal>),
    /// A dense numeric vector (feature vectors, rank vectors).
    Vector(Arc<Vec<f64>>),
    /// A heterogeneous list (grouped values, adjacency lists, rows).
    List(Arc<ListVal>),
}

/// The shared payload of a [`Value::Pair`]: both halves plus the pair's
/// virtual size, computed once at construction so sizing never re-walks
/// the tree.
#[derive(Debug)]
pub struct PairVal {
    key: Value,
    val: Value,
    size: u64,
}

impl PairVal {
    fn new(key: Value, val: Value) -> Self {
        let size = 16 + key.size_bytes() + val.size_bytes();
        PairVal { key, val, size }
    }

    /// The key half.
    pub fn key(&self) -> &Value {
        &self.key
    }

    /// The value half.
    pub fn val(&self) -> &Value {
        &self.val
    }
}

/// The shared payload of a [`Value::List`]: the items plus the list's
/// virtual size, computed once at construction. Dereferences to the
/// item slice.
#[derive(Debug)]
pub struct ListVal {
    items: Vec<Value>,
    size: u64,
}

impl ListVal {
    fn new(items: Vec<Value>) -> Self {
        let size = 24 + items.iter().map(Value::size_bytes).sum::<u64>();
        ListVal { items, size }
    }

    /// The list items.
    pub fn items(&self) -> &[Value] {
        &self.items
    }
}

impl Deref for ListVal {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        &self.items
    }
}

impl Value {
    /// Creates an `Int` value.
    pub fn from_i64(v: i64) -> Value {
        Value::Int(v)
    }

    /// Creates a `Float` value.
    pub fn from_f64(v: f64) -> Value {
        Value::Float(v)
    }

    /// Creates a `Str` value. (Named with a trailing underscore to avoid
    /// colliding with the `FromStr` trait method.)
    pub fn from_str_(v: &str) -> Value {
        Value::Str(Arc::from(v))
    }

    /// Creates a `Bool` value.
    pub fn from_bool(v: bool) -> Value {
        Value::Bool(v)
    }

    /// Creates a `Pair`.
    pub fn pair(k: Value, v: Value) -> Value {
        Value::Pair(Arc::new(PairVal::new(k, v)))
    }

    /// Creates a `Vector`.
    pub fn vector(v: Vec<f64>) -> Value {
        Value::Vector(Arc::new(v))
    }

    /// Creates a `List`.
    pub fn list(v: Vec<Value>) -> Value {
        Value::List(Arc::new(ListVal::new(v)))
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float payload, if this is a `Float` (or `Int`, widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the vector payload, if this is a `Vector`.
    pub fn as_vector(&self) -> Option<&[f64]> {
        match self {
            Value::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the list payload, if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v.items()),
            _ => None,
        }
    }

    /// Returns the key of a `Pair`.
    pub fn key(&self) -> Option<&Value> {
        match self {
            Value::Pair(p) => Some(p.key()),
            _ => None,
        }
    }

    /// Returns the value of a `Pair`.
    pub fn val(&self) -> Option<&Value> {
        match self {
            Value::Pair(p) => Some(p.val()),
            _ => None,
        }
    }

    /// Consumes a `Pair`, returning its parts. O(1) whether or not the
    /// pair is shared — a shared pair hands out refcount-bumped halves.
    pub fn into_pair(self) -> Option<(Value, Value)> {
        match self {
            Value::Pair(p) => match Arc::try_unwrap(p) {
                Ok(pv) => Some((pv.key, pv.val)),
                Err(p) => Some((p.key.clone(), p.val.clone())),
            },
            _ => None,
        }
    }

    /// Estimated in-memory footprint in bytes.
    ///
    /// This drives the engine's virtual sizing (cache pressure, checkpoint
    /// durations). It is an estimate in the same spirit as Spark's
    /// `SizeEstimator`, and it is *virtual*: the formula describes the
    /// logical record (`16 + key + value` for pairs, `24 + Σ items` for
    /// lists), independent of how the in-process representation shares
    /// structure. Compound sizes are memoized at construction, so this is
    /// O(1) for every variant.
    pub fn size_bytes(&self) -> u64 {
        match self {
            Value::Null => 8,
            Value::Bool(_) => 8,
            Value::Int(_) => 16,
            Value::Float(_) => 16,
            Value::Str(s) => 24 + s.len() as u64,
            Value::Pair(p) => p.size,
            Value::Vector(v) => 24 + 8 * v.len() as u64,
            Value::List(v) => v.size,
        }
    }

    fn discriminant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Pair(..) => 5,
            Value::Vector(_) => 6,
            Value::List(_) => 7,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            // Cross-numeric comparison so Int and Float keys interoperate.
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Pair(a), Pair(b)) => {
                // Shared handles are the same logical value (sound for a
                // total order: cmp(x, x) == Equal).
                if Arc::ptr_eq(a, b) {
                    return Ordering::Equal;
                }
                a.key().cmp(b.key()).then_with(|| a.val().cmp(b.val()))
            }
            (Vector(a), Vector(b)) => {
                if Arc::ptr_eq(a, b) {
                    return Ordering::Equal;
                }
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.total_cmp(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (List(a), List(b)) => {
                if Arc::ptr_eq(a, b) {
                    return Ordering::Equal;
                }
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.cmp(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => self.discriminant_rank().cmp(&other.discriminant_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float hash identically when numerically equal
            // integers, matching the Ord cross-numeric rule.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Pair(p) => {
                5u8.hash(state);
                p.key().hash(state);
                p.val().hash(state);
            }
            Value::Vector(v) => {
                6u8.hash(state);
                for f in v.iter() {
                    f.to_bits().hash(state);
                }
            }
            Value::List(v) => {
                7u8.hash(state);
                for x in v.iter() {
                    x.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Pair(p) => write!(f, "({}, {})", p.key(), p.val()),
            Value::Vector(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Value::List(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// The FNV-1a hasher behind [`stable_hash`]. Only `write` is
/// implemented; integer writes go through the default `Hasher` methods
/// (native-endian bytes), so any caller making the same sequence of
/// `Hash` trait calls produces the same digest.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
}

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

/// A deterministic 64-bit hash of a value, stable across runs and
/// platforms (FNV-1a over the value structure). Used for hash
/// partitioning so shuffle placement never depends on `std`'s randomized
/// hasher.
pub(crate) fn stable_hash(v: &Value) -> u64 {
    let mut h = Fnv::new();
    v.hash(&mut h);
    h.finish()
}

/// [`stable_hash`] of `Value::Int(i)` without constructing the value:
/// replays the exact `Hash` calls of the `Int` arm (tag byte `2`, then
/// the float-widened bit pattern, matching the Int/Float hash unification).
pub(crate) fn stable_hash_int(i: i64) -> u64 {
    let mut h = Fnv::new();
    2u8.hash(&mut h);
    (i as f64).to_bits().hash(&mut h);
    h.finish()
}

/// [`stable_hash`] of `Value::Float(f)` without constructing the value.
pub(crate) fn stable_hash_float(f: f64) -> u64 {
    let mut h = Fnv::new();
    2u8.hash(&mut h);
    f.to_bits().hash(&mut h);
    h.finish()
}

/// [`stable_hash`] of `Value::Str(s)` without constructing the value.
pub(crate) fn stable_hash_str(s: &str) -> u64 {
    let mut h = Fnv::new();
    4u8.hash(&mut h);
    s.hash(&mut h);
    h.finish()
}

/// [`stable_hash`] of `Value::pair(Value::Str(k), Value::Str(v))`
/// without constructing the pair (TPC-H composite string keys).
pub(crate) fn stable_hash_str_pair(k: &str, v: &str) -> u64 {
    let mut h = Fnv::new();
    5u8.hash(&mut h);
    4u8.hash(&mut h);
    k.hash(&mut h);
    4u8.hash(&mut h);
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn accessors_round_trip() {
        assert_eq!(Value::from_i64(7).as_i64(), Some(7));
        assert_eq!(Value::from_f64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from_i64(7).as_f64(), Some(7.0));
        assert_eq!(Value::from_str_("x").as_str(), Some("x"));
        assert_eq!(Value::from_bool(true).as_bool(), Some(true));
        assert_eq!(Value::vector(vec![1.0]).as_vector(), Some(&[1.0][..]));
        let p = Value::pair(Value::from_i64(1), Value::from_i64(2));
        assert_eq!(p.into_pair(), Some((Value::Int(1), Value::Int(2))));
        assert_eq!(Value::Null.as_i64(), None);
    }

    #[test]
    fn equality_crosses_numeric_types() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn values_usable_as_hashmap_keys() {
        let mut m: HashMap<Value, i32> = HashMap::new();
        m.insert(Value::from_str_("a"), 1);
        m.insert(Value::Int(3), 2);
        // Numerically-equal float key must collide with the int key.
        assert_eq!(m.get(&Value::Float(3.0)), Some(&2));
        assert_eq!(m.get(&Value::from_str_("a")), Some(&1));
    }

    #[test]
    fn ordering_is_total_even_with_nan() {
        let mut vs = [
            Value::Float(f64::NAN),
            Value::Float(1.0),
            Value::Float(-1.0),
            Value::Float(f64::NAN),
        ];
        vs.sort(); // must not panic
        assert_eq!(vs[0], Value::Float(-1.0));
    }

    #[test]
    fn ordering_across_types_uses_rank() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Int(i64::MIN));
        assert!(Value::from_str_("zzz") < Value::pair(Value::Null, Value::Null));
    }

    #[test]
    fn list_and_vector_lexicographic_order() {
        assert!(Value::vector(vec![1.0, 2.0]) < Value::vector(vec![1.0, 3.0]));
        assert!(Value::vector(vec![1.0]) < Value::vector(vec![1.0, 0.0]));
        assert!(Value::list(vec![Value::Int(1)]) < Value::list(vec![Value::Int(1), Value::Int(0)]));
    }

    #[test]
    fn size_estimates_are_monotone() {
        let small = Value::from_str_("ab").size_bytes();
        let big = Value::from_str_("abcdefgh").size_bytes();
        assert!(big > small);
        let v = Value::vector(vec![0.0; 100]);
        assert!(v.size_bytes() > 800);
    }

    #[test]
    fn memoized_sizes_match_the_recursive_formula() {
        // Leaf sizes.
        assert_eq!(Value::Null.size_bytes(), 8);
        assert_eq!(Value::Bool(true).size_bytes(), 8);
        assert_eq!(Value::Int(0).size_bytes(), 16);
        assert_eq!(Value::Float(0.0).size_bytes(), 16);
        assert_eq!(Value::from_str_("abc").size_bytes(), 24 + 3);
        assert_eq!(Value::vector(vec![0.0; 4]).size_bytes(), 24 + 32);
        // Pair: 16 + k + v, computed once at construction.
        let p = Value::pair(Value::Int(1), Value::from_str_("ab"));
        assert_eq!(p.size_bytes(), 16 + 16 + 26);
        // List: 24 + Σ, nested compounds fold in their memoized sizes.
        let l = Value::list(vec![p.clone(), Value::Null]);
        assert_eq!(l.size_bytes(), 24 + 58 + 8);
        // Sharing does not change the virtual size.
        assert_eq!(p.clone().size_bytes(), p.size_bytes());
    }

    #[test]
    fn clones_share_structure() {
        let p = Value::pair(Value::from_str_("k"), Value::list(vec![Value::Int(1)]));
        let q = p.clone();
        match (&p, &q) {
            (Value::Pair(a), Value::Pair(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => panic!("expected pairs"),
        }
        // A shared pair still hands out its halves.
        let (k, v) = q.into_pair().unwrap();
        assert_eq!(k.as_str(), Some("k"));
        assert_eq!(v.as_list().map(<[Value]>::len), Some(1));
        // And an unshared one moves them out.
        drop(p);
        let sole = Value::pair(Value::Int(1), Value::Int(2));
        assert_eq!(sole.into_pair(), Some((Value::Int(1), Value::Int(2))));
    }

    #[test]
    fn stable_hash_is_stable_and_spread() {
        let a = stable_hash(&Value::from_str_("key-1"));
        let b = stable_hash(&Value::from_str_("key-2"));
        assert_ne!(a, b);
        assert_eq!(a, stable_hash(&Value::from_str_("key-1")));
        // Int/Float consistency mirrors Eq.
        assert_eq!(stable_hash(&Value::Int(5)), stable_hash(&Value::Float(5.0)));
    }

    #[test]
    fn typed_hash_helpers_match_stable_hash() {
        for i in [-3i64, 0, 7, 1 << 40, i64::MAX, i64::MIN] {
            assert_eq!(stable_hash_int(i), stable_hash(&Value::Int(i)));
        }
        for f in [0.0f64, -1.5, f64::NAN, f64::INFINITY, 1e-300] {
            assert_eq!(stable_hash_float(f), stable_hash(&Value::Float(f)));
        }
        for s in ["", "a", "key-1", "payload-0000000000000042"] {
            assert_eq!(stable_hash_str(s), stable_hash(&Value::from_str_(s)));
        }
        for (k, v) in [("A", "F"), ("N", "O"), ("", "x")] {
            assert_eq!(
                stable_hash_str_pair(k, v),
                stable_hash(&Value::pair(Value::from_str_(k), Value::from_str_(v)))
            );
        }
    }

    #[test]
    fn display_formats() {
        let p = Value::pair(Value::from_str_("k"), Value::list(vec![Value::Int(1)]));
        assert_eq!(p.to_string(), "(\"k\", [1])");
        assert_eq!(Value::vector(vec![1.0, 2.0]).to_string(), "[1, 2]");
    }
}
