//! Durable checkpoint bookkeeping on top of [`flint_store`].

use std::collections::HashMap;

use std::collections::HashSet;

use flint_simtime::SimTime;
use flint_store::{DurableStore, StorageConfig};

use crate::block::BlockData;
use crate::rdd::{PartitionData, RddId};
use crate::shuffle::ShuffleId;
use crate::Lineage;

/// What a degraded store did to one write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write landed intact.
    None,
    /// The write landed but the stored bytes are corrupt (torn write);
    /// the corruption is only *detected* at restore time.
    Torn,
    /// The write was lost outright: nothing landed and the partition
    /// bitmap stays clear.
    Fail,
}

/// Why a present checkpoint can not be restored right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// The stored bytes failed their integrity check (torn write);
    /// permanent — the only way out is lineage recomputation.
    Corrupt,
    /// The store is inside a transient outage window; the checkpoint
    /// will become readable again once the window closes.
    Unavailable,
}

/// A deterministic checkpoint-store degradation model.
///
/// Write faults are decided once per [`CheckpointStore::put`] on the
/// driver thread, so `on_write` may mutate internal RNG state. Read
/// outages are consulted from inside the parallel wave (through a
/// shared `&CheckpointStore`), so `read_unavailable` must be a *pure*
/// function of `(key, now)` — the wave snapshot time — or runs stop
/// being byte-identical across `host_threads`.
pub trait StoreFaultPolicy: Send + Sync + std::fmt::Debug {
    /// Decides the fate of the write of `key` landing at `now`.
    fn on_write(&mut self, key: &str, now: SimTime) -> WriteFault;

    /// Returns `true` while a read of `key` at `now` transiently fails.
    fn read_unavailable(&self, key: &str, now: SimTime) -> bool;
}

/// The default, never-failing store policy (chaos off). Every path
/// through it is branch-free so a chaos-compiled-in-but-disabled run
/// is an exact no-op against the pre-chaos engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct HealthyStore;

impl StoreFaultPolicy for HealthyStore {
    fn on_write(&mut self, _key: &str, _now: SimTime) -> WriteFault {
        WriteFault::None
    }

    fn read_unavailable(&self, _key: &str, _now: SimTime) -> bool {
        false
    }
}

/// Returns the store key for `(rdd, part)`.
///
/// All partitions of an RDD share a key prefix (`rdd-7/`), mirroring the
/// paper's "all partition checkpoints of a single RDD live in the same
/// HDFS directory" layout (§4) and enabling prefix-wise garbage
/// collection.
pub fn checkpoint_key(rdd: RddId, part: u32) -> String {
    format!("rdd-{:06}/part-{:05}", rdd.0, part)
}

/// The engine's view of durable checkpoints.
///
/// Wraps a [`DurableStore`] with per-RDD partition bitmaps so "is this
/// RDD fully checkpointed?" is cheap, plus the paper's reachability-based
/// garbage collector.
#[derive(Debug)]
pub struct CheckpointStore {
    store: DurableStore<BlockData>,
    /// Which partitions of each RDD are durably stored.
    parts: HashMap<RddId, Vec<bool>>,
    /// Which shuffle map outputs are durably stored (used only by the
    /// systems-level checkpointing baseline, which snapshots shuffle
    /// buffers along with everything else).
    shuffle_parts: HashSet<(ShuffleId, u32)>,
    /// Degradation model for writes and reads ([`HealthyStore`] unless
    /// a chaos campaign installs one).
    faults: Box<dyn StoreFaultPolicy>,
    /// Keys whose stored payload is torn. Recorded at write time on
    /// the driver thread; detected (as [`ReadFault::Corrupt`]) when a
    /// restore attempts the integrity check.
    corrupt: HashSet<String>,
}

/// Returns the store key for a shuffle map output.
fn shuffle_key(s: ShuffleId, map_part: u32) -> String {
    format!("shuffle-{:06}/part-{:05}", s.0, map_part)
}

/// Byte-exact size of one partition's serialized checkpoint payload: an
/// 8-byte record count followed by each record's 4-byte length frame and
/// encoded bytes ([`crate::Value::size_bytes`]).
///
/// This walk is the expensive part of preparing a checkpoint write, so
/// the wave executor runs it on the host thread pool alongside task
/// materialization; the determinism suite asserts the resulting sizes are
/// identical for every `host_threads` setting.
pub fn wire_size(data: &[crate::Value]) -> u64 {
    8 + data.iter().map(|v| 4 + v.size_bytes()).sum::<u64>()
}

impl CheckpointStore {
    /// Creates an empty checkpoint store with the given bandwidth model.
    pub fn new(cfg: StorageConfig) -> Self {
        CheckpointStore {
            store: DurableStore::new(cfg),
            parts: HashMap::new(),
            shuffle_parts: HashSet::new(),
            faults: Box::new(HealthyStore),
            corrupt: HashSet::new(),
        }
    }

    /// Installs a store degradation model (replacing [`HealthyStore`]).
    pub fn set_fault_policy(&mut self, policy: Box<dyn StoreFaultPolicy>) {
        self.faults = policy;
    }

    /// Durably stores one shuffle map output (flat or bucketed — a
    /// restore serves back whichever form was captured). Returns what
    /// the (possibly degraded) store did with the write.
    pub fn put_shuffle(
        &mut self,
        s: ShuffleId,
        map_part: u32,
        data: impl Into<BlockData>,
        vbytes: u64,
        now: SimTime,
    ) -> WriteFault {
        let key = shuffle_key(s, map_part);
        let fault = self.faults.on_write(&key, now);
        if fault == WriteFault::Fail {
            return fault;
        }
        self.store.put(&key, data.into(), vbytes, now);
        self.shuffle_parts.insert((s, map_part));
        if fault == WriteFault::Torn {
            self.corrupt.insert(key);
        } else {
            self.corrupt.remove(&key);
        }
        fault
    }

    /// Returns the checkpointed shuffle map output, if present.
    pub fn get_shuffle(&self, s: ShuffleId, map_part: u32) -> Option<&BlockData> {
        self.store.get(&shuffle_key(s, map_part))
    }

    /// Replaces a stored shuffle map output's payload in place, without
    /// simulating a write or changing its recorded size — the durable
    /// half of the lazy range-bucketing conversion (see
    /// [`crate::BlockManager::replace_payload`]). `f` returns `None` to
    /// leave the stored payload untouched (no re-clone).
    pub fn replace_shuffle_payload(
        &mut self,
        s: ShuffleId,
        map_part: u32,
        f: impl FnOnce(&BlockData) -> Option<BlockData>,
    ) {
        if let Some(data) = self.store.get_mut(&shuffle_key(s, map_part)) {
            if let Some(new) = f(data) {
                *data = new;
            }
        }
    }

    /// Returns `true` if the shuffle map output is durably stored.
    pub fn has_shuffle(&self, s: ShuffleId, map_part: u32) -> bool {
        self.shuffle_parts.contains(&(s, map_part))
    }

    /// Returns the stored virtual size of a shuffle map output.
    pub fn size_of_shuffle(&self, s: ShuffleId, map_part: u32) -> Option<u64> {
        self.store.size_of(&shuffle_key(s, map_part))
    }

    /// Returns the underlying durable store.
    pub fn store(&self) -> &DurableStore<BlockData> {
        &self.store
    }

    /// Returns the underlying durable store mutably (cost accounting).
    pub fn store_mut(&mut self) -> &mut DurableStore<BlockData> {
        &mut self.store
    }

    /// Returns the storage bandwidth model.
    pub fn config(&self) -> &StorageConfig {
        self.store.config()
    }

    /// Durably stores an encoded run manifest under `key` (by convention
    /// `manifest/<session>`). Manifests are the suspension/resume
    /// verification artifact, not job data: they bypass the fault policy
    /// (a suspend that loses its own manifest is indistinguishable from
    /// a plain crash, which resume already covers) and are excluded from
    /// checkpoint GC by their key prefix.
    pub fn put_manifest(&mut self, key: &str, text: &str, now: SimTime) {
        let payload: PartitionData = std::sync::Arc::new(vec![crate::Value::from_str_(text)]);
        let bytes = text.len() as u64;
        self.store.put(key, payload.into(), bytes, now);
    }

    /// Returns the encoded run manifest stored under `key`, if present.
    pub fn get_manifest(&self, key: &str) -> Option<&str> {
        self.store
            .get(key)
            .and_then(|d| d.flat())
            .and_then(|p| p.first())
            .and_then(|v| v.as_str())
    }

    /// Durably stores one partition (virtual `vbytes` for accounting).
    /// Returns what the (possibly degraded) store did with the write:
    /// a [`WriteFault::Fail`] leaves the partition bitmap clear, a
    /// [`WriteFault::Torn`] sets the bitmap but poisons the key so the
    /// restore-time integrity check rejects it.
    pub fn put(
        &mut self,
        rdd: RddId,
        part: u32,
        num_partitions: u32,
        data: impl Into<BlockData>,
        vbytes: u64,
        now: SimTime,
    ) -> WriteFault {
        let key = checkpoint_key(rdd, part);
        let fault = self.faults.on_write(&key, now);
        if fault == WriteFault::Fail {
            return fault;
        }
        self.store.put(&key, data.into(), vbytes, now);
        if fault == WriteFault::Torn {
            self.corrupt.insert(key);
        } else {
            self.corrupt.remove(&key);
        }
        let bits = self
            .parts
            .entry(rdd)
            .or_insert_with(|| vec![false; num_partitions as usize]);
        if let Some(b) = bits.get_mut(part as usize) {
            *b = true;
        }
        fault
    }

    /// Returns the checkpointed data for `(rdd, part)`, if present.
    /// Only shuffle map outputs are ever bucketed, so RDD partition
    /// checkpoints are always served flat.
    pub fn get(&self, rdd: RddId, part: u32) -> Option<&PartitionData> {
        self.store
            .get(&checkpoint_key(rdd, part))
            .map(|d| d.flat().expect("RDD partition checkpoints are flat"))
    }

    /// Returns the stored virtual size of `(rdd, part)`, if present.
    pub fn size_of(&self, rdd: RddId, part: u32) -> Option<u64> {
        self.store.size_of(&checkpoint_key(rdd, part))
    }

    /// Returns `true` if `(rdd, part)` is durably stored.
    pub fn has(&self, rdd: RddId, part: u32) -> bool {
        self.parts
            .get(&rdd)
            .and_then(|b| b.get(part as usize).copied())
            .unwrap_or(false)
    }

    /// Why a *present* checkpoint of `(rdd, part)` can not be restored
    /// at `now`, or `None` if a restore would succeed. Meaningless
    /// when [`CheckpointStore::has`] is false. Pure — safe to call
    /// from wave threads with the wave-snapshot `now`.
    pub fn read_fault(&self, rdd: RddId, part: u32, now: SimTime) -> Option<ReadFault> {
        let key = checkpoint_key(rdd, part);
        if self.corrupt.contains(&key) {
            Some(ReadFault::Corrupt)
        } else if self.faults.read_unavailable(&key, now) {
            Some(ReadFault::Unavailable)
        } else {
            None
        }
    }

    /// Why a *present* shuffle checkpoint can not be restored at `now`,
    /// or `None` if a restore would succeed.
    pub fn shuffle_read_fault(
        &self,
        s: ShuffleId,
        map_part: u32,
        now: SimTime,
    ) -> Option<ReadFault> {
        let key = shuffle_key(s, map_part);
        if self.corrupt.contains(&key) {
            Some(ReadFault::Corrupt)
        } else if self.faults.read_unavailable(&key, now) {
            Some(ReadFault::Unavailable)
        } else {
            None
        }
    }

    /// The planner/executor-shared readability predicate: the
    /// partition is durably stored *and* restorable at `now`. Both
    /// sides must agree on this (with the same wave-snapshot `now`) or
    /// the planner schedules restores the executor then refuses.
    pub fn readable(&self, rdd: RddId, part: u32, now: SimTime) -> bool {
        self.has(rdd, part) && self.read_fault(rdd, part, now).is_none()
    }

    /// Shuffle-side readability predicate (see [`CheckpointStore::readable`]).
    pub fn shuffle_readable(&self, s: ShuffleId, map_part: u32, now: SimTime) -> bool {
        self.has_shuffle(s, map_part) && self.shuffle_read_fault(s, map_part, now).is_none()
    }

    /// Returns `true` if every partition of `rdd` is durably stored.
    pub fn is_fully_checkpointed(&self, rdd: RddId) -> bool {
        self.parts
            .get(&rdd)
            .map(|b| b.iter().all(|&x| x))
            .unwrap_or(false)
    }

    /// Returns the RDDs with at least one checkpointed partition.
    pub fn checkpointed_rdds(&self) -> Vec<RddId> {
        let mut ids: Vec<RddId> = self
            .parts
            .iter()
            .filter(|(_, b)| b.iter().any(|&x| x))
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        ids
    }

    /// Drops every checkpoint of `rdd`.
    pub fn drop_rdd(&mut self, rdd: RddId, now: SimTime) -> usize {
        self.parts.remove(&rdd);
        let prefix = format!("rdd-{:06}/", rdd.0);
        self.corrupt.retain(|k| !k.starts_with(&prefix));
        self.store.delete_prefix(&prefix, now)
    }

    /// Garbage-collects redundant checkpoints (§4): checkpointing an RDD
    /// terminates its lineage, so an *ancestor's* checkpoint becomes
    /// unreachable — but only once every one of the ancestor's child
    /// subtrees is covered by a checkpointed cut, and never for RDDs the
    /// program explicitly persists (those remain live targets of future
    /// actions, e.g. resident tables queried repeatedly). Returns the
    /// number of partition objects deleted.
    pub fn gc(&mut self, lineage: &Lineage, now: SimTime) -> usize {
        // covered(X): recomputing anything *below* X never needs X's
        // checkpoint, because every path down from X crosses a fully-
        // checkpointed RDD. Evaluated bottom-up; ids are topological
        // (parents have smaller ids than children).
        let n = lineage.len();
        let mut covered = vec![false; n];
        for idx in (0..n).rev() {
            let id = RddId(idx as u32);
            if self.is_fully_checkpointed(id) {
                covered[idx] = true;
                continue;
            }
            let children = lineage.children(id);
            covered[idx] = !children.is_empty() && children.iter().all(|c| covered[c.0 as usize]);
        }
        let doomed: Vec<RddId> = self
            .checkpointed_rdds()
            .into_iter()
            .filter(|id| {
                let children = lineage.children(*id);
                !lineage.is_persisted(*id)
                    && !children.is_empty()
                    && children.iter().all(|c| covered[c.0 as usize])
            })
            .collect();
        let mut deleted = 0;
        for rdd in doomed {
            deleted += self.drop_rdd(rdd, now);
        }
        deleted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdd::RddOp;
    use std::sync::Arc;

    fn data() -> PartitionData {
        Arc::new(vec![])
    }

    #[test]
    fn wire_size_is_framing_plus_payload() {
        assert_eq!(wire_size(&[]), 8);
        let vals = vec![crate::Value::Int(1), crate::Value::from_str_("abc")];
        let payload: u64 = vals.iter().map(crate::Value::size_bytes).sum();
        assert_eq!(wire_size(&vals), 8 + 2 * 4 + payload);
    }

    #[test]
    fn key_format_is_prefix_friendly() {
        let k = checkpoint_key(RddId(7), 3);
        assert!(k.starts_with("rdd-000007/"));
        assert_eq!(k, "rdd-000007/part-00003");
    }

    #[test]
    fn put_get_has() {
        let mut cs = CheckpointStore::new(StorageConfig::default());
        assert!(!cs.has(RddId(0), 0));
        cs.put(RddId(0), 0, 2, data(), 100, SimTime::ZERO);
        assert!(cs.has(RddId(0), 0));
        assert!(!cs.has(RddId(0), 1));
        assert!(!cs.is_fully_checkpointed(RddId(0)));
        cs.put(RddId(0), 1, 2, data(), 100, SimTime::ZERO);
        assert!(cs.is_fully_checkpointed(RddId(0)));
        assert_eq!(cs.size_of(RddId(0), 1), Some(100));
        assert_eq!(cs.checkpointed_rdds(), vec![RddId(0)]);
    }

    #[test]
    fn gc_drops_fully_shadowed_ancestors() {
        // Lineage: a -> b -> c, all checkpointed; checkpointing c makes
        // a's and b's checkpoints unreachable.
        let mut l = Lineage::new();
        let src = RddOp::Parallelize {
            data: Arc::new(vec![vec![]]),
        };
        let a = l.add_rdd("a", src, vec![], 1);
        let map = || RddOp::Map {
            f: crate::rdd::identity(),
        };
        let b = l.add_rdd("b", map(), vec![a], 1);
        let c = l.add_rdd("c", map(), vec![b], 1);

        let mut cs = CheckpointStore::new(StorageConfig::default());
        cs.put(a, 0, 1, data(), 10, SimTime::ZERO);
        cs.put(b, 0, 1, data(), 10, SimTime::ZERO);
        cs.put(c, 0, 1, data(), 10, SimTime::ZERO);
        let deleted = cs.gc(&l, SimTime::ZERO);
        assert_eq!(deleted, 2);
        assert!(cs.has(c, 0));
        assert!(!cs.has(a, 0));
        assert!(!cs.has(b, 0));
    }

    #[test]
    fn gc_keeps_ancestors_of_partial_checkpoints() {
        let mut l = Lineage::new();
        let src = RddOp::Parallelize {
            data: Arc::new(vec![vec![], vec![]]),
        };
        let a = l.add_rdd("a", src, vec![], 2);
        let b = l.add_rdd(
            "b",
            RddOp::Map {
                f: crate::rdd::identity(),
            },
            vec![a],
            2,
        );
        let mut cs = CheckpointStore::new(StorageConfig::default());
        cs.put(a, 0, 2, data(), 10, SimTime::ZERO);
        cs.put(a, 1, 2, data(), 10, SimTime::ZERO);
        // b only partially checkpointed: a must be retained.
        cs.put(b, 0, 2, data(), 10, SimTime::ZERO);
        assert_eq!(cs.gc(&l, SimTime::ZERO), 0);
        assert!(cs.has(a, 0));
    }

    #[test]
    fn shuffle_checkpoints_round_trip() {
        let mut cs = CheckpointStore::new(StorageConfig::default());
        assert!(!cs.has_shuffle(ShuffleId(2), 0));
        cs.put_shuffle(ShuffleId(2), 0, data(), 64, SimTime::ZERO);
        assert!(cs.has_shuffle(ShuffleId(2), 0));
        assert!(cs.get_shuffle(ShuffleId(2), 0).is_some());
        assert_eq!(cs.size_of_shuffle(ShuffleId(2), 0), Some(64));
        assert!(!cs.has_shuffle(ShuffleId(2), 1));
    }

    #[test]
    fn degraded_store_write_and_read_faults() {
        // A policy that tears the first write, loses the second, then
        // heals; reads fail inside a fixed outage window.
        #[derive(Debug)]
        struct Script {
            writes: u32,
        }
        impl StoreFaultPolicy for Script {
            fn on_write(&mut self, _key: &str, _now: SimTime) -> WriteFault {
                self.writes += 1;
                match self.writes {
                    1 => WriteFault::Torn,
                    2 => WriteFault::Fail,
                    _ => WriteFault::None,
                }
            }
            fn read_unavailable(&self, _key: &str, now: SimTime) -> bool {
                now >= SimTime::from_millis(1_000) && now < SimTime::from_millis(2_000)
            }
        }
        let mut cs = CheckpointStore::new(StorageConfig::default());
        cs.set_fault_policy(Box::new(Script { writes: 0 }));

        // Torn: bitmap set, integrity check rejects the restore.
        assert_eq!(
            cs.put(RddId(0), 0, 2, data(), 10, SimTime::ZERO),
            WriteFault::Torn
        );
        assert!(cs.has(RddId(0), 0));
        assert_eq!(
            cs.read_fault(RddId(0), 0, SimTime::ZERO),
            Some(ReadFault::Corrupt)
        );
        assert!(!cs.readable(RddId(0), 0, SimTime::ZERO));

        // Fail: nothing landed.
        assert_eq!(
            cs.put(RddId(0), 1, 2, data(), 10, SimTime::ZERO),
            WriteFault::Fail
        );
        assert!(!cs.has(RddId(0), 1));

        // Clean rewrite clears the torn flag.
        assert_eq!(
            cs.put(RddId(0), 0, 2, data(), 10, SimTime::ZERO),
            WriteFault::None
        );
        assert!(cs.readable(RddId(0), 0, SimTime::ZERO));

        // Transient outage window: unavailable inside, healthy after.
        let mid = SimTime::from_millis(1_500);
        assert_eq!(
            cs.read_fault(RddId(0), 0, mid),
            Some(ReadFault::Unavailable)
        );
        assert!(!cs.readable(RddId(0), 0, mid));
        assert!(cs.readable(RddId(0), 0, SimTime::from_millis(2_000)));

        // Shuffle writes go through the same policy (write 4: clean).
        assert_eq!(
            cs.put_shuffle(ShuffleId(1), 0, data(), 8, SimTime::ZERO),
            WriteFault::None
        );
        assert!(cs.shuffle_readable(ShuffleId(1), 0, SimTime::ZERO));
        assert_eq!(
            cs.shuffle_read_fault(ShuffleId(1), 0, mid),
            Some(ReadFault::Unavailable)
        );

        // drop_rdd forgets corruption along with the data.
        cs.set_fault_policy(Box::new(Script { writes: 0 }));
        assert_eq!(
            cs.put(RddId(3), 0, 1, data(), 10, SimTime::ZERO),
            WriteFault::Torn
        );
        cs.drop_rdd(RddId(3), SimTime::ZERO);
        assert!(!cs.has(RddId(3), 0));
    }

    #[test]
    fn drop_rdd_removes_all_parts() {
        let mut cs = CheckpointStore::new(StorageConfig::default());
        cs.put(RddId(1), 0, 2, data(), 10, SimTime::ZERO);
        cs.put(RddId(1), 1, 2, data(), 10, SimTime::ZERO);
        assert_eq!(cs.drop_rdd(RddId(1), SimTime::ZERO), 2);
        assert!(!cs.has(RddId(1), 0));
        assert!(cs.checkpointed_rdds().is_empty());
    }
}
