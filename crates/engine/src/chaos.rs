//! Seeded chaos schedules: hostile worker churn and checkpoint-store
//! degradation, generated deterministically from a single `u64` seed.
//!
//! The chaos subsystem composes with the two fault surfaces the engine
//! already exposes, rather than adding new hooks inside the hot path:
//!
//! * worker faults ride the [`FailureInjector`] trait — a
//!   [`ChaosInjector`] is a pre-generated [`ScriptedInjector`] plus
//!   fault notes the driver turns into `FaultInjected` trace events;
//! * store faults ride the [`StoreFaultPolicy`] trait on
//!   [`crate::CheckpointStore`] — [`ChaosStoreFaults`] tears or drops
//!   writes and opens transient read-outage windows.
//!
//! Every decision is drawn from `flint_simtime::rng` sub-streams of the
//! campaign seed — never the wall clock — so the same seed replays the
//! same faults at the same virtual instants on every host.

use flint_market::HazardSpec;
use flint_simtime::rng::stream;
use flint_simtime::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

use crate::checkpoint::{StoreFaultPolicy, WriteFault};
use crate::cluster::WorkerSpec;
use crate::injector::{FailureInjector, ScriptedInjector, WorkerEvent};

/// Parameters of one seeded chaos campaign. Probabilities are per
/// scheduled revocation event (or per write, for the store knobs);
/// setting every rate to zero yields an empty schedule, which the
/// golden-trace suite uses to prove chaos-off is a no-op.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Campaign seed; every sub-stream derives from it.
    pub seed: u64,
    /// Schedule horizon — faults land in `(0, horizon]`.
    pub horizon: SimDuration,
    /// Base worker pool the driver starts with (ext ids `1..=n`).
    pub n_workers: u32,
    /// Hardware shape of injected replacement workers.
    pub spec: WorkerSpec,
    /// Revocation events scheduled across the horizon.
    pub revocations: u32,
    /// Fraction of revocations that skip the `Warn` (warning-less).
    pub unwarned_frac: f64,
    /// Lead time of the warning when one is issued (EC2: 120 s).
    pub warning_lead: SimDuration,
    /// Probability a revocation widens to its whole correlated group.
    pub mass_revoke_prob: f64,
    /// Correlated ext-id groups (from the market correlation model);
    /// a mass revocation takes out the victim's entire group.
    pub groups: Vec<Vec<u64>>,
    /// Probability a revoked worker flaps (rapid re-add/re-remove).
    pub flap_prob: f64,
    /// Add/Remove cycles per flapping worker.
    pub flap_cycles: u32,
    /// Gap between flap transitions.
    pub flap_gap: SimDuration,
    /// Whether revocations are followed by replacement `Add`s.
    pub replacements: bool,
    /// Normal replacement acquisition delay.
    pub replacement_delay: SimDuration,
    /// Fraction of replacements that arrive late.
    pub delayed_frac: f64,
    /// Lateness multiplier for delayed replacements.
    pub delay_factor: f64,
    /// Probability a checkpoint write lands torn (corrupt-on-read).
    pub torn_write_prob: f64,
    /// Probability a checkpoint write is lost outright.
    pub failed_write_prob: f64,
    /// Transient store read-outage windows across the horizon.
    pub outages: u32,
    /// Length of each outage window.
    pub outage_len: SimDuration,
    /// When set, revocation *times* are no longer uniform over the
    /// horizon: successive gaps are lifetimes sampled from this hazard
    /// model (wrapped into the horizon), so chaos timing and the
    /// selection layer share one preemption distribution. `None` (the
    /// default) keeps the legacy uniform draws byte-identical.
    pub lifetime_hazard: Option<HazardSpec>,
    /// MTTF parameter for an exponential `lifetime_hazard` (capped
    /// hazards carry their own parameters).
    pub lifetime_mttf: SimDuration,
    /// Probability the campaign kills the driver mid-run: the schedule
    /// draws a wave number and the harness suspends the driver at that
    /// wave-commit boundary (via `DriverConfig::suspend_after_waves`),
    /// then resumes from the persisted manifest. `0.0` (the default)
    /// draws nothing, keeping legacy schedules byte-identical.
    pub driver_crash_prob: f64,
    /// Upper bound (inclusive) on the drawn crash wave.
    pub driver_crash_wave_max: u64,
    /// Probability the campaign includes a market-wide collapse: every
    /// live pool worker is removed at one drawn instant, with a fresh
    /// cohort arriving only after [`Self::collapse_len`]. `0.0` (the
    /// default) draws nothing.
    pub market_collapse_prob: f64,
    /// How long a market collapse leaves the cluster empty before the
    /// recovery cohort arrives.
    pub collapse_len: SimDuration,
}

impl ChaosConfig {
    /// A moderately hostile default campaign for `seed`: mixed warned
    /// and warning-less revocations with replacements, occasional
    /// flaps and mass revocations, and a degraded checkpoint store.
    pub fn new(seed: u64) -> Self {
        ChaosConfig {
            seed,
            horizon: SimDuration::from_hours(2),
            n_workers: 4,
            spec: WorkerSpec::r3_large(),
            revocations: 6,
            unwarned_frac: 0.5,
            warning_lead: SimDuration::from_secs(120),
            mass_revoke_prob: 0.2,
            groups: Vec::new(),
            flap_prob: 0.25,
            flap_cycles: 3,
            flap_gap: SimDuration::from_secs(15),
            replacements: true,
            replacement_delay: SimDuration::from_secs(120),
            delayed_frac: 0.3,
            delay_factor: 8.0,
            torn_write_prob: 0.15,
            failed_write_prob: 0.1,
            outages: 2,
            outage_len: SimDuration::from_mins(5),
            lifetime_hazard: None,
            lifetime_mttf: SimDuration::from_hours(1),
            driver_crash_prob: 0.0,
            driver_crash_wave_max: 8,
            market_collapse_prob: 0.0,
            collapse_len: SimDuration::from_mins(10),
        }
    }
}

/// A fully materialized chaos schedule: the worker-event script, the
/// fault notes it corresponds to, and the store outage windows. One
/// generation pass feeds both the [`ChaosInjector`] and the
/// [`ChaosStoreFaults`] policy, so the two surfaces stay consistent.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    /// Timed cluster-membership changes.
    pub worker_events: Vec<(SimTime, WorkerEvent)>,
    /// `(t, kind, target)` fault descriptors for `FaultInjected`
    /// trace events, time-sorted.
    pub notes: Vec<(SimTime, String, String)>,
    /// Half-open `[start, end)` store read-outage windows.
    pub outages: Vec<(SimTime, SimTime)>,
    /// Wave-commit boundary at which the campaign kills the driver
    /// (`None` unless the driver-crash fault kind was drawn). The
    /// harness wires this into `DriverConfig::suspend_after_waves` and
    /// resumes from the persisted manifest.
    pub driver_crash_wave: Option<u64>,
}

impl ChaosSchedule {
    /// Generates the schedule for `cfg`, entirely up front, from
    /// seeded sub-streams (no wall clock anywhere).
    pub fn generate(cfg: &ChaosConfig) -> ChaosSchedule {
        let mut rng = stream(cfg.seed, "chaos-schedule");
        let horizon_ms = cfg.horizon.as_millis().max(2);
        let mut events: Vec<(SimTime, WorkerEvent)> = Vec::new();
        let mut notes: Vec<(SimTime, String, String)> = Vec::new();
        // Victims come from the live pool: the base workers plus any
        // replacements injected so far. Revoking an ext id the driver
        // no longer hosts is deliberate chaos (the driver must shrug).
        let mut pool: Vec<u64> = (1..=u64::from(cfg.n_workers.max(1))).collect();
        let mut next_replacement_ext: u64 = 9_000_000;
        let hazard = cfg
            .lifetime_hazard
            .map(|spec| spec.build(cfg.lifetime_mttf));
        let mut hazard_clock = SimDuration::ZERO;

        for _ in 0..cfg.revocations {
            let t = match &hazard {
                // Legacy path: uniform over the horizon, byte-identical
                // to pre-hazard schedules.
                None => SimTime::from_millis(rng.gen_range(1..horizon_ms)),
                // Hazard path: the next revocation lands one sampled
                // lifetime after the previous one, wrapped into
                // `(0, horizon)` so every event stays on-schedule.
                Some(h) => {
                    hazard_clock += h.sample_lifetime(&mut rng);
                    SimTime::from_millis((hazard_clock.as_millis() % horizon_ms).max(1))
                }
            };
            let victim = pool[rng.gen_range(0..pool.len())];
            let mass = cfg.mass_revoke_prob > 0.0 && rng.gen_bool(cfg.mass_revoke_prob);
            let victims: Vec<u64> = if mass {
                cfg.groups
                    .iter()
                    .find(|g| g.contains(&victim))
                    .cloned()
                    .unwrap_or_else(|| vec![victim])
            } else {
                vec![victim]
            };
            for &v in &victims {
                let warned = cfg.unwarned_frac < 1.0 && !rng.gen_bool(cfg.unwarned_frac);
                if warned {
                    let warn_t = t
                        .saturating_sub(cfg.warning_lead)
                        .max(SimTime::from_millis(1));
                    events.push((warn_t, WorkerEvent::Warn { ext_id: v }));
                }
                events.push((t, WorkerEvent::Remove { ext_id: v }));
                let kind = if mass {
                    "mass_revoke"
                } else if warned {
                    "revoke_warned"
                } else {
                    "revoke_unwarned"
                };
                notes.push((t, kind.to_string(), format!("ext-{v}")));
                if cfg.replacements {
                    let late = cfg.delayed_frac > 0.0 && rng.gen_bool(cfg.delayed_frac);
                    let delay = if late {
                        SimDuration::from_secs_f64(
                            cfg.replacement_delay.as_secs_f64() * cfg.delay_factor.max(1.0),
                        )
                    } else {
                        cfg.replacement_delay
                    };
                    let ext = next_replacement_ext;
                    next_replacement_ext += 1;
                    let rt = t + delay;
                    events.push((
                        rt,
                        WorkerEvent::Add {
                            ext_id: ext,
                            spec: cfg.spec,
                        },
                    ));
                    if late {
                        notes.push((rt, "delayed_add".to_string(), format!("ext-{ext}")));
                    }
                    pool.push(ext);
                }
            }
            if cfg.flap_prob > 0.0 && rng.gen_bool(cfg.flap_prob) {
                let mut ft = t;
                for _ in 0..cfg.flap_cycles {
                    ft += cfg.flap_gap;
                    events.push((
                        ft,
                        WorkerEvent::Add {
                            ext_id: victim,
                            spec: cfg.spec,
                        },
                    ));
                    ft += cfg.flap_gap;
                    events.push((ft, WorkerEvent::Remove { ext_id: victim }));
                }
                notes.push((t, "flap".to_string(), format!("ext-{victim}")));
            }
        }

        let mut outages: Vec<(SimTime, SimTime)> = Vec::new();
        for _ in 0..cfg.outages {
            let s = SimTime::from_millis(rng.gen_range(1..horizon_ms));
            outages.push((s, s + cfg.outage_len));
            notes.push((
                s,
                "store_outage".to_string(),
                "checkpoint-store".to_string(),
            ));
        }
        // New fault kinds draw strictly after every legacy draw, each
        // behind a `prob > 0.0` short-circuit, so campaigns that leave
        // them off consume exactly the legacy stream positions.
        let mut driver_crash_wave = None;
        if cfg.driver_crash_prob > 0.0 && rng.gen_bool(cfg.driver_crash_prob) {
            let wave = rng.gen_range(1..=cfg.driver_crash_wave_max.max(1));
            driver_crash_wave = Some(wave);
            notes.push((
                SimTime::from_millis(1),
                "driver_crash".to_string(),
                format!("wave-{wave}"),
            ));
        }
        if cfg.market_collapse_prob > 0.0 && rng.gen_bool(cfg.market_collapse_prob) {
            let t = SimTime::from_millis(rng.gen_range(1..horizon_ms));
            for &v in &pool {
                events.push((t, WorkerEvent::Remove { ext_id: v }));
            }
            notes.push((
                t,
                "market_collapse".to_string(),
                format!("workers-{}", pool.len()),
            ));
            let rt = t + cfg.collapse_len;
            for _ in 0..cfg.n_workers.max(1) {
                let ext = next_replacement_ext;
                next_replacement_ext += 1;
                events.push((
                    rt,
                    WorkerEvent::Add {
                        ext_id: ext,
                        spec: cfg.spec,
                    },
                ));
            }
        }

        outages.sort();
        notes.sort_by_key(|a| a.0);
        // ScriptedInjector re-sorts worker events by (t, kind rank).
        ChaosSchedule {
            worker_events: events,
            notes,
            outages,
            driver_crash_wave,
        }
    }

    /// Builds the store-fault policy half of this schedule.
    pub fn store_faults(&self, cfg: &ChaosConfig) -> ChaosStoreFaults {
        ChaosStoreFaults {
            torn_prob: cfg.torn_write_prob,
            fail_prob: cfg.failed_write_prob,
            outages: self.outages.clone(),
            rng: stream(cfg.seed, "chaos-store-writes"),
        }
    }
}

/// A [`FailureInjector`] replaying a pre-generated chaos schedule and
/// reporting its fault notes so the driver can trace `FaultInjected`
/// events alongside the membership changes.
#[derive(Debug, Clone)]
pub struct ChaosInjector {
    inner: ScriptedInjector,
    notes: Vec<(SimTime, String, String)>,
    note_cursor: usize,
}

impl ChaosInjector {
    /// Generates the schedule for `cfg` and wraps it.
    pub fn new(cfg: &ChaosConfig) -> Self {
        Self::from_schedule(ChaosSchedule::generate(cfg))
    }

    /// Wraps an existing schedule (shared with a store-fault policy).
    pub fn from_schedule(schedule: ChaosSchedule) -> Self {
        ChaosInjector {
            inner: ScriptedInjector::new(schedule.worker_events),
            notes: schedule.notes,
            note_cursor: 0,
        }
    }

    /// Worker events not yet delivered.
    pub fn remaining(&self) -> usize {
        self.inner.remaining()
    }
}

impl FailureInjector for ChaosInjector {
    fn events(&mut self, from: SimTime, to: SimTime) -> Vec<(SimTime, WorkerEvent)> {
        self.inner.events(from, to)
    }

    fn next_event_after(&mut self, t: SimTime) -> Option<SimTime> {
        self.inner.next_event_after(t)
    }

    fn fault_notes(&mut self, _from: SimTime, to: SimTime) -> Vec<(SimTime, String, String)> {
        // Mirror ScriptedInjector window semantics: anything at or
        // before `to` not yet delivered goes out now (late notes are
        // delivered rather than dropped).
        let mut out = Vec::new();
        while self.note_cursor < self.notes.len() && self.notes[self.note_cursor].0 <= to {
            out.push(self.notes[self.note_cursor].clone());
            self.note_cursor += 1;
        }
        out
    }
}

/// Checkpoint-store degradation drawn from the campaign seed: each
/// write independently lands torn or is lost; reads fail inside the
/// schedule's outage windows. Write decisions consume a dedicated RNG
/// sub-stream on the driver thread; the outage predicate is a pure
/// function of `now`, as [`StoreFaultPolicy`] requires.
#[derive(Debug)]
pub struct ChaosStoreFaults {
    torn_prob: f64,
    fail_prob: f64,
    outages: Vec<(SimTime, SimTime)>,
    rng: StdRng,
}

impl StoreFaultPolicy for ChaosStoreFaults {
    fn on_write(&mut self, _key: &str, _now: SimTime) -> WriteFault {
        // Draw both coins unconditionally so the stream position never
        // depends on the outcome of the first draw.
        let torn = self.torn_prob > 0.0 && self.rng.gen_bool(self.torn_prob);
        let fail = self.fail_prob > 0.0 && self.rng.gen_bool(self.fail_prob);
        if fail {
            WriteFault::Fail
        } else if torn {
            WriteFault::Torn
        } else {
            WriteFault::None
        }
    }

    fn read_unavailable(&self, _key: &str, now: SimTime) -> bool {
        self.outages.iter().any(|(s, e)| now >= *s && now < *e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let cfg = ChaosConfig::new(42);
        let a = ChaosSchedule::generate(&cfg);
        let b = ChaosSchedule::generate(&cfg);
        assert_eq!(a.worker_events, b.worker_events);
        assert_eq!(a.notes, b.notes);
        assert_eq!(a.outages, b.outages);
        let c = ChaosSchedule::generate(&ChaosConfig::new(43));
        assert!(
            a.worker_events != c.worker_events || a.outages != c.outages,
            "different seeds should diverge"
        );
    }

    #[test]
    fn schedule_fits_knobs() {
        let mut cfg = ChaosConfig::new(7);
        cfg.revocations = 10;
        cfg.flap_prob = 0.0;
        cfg.mass_revoke_prob = 0.0;
        cfg.replacements = false;
        cfg.unwarned_frac = 1.0;
        cfg.outages = 0;
        let s = ChaosSchedule::generate(&cfg);
        // Pure warning-less revocations: exactly one Remove per event.
        assert_eq!(s.worker_events.len(), 10);
        assert!(s
            .worker_events
            .iter()
            .all(|(_, ev)| matches!(ev, WorkerEvent::Remove { .. })));
        assert!(s.outages.is_empty());
        assert_eq!(s.notes.len(), 10);
        assert!(s.notes.iter().all(|(_, k, _)| k == "revoke_unwarned"));
    }

    #[test]
    fn mass_revocation_takes_whole_group() {
        let mut cfg = ChaosConfig::new(1);
        cfg.revocations = 1;
        cfg.mass_revoke_prob = 1.0;
        cfg.flap_prob = 0.0;
        cfg.replacements = false;
        cfg.unwarned_frac = 1.0;
        cfg.outages = 0;
        cfg.n_workers = 4;
        cfg.groups = vec![vec![1, 2], vec![3, 4]];
        let s = ChaosSchedule::generate(&cfg);
        let removed: Vec<u64> = s
            .worker_events
            .iter()
            .filter_map(|(_, ev)| match ev {
                WorkerEvent::Remove { ext_id } => Some(*ext_id),
                _ => None,
            })
            .collect();
        assert_eq!(
            removed.len(),
            2,
            "whole correlated group revoked: {removed:?}"
        );
        assert!(removed == vec![1, 2] || removed == vec![3, 4]);
        assert!(s.notes.iter().all(|(_, k, _)| k == "mass_revoke"));
    }

    #[test]
    fn injector_delivers_notes_alongside_events() {
        let mut cfg = ChaosConfig::new(5);
        cfg.revocations = 3;
        let schedule = ChaosSchedule::generate(&cfg);
        let n_notes = schedule.notes.len();
        let mut inj = ChaosInjector::from_schedule(schedule);
        let horizon = SimTime::ZERO + cfg.horizon + SimDuration::from_hours(1);
        let evs = inj.events(SimTime::ZERO, horizon);
        let notes = inj.fault_notes(SimTime::ZERO, horizon);
        assert!(!evs.is_empty());
        assert_eq!(notes.len(), n_notes);
        // Consumed exactly once.
        assert!(inj.fault_notes(SimTime::ZERO, horizon).is_empty());
    }

    #[test]
    fn driver_crash_and_market_collapse_draw_after_legacy_stream() {
        let legacy = ChaosSchedule::generate(&ChaosConfig::new(42));
        assert!(legacy.driver_crash_wave.is_none(), "off by default");

        let mut cfg = ChaosConfig::new(42);
        cfg.driver_crash_prob = 1.0;
        cfg.driver_crash_wave_max = 5;
        cfg.market_collapse_prob = 1.0;
        let s = ChaosSchedule::generate(&cfg);
        // Appended draws: every legacy event survives as an exact
        // prefix, so enabling the new kinds never perturbs old faults.
        assert_eq!(
            &s.worker_events[..legacy.worker_events.len()],
            &legacy.worker_events[..]
        );
        let wave = s.driver_crash_wave.expect("crash drawn at prob 1.0");
        assert!((1..=5).contains(&wave));
        assert!(s.notes.iter().any(|(_, k, _)| k == "driver_crash"));
        // The collapse removes the whole live pool at one instant and
        // brings a fresh cohort exactly collapse_len later.
        let (ct, _, target) = s
            .notes
            .iter()
            .find(|(_, k, _)| k == "market_collapse")
            .expect("collapse drawn at prob 1.0")
            .clone();
        let pool_size: usize = target
            .strip_prefix("workers-")
            .and_then(|v| v.parse().ok())
            .unwrap();
        let removed_at_ct = s
            .worker_events
            .iter()
            .skip(legacy.worker_events.len())
            .filter(|(t, e)| *t == ct && matches!(e, WorkerEvent::Remove { .. }))
            .count();
        assert_eq!(removed_at_ct, pool_size);
        let cohort = s
            .worker_events
            .iter()
            .filter(|(t, e)| *t == ct + cfg.collapse_len && matches!(e, WorkerEvent::Add { .. }))
            .count();
        assert_eq!(cohort, cfg.n_workers as usize);
    }

    #[test]
    fn store_faults_are_deterministic_and_windowed() {
        let cfg = ChaosConfig::new(9);
        let s = ChaosSchedule::generate(&cfg);
        let mut a = s.store_faults(&cfg);
        let mut b = s.store_faults(&cfg);
        let seq_a: Vec<WriteFault> = (0..32)
            .map(|i| a.on_write(&format!("k{i}"), SimTime::ZERO))
            .collect();
        let seq_b: Vec<WriteFault> = (0..32)
            .map(|i| b.on_write(&format!("k{i}"), SimTime::ZERO))
            .collect();
        assert_eq!(seq_a, seq_b);
        assert!(
            seq_a.iter().any(|f| *f != WriteFault::None),
            "defaults should fault sometimes"
        );
        if let Some((start, end)) = s.outages.first().copied() {
            assert!(a.read_unavailable("k", start));
            assert!(!a.read_unavailable("k", end));
        }
    }
}
