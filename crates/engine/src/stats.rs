//! Execution metrics collected by the driver.

use flint_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Timing record of one action (job).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActionRecord {
    /// Action label, e.g. `"collect(rdd-12)"`.
    pub name: String,
    /// Virtual start instant.
    pub started: SimTime,
    /// Virtual completion instant.
    pub finished: SimTime,
}

impl ActionRecord {
    /// The action's response latency.
    pub fn latency(&self) -> SimDuration {
        self.finished - self.started
    }
}

/// Cumulative execution metrics.
///
/// These are the quantities the paper's figures are built from: total
/// running time, checkpointing overhead ("checkpointing tax"), time lost
/// to recomputation after revocations, and time stalled acquiring
/// replacement servers.
/// `PartialEq` exists so the determinism suite can assert that runs at
/// different `host_threads` settings produce bit-identical accounting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Number of compute tasks executed.
    pub tasks_run: u64,
    /// Total core time spent computing (includes recomputation).
    pub compute_time: SimDuration,
    /// Core time spent *re*computing partitions that had been
    /// materialized before a loss.
    pub recompute_time: SimDuration,
    /// Core time spent writing checkpoints.
    pub checkpoint_time: SimDuration,
    /// Number of partition checkpoints written.
    pub checkpoints_written: u64,
    /// Virtual bytes of checkpoints written.
    pub checkpoint_bytes: u64,
    /// Byte-exact serialized size of checkpoints written (see
    /// [`crate::wire_size`]); computed on the wave executor's host
    /// threads.
    pub checkpoint_wire_bytes: u64,
    /// Time spent restoring partitions from durable checkpoints.
    pub restore_time: SimDuration,
    /// Number of partitions restored from checkpoints.
    pub restores: u64,
    /// Wall (virtual) time the driver spent with zero usable workers,
    /// waiting for replacements.
    pub stall_time: SimDuration,
    /// Worker revocations observed.
    pub revocations: u64,
    /// Revocation warnings observed.
    pub warnings: u64,
    /// Per-action latencies, in execution order.
    pub actions: Vec<ActionRecord>,
}

impl RunStats {
    /// Total virtual time across all recorded actions.
    pub fn total_action_time(&self) -> SimDuration {
        self.actions.iter().map(ActionRecord::latency).sum()
    }

    /// Latency of the most recent action.
    pub fn last_action_latency(&self) -> Option<SimDuration> {
        self.actions.last().map(ActionRecord::latency)
    }

    /// Mean action latency in seconds (0 when no actions ran).
    pub fn mean_action_secs(&self) -> f64 {
        if self.actions.is_empty() {
            return 0.0;
        }
        self.total_action_time().as_secs_f64() / self.actions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_latency_accounting() {
        let mut s = RunStats::default();
        s.actions.push(ActionRecord {
            name: "a".into(),
            started: SimTime::from_millis(0),
            finished: SimTime::from_millis(1500),
        });
        s.actions.push(ActionRecord {
            name: "b".into(),
            started: SimTime::from_millis(2000),
            finished: SimTime::from_millis(2500),
        });
        assert_eq!(s.total_action_time(), SimDuration::from_millis(2000));
        assert_eq!(s.last_action_latency(), Some(SimDuration::from_millis(500)));
        assert!((s.mean_action_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunStats::default();
        assert_eq!(s.total_action_time(), SimDuration::ZERO);
        assert_eq!(s.last_action_latency(), None);
        assert_eq!(s.mean_action_secs(), 0.0);
    }
}
