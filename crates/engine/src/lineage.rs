//! The lineage graph: every RDD ever created and how to recreate it.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};

use crate::column::{AggKernel, ColumnBatch, OpKernel};
use crate::rdd::{RddId, RddMeta, RddOp};
use crate::shuffle::{ShuffleId, ShuffleInfo, ShuffleKind};

/// The directed acyclic graph of RDDs and shuffle edges.
///
/// The lineage graph is the engine's recovery metadata (§2.2): given any
/// lost partition, walking parents (and cached/checkpointed cut points)
/// yields a recomputation plan. It also exposes the *frontier* — the
/// current sink RDDs — which is exactly the set Flint's checkpoint policy
/// (Policy 1) marks for checkpointing.
#[derive(Debug, Default)]
pub struct Lineage {
    metas: Vec<RddMeta>,
    shuffles: Vec<ShuffleInfo>,
    children: HashMap<RddId, Vec<RddId>>,
    persisted: HashSet<RddId>,
    /// Known materialized size per (rdd, partition), in real bytes.
    part_sizes: HashMap<RddId, Vec<Option<u64>>>,
    /// Declarative batch kernels for ops built through the `*_kernel`
    /// context constructors. Registered at plan time, so the executor's
    /// row-or-columnar choice never depends on wave timing.
    kernels: HashMap<RddId, OpKernel>,
    /// Typed combine kernels for batch-capable keyed aggregations.
    agg_kernels: HashMap<ShuffleId, AggKernel>,
    /// Shuffles whose map outputs may be bucketed columnar (hash
    /// shuffles built through `reduce_by_key_kernel`).
    batch_shuffles: HashSet<ShuffleId>,
    /// Per-partition lazy columnar encodings of `Parallelize` sources:
    /// computed once on first materialization under the columnar path,
    /// shared by every later task (`None` inside the cell = the
    /// partition does not encode).
    source_batches: HashMap<RddId, Vec<OnceLock<Option<Arc<ColumnBatch>>>>>,
}

impl Lineage {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Lineage::default()
    }

    /// Registers a new RDD and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a parent id is unknown or `num_partitions` is zero.
    pub fn add_rdd(
        &mut self,
        name: impl Into<String>,
        op: RddOp,
        parents: Vec<RddId>,
        num_partitions: u32,
    ) -> RddId {
        assert!(num_partitions > 0, "an RDD needs at least one partition");
        for p in &parents {
            assert!(
                (p.0 as usize) < self.metas.len(),
                "unknown parent RDD {p:?}"
            );
        }
        let id = RddId(self.metas.len() as u32);
        for p in &parents {
            self.children.entry(*p).or_default().push(id);
        }
        if matches!(op, RddOp::Parallelize { .. }) {
            self.source_batches
                .insert(id, (0..num_partitions).map(|_| OnceLock::new()).collect());
        }
        self.metas.push(RddMeta {
            id,
            name: name.into(),
            op,
            parents,
            num_partitions,
        });
        self.part_sizes
            .insert(id, vec![None; num_partitions as usize]);
        id
    }

    /// Registers a shuffle edge reading from `parent`.
    pub fn add_shuffle(&mut self, parent: RddId, kind: ShuffleKind) -> ShuffleId {
        let id = ShuffleId(self.shuffles.len() as u32);
        self.shuffles.push(ShuffleInfo {
            id,
            parent,
            kind,
            combine: None,
        });
        id
    }

    /// Registers a shuffle edge with a map-side combiner (used by keyed
    /// aggregations, mirroring Spark's `reduceByKey`).
    pub fn add_shuffle_with_combine(
        &mut self,
        parent: RddId,
        kind: ShuffleKind,
        combine: crate::rdd::AggFn,
    ) -> ShuffleId {
        let id = ShuffleId(self.shuffles.len() as u32);
        self.shuffles.push(ShuffleInfo {
            id,
            parent,
            kind,
            combine: Some(combine),
        });
        id
    }

    /// Returns the metadata of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn meta(&self, id: RddId) -> &RddMeta {
        &self.metas[id.0 as usize]
    }

    /// Returns `true` if `id` names a registered RDD.
    pub fn contains(&self, id: RddId) -> bool {
        (id.0 as usize) < self.metas.len()
    }

    /// Returns the shuffle info for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn shuffle(&self, id: ShuffleId) -> &ShuffleInfo {
        &self.shuffles[id.0 as usize]
    }

    /// Registers the batch kernel backing `id`'s row closure.
    pub(crate) fn set_kernel(&mut self, id: RddId, kernel: OpKernel) {
        self.kernels.insert(id, kernel);
    }

    /// The batch kernel of `id`, if it was built through a `*_kernel`
    /// constructor.
    pub(crate) fn kernel(&self, id: RddId) -> Option<&OpKernel> {
        self.kernels.get(&id)
    }

    /// Registers the typed combine kernel of `shuffle` and marks its map
    /// outputs batch-capable.
    pub(crate) fn set_agg_kernel(&mut self, shuffle: ShuffleId, kernel: AggKernel) {
        self.agg_kernels.insert(shuffle, kernel);
        self.batch_shuffles.insert(shuffle);
    }

    /// The typed combine kernel of `shuffle`, if any.
    pub(crate) fn agg_kernel(&self, shuffle: ShuffleId) -> Option<&AggKernel> {
        self.agg_kernels.get(&shuffle)
    }

    /// Marks `shuffle`'s map outputs batch-capable without a combine
    /// kernel (grouping shuffles: bucketing only needs hashable keys).
    pub(crate) fn mark_batch_shuffle(&mut self, shuffle: ShuffleId) {
        self.batch_shuffles.insert(shuffle);
    }

    /// `true` when `shuffle`'s map outputs may use columnar row-group
    /// buckets (decided at plan time, when the shuffle was built).
    pub(crate) fn is_batch_shuffle(&self, shuffle: ShuffleId) -> bool {
        self.batch_shuffles.contains(&shuffle)
    }

    /// The lazily-encoded columnar form of a `Parallelize` partition:
    /// encodes `data` on the first call (per partition) and returns the
    /// shared batch afterwards; `None` when the partition has no
    /// columnar layout. Thread-safe — wave tasks race benignly on the
    /// `OnceLock`.
    pub(crate) fn source_batch(
        &self,
        rdd: RddId,
        part: u32,
        data: &[crate::Value],
    ) -> Option<Arc<ColumnBatch>> {
        self.source_batches
            .get(&rdd)?
            .get(part as usize)?
            .get_or_init(|| ColumnBatch::from_rows(data).map(Arc::new))
            .clone()
    }

    /// Returns the children of `id` (RDDs that list it as a parent).
    pub fn children(&self, id: RddId) -> &[RddId] {
        self.children.get(&id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Returns the number of registered RDDs.
    pub fn len(&self) -> usize {
        self.metas.len()
    }

    /// Returns `true` if no RDDs are registered.
    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Returns all RDD ids in creation order.
    pub fn ids(&self) -> impl Iterator<Item = RddId> + '_ {
        (0..self.metas.len() as u32).map(RddId)
    }

    /// Returns the current frontier: RDDs with no children (the sinks of
    /// the graph). This is the set Policy 1 checkpoints.
    pub fn frontier(&self) -> Vec<RddId> {
        self.ids()
            .filter(|id| self.children(*id).is_empty())
            .collect()
    }

    /// Returns `true` if `id` is currently on the frontier.
    pub fn is_frontier(&self, id: RddId) -> bool {
        self.children(id).is_empty()
    }

    /// Returns the strict ancestors of `id` (its full recomputation cone).
    pub fn ancestors(&self, id: RddId) -> Vec<RddId> {
        let mut seen = HashSet::new();
        let mut stack: Vec<RddId> = self.meta(id).parents.clone();
        let mut out = Vec::new();
        while let Some(n) = stack.pop() {
            if seen.insert(n) {
                out.push(n);
                stack.extend(self.meta(n).parents.iter().copied());
            }
        }
        out.sort();
        out
    }

    /// Marks `id` for in-memory caching, like Spark's `persist()`.
    pub fn persist(&mut self, id: RddId) {
        assert!(self.contains(id), "unknown RDD {id:?}");
        self.persisted.insert(id);
    }

    /// Returns `true` if `id` is marked persistent.
    pub fn is_persisted(&self, id: RddId) -> bool {
        self.persisted.contains(&id)
    }

    /// Records the materialized size of `(rdd, part)` in real bytes.
    pub fn record_partition_size(&mut self, rdd: RddId, part: u32, bytes: u64) {
        if let Some(sizes) = self.part_sizes.get_mut(&rdd) {
            if let Some(slot) = sizes.get_mut(part as usize) {
                *slot = Some(bytes);
            }
        }
    }

    /// Returns the recorded size of `(rdd, part)`, if it has been
    /// materialized at least once.
    pub fn partition_size(&self, rdd: RddId, part: u32) -> Option<u64> {
        self.part_sizes
            .get(&rdd)
            .and_then(|s| s.get(part as usize).copied().flatten())
    }

    /// Returns the total known size of `rdd` in real bytes (sum over
    /// partitions with recorded sizes).
    pub fn known_size(&self, rdd: RddId) -> u64 {
        self.part_sizes
            .get(&rdd)
            .map(|s| s.iter().flatten().sum())
            .unwrap_or(0)
    }

    /// Returns `true` if every partition of `rdd` has a recorded size,
    /// i.e. the RDD has been fully materialized at least once.
    pub fn is_fully_materialized(&self, rdd: RddId) -> bool {
        self.part_sizes
            .get(&rdd)
            .map(|s| s.iter().all(Option::is_some))
            .unwrap_or(false)
    }

    /// Returns `true` if any child of `rdd` has been fully materialized.
    pub fn has_materialized_child(&self, rdd: RddId) -> bool {
        self.children(rdd)
            .iter()
            .any(|c| self.is_fully_materialized(*c))
    }

    /// Returns the *execution* frontier: fully-materialized RDDs none of
    /// whose children have been fully materialized yet. This is the
    /// paper's frontier ("the most recent RDDs for which all partitions
    /// have been computed, and whose dependencies have not been fully
    /// generated", §3.1.1) — the set Policy 1 checkpoints. Unlike the
    /// static sink set ([`Lineage::frontier`]), it advances stage by
    /// stage even when a program's whole DAG is declared before any
    /// action runs.
    pub fn execution_frontier(&self) -> Vec<RddId> {
        self.ids()
            .filter(|id| self.is_fully_materialized(*id) && !self.has_materialized_child(*id))
            .collect()
    }

    /// Renders the graph in Graphviz DOT format: RDD nodes labelled with
    /// operator kind and partition count, solid edges for narrow
    /// dependencies, bold red edges for shuffles.
    pub fn to_dot(&self) -> String {
        let mut out =
            String::from("digraph lineage {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        for id in self.ids() {
            let m = self.meta(id);
            let style = if self.is_persisted(id) {
                ", style=filled, fillcolor=lightblue"
            } else {
                ""
            };
            out.push_str(&format!(
                "  r{} [label=\"#{} {}\\n{} parts\"{}];\n",
                id.0,
                id.0,
                m.op.kind(),
                m.num_partitions,
                style
            ));
        }
        for id in self.ids() {
            let m = self.meta(id);
            let wide = m.op.is_shuffle();
            for p in &m.parents {
                if wide {
                    out.push_str(&format!(
                        "  r{} -> r{} [color=red, penwidth=2];\n",
                        p.0, id.0
                    ));
                } else {
                    out.push_str(&format!("  r{} -> r{};\n", p.0, id.0));
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// For a `Union` RDD, maps an output partition to the parent RDD and
    /// parent partition it passes through.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a union or `part` is out of range.
    pub fn union_source(&self, id: RddId, part: u32) -> (RddId, u32) {
        let meta = self.meta(id);
        assert!(matches!(meta.op, RddOp::Union), "not a union RDD");
        let mut offset = 0;
        for parent in &meta.parents {
            let n = self.meta(*parent).num_partitions;
            if part < offset + n {
                return (*parent, part - offset);
            }
            offset += n;
        }
        panic!("union partition {part} out of range for {id:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn map_op() -> RddOp {
        RddOp::Map {
            f: Arc::new(|v| v.clone()),
        }
    }

    fn source_op(parts: u32) -> RddOp {
        RddOp::Parallelize {
            data: Arc::new((0..parts).map(|_| Vec::new()).collect()),
        }
    }

    #[test]
    fn build_and_query_graph() {
        let mut l = Lineage::new();
        let a = l.add_rdd("src", source_op(4), vec![], 4);
        let b = l.add_rdd("m1", map_op(), vec![a], 4);
        let c = l.add_rdd("m2", map_op(), vec![b], 4);
        assert_eq!(l.len(), 3);
        assert_eq!(l.children(a), &[b]);
        assert_eq!(l.children(c), &[] as &[RddId]);
        assert_eq!(l.ancestors(c), vec![a, b]);
        assert_eq!(l.frontier(), vec![c]);
        assert!(l.is_frontier(c));
        assert!(!l.is_frontier(a));
    }

    #[test]
    fn frontier_moves_as_graph_grows() {
        let mut l = Lineage::new();
        let a = l.add_rdd("src", source_op(2), vec![], 2);
        assert_eq!(l.frontier(), vec![a]);
        let b = l.add_rdd("m", map_op(), vec![a], 2);
        assert_eq!(l.frontier(), vec![b]);
        // Two branches from b: both are frontier.
        let c = l.add_rdd("m", map_op(), vec![b], 2);
        let d = l.add_rdd("m", map_op(), vec![b], 2);
        assert_eq!(l.frontier(), vec![c, d]);
    }

    #[test]
    fn size_recording() {
        let mut l = Lineage::new();
        let a = l.add_rdd("src", source_op(2), vec![], 2);
        assert!(!l.is_fully_materialized(a));
        l.record_partition_size(a, 0, 100);
        assert_eq!(l.known_size(a), 100);
        assert!(!l.is_fully_materialized(a));
        l.record_partition_size(a, 1, 50);
        assert_eq!(l.known_size(a), 150);
        assert!(l.is_fully_materialized(a));
        assert_eq!(l.partition_size(a, 1), Some(50));
    }

    #[test]
    fn union_partition_mapping() {
        let mut l = Lineage::new();
        let a = l.add_rdd("a", source_op(2), vec![], 2);
        let b = l.add_rdd("b", source_op(3), vec![], 3);
        let u = l.add_rdd("u", RddOp::Union, vec![a, b], 5);
        assert_eq!(l.union_source(u, 0), (a, 0));
        assert_eq!(l.union_source(u, 1), (a, 1));
        assert_eq!(l.union_source(u, 2), (b, 0));
        assert_eq!(l.union_source(u, 4), (b, 2));
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn unknown_parent_rejected() {
        let mut l = Lineage::new();
        let _ = l.add_rdd("bad", map_op(), vec![RddId(7)], 1);
    }

    #[test]
    fn persistence_flags() {
        let mut l = Lineage::new();
        let a = l.add_rdd("src", source_op(1), vec![], 1);
        assert!(!l.is_persisted(a));
        l.persist(a);
        assert!(l.is_persisted(a));
    }

    #[test]
    fn dot_export_shape() {
        let mut l = Lineage::new();
        let a = l.add_rdd("src", source_op(2), vec![], 2);
        let b = l.add_rdd("m", map_op(), vec![a], 2);
        let s = l.add_shuffle(b, ShuffleKind::Hash { parts: 2 });
        let c = l.add_rdd("g", RddOp::ShuffleGroup { shuffle: s }, vec![b], 2);
        l.persist(c);
        let dot = l.to_dot();
        assert!(dot.starts_with("digraph lineage {"));
        assert!(dot.contains("r0 -> r1;"), "narrow edge missing: {dot}");
        assert!(dot.contains("r1 -> r2 [color=red"), "shuffle edge missing");
        assert!(
            dot.contains("fillcolor=lightblue"),
            "persisted fill missing"
        );
    }

    #[test]
    fn shuffle_registration() {
        let mut l = Lineage::new();
        let a = l.add_rdd("src", source_op(2), vec![], 2);
        let s = l.add_shuffle(a, ShuffleKind::Hash { parts: 3 });
        assert_eq!(l.shuffle(s).parent, a);
        assert_eq!(l.shuffle(s).kind.num_partitions(), 3);
    }
}
