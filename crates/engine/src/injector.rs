//! Worker failure schedules.
//!
//! The engine is agnostic to *why* workers come and go: a
//! [`FailureInjector`] feeds it timed [`WorkerEvent`]s. In production-like
//! runs the injector is Flint's node manager bridging the spot-market
//! simulator; in tests it is a scripted sequence.

use flint_simtime::SimTime;

use crate::WorkerSpec;

/// A timed change to cluster membership.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkerEvent {
    /// A worker with external id `ext_id` joins the cluster.
    Add {
        /// External (e.g. cloud instance) identifier.
        ext_id: u64,
        /// Hardware shape.
        spec: WorkerSpec,
    },
    /// The provider issued a revocation warning for `ext_id`.
    Warn {
        /// External identifier.
        ext_id: u64,
    },
    /// The worker `ext_id` is revoked: all its local state is lost.
    Remove {
        /// External identifier.
        ext_id: u64,
    },
}

/// A source of timed worker events.
pub trait FailureInjector {
    /// Returns all events with `from < t <= to`, in time order. Called
    /// with monotonically advancing windows; implementations may react to
    /// earlier events (e.g. request replacement servers) when producing
    /// later ones.
    fn events(&mut self, from: SimTime, to: SimTime) -> Vec<(SimTime, WorkerEvent)>;

    /// Returns the next event time strictly after `t`, if known. Used by
    /// the driver to sleep when the cluster is empty.
    fn next_event_after(&mut self, t: SimTime) -> Option<SimTime>;

    /// Describes the faults this injector deliberately planted in the
    /// same `from < t <= to` window, as `(t, kind, target)` triples the
    /// driver turns into `FaultInjected` trace events. Ordinary
    /// injectors (scripted schedules, the node manager) plant none —
    /// the default keeps them silent, so traces without a chaos
    /// campaign are byte-identical to pre-chaos runs.
    fn fault_notes(&mut self, from: SimTime, to: SimTime) -> Vec<(SimTime, String, String)> {
        let _ = (from, to);
        Vec::new()
    }
}

/// An injector that never produces events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFailures;

impl FailureInjector for NoFailures {
    fn events(&mut self, _from: SimTime, _to: SimTime) -> Vec<(SimTime, WorkerEvent)> {
        Vec::new()
    }

    fn next_event_after(&mut self, _t: SimTime) -> Option<SimTime> {
        None
    }
}

/// A pre-scripted event sequence, for tests and controlled experiments
/// (e.g. "revoke 5 workers at t = 60 s", Fig. 7/8).
///
/// # Examples
///
/// ```
/// use flint_engine::{FailureInjector, ScriptedInjector, WorkerEvent, WorkerSpec};
/// use flint_simtime::SimTime;
///
/// let mut inj = ScriptedInjector::new(vec![
///     (SimTime::from_millis(10), WorkerEvent::Remove { ext_id: 3 }),
/// ]);
/// assert_eq!(inj.next_event_after(SimTime::ZERO), Some(SimTime::from_millis(10)));
/// let evs = inj.events(SimTime::ZERO, SimTime::from_millis(20));
/// assert_eq!(evs.len(), 1);
/// // Events are consumed exactly once.
/// assert!(inj.events(SimTime::ZERO, SimTime::from_millis(20)).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct ScriptedInjector {
    events: Vec<(SimTime, WorkerEvent)>,
    cursor: usize,
}

/// Delivery precedence for events sharing a timestamp: joins land
/// before warnings, warnings before revocations.
fn kind_rank(ev: &WorkerEvent) -> u8 {
    match ev {
        WorkerEvent::Add { .. } => 0,
        WorkerEvent::Warn { .. } => 1,
        WorkerEvent::Remove { .. } => 2,
    }
}

impl ScriptedInjector {
    /// Creates an injector from an event list (sorted internally).
    ///
    /// Events sharing a timestamp are delivered `Add` → `Warn` →
    /// `Remove` (ties beyond that keep script order — the sort is
    /// stable). In particular, a `Warn` and a `Remove` for the same
    /// `ext_id` landing in the same tick deliver the warning first, so
    /// the driver observes the provider's warn-then-revoke contract
    /// even with a zero-width warning window; script order can not
    /// accidentally revoke a worker and then warn its ghost.
    pub fn new(mut events: Vec<(SimTime, WorkerEvent)>) -> Self {
        events.sort_by_key(|(t, ev)| (*t, kind_rank(ev)));
        ScriptedInjector { events, cursor: 0 }
    }

    /// Returns the number of events not yet delivered.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.cursor
    }
}

impl FailureInjector for ScriptedInjector {
    fn events(&mut self, from: SimTime, to: SimTime) -> Vec<(SimTime, WorkerEvent)> {
        let mut out = Vec::new();
        while self.cursor < self.events.len() {
            let (t, ev) = self.events[self.cursor];
            if t <= from {
                // Late discovery of an old event: deliver it anyway so
                // nothing is silently skipped.
                self.cursor += 1;
                out.push((t, ev));
            } else if t <= to {
                self.cursor += 1;
                out.push((t, ev));
            } else {
                break;
            }
        }
        out
    }

    fn next_event_after(&mut self, t: SimTime) -> Option<SimTime> {
        self.events[self.cursor..]
            .iter()
            .map(|(et, _)| *et)
            .find(|et| *et > t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn scripted_delivers_in_windows() {
        let mut inj = ScriptedInjector::new(vec![
            (t(30), WorkerEvent::Remove { ext_id: 1 }),
            (t(10), WorkerEvent::Warn { ext_id: 1 }),
        ]);
        assert_eq!(inj.remaining(), 2);
        let w1 = inj.events(SimTime::ZERO, t(15));
        assert_eq!(w1, vec![(t(10), WorkerEvent::Warn { ext_id: 1 })]);
        let w2 = inj.events(t(15), t(100));
        assert_eq!(w2, vec![(t(30), WorkerEvent::Remove { ext_id: 1 })]);
        assert_eq!(inj.remaining(), 0);
        assert_eq!(inj.next_event_after(SimTime::ZERO), None);
    }

    #[test]
    fn no_failures_is_silent() {
        let mut inj = NoFailures;
        assert!(inj.events(SimTime::ZERO, t(1_000_000)).is_empty());
        assert_eq!(inj.next_event_after(SimTime::ZERO), None);
        assert!(inj.fault_notes(SimTime::ZERO, t(1_000_000)).is_empty());
    }

    #[test]
    fn same_tick_events_deliver_add_warn_remove() {
        // Scripted in the worst order: the same tick revokes ext 1,
        // warns ext 1, and adds its replacement. Delivery must be
        // Add → Warn → Remove regardless of script order.
        let spec = WorkerSpec::r3_large();
        let mut inj = ScriptedInjector::new(vec![
            (t(50), WorkerEvent::Remove { ext_id: 1 }),
            (t(50), WorkerEvent::Warn { ext_id: 1 }),
            (t(50), WorkerEvent::Add { ext_id: 2, spec }),
        ]);
        let evs = inj.events(SimTime::ZERO, t(100));
        assert_eq!(
            evs,
            vec![
                (t(50), WorkerEvent::Add { ext_id: 2, spec }),
                (t(50), WorkerEvent::Warn { ext_id: 1 }),
                (t(50), WorkerEvent::Remove { ext_id: 1 }),
            ]
        );
    }

    #[test]
    fn same_tick_same_kind_keeps_script_order() {
        let mut inj = ScriptedInjector::new(vec![
            (t(50), WorkerEvent::Remove { ext_id: 7 }),
            (t(50), WorkerEvent::Remove { ext_id: 3 }),
        ]);
        let evs = inj.events(SimTime::ZERO, t(100));
        assert_eq!(
            evs,
            vec![
                (t(50), WorkerEvent::Remove { ext_id: 7 }),
                (t(50), WorkerEvent::Remove { ext_id: 3 }),
            ]
        );
    }
}
