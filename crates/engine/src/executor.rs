//! Parallel wave execution with deterministic commit.
//!
//! The driver schedules work in *waves*: every planning pass yields the
//! set of ready tasks, whose real-data materialization (lineage
//! recomputation, shuffle-bucket fetches, checkpoint serialization) is
//! the expensive part of a simulated run. This module computes those
//! results on a pool of scoped host threads while keeping the simulation
//! bit-for-bit deterministic:
//!
//! * **Compute phase (parallel, pure).** Each task runs
//!   [`compute_task`]/[`compute_ckpt`] against an immutable [`WaveCtx`]
//!   snapshot of the lineage, cluster caches, checkpoint store, and cost
//!   model. Nothing is mutated; every would-be side effect (LRU bumps,
//!   cache inserts, stat deltas, resolved range partitioners) is
//!   *recorded* in the returned [`TaskOutput`]. Durations that depend on
//!   the executing worker (network fetches) are recorded as
//!   [`NetFetch`]es and priced later.
//! * **Commit phase (sequential, ordered).** The driver admits outputs
//!   in fixed task-key order on its own thread: it picks the worker,
//!   prices network time, applies the recorded effects, and reserves a
//!   core. Because admission order, worker choice, and every mutation are
//!   independent of how the compute phase was scheduled, any
//!   `host_threads` setting produces identical results, stats, and
//!   virtual-time trajectories.
//!
//! Compared to the previous depth-first in-place materializer, tasks in
//! the same wave read the wave-start snapshot rather than each other's
//! incidental cache inserts. Results are unchanged (closures are pure and
//! sampling is seed-keyed); only modeled durations can differ from the
//! old sequential interleaving, and they remain identical across thread
//! counts.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use flint_simtime::{SimDuration, SimTime};
use flint_trace::EventKind;

use crate::block::{BlockData, BlockKey, BlockLocation};
use crate::checkpoint::{wire_size, CheckpointStore, ReadFault};
use crate::cluster::{Cluster, WorkerId};
use crate::column::{typed_agg, typed_group, typed_sort_by_key, Column, ColumnBatch, OpKernel};
use crate::cost::CostModel;
use crate::driver::{CkptJob, MissingShuffle, TaskKey};
use crate::lineage::Lineage;
use crate::rdd::{PartitionData, RddId, RddOp};
use crate::shuffle::{
    scan_flat_bucket, Bucket, BucketedBlock, HashPartitioner, Partitioner, RangePartitioner,
    ShuffleId, ShuffleKind,
};
use crate::value::Value;

/// Immutable snapshot of everything a wave's tasks may read.
///
/// All fields are shared references, so the whole context is `Sync` and
/// can be borrowed by every host thread of a wave simultaneously.
pub(crate) struct WaveCtx<'a> {
    pub lineage: &'a Lineage,
    pub cluster: &'a Cluster,
    pub ckpt: &'a CheckpointStore,
    pub cost: &'a CostModel,
    pub computed_once: &'a HashSet<(RddId, u32)>,
    pub range_cache: &'a BTreeMap<ShuffleId, RangePartitioner>,
    /// Wave-start instant: the snapshot time every store-readability
    /// check in this wave is evaluated at. Planner and executor share
    /// it, so both sides agree on which checkpoints are restorable.
    pub now: SimTime,
    /// Whether a trace sink is attached. When false, tasks skip
    /// recording [`TaskOutput::events`] entirely, preserving the
    /// zero-overhead-when-disabled contract on the hot path.
    pub trace_enabled: bool,
    /// Whether vectorized kernels may run. Fixed at plan time from the
    /// driver config — never per wave — so the row and columnar paths
    /// produce byte-identical observables and either one can replay a
    /// pinned trace.
    pub columnar: bool,
}

// The wave executor shares the snapshot and task closures across scoped
// threads; this fails to compile if any engine type silently loses
// Send/Sync (e.g. an Rc or RefCell sneaking into the lineage).
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<WaveCtx<'static>>();
};

/// A block read whose network cost depends on the (not yet chosen)
/// executing worker: priced at admission, charged only if the source is
/// remote.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NetFetch {
    pub source: WorkerId,
    pub vbytes: u64,
}

/// A deferred, ordered cache mutation recorded during the compute phase
/// and replayed at admission. Replaying in recorded order reproduces the
/// LRU stamp sequence a sequential execution of the task would have
/// produced.
#[derive(Debug, Clone)]
pub(crate) enum CacheEffect {
    /// Bump the LRU stamp of a block on the worker that held it.
    Touch(WorkerId, BlockKey),
    /// Bump a block inserted earlier by this same task (it lives on the
    /// executing worker, unknown during compute).
    TouchLocal(BlockKey),
    /// Insert a block into the executing worker's store. Carries the
    /// final block form (flat rows or a columnar batch) so re-reads see
    /// exactly what the producing task materialized.
    Insert(BlockKey, BlockData, u64),
}

/// A partition's in-flight payload during task compute: plain row
/// records or a typed columnar batch. Both forms decode to the same
/// record sequence and account identical real/virtual bytes, so every
/// duration and cache decision downstream is form-independent.
#[derive(Debug, Clone)]
pub(crate) enum PartData {
    /// Row records (the classic path).
    Rows(PartitionData),
    /// A typed columnar batch produced by a vectorized kernel.
    Col(Arc<ColumnBatch>),
}

impl PartData {
    /// The records in row form (decodes columnar batches).
    fn rows(&self) -> PartitionData {
        match self {
            PartData::Rows(d) => Arc::clone(d),
            PartData::Col(b) => Arc::new(b.to_rows()),
        }
    }

    /// Real payload size: `Σ size_bytes + 16` in either form —
    /// [`ColumnBatch::size_at`] mirrors `Value::size_bytes` exactly, so
    /// eviction order, τ estimation, and checkpoint accounting cannot
    /// tell the forms apart.
    fn real_bytes(&self) -> u64 {
        match self {
            PartData::Rows(d) => real_bytes(d),
            PartData::Col(b) => b.payload_bytes() + 16,
        }
    }

    /// The cache/block representation of this payload.
    fn to_block(&self) -> BlockData {
        match self {
            PartData::Rows(d) => BlockData::Flat(Arc::clone(d)),
            PartData::Col(b) => BlockData::Columnar(Arc::clone(b)),
        }
    }
}

/// Everything a task's parallel compute phase produced: the data, the
/// worker-independent duration, and a ledger of deferred mutations for
/// the driver to apply in task-key order.
pub(crate) struct TaskOutput {
    /// Final block payload (map-side combine applied; shuffle map
    /// outputs bucketed when their partitioner is known).
    pub data: BlockData,
    /// Virtual size of `data` under the cost model.
    pub vbytes: u64,
    /// Byte-exact serialized size (checkpoint tasks only, else 0).
    pub wire: u64,
    /// Source/compute/disk/durable-read time, independent of the
    /// executing worker.
    pub base_dur: SimDuration,
    /// Reads whose network time depends on the chosen worker.
    pub net: Vec<NetFetch>,
    /// Deferred cache mutations, in execution order.
    pub effects: Vec<CacheEffect>,
    /// Partition sizes computed along the chain (ancestors first).
    pub touched: Vec<(RddId, u32, u64)>,
    /// Partitions newly computed (for `computed_once` bookkeeping).
    pub computed: Vec<(RddId, u32)>,
    /// Range partitioners resolved during this task.
    pub resolved: Vec<(ShuffleId, RangePartitioner)>,
    /// For shuffle checkpoint jobs: the worker holding the map block.
    pub source: Option<WorkerId>,
    /// Checkpoint restores performed.
    pub restores: u64,
    /// Time spent in those restores.
    pub restore_time: SimDuration,
    /// Portion of `base_dur` that recomputed previously-materialized
    /// partitions.
    pub recompute_time: SimDuration,
    /// Restores abandoned by the integrity/availability check (each one
    /// forced a lineage recompute). Counted unconditionally — the
    /// driver's recompute-depth budget must not depend on tracing.
    pub fallbacks: u64,
    /// Trace events recorded during the parallel compute phase
    /// (restores, recomputation cascades). Buffered here — part of the
    /// effect ledger — and emitted by the driver at admission, in
    /// task-key order, so the trace stream is bit-identical for any
    /// `host_threads` setting. Empty when tracing is disabled.
    pub events: Vec<EventKind>,
}

/// Runs `f` over `items` on up to `host_threads` scoped threads, pulling
/// work from a shared atomic cursor. Results come back in input order, so
/// the caller's sequential commit loop is independent of scheduling.
/// `host_threads <= 1` degenerates to a plain in-order loop over the very
/// same function — the single- and multi-threaded paths cannot diverge.
pub(crate) fn run_wave<T, O, F>(host_threads: usize, items: &[T], f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    let n_threads = host_threads.min(items.len());
    if n_threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, O)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..n_threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        local.push((i, f(item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("wave worker thread panicked"))
            .collect()
    });
    indexed.sort_unstable_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, o)| o).collect()
}

/// Computes one compute task (`Output` or `ShuffleMap`) against the wave
/// snapshot. Returns `None` when a required shuffle input vanished
/// between planning and execution (the driver replans).
pub(crate) fn compute_task(ctx: &WaveCtx<'_>, key: TaskKey) -> Option<TaskOutput> {
    let (rdd, part) = match key {
        TaskKey::Output { rdd, part } => (rdd, part),
        TaskKey::ShuffleMap { shuffle, map_part } => {
            (ctx.lineage.shuffle(shuffle).parent, map_part)
        }
        TaskKey::Ckpt(_) => unreachable!("checkpoint jobs use compute_ckpt"),
    };
    let mut b = TaskBuilder::new(ctx);
    let (data, mut vbytes, mut dur) = match b.materialize(rdd, part) {
        Ok(x) => x,
        Err(MissingShuffle) => return None,
    };
    // Bucket shuffle map outputs once, at materialization: one pass over
    // the records replaces the per-reduce-task O(N) scans. Hash shuffles
    // always know their partitioner; range shuffles stay flat until the
    // barrier resolves (and caches) the bounds, after which the driver
    // converts resident blocks in place and recomputed blocks take this
    // eager path. Batch-marked shuffles with a columnar payload combine
    // and bucket without ever decoding to rows; anything else falls back
    // to the row path with identical observables.
    let out: BlockData = match key {
        TaskKey::ShuffleMap { shuffle, .. } => {
            let combine = ctx.lineage.shuffle(shuffle).combine.clone();
            if let Some(bb) = columnar_map_output(ctx, shuffle, &data, combine.is_some()) {
                if combine.is_some() {
                    // Same pre-aggregation charge as the row path: input
                    // vbytes at factor 1.0, before the output resize.
                    dur += ctx.cost.compute_time(vbytes, 1.0);
                }
                vbytes = ctx.cost.vbytes(bb.payload_bytes() + 16);
                Arc::new(bb).into()
            } else {
                let mut rows = data.rows();
                // Map-side combine (Spark `reduceByKey` pre-aggregation).
                let mut combined_dirty = false;
                if let Some(combine) = combine {
                    dur += ctx.cost.compute_time(vbytes, 1.0);
                    let mut agg: BTreeMap<Value, Value> = BTreeMap::new();
                    let mut non_pairs: Vec<Value> = Vec::new();
                    for v in rows.iter() {
                        match v {
                            Value::Pair(p) => match agg.get_mut(p.key()) {
                                Some(acc) => *acc = combine(acc, p.val()),
                                None => {
                                    agg.insert(p.key().clone(), p.val().clone());
                                }
                            },
                            other => non_pairs.push(other.clone()),
                        }
                    }
                    let mut combined: Vec<Value> = Vec::with_capacity(agg.len() + non_pairs.len());
                    combined.extend(agg.into_iter().map(|(k, v)| Value::pair(k, v)));
                    combined.extend(non_pairs);
                    rows = Arc::new(combined);
                    combined_dirty = true;
                }
                match shuffle_map_partitioner(ctx, shuffle) {
                    Some(p) => {
                        let bb = BucketedBlock::partition(&rows, p.as_ref());
                        // Bucketing preserves the record multiset, so the
                        // virtual size is unchanged; the bucket walk
                        // already summed the payload bytes.
                        vbytes = ctx.cost.vbytes(bb.payload_bytes() + 16);
                        Arc::new(bb).into()
                    }
                    None => {
                        if combined_dirty {
                            vbytes = ctx.cost.vbytes(real_bytes(&rows));
                        }
                        rows.into()
                    }
                }
            }
        }
        _ => data.to_block(),
    };
    Some(b.finish(out, vbytes, 0, dur, None))
}

/// The fully-columnar map side of a batch-marked hash shuffle: typed
/// map-side combine (when the shuffle declares one) followed by columnar
/// hash bucketing, with zero row materialization. Returns `None` — row
/// fallback — when columnar execution is off, the shuffle is not batch
/// capable, the payload is already rows, or the batch shape defeats the
/// typed kernels. Range shuffles are never batch-marked, so their map
/// outputs stay flat exactly as before.
fn columnar_map_output(
    ctx: &WaveCtx<'_>,
    shuffle: ShuffleId,
    data: &PartData,
    has_combine: bool,
) -> Option<BucketedBlock> {
    if !ctx.columnar || !ctx.lineage.is_batch_shuffle(shuffle) {
        return None;
    }
    let PartData::Col(batch) = data else {
        return None;
    };
    let ShuffleKind::Hash { parts } = ctx.lineage.shuffle(shuffle).kind else {
        return None;
    };
    if has_combine {
        let kernel = ctx.lineage.agg_kernel(shuffle)?;
        // Typed combine needs the key/payload pair layout; scalar pair
        // encodings (whole-record keys) take the row path instead.
        let ColumnBatch::Pair { key, val } = batch.as_ref() else {
            return None;
        };
        let combined = typed_agg(kernel, &[(key, val.as_ref())])?;
        BucketedBlock::partition_columnar(&combined, parts)
    } else {
        BucketedBlock::partition_columnar(batch, parts)
    }
}

/// The partitioner a shuffle's map outputs should be bucketed with, if
/// it is already known: always for hash shuffles, only after barrier
/// resolution for range shuffles.
fn shuffle_map_partitioner(ctx: &WaveCtx<'_>, shuffle: ShuffleId) -> Option<Box<dyn Partitioner>> {
    match ctx.lineage.shuffle(shuffle).kind {
        ShuffleKind::Hash { parts } => Some(Box::new(HashPartitioner::new(parts))),
        ShuffleKind::Range { .. } => ctx
            .range_cache
            .get(&shuffle)
            .map(|rp| Box::new(rp.clone()) as Box<dyn Partitioner>),
    }
}

/// Computes one checkpoint job: materializes (or peeks) the payload and
/// runs the serialization walk on the wave thread. Returns `None` when
/// the payload is gone (vanished shuffle block or missing shuffle input)
/// and the job should be dropped silently, as the sequential path did.
pub(crate) fn compute_ckpt(ctx: &WaveCtx<'_>, job: CkptJob) -> Option<TaskOutput> {
    match job {
        CkptJob::RddPart(rdd, part) => {
            let mut b = TaskBuilder::new(ctx);
            // Only the durable write is charged: Flint's checkpoint tasks
            // capture partitions as they are produced (§4), so the
            // materialization duration is discarded.
            let (data, vbytes, _resolve) = match b.materialize(rdd, part) {
                Ok(x) => x,
                Err(MissingShuffle) => return None,
            };
            // RDD checkpoints are stored and restored as rows; forcing
            // the decode here keeps the durable format and its wire
            // accounting identical whichever path produced the payload.
            let rows = data.rows();
            let wire = wire_size(&rows);
            Some(b.finish(rows.into(), vbytes, wire, SimDuration::ZERO, None))
        }
        CkptJob::Shuffle(s, mp) => {
            let bk = BlockKey::ShuffleMap {
                shuffle: s,
                map_part: mp,
            };
            let (wid, data, _, vbytes) = ctx.cluster.peek_fetch(&bk)?;
            let mut b = TaskBuilder::new(ctx);
            b.effects.push(CacheEffect::Touch(wid, bk));
            let wire = data.wire_size();
            Some(b.finish(data, vbytes, wire, SimDuration::ZERO, Some(wid)))
        }
    }
}

/// Real payload size of one partition, matching the sequential driver's
/// accounting (16 bytes of fixed per-partition overhead).
pub(crate) fn real_bytes(data: &[Value]) -> u64 {
    data.iter().map(Value::size_bytes).sum::<u64>() + 16
}

/// Deterministic Bernoulli sampling for [`RddOp::Sample`]: keyed by seed,
/// RDD, and partition, so results are independent of execution order and
/// thread count.
pub(crate) fn deterministic_sample(
    data: &[Value],
    fraction: f64,
    seed: u64,
    rdd: RddId,
    part: u32,
) -> Vec<Value> {
    use rand::Rng;
    let mut rng =
        flint_simtime::rng::stream(seed ^ (u64::from(rdd.0) << 32), &format!("sample:{part}"));
    let keep = fraction.clamp(0.0, 1.0);
    let mut out = Vec::with_capacity(data.len());
    out.extend(data.iter().filter(|_| rng.gen_bool(keep)).cloned());
    out
}

/// Accumulates one task's pure computation against a [`WaveCtx`].
struct TaskBuilder<'c, 'a> {
    ctx: &'c WaveCtx<'a>,
    net: Vec<NetFetch>,
    effects: Vec<CacheEffect>,
    touched: Vec<(RddId, u32, u64)>,
    computed: Vec<(RddId, u32)>,
    resolved: Vec<(ShuffleId, RangePartitioner)>,
    restores: u64,
    restore_time: SimDuration,
    recompute_time: SimDuration,
    fallbacks: u64,
    /// Buffered trace events (only filled when `ctx.trace_enabled`).
    events: Vec<EventKind>,
    /// Current `materialize` recursion depth: 0 for the task's own
    /// partition, increasing toward recomputed ancestors.
    depth: u32,
    /// Blocks this task has queued for insertion, with their virtual
    /// sizes, visible to its own later reads (mirrors the sequential
    /// materializer, where a persisted ancestor cached mid-task is a
    /// free local hit for the rest of the task).
    local: HashMap<BlockKey, (PartData, u64)>,
}

impl<'c, 'a> TaskBuilder<'c, 'a> {
    fn new(ctx: &'c WaveCtx<'a>) -> Self {
        TaskBuilder {
            ctx,
            net: Vec::new(),
            effects: Vec::new(),
            touched: Vec::new(),
            computed: Vec::new(),
            resolved: Vec::new(),
            restores: 0,
            restore_time: SimDuration::ZERO,
            recompute_time: SimDuration::ZERO,
            fallbacks: 0,
            events: Vec::new(),
            depth: 0,
            local: HashMap::new(),
        }
    }

    fn finish(
        self,
        data: BlockData,
        vbytes: u64,
        wire: u64,
        base_dur: SimDuration,
        source: Option<WorkerId>,
    ) -> TaskOutput {
        TaskOutput {
            data,
            vbytes,
            wire,
            base_dur,
            net: self.net,
            effects: self.effects,
            touched: self.touched,
            computed: self.computed,
            resolved: self.resolved,
            source,
            restores: self.restores,
            restore_time: self.restore_time,
            recompute_time: self.recompute_time,
            fallbacks: self.fallbacks,
            events: self.events,
        }
    }

    fn was_computed_before(&self, rdd: RddId, part: u32) -> bool {
        self.ctx.computed_once.contains(&(rdd, part)) || self.computed.contains(&(rdd, part))
    }

    /// Computes `(rdd, part)`, returning the data, its virtual size
    /// under the cost model, and the worker-independent duration. Uses
    /// (in order): this task's own pending inserts, the wave-start
    /// cluster cache, the durable checkpoint store, recursive
    /// recomputation through the lineage.
    ///
    /// The returned virtual size equals `cost.vbytes(real_bytes(&data))`
    /// on every path (caches and the checkpoint store record it at
    /// insert time), so callers reuse it instead of re-walking the
    /// payload.
    fn materialize(
        &mut self,
        rdd: RddId,
        part: u32,
    ) -> std::result::Result<(PartData, u64, SimDuration), MissingShuffle> {
        self.depth += 1;
        let r = self.materialize_inner(rdd, part);
        self.depth -= 1;
        r
    }

    fn materialize_inner(
        &mut self,
        rdd: RddId,
        part: u32,
    ) -> std::result::Result<(PartData, u64, SimDuration), MissingShuffle> {
        let bk = BlockKey::RddPart { rdd, part };

        // 0. A block this task already queued for insertion: a free
        //    local memory hit on the executing worker.
        if let Some((data, vb)) = self.local.get(&bk) {
            let (data, vb) = (data.clone(), *vb);
            self.effects.push(CacheEffect::TouchLocal(bk));
            return Ok((data, vb, SimDuration::ZERO));
        }

        // 1. Cluster cache (memory or local disk beats a durable read).
        if let Some((wid, data, loc, vb)) = self.ctx.cluster.peek_fetch(&bk) {
            let data = match &data {
                BlockData::Flat(d) => PartData::Rows(Arc::clone(d)),
                BlockData::Columnar(b) => PartData::Col(Arc::clone(b)),
                BlockData::Bucketed(_) => unreachable!("RDD partition blocks are never bucketed"),
            };
            self.effects.push(CacheEffect::Touch(wid, bk));
            let mut dur = SimDuration::ZERO;
            if loc == BlockLocation::Disk {
                dur += self.ctx.cost.disk_time(vb);
            }
            self.net.push(NetFetch {
                source: wid,
                vbytes: vb,
            });
            return Ok((data, vb, dur));
        }

        // 2. Durable checkpoint. The restore runs the integrity check
        //    first: a torn write or an outage window abandons the
        //    restore and falls through to lineage recomputation, so a
        //    degraded store can slow a wave down but never corrupt it.
        if self.ctx.ckpt.has(rdd, part) {
            match self.ctx.ckpt.read_fault(rdd, part, self.ctx.now) {
                None => {
                    let data = self
                        .ctx
                        .ckpt
                        .get(rdd, part)
                        .expect("checkpoint bitmap and store agree")
                        .clone();
                    let vb = self
                        .ctx
                        .ckpt
                        .size_of(rdd, part)
                        .unwrap_or_else(|| self.ctx.cost.vbytes(real_bytes(&data)));
                    let dur = self.ctx.ckpt.config().read_time(vb, 1);
                    self.restore_time += dur;
                    self.restores += 1;
                    if self.ctx.trace_enabled {
                        self.events.push(EventKind::Restored {
                            block: bk.to_string(),
                            millis: dur.as_millis(),
                        });
                    }
                    // Re-cache the restored partition if the RDD is persisted so
                    // subsequent reads stay in memory. Restores are rows by
                    // construction (checkpoints store rows), so downstream
                    // consumers take the row path — same records, same bytes.
                    let data = PartData::Rows(data);
                    if self.ctx.lineage.is_persisted(rdd) {
                        self.effects
                            .push(CacheEffect::Insert(bk, data.to_block(), vb));
                        self.local.insert(bk, (data.clone(), vb));
                    }
                    return Ok((data, vb, dur));
                }
                Some(fault) => {
                    self.fallbacks += 1;
                    if self.ctx.trace_enabled {
                        if fault == ReadFault::Corrupt {
                            self.events.push(EventKind::CheckpointCorruptDetected {
                                block: bk.to_string(),
                            });
                        }
                        self.events.push(EventKind::RestoreFallback {
                            block: bk.to_string(),
                            reason: match fault {
                                ReadFault::Corrupt => "corrupt",
                                ReadFault::Unavailable => "outage",
                            }
                            .to_string(),
                        });
                    }
                    // Fall through to lineage recomputation.
                }
            }
        }

        // 3. Recompute from lineage.
        let meta = self.ctx.lineage.meta(rdd);
        let op = meta.op.clone();
        let parents = meta.parents.clone();
        let was_before = self.was_computed_before(rdd, part);
        let factor = op.cost_factor();

        // Arms yield `PartData` so pass-through operators (`Union`, the
        // shared identity `Map`) hand the parent's payload onward in
        // whichever form it arrived, and vectorized kernels keep batches
        // columnar end to end.
        let (data, own_dur, child_dur): (PartData, SimDuration, SimDuration) = match op {
            RddOp::Parallelize { data } => {
                // Source partitions encode once into a per-partition
                // columnar batch cached in the lineage; later reads share
                // the Arc instead of deep-cloning the row vector.
                let rows = &data[part as usize];
                let out = if self.ctx.columnar {
                    match self.ctx.lineage.source_batch(rdd, part, rows) {
                        Some(b) => PartData::Col(b),
                        None => PartData::Rows(Arc::new(rows.clone())),
                    }
                } else {
                    PartData::Rows(Arc::new(rows.clone()))
                };
                let vb = self.ctx.cost.vbytes(out.real_bytes());
                (out, self.ctx.cost.source_time(vb), SimDuration::ZERO)
            }
            RddOp::Union => {
                let (p, pp) = self.ctx.lineage.union_source(rdd, part);
                let (pd, _, pdur) = self.materialize(p, pp)?;
                (pd, SimDuration::ZERO, pdur)
            }
            RddOp::Coalesce { group } => {
                let parent = parents[0];
                let n = self.ctx.lineage.meta(parent).num_partitions;
                let lo = part * group;
                let hi = (lo + group).min(n);
                let mut inputs: Vec<PartitionData> = Vec::with_capacity((hi - lo) as usize);
                let mut cdur = SimDuration::ZERO;
                for pp in lo..hi {
                    let (pd, _, pdur) = self.materialize(parent, pp)?;
                    cdur += pdur;
                    inputs.push(pd.rows());
                }
                let mut out = Vec::with_capacity(inputs.iter().map(|d| d.len()).sum());
                for pd in &inputs {
                    out.extend(pd.iter().cloned());
                }
                (PartData::Rows(Arc::new(out)), SimDuration::ZERO, cdur)
            }
            RddOp::Map { f } => {
                let (pd, vb, pdur) = self.materialize(parents[0], part)?;
                // The identity transform shares the parent's records; the
                // charged compute time depends only on the input size, so
                // the short-circuit cannot move the clock.
                let out = if crate::rdd::is_identity(&f) {
                    pd
                } else if let Some(b) = self.map_batch(rdd, &pd) {
                    b
                } else {
                    let rows = pd.rows();
                    let mut out = Vec::with_capacity(rows.len());
                    out.extend(rows.iter().map(|v| f(v)));
                    PartData::Rows(Arc::new(out))
                };
                (out, self.ctx.cost.compute_time(vb, factor), pdur)
            }
            RddOp::Filter { p } => {
                let (pd, vb, pdur) = self.materialize(parents[0], part)?;
                let out = if let Some(b) = self.filter_batch(rdd, &pd) {
                    b
                } else {
                    let rows = pd.rows();
                    let mut out = Vec::with_capacity(rows.len());
                    out.extend(rows.iter().filter(|v| p(v)).cloned());
                    PartData::Rows(Arc::new(out))
                };
                (out, self.ctx.cost.compute_time(vb, factor), pdur)
            }
            RddOp::FlatMap { f } => {
                let (pd, vb, pdur) = self.materialize(parents[0], part)?;
                let rows = pd.rows();
                let mut out: Vec<Value> = Vec::with_capacity(rows.len());
                out.extend(rows.iter().flat_map(|v| f(v)));
                (
                    PartData::Rows(Arc::new(out)),
                    self.ctx.cost.compute_time(vb, factor),
                    pdur,
                )
            }
            RddOp::MapPartitions { f, .. } => {
                let (pd, vb, pdur) = self.materialize(parents[0], part)?;
                let out = if let Some(b) = self.parts_batch(rdd, &pd) {
                    b
                } else {
                    PartData::Rows(Arc::new(f(part, &pd.rows())))
                };
                (out, self.ctx.cost.compute_time(vb, factor), pdur)
            }
            RddOp::Sample { fraction, seed } => {
                let (pd, vb, pdur) = self.materialize(parents[0], part)?;
                let out = deterministic_sample(&pd.rows(), fraction, seed, rdd, part);
                (
                    PartData::Rows(Arc::new(out)),
                    self.ctx.cost.compute_time(vb, factor),
                    pdur,
                )
            }
            RddOp::ShuffleAgg { shuffle, combine } => {
                let (chunks, bytes, fdur) = self.fetch_shuffle_bucket(shuffle, part)?;
                let vb = self.ctx.cost.vbytes(bytes + 16);
                let out = self.reduce_agg(shuffle, &chunks, &combine);
                (out, self.ctx.cost.compute_time(vb, factor), fdur)
            }
            RddOp::ShuffleGroup { shuffle } => {
                let (chunks, bytes, fdur) = self.fetch_shuffle_bucket(shuffle, part)?;
                let vb = self.ctx.cost.vbytes(bytes + 16);
                let out = self.reduce_group(&chunks);
                (out, self.ctx.cost.compute_time(vb, factor), fdur)
            }
            RddOp::CoGroup { shuffles } => {
                let mut fdur = SimDuration::ZERO;
                let mut total = 0u64;
                let mut per_parent: Vec<Vec<PartitionData>> = Vec::with_capacity(shuffles.len());
                for s in &shuffles {
                    let (chunks, bytes, d) = self.fetch_shuffle_bucket(*s, part)?;
                    fdur += d;
                    total += bytes + 16;
                    per_parent.push(chunks.iter().map(Bucket::rows).collect());
                }
                let vb = self.ctx.cost.vbytes(total);
                let mut groups: BTreeMap<Value, Vec<Vec<Value>>> = BTreeMap::new();
                for (i, chunks) in per_parent.iter().enumerate() {
                    for v in chunks.iter().flat_map(|c| c.iter()) {
                        if let Value::Pair(p) = v {
                            groups
                                .entry(p.key().clone())
                                .or_insert_with(|| vec![Vec::new(); per_parent.len()])[i]
                                .push(p.val().clone());
                        }
                    }
                }
                let mut out: Vec<Value> = Vec::with_capacity(groups.len());
                out.extend(groups.into_iter().map(|(k, gs)| {
                    Value::pair(k, Value::list(gs.into_iter().map(Value::list).collect()))
                }));
                (
                    PartData::Rows(Arc::new(out)),
                    self.ctx.cost.compute_time(vb, factor),
                    fdur,
                )
            }
            RddOp::SortByKey { shuffle, ascending } => {
                let (chunks, bytes, fdur) = self.fetch_shuffle_bucket(shuffle, part)?;
                let vb = self.ctx.cost.vbytes(bytes + 16);
                // Concatenate the buckets (decoded to rows) in the same
                // map-partition-major order the flat fetch produced, then
                // sort stably: equal keys keep fetch order, exactly as
                // before. The typed sort extracts a homogeneous key
                // column and sorts index vectors; mixed keys fall back to
                // the general comparator with identical ordering.
                let inputs: Vec<PartitionData> = chunks.iter().map(Bucket::rows).collect();
                let mut out: Vec<Value> = Vec::with_capacity(inputs.iter().map(|c| c.len()).sum());
                for c in &inputs {
                    out.extend(c.iter().cloned());
                }
                if !(self.ctx.columnar && typed_sort_by_key(&mut out, ascending)) {
                    out.sort_by(|a, b| {
                        let ka = a.key().unwrap_or(a);
                        let kb = b.key().unwrap_or(b);
                        if ascending {
                            ka.cmp(kb)
                        } else {
                            kb.cmp(ka)
                        }
                    });
                }
                (
                    PartData::Rows(Arc::new(out)),
                    self.ctx.cost.compute_time(vb, factor),
                    fdur,
                )
            }
        };

        if was_before {
            self.recompute_time += own_dur;
            if self.ctx.trace_enabled {
                self.events.push(EventKind::Recomputed {
                    block: bk.to_string(),
                    depth: u64::from(self.depth - 1),
                    millis: own_dur.as_millis(),
                });
            }
        }
        let real = data.real_bytes();
        let vb = self.ctx.cost.vbytes(real);
        // Deferred: the size is recorded into the lineage when the task
        // commits, so materialization hooks observe RDDs in completion
        // order (ancestors before descendants within one task chain).
        self.touched.push((rdd, part, real));
        self.computed.push((rdd, part));
        if self.ctx.lineage.is_persisted(rdd) {
            self.effects
                .push(CacheEffect::Insert(bk, data.to_block(), vb));
            self.local.insert(bk, (data.clone(), vb));
        }
        Ok((data, vb, own_dur + child_dur))
    }

    /// Vectorized `Map`: runs when columnar execution is on, the RDD
    /// registered a map kernel at plan time, and the parent arrived as a
    /// batch. `None` → row fallback.
    fn map_batch(&self, rdd: RddId, pd: &PartData) -> Option<PartData> {
        if !self.ctx.columnar {
            return None;
        }
        let (Some(OpKernel::Map(k)), PartData::Col(b)) = (self.ctx.lineage.kernel(rdd), pd) else {
            return None;
        };
        k.eval_batch(b).map(|nb| PartData::Col(Arc::new(nb)))
    }

    /// Vectorized `Filter`: mask evaluation over typed columns plus a
    /// single gather. `None` → row fallback.
    fn filter_batch(&self, rdd: RddId, pd: &PartData) -> Option<PartData> {
        if !self.ctx.columnar {
            return None;
        }
        let (Some(OpKernel::Filter(k)), PartData::Col(b)) = (self.ctx.lineage.kernel(rdd), pd)
        else {
            return None;
        };
        k.filter_batch(b).map(|nb| PartData::Col(Arc::new(nb)))
    }

    /// Vectorized `MapPartitions` for kernels registered as per-record
    /// filter-maps (e.g. k-means nearest-center assignment). `None` →
    /// row fallback through the op's own closure.
    fn parts_batch(&self, rdd: RddId, pd: &PartData) -> Option<PartData> {
        if !self.ctx.columnar {
            return None;
        }
        let (Some(OpKernel::PartsFilterMap(k)), PartData::Col(b)) =
            (self.ctx.lineage.kernel(rdd), pd)
        else {
            return None;
        };
        k.eval_batch(b).map(|nb| PartData::Col(Arc::new(nb)))
    }

    /// Reduce side of `ShuffleAgg`: typed columnar aggregation when the
    /// shuffle registered an agg kernel and every fetched bucket arrived
    /// as a key/payload batch, else the classic `BTreeMap` fold over
    /// decoded rows. Both produce the same sorted pair sequence and the
    /// same bytes.
    fn reduce_agg(
        &self,
        shuffle: ShuffleId,
        chunks: &[Bucket],
        combine: &crate::rdd::AggFn,
    ) -> PartData {
        if self.ctx.columnar {
            if let Some(kernel) = self.ctx.lineage.agg_kernel(shuffle) {
                if let Some(typed) = pair_chunks(chunks) {
                    if let Some(batch) = typed_agg(kernel, &typed) {
                        return PartData::Col(Arc::new(batch));
                    }
                }
            }
        }
        let rows: Vec<PartitionData> = chunks.iter().map(Bucket::rows).collect();
        let mut agg: BTreeMap<Value, Value> = BTreeMap::new();
        for v in rows.iter().flat_map(|c| c.iter()) {
            if let Value::Pair(p) = v {
                match agg.get_mut(p.key()) {
                    Some(acc) => *acc = combine(acc, p.val()),
                    None => {
                        agg.insert(p.key().clone(), p.val().clone());
                    }
                }
            }
        }
        let mut out: Vec<Value> = Vec::with_capacity(agg.len());
        out.extend(agg.into_iter().map(|(k, v)| Value::pair(k, v)));
        PartData::Rows(Arc::new(out))
    }

    /// Reduce side of `ShuffleGroup`: typed grouping over homogeneous
    /// key columns when every bucket arrived as a key/payload batch,
    /// else the classic `BTreeMap` path over decoded rows.
    fn reduce_group(&self, chunks: &[Bucket]) -> PartData {
        if self.ctx.columnar {
            if let Some(typed) = pair_chunks(chunks) {
                if let Some(rows) = typed_group(&typed) {
                    return PartData::Rows(Arc::new(rows));
                }
            }
        }
        let rows: Vec<PartitionData> = chunks.iter().map(Bucket::rows).collect();
        let mut groups: BTreeMap<Value, Vec<Value>> = BTreeMap::new();
        for v in rows.iter().flat_map(|c| c.iter()) {
            if let Value::Pair(p) = v {
                groups
                    .entry(p.key().clone())
                    .or_default()
                    .push(p.val().clone());
            }
        }
        let mut out: Vec<Value> = Vec::with_capacity(groups.len());
        out.extend(
            groups
                .into_iter()
                .map(|(k, vs)| Value::pair(k, Value::list(vs))),
        );
        PartData::Rows(Arc::new(out))
    }

    /// Fetches the reduce-side bucket `part` of `shuffle` from every map
    /// output block, charging disk/durable time directly and recording
    /// network transfers for pricing at admission. Returns one shared
    /// chunk per map block (map-partition order), the records' summed
    /// payload bytes (without the 16-byte partition overhead), and the
    /// worker-independent duration.
    ///
    /// Bucketed map blocks serve the request as an O(1) shared handle —
    /// zero record copies — in whichever form the map side produced
    /// (row bucket or contiguous columnar slice); flat blocks (range
    /// shuffles before barrier resolution) fall back to the full
    /// partition-assignment scan. All paths yield the same records in
    /// the same order — buckets preserve production order, and
    /// flattening the chunks in order reproduces the old concatenated
    /// fetch exactly.
    fn fetch_shuffle_bucket(
        &mut self,
        shuffle: ShuffleId,
        part: u32,
    ) -> std::result::Result<(Vec<Bucket>, u64, SimDuration), MissingShuffle> {
        let info = self.ctx.lineage.shuffle(shuffle).clone();
        let m = self.ctx.lineage.meta(info.parent).num_partitions;

        // Resolve the partitioner (range bounds are sampled lazily at the
        // barrier and cached for deterministic recomputation).
        let partitioner: Box<dyn Partitioner> = match info.kind {
            ShuffleKind::Hash { parts } => Box::new(HashPartitioner::new(parts)),
            ShuffleKind::Range { parts, ascending } => {
                let cached = self
                    .ctx
                    .range_cache
                    .get(&shuffle)
                    .or_else(|| {
                        self.resolved
                            .iter()
                            .find(|(s, _)| *s == shuffle)
                            .map(|(_, rp)| rp)
                    })
                    .cloned();
                let rp = match cached {
                    Some(rp) => rp,
                    None => {
                        let rp = self.resolve_range_partitioner(shuffle, m, parts, ascending)?;
                        self.resolved.push((shuffle, rp.clone()));
                        rp
                    }
                };
                Box::new(rp)
            }
        };

        let mut out: Vec<Bucket> = Vec::with_capacity(m as usize);
        let mut payload = 0u64;
        let mut dur = SimDuration::ZERO;
        for mp in 0..m {
            let (block, source, from_disk, from_store) = self.read_shuffle_block(shuffle, mp)?;
            let bucket_bytes = match &block {
                BlockData::Bucketed(bb) => {
                    match bb.bucket_batch(part) {
                        Some(cb) => out.push(Bucket::Col(Arc::clone(cb))),
                        None => out.push(Bucket::Rows(bb.bucket_shared(part))),
                    }
                    bb.bucket_bytes(part)
                }
                BlockData::Flat(d) => {
                    let (sel, bytes) = scan_flat_bucket(d, partitioner.as_ref(), part);
                    out.push(Bucket::Rows(Arc::new(sel)));
                    bytes
                }
                BlockData::Columnar(cb) => {
                    // Shuffle map outputs are bucketed or flat by
                    // construction; decode defensively if a columnar
                    // block ever lands here.
                    let rows = cb.to_rows();
                    let (sel, bytes) = scan_flat_bucket(&rows, partitioner.as_ref(), part);
                    out.push(Bucket::Rows(Arc::new(sel)));
                    bytes
                }
            };
            payload += bucket_bytes;
            let vb = self.ctx.cost.vbytes(bucket_bytes);
            if from_store {
                dur += self.ctx.ckpt.config().read_time(vb, 1);
            } else {
                if from_disk {
                    dur += self.ctx.cost.disk_time(vb);
                }
                if let Some(wid) = source {
                    self.net.push(NetFetch {
                        source: wid,
                        vbytes: vb,
                    });
                }
            }
        }
        Ok((out, payload, dur))
    }

    /// Reads one shuffle map block: `(data, holding worker, from_disk,
    /// from_store)`. The worker is `None` for durable-store reads.
    #[allow(clippy::type_complexity)]
    fn read_shuffle_block(
        &mut self,
        shuffle: ShuffleId,
        mp: u32,
    ) -> std::result::Result<(BlockData, Option<WorkerId>, bool, bool), MissingShuffle> {
        let bk = BlockKey::ShuffleMap {
            shuffle,
            map_part: mp,
        };
        if let Some((wid, data, loc, _)) = self.ctx.cluster.peek_fetch(&bk) {
            self.effects.push(CacheEffect::Touch(wid, bk));
            return Ok((data, Some(wid), loc == BlockLocation::Disk, false));
        }
        // A corrupt or outage-blocked shuffle checkpoint counts as
        // missing: the driver replans and recomputes the map task
        // rather than serving bad bytes.
        if self.ctx.ckpt.shuffle_readable(shuffle, mp, self.ctx.now) {
            if let Some(data) = self.ctx.ckpt.get_shuffle(shuffle, mp) {
                return Ok((data.clone(), None, false, true));
            }
        }
        Err(MissingShuffle)
    }

    fn resolve_range_partitioner(
        &mut self,
        shuffle: ShuffleId,
        map_parts: u32,
        parts: u32,
        ascending: bool,
    ) -> std::result::Result<RangePartitioner, MissingShuffle> {
        let mut sample = Vec::new();
        for mp in 0..map_parts {
            let (block, _, _, _) = self.read_shuffle_block(shuffle, mp)?;
            // Blocks of an unresolved range shuffle are flat by
            // construction: bucketing only happens once the partitioner
            // this function is about to produce has been cached, and the
            // cache is monotone, so resolution never runs again after
            // that point. Sampling raw production order keeps the
            // resolved bounds byte-identical to the pre-bucketing
            // engine.
            let block = block
                .flat()
                .expect("range shuffle map blocks stay flat until resolution");
            // Cap the per-block sample to keep planning cheap.
            let stride = (block.len() / 256).max(1);
            for v in block.iter().step_by(stride) {
                sample.push(v.key().unwrap_or(v).clone());
            }
        }
        Ok(RangePartitioner::from_sample(sample, parts, ascending))
    }
}

/// The typed key/payload views of a fetched bucket set, if every chunk
/// is a columnar batch in pair layout. Any row chunk or scalar-encoded
/// pair batch disqualifies the set: the typed reduce kernels key on the
/// dedicated key column, which only the pair layout guarantees matches
/// the row path's `v.key()` routing.
fn pair_chunks(chunks: &[Bucket]) -> Option<Vec<(&Column, &ColumnBatch)>> {
    chunks
        .iter()
        .map(|c| match c {
            Bucket::Col(b) => match b.as_ref() {
                ColumnBatch::Pair { key, val } => Some((key, val.as_ref())),
                ColumnBatch::Scalar(_) | ColumnBatch::Rows(_) => None,
            },
            Bucket::Rows(_) => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_wave_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 8] {
            let out = run_wave(threads, &items, |x| x * 3);
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_wave_uses_multiple_threads_when_asked() {
        // With 8 threads over blocking-free work we can at least verify
        // every item ran exactly once.
        let counter = AtomicU64::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let out = run_wave(8, &items, |x| {
            counter.fetch_add(1, Ordering::Relaxed);
            *x
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn run_wave_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(run_wave(8, &empty, |x| *x).is_empty());
        assert_eq!(run_wave(8, &[42u32], |x| *x + 1), vec![43]);
    }

    #[test]
    fn run_wave_overlaps_blocking_tasks() {
        // Eight 30 ms sleeps take ~240 ms sequentially; with 8 threads
        // they overlap to ~30 ms even on a single CPU. The generous bound
        // still proves concurrency.
        let items: Vec<u32> = (0..8).collect();
        let t0 = std::time::Instant::now();
        let out = run_wave(8, &items, |x| {
            std::thread::sleep(std::time::Duration::from_millis(30));
            *x
        });
        let elapsed = t0.elapsed();
        assert_eq!(out, items);
        assert!(
            elapsed < std::time::Duration::from_millis(150),
            "8 blocking tasks did not overlap: {elapsed:?}"
        );
    }

    #[test]
    #[should_panic(expected = "wave worker thread panicked")]
    fn run_wave_propagates_panics() {
        let items: Vec<u32> = (0..10).collect();
        let _ = run_wave(4, &items, |x| {
            assert!(*x != 7, "boom");
            *x
        });
    }
}
