//! RDD descriptors: identifiers, operators, and lineage metadata.

use std::fmt;
use std::sync::Arc;

use crate::shuffle::ShuffleId;
use crate::Value;

/// Identifier of an RDD within a [`crate::Lineage`] graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RddId(pub u32);

/// A user-facing handle to an RDD.
///
/// Handles are cheap copies of the id; all state lives in the lineage
/// graph. The newtype exists so user code cannot fabricate ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RddRef {
    pub(crate) id: RddId,
}

impl RddRef {
    /// Returns the underlying lineage id.
    pub fn id(&self) -> RddId {
        self.id
    }
}

/// The materialized contents of one partition.
pub type PartitionData = Arc<Vec<Value>>;

/// Element-wise transformation.
pub type MapFn = Arc<dyn Fn(&Value) -> Value + Send + Sync>;
/// Element-to-many transformation.
pub type FlatMapFn = Arc<dyn Fn(&Value) -> Vec<Value> + Send + Sync>;
/// Element predicate.
pub type PredFn = Arc<dyn Fn(&Value) -> bool + Send + Sync>;
/// Whole-partition transformation; receives the partition index.
pub type PartsFn = Arc<dyn Fn(u32, &[Value]) -> Vec<Value> + Send + Sync>;
/// Two-value combiner for keyed aggregation and `reduce`.
pub type AggFn = Arc<dyn Fn(&Value, &Value) -> Value + Send + Sync>;

/// The shared identity transform. Code that needs a no-op `Map` (e.g.
/// forcing a materialization point before a checkpoint) should use this
/// single instance: the executor recognizes it by pointer and shares the
/// parent partition's records outright instead of cloning each one.
pub fn identity() -> MapFn {
    static IDENTITY: std::sync::OnceLock<MapFn> = std::sync::OnceLock::new();
    IDENTITY
        .get_or_init(|| Arc::new(|v: &Value| v.clone()))
        .clone()
}

/// Whether `f` is the shared [`identity`] transform.
pub(crate) fn is_identity(f: &MapFn) -> bool {
    Arc::ptr_eq(f, &identity())
}

/// The operator that produces an RDD from its parents.
///
/// Operators fall into two classes, mirroring Spark's narrow/wide
/// dependency split (§2.2): narrow operators compute partition `p` from
/// partition `p` of the parent(s); shuffle operators consume *all* parent
/// partitions through a [`ShuffleId`].
#[derive(Clone)]
pub enum RddOp {
    /// A durable source collection, pre-partitioned. Reading it charges
    /// source-read time (the paper's "re-fetch from S3" path, §5.4).
    Parallelize {
        /// The source partitions (never lost; models data on S3/disk).
        data: Arc<Vec<Vec<Value>>>,
    },
    /// Element-wise map.
    Map {
        /// The transformation.
        f: MapFn,
    },
    /// Element-wise filter.
    Filter {
        /// The predicate.
        p: PredFn,
    },
    /// Element-to-many map.
    FlatMap {
        /// The transformation.
        f: FlatMapFn,
    },
    /// Whole-partition transformation with an explicit compute-intensity
    /// multiplier (lets workloads model CPU-heavy kernels like KMeans
    /// distance evaluation).
    MapPartitions {
        /// The transformation.
        f: PartsFn,
        /// Relative compute cost per byte versus a plain map.
        cost_factor: f64,
    },
    /// Concatenation of the parents' partition lists.
    Union,
    /// Narrow N→M repartitioning: output partition `p` concatenates a
    /// contiguous run of parent partitions (Spark's `coalesce` without
    /// shuffle).
    Coalesce {
        /// Parent partitions per output partition (ceiling division).
        group: u32,
    },
    /// Deterministic Bernoulli sample of the parent.
    Sample {
        /// Keep probability in `[0, 1]`.
        fraction: f64,
        /// Sampling seed (combined with partition index).
        seed: u64,
    },
    /// Keyed aggregation (`reduce_by_key`): pairs with equal keys are
    /// combined with `combine`.
    ShuffleAgg {
        /// The shuffle this operator reads.
        shuffle: ShuffleId,
        /// Associative combiner.
        combine: AggFn,
    },
    /// Keyed grouping (`group_by_key`): output pairs `(k, List(values))`.
    ShuffleGroup {
        /// The shuffle this operator reads.
        shuffle: ShuffleId,
    },
    /// Multi-parent grouping: output pairs
    /// `(k, List[List(values from parent 0), List(values from parent 1), …])`.
    CoGroup {
        /// One shuffle per parent, in parent order.
        shuffles: Vec<ShuffleId>,
    },
    /// Global sort by key via range partitioning.
    SortByKey {
        /// The shuffle this operator reads.
        shuffle: ShuffleId,
        /// Sort direction.
        ascending: bool,
    },
}

impl RddOp {
    /// Returns a short operator name for logs and debugging.
    pub fn kind(&self) -> &'static str {
        match self {
            RddOp::Parallelize { .. } => "parallelize",
            RddOp::Map { .. } => "map",
            RddOp::Filter { .. } => "filter",
            RddOp::FlatMap { .. } => "flat_map",
            RddOp::MapPartitions { .. } => "map_partitions",
            RddOp::Union => "union",
            RddOp::Coalesce { .. } => "coalesce",
            RddOp::Sample { .. } => "sample",
            RddOp::ShuffleAgg { .. } => "reduce_by_key",
            RddOp::ShuffleGroup { .. } => "group_by_key",
            RddOp::CoGroup { .. } => "cogroup",
            RddOp::SortByKey { .. } => "sort_by_key",
        }
    }

    /// Returns the shuffles this operator reads (empty for narrow ops).
    pub fn input_shuffles(&self) -> Vec<ShuffleId> {
        match self {
            RddOp::ShuffleAgg { shuffle, .. }
            | RddOp::ShuffleGroup { shuffle }
            | RddOp::SortByKey { shuffle, .. } => vec![*shuffle],
            RddOp::CoGroup { shuffles } => shuffles.clone(),
            _ => Vec::new(),
        }
    }

    /// Returns `true` if this operator reads its parents through a
    /// shuffle (a wide dependency).
    pub fn is_shuffle(&self) -> bool {
        !self.input_shuffles().is_empty()
    }

    /// Relative compute cost per input byte versus a plain map.
    ///
    /// These weights shape the checkpoint-vs-recompute trade-off per
    /// workload; absolute time comes from [`crate::CostModel`].
    pub fn cost_factor(&self) -> f64 {
        match self {
            RddOp::Parallelize { .. } => 0.0, // charged as source read, not compute
            RddOp::Map { .. } => 1.0,
            RddOp::Filter { .. } => 0.6,
            RddOp::FlatMap { .. } => 1.3,
            RddOp::MapPartitions { cost_factor, .. } => *cost_factor,
            RddOp::Union => 0.1,
            RddOp::Coalesce { .. } => 0.1,
            RddOp::Sample { .. } => 0.4,
            RddOp::ShuffleAgg { .. } => 1.6,
            RddOp::ShuffleGroup { .. } => 1.4,
            RddOp::CoGroup { .. } => 2.0,
            RddOp::SortByKey { .. } => 1.8,
        }
    }
}

impl fmt::Debug for RddOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind())
    }
}

/// The dependency class between an RDD and its parents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dependency {
    /// Partition `p` depends only on partition `p` of each parent (or a
    /// single parent partition, for `Union`).
    Narrow,
    /// Partition `p` depends on all partitions of each parent.
    Shuffle,
}

/// Metadata of one RDD in the lineage graph.
#[derive(Clone)]
pub struct RddMeta {
    /// The RDD's id.
    pub id: RddId,
    /// Human-readable name (defaults to the operator kind).
    pub name: String,
    /// The producing operator.
    pub op: RddOp,
    /// Parent RDDs, in operator order.
    pub parents: Vec<RddId>,
    /// Number of partitions.
    pub num_partitions: u32,
}

impl RddMeta {
    /// Returns the dependency class of this RDD on its parents.
    pub fn dependency(&self) -> Dependency {
        if self.op.is_shuffle() {
            Dependency::Shuffle
        } else {
            Dependency::Narrow
        }
    }
}

impl fmt::Debug for RddMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RddMeta")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("op", &self.op)
            .field("parents", &self.parents)
            .field("num_partitions", &self.num_partitions)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_and_shuffle_classification() {
        let map = RddOp::Map {
            f: Arc::new(|v| v.clone()),
        };
        assert_eq!(map.kind(), "map");
        assert!(!map.is_shuffle());
        assert!(map.input_shuffles().is_empty());

        let agg = RddOp::ShuffleAgg {
            shuffle: ShuffleId(3),
            combine: Arc::new(|a, _| a.clone()),
        };
        assert!(agg.is_shuffle());
        assert_eq!(agg.input_shuffles(), vec![ShuffleId(3)]);

        let cg = RddOp::CoGroup {
            shuffles: vec![ShuffleId(1), ShuffleId(2)],
        };
        assert_eq!(cg.input_shuffles().len(), 2);
    }

    #[test]
    fn dependency_classification() {
        let narrow = RddMeta {
            id: RddId(0),
            name: "m".into(),
            op: RddOp::Union,
            parents: vec![],
            num_partitions: 2,
        };
        assert_eq!(narrow.dependency(), Dependency::Narrow);

        let wide = RddMeta {
            id: RddId(1),
            name: "g".into(),
            op: RddOp::ShuffleGroup {
                shuffle: ShuffleId(0),
            },
            parents: vec![RddId(0)],
            num_partitions: 4,
        };
        assert_eq!(wide.dependency(), Dependency::Shuffle);
    }

    #[test]
    fn cost_factors_are_positive_for_compute_ops() {
        let ops: Vec<RddOp> = vec![
            RddOp::Map {
                f: Arc::new(|v| v.clone()),
            },
            RddOp::Filter {
                p: Arc::new(|_| true),
            },
            RddOp::SortByKey {
                shuffle: ShuffleId(0),
                ascending: true,
            },
        ];
        for op in ops {
            assert!(op.cost_factor() > 0.0, "{}", op.kind());
        }
    }
}
