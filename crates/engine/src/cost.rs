//! The virtual-time cost model.
//!
//! Tasks in this engine really execute their closures over real data, but
//! the *time* they are charged comes from this model, which maps byte
//! volumes to durations. A `size_scale` factor converts in-process bytes
//! to "paper-scale" virtual bytes, so a 2 MB test dataset can exercise the
//! engine exactly like the paper's 2 GB LiveJournal graph: same lineage,
//! same cache pressure, same checkpoint-vs-recompute trade-off, hour-scale
//! timings — all simulated in milliseconds of wall time.

use flint_simtime::SimDuration;
use serde::{Deserialize, Serialize};

/// Throughput and overhead parameters for task-time accounting.
///
/// Defaults approximate the paper's testbed (`r3.large` workers, EBS-backed
/// HDFS, moderate network): per-core compute streams at ~150 MiB/s for a
/// plain map, the network moves ~120 MiB/s per worker, and every task pays
/// a fixed scheduling overhead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Virtual bytes per real in-process byte (dataset scale-up factor).
    pub size_scale: f64,
    /// Per-core compute throughput for a cost-factor-1.0 operator, MiB/s
    /// of virtual input bytes.
    pub compute_mib_s: f64,
    /// Per-worker network bandwidth for remote block fetches, MiB/s.
    pub net_mib_s: f64,
    /// Local-disk bandwidth for spill reloads, MiB/s.
    pub disk_mib_s: f64,
    /// Bandwidth for (re-)reading source data, MiB/s. Deliberately slow:
    /// the paper observes that recomputing from source re-fetches from S3
    /// and re-partitions/de-serializes (§5.4).
    pub source_mib_s: f64,
    /// Fixed per-task overhead (scheduling, deserialization).
    pub task_overhead: SimDuration,
    /// Fraction of a checkpoint write's duration that stalls the
    /// worker's *other* cores (the write saturates the node's shared
    /// EBS/NIC bandwidth, degrading concurrent compute — §3.1.1:
    /// "checkpointing tasks consume CPU and I/O resources that
    /// proportionally degrade the performance of other tasks").
    pub ckpt_contention: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            size_scale: 1.0,
            compute_mib_s: 150.0,
            net_mib_s: 120.0,
            disk_mib_s: 200.0,
            source_mib_s: 40.0,
            task_overhead: SimDuration::from_millis(80),
            ckpt_contention: 0.5,
        }
    }
}

impl CostModel {
    /// Converts real bytes to virtual bytes.
    pub fn vbytes(&self, real_bytes: u64) -> u64 {
        (real_bytes as f64 * self.size_scale).round() as u64
    }

    fn mib(bytes: u64) -> f64 {
        bytes as f64 / (1024.0 * 1024.0)
    }

    /// Compute time for processing `vbytes` with an operator of the given
    /// cost factor on one core.
    pub fn compute_time(&self, vbytes: u64, cost_factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(Self::mib(vbytes) * cost_factor.max(0.0) / self.compute_mib_s)
    }

    /// Network transfer time for `vbytes`.
    pub fn net_time(&self, vbytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(Self::mib(vbytes) / self.net_mib_s)
    }

    /// Local-disk reload time for `vbytes`.
    pub fn disk_time(&self, vbytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(Self::mib(vbytes) / self.disk_mib_s)
    }

    /// Source (re-)read time for `vbytes`.
    pub fn source_time(&self, vbytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(Self::mib(vbytes) / self.source_mib_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vbytes_scaling() {
        let c = CostModel {
            size_scale: 1000.0,
            ..CostModel::default()
        };
        assert_eq!(c.vbytes(1024), 1_024_000);
        assert_eq!(CostModel::default().vbytes(77), 77);
    }

    #[test]
    fn times_scale_linearly() {
        let c = CostModel::default();
        // Durations have millisecond resolution, so allow rounding slack.
        let one = c.compute_time(100 << 20, 1.0);
        let two = c.compute_time(200 << 20, 1.0);
        assert!((two.as_secs_f64() - 2.0 * one.as_secs_f64()).abs() < 3e-3);
        let heavy = c.compute_time(100 << 20, 3.0);
        assert!((heavy.as_secs_f64() - 3.0 * one.as_secs_f64()).abs() < 3e-3);
    }

    #[test]
    fn source_reads_slower_than_compute() {
        let c = CostModel::default();
        assert!(c.source_time(100 << 20) > c.compute_time(100 << 20, 1.0));
    }

    #[test]
    fn negative_cost_factor_clamps() {
        let c = CostModel::default();
        assert_eq!(c.compute_time(1 << 20, -5.0), SimDuration::ZERO);
    }
}
