//! Crash-resume run manifests.
//!
//! The engine is deterministic: the same config, workload, and failure
//! schedule replay the same run byte for byte. Crash recovery therefore
//! does not serialize live scheduler state — it re-launches the
//! identical session and replays it, and the [`RunManifest`] persisted
//! at the suspension point is the *verification artifact*: when the
//! replay's committed-wave frontier crosses the manifest's, the driver
//! proves virtual time and stats match before continuing (see
//! [`crate::Driver::resume`]). The manifest also catalogs the durable
//! checkpoint keys present at suspension, so an operator can audit what
//! the store held when the driver died.
//!
//! Serialization is a hand-rolled line format (the repo vendors no
//! serde codegen): a tagged header line followed by `key=value` lines,
//! stable across versions behind the leading version tag.

use std::fmt;

/// A persisted snapshot of run progress at a wave-commit boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Format version (currently 1).
    pub version: u32,
    /// Session tag; the manifest lives at `manifest/<session>` in the
    /// durable store.
    pub session: String,
    /// Fingerprint of the determinism-relevant driver config
    /// ([`crate::DriverConfig::fingerprint`]).
    pub config_fp: u64,
    /// Committed-wave frontier at suspension.
    pub frontier: u64,
    /// Virtual time at suspension, in milliseconds.
    pub now_ms: u64,
    /// Tasks committed so far.
    pub tasks_run: u64,
    /// Revocations observed so far.
    pub revocations: u64,
    /// Checkpoint partitions durably written so far.
    pub checkpoints_written: u64,
    /// Sorted durable-store keys present at suspension (checkpoint and
    /// shuffle objects; manifests themselves are excluded).
    pub blocks: Vec<String>,
}

/// Why a serialized manifest failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// The header line is missing or names an unsupported version.
    BadHeader,
    /// A required field is missing or malformed.
    BadField(&'static str),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::BadHeader => write!(f, "missing or unsupported manifest header"),
            ManifestError::BadField(k) => write!(f, "missing or malformed manifest field {k:?}"),
        }
    }
}

impl std::error::Error for ManifestError {}

const HEADER: &str = "flint-run-manifest v1";

impl RunManifest {
    /// The durable-store key this manifest is persisted under.
    pub fn store_key(&self) -> String {
        format!("manifest/{}", self.session)
    }

    /// Serializes to the line format.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        let mut kv = |k: &str, v: String| {
            out.push_str(k);
            out.push('=');
            out.push_str(&v);
            out.push('\n');
        };
        kv("session", self.session.clone());
        kv("config_fp", self.config_fp.to_string());
        kv("frontier", self.frontier.to_string());
        kv("now_ms", self.now_ms.to_string());
        kv("tasks_run", self.tasks_run.to_string());
        kv("revocations", self.revocations.to_string());
        kv("checkpoints_written", self.checkpoints_written.to_string());
        kv("blocks", self.blocks.join(","));
        out
    }

    /// Parses the line format back into a manifest.
    pub fn decode(text: &str) -> Result<RunManifest, ManifestError> {
        let mut lines = text.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(ManifestError::BadHeader);
        }
        let mut session = None;
        let mut config_fp = None;
        let mut frontier = None;
        let mut now_ms = None;
        let mut tasks_run = None;
        let mut revocations = None;
        let mut checkpoints_written = None;
        let mut blocks = None;
        for line in lines {
            let line = line.trim_end();
            if line.is_empty() {
                continue;
            }
            let Some((k, v)) = line.split_once('=') else {
                continue;
            };
            match k {
                "session" => session = Some(v.to_string()),
                "config_fp" => config_fp = v.parse::<u64>().ok(),
                "frontier" => frontier = v.parse::<u64>().ok(),
                "now_ms" => now_ms = v.parse::<u64>().ok(),
                "tasks_run" => tasks_run = v.parse::<u64>().ok(),
                "revocations" => revocations = v.parse::<u64>().ok(),
                "checkpoints_written" => checkpoints_written = v.parse::<u64>().ok(),
                "blocks" => {
                    blocks = Some(if v.is_empty() {
                        Vec::new()
                    } else {
                        v.split(',').map(str::to_string).collect()
                    })
                }
                _ => {} // forward-compatible: unknown keys are skipped
            }
        }
        Ok(RunManifest {
            version: 1,
            session: session.ok_or(ManifestError::BadField("session"))?,
            config_fp: config_fp.ok_or(ManifestError::BadField("config_fp"))?,
            frontier: frontier.ok_or(ManifestError::BadField("frontier"))?,
            now_ms: now_ms.ok_or(ManifestError::BadField("now_ms"))?,
            tasks_run: tasks_run.ok_or(ManifestError::BadField("tasks_run"))?,
            revocations: revocations.ok_or(ManifestError::BadField("revocations"))?,
            checkpoints_written: checkpoints_written
                .ok_or(ManifestError::BadField("checkpoints_written"))?,
            blocks: blocks.ok_or(ManifestError::BadField("blocks"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            version: 1,
            session: "seed-42".into(),
            config_fp: 0xdead_beef_cafe_f00d,
            frontier: 12,
            now_ms: 1_209_600_000,
            tasks_run: 96,
            revocations: 3,
            checkpoints_written: 8,
            blocks: vec![
                "rdd-000003/part-00000".into(),
                "rdd-000003/part-00001".into(),
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let m = sample();
        assert_eq!(RunManifest::decode(&m.encode()), Ok(m.clone()));
        // Empty block catalog survives too.
        let empty = RunManifest {
            blocks: Vec::new(),
            ..m
        };
        assert_eq!(RunManifest::decode(&empty.encode()), Ok(empty));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            RunManifest::decode("not a manifest"),
            Err(ManifestError::BadHeader)
        );
        let truncated = format!("{HEADER}\nsession=x\n");
        assert_eq!(
            RunManifest::decode(&truncated),
            Err(ManifestError::BadField("config_fp"))
        );
    }

    #[test]
    fn unknown_keys_are_skipped() {
        let mut text = sample().encode();
        text.push_str("future_field=whatever\n");
        assert_eq!(RunManifest::decode(&text), Ok(sample()));
    }

    #[test]
    fn store_key_is_session_scoped() {
        assert_eq!(sample().store_key(), "manifest/seed-42");
    }
}
