//! The engine's view of the worker cluster.

use std::collections::HashMap;

use flint_simtime::SimTime;

use crate::block::{BlockData, BlockKey, BlockLocation, BlockManager, BlockStoreSnapshot};

/// Identifier of a worker slot within the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub u32);

/// The shape of a worker node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerSpec {
    /// Number of task slots (vCPUs).
    pub cores: u32,
    /// Memory available for the block cache, in virtual bytes.
    pub cache_mem_bytes: u64,
    /// Local disk available for spill, in virtual bytes.
    pub disk_bytes: u64,
}

impl WorkerSpec {
    /// The paper's `r3.large` worker: 2 vCPUs, 15 GB RAM (of which Spark
    /// uses ~40 % for RDD storage, §5.5), 32 GB local SSD.
    pub fn r3_large() -> Self {
        WorkerSpec {
            cores: 2,
            cache_mem_bytes: (15.0 * 0.4 * 1e9) as u64,
            disk_bytes: 32_000_000_000,
        }
    }

    /// One serverless function slot: a single core with `mem_gb` of
    /// function memory as its cache and no local disk persistence
    /// worth modeling (invocation-local scratch only). Used by the
    /// serverless backend, where each worker models one unit of
    /// function concurrency rather than a machine.
    pub fn serverless_slot(mem_gb: f64) -> Self {
        WorkerSpec {
            cores: 1,
            cache_mem_bytes: (mem_gb.max(0.0) * 1e9) as u64,
            disk_bytes: 0,
        }
    }
}

/// One worker: task slots plus a block store.
#[derive(Debug)]
pub struct Worker {
    /// The engine-local id.
    pub id: WorkerId,
    /// The external id (e.g. a cloud instance id) that maps failure
    /// events onto this worker.
    pub ext_id: u64,
    /// Hardware shape.
    pub spec: WorkerSpec,
    /// Whether the worker is currently alive.
    pub alive: bool,
    /// Per-core busy-until instants.
    pub cores_busy_until: Vec<SimTime>,
    /// The worker's block store.
    pub blocks: BlockManager,
    /// When the worker joined the cluster.
    pub joined_at: SimTime,
}

impl Worker {
    /// Returns the earliest instant any core is free, no earlier than
    /// `now`.
    pub fn earliest_free(&self, now: SimTime) -> SimTime {
        self.cores_busy_until
            .iter()
            .copied()
            .min()
            .unwrap_or(now)
            .max(now)
    }

    /// Returns the index of the earliest-free core.
    pub fn earliest_free_core(&self) -> usize {
        self.cores_busy_until
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// The set of workers known to the driver.
#[derive(Debug, Default)]
pub struct Cluster {
    workers: Vec<Worker>,
    ext_map: HashMap<u64, WorkerId>,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Cluster::default()
    }

    /// Adds a worker, returning its engine id.
    pub fn add_worker(&mut self, ext_id: u64, spec: WorkerSpec, now: SimTime) -> WorkerId {
        let id = WorkerId(self.workers.len() as u32);
        self.workers.push(Worker {
            id,
            ext_id,
            spec,
            alive: true,
            cores_busy_until: vec![now; spec.cores.max(1) as usize],
            blocks: BlockManager::new(spec.cache_mem_bytes, spec.disk_bytes),
            joined_at: now,
        });
        self.ext_map.insert(ext_id, id);
        id
    }

    /// Kills the worker with external id `ext_id`, dropping all its
    /// blocks. Returns the engine id if it was alive.
    pub fn remove_by_ext(&mut self, ext_id: u64) -> Option<WorkerId> {
        let id = self.ext_map.remove(&ext_id)?;
        let w = &mut self.workers[id.0 as usize];
        if !w.alive {
            return None;
        }
        w.alive = false;
        w.blocks.clear();
        Some(id)
    }

    /// Resolves an external id to an engine id, if that worker is known.
    pub fn by_ext(&self, ext_id: u64) -> Option<WorkerId> {
        self.ext_map.get(&ext_id).copied()
    }

    /// Returns the worker with engine id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn worker(&self, id: WorkerId) -> &Worker {
        &self.workers[id.0 as usize]
    }

    /// Returns the worker mutably.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn worker_mut(&mut self, id: WorkerId) -> &mut Worker {
        &mut self.workers[id.0 as usize]
    }

    /// Returns the ids of alive workers.
    pub fn alive(&self) -> Vec<WorkerId> {
        self.workers
            .iter()
            .filter(|w| w.alive)
            .map(|w| w.id)
            .collect()
    }

    /// Returns the number of alive workers.
    pub fn alive_count(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Finds a block anywhere in the alive cluster.
    pub fn locate(&self, key: &BlockKey) -> Option<(WorkerId, BlockLocation, u64)> {
        for w in &self.workers {
            if !w.alive {
                continue;
            }
            if let Some((loc, bytes)) = w.blocks.peek(key) {
                return Some((w.id, loc, bytes));
            }
        }
        None
    }

    /// Fetches a block's data from anywhere in the alive cluster.
    pub fn fetch(&mut self, key: &BlockKey) -> Option<(WorkerId, BlockData, BlockLocation, u64)> {
        let (wid, _, _) = self.locate(key)?;
        let w = &mut self.workers[wid.0 as usize];
        let (data, loc, bytes) = w.blocks.get(key)?;
        Some((wid, data, loc, bytes))
    }

    /// Fetches a block's data from anywhere in the alive cluster without
    /// mutating LRU state — the read-snapshot analogue of
    /// [`Cluster::fetch`], usable from parallel wave threads. Callers
    /// replay the LRU bump afterwards with [`Cluster::touch`].
    pub fn peek_fetch(&self, key: &BlockKey) -> Option<(WorkerId, BlockData, BlockLocation, u64)> {
        let (wid, _, _) = self.locate(key)?;
        let w = &self.workers[wid.0 as usize];
        let (data, loc, bytes) = w.blocks.peek_data(key)?;
        Some((wid, data, loc, bytes))
    }

    /// Bumps a block's LRU stamp on one worker (deferred half of a
    /// [`Cluster::peek_fetch`]). No-op if the worker died or dropped the
    /// block since the peek.
    pub fn touch(&mut self, wid: WorkerId, key: &BlockKey) {
        if let Some(w) = self.workers.get_mut(wid.0 as usize) {
            if w.alive {
                w.blocks.touch(key);
            }
        }
    }

    /// Applies an in-place payload conversion to `key` on every alive
    /// worker holding it (see [`BlockManager::replace_payload`]); LRU
    /// state and accounting are untouched. `f` returns `None` to leave
    /// that worker's copy as is.
    pub fn replace_payload_everywhere(
        &mut self,
        key: &BlockKey,
        f: impl Fn(&BlockData) -> Option<BlockData>,
    ) {
        for w in &mut self.workers {
            if w.alive {
                w.blocks.replace_payload(key, &f);
            }
        }
    }

    /// Removes a block from every worker (e.g. when superseded).
    pub fn remove_everywhere(&mut self, key: &BlockKey) {
        for w in &mut self.workers {
            w.blocks.remove(key);
        }
    }

    /// Builds a summary of all cached blocks on alive workers.
    pub fn snapshot(&self) -> BlockStoreSnapshot {
        let mut snap = BlockStoreSnapshot {
            mem_bytes: 0,
            disk_bytes: 0,
            blocks: Vec::new(),
        };
        for w in &self.workers {
            if !w.alive {
                continue;
            }
            snap.mem_bytes += w.blocks.mem_used();
            snap.disk_bytes += w.blocks.disk_used();
            for k in w.blocks.keys() {
                if let Some((_, bytes)) = w.blocks.peek(&k) {
                    snap.blocks.push((w.id, k, bytes));
                }
            }
        }
        snap.blocks.sort_by_key(|(w, k, _)| (*w, *k));
        snap
    }

    /// Total cache memory across alive workers, in virtual bytes.
    pub fn total_cache_capacity(&self) -> u64 {
        self.workers
            .iter()
            .filter(|w| w.alive)
            .map(|w| w.blocks.mem_capacity())
            .sum()
    }

    /// Returns all workers (alive and dead), for accounting.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdd::RddId;
    use crate::Value;
    use std::sync::Arc;

    fn spec() -> WorkerSpec {
        WorkerSpec {
            cores: 2,
            cache_mem_bytes: 1000,
            disk_bytes: 1000,
        }
    }

    fn key(i: u32) -> BlockKey {
        BlockKey::RddPart {
            rdd: RddId(0),
            part: i,
        }
    }

    #[test]
    fn add_and_remove_workers() {
        let mut c = Cluster::new();
        let a = c.add_worker(100, spec(), SimTime::ZERO);
        let b = c.add_worker(101, spec(), SimTime::ZERO);
        assert_eq!(c.alive(), vec![a, b]);
        assert_eq!(c.by_ext(100), Some(a));
        assert_eq!(c.remove_by_ext(100), Some(a));
        assert_eq!(c.remove_by_ext(100), None);
        assert_eq!(c.alive(), vec![b]);
        assert!(!c.worker(a).alive);
    }

    #[test]
    fn revocation_drops_blocks() {
        let mut c = Cluster::new();
        let a = c.add_worker(1, spec(), SimTime::ZERO);
        c.worker_mut(a)
            .blocks
            .insert(key(0), Arc::new(vec![Value::Int(1)]), 10);
        assert!(c.locate(&key(0)).is_some());
        c.remove_by_ext(1);
        assert!(c.locate(&key(0)).is_none());
    }

    #[test]
    fn locate_searches_all_alive_workers() {
        let mut c = Cluster::new();
        let _a = c.add_worker(1, spec(), SimTime::ZERO);
        let b = c.add_worker(2, spec(), SimTime::ZERO);
        c.worker_mut(b).blocks.insert(key(7), Arc::new(vec![]), 5);
        let (wid, _, bytes) = c.locate(&key(7)).unwrap();
        assert_eq!(wid, b);
        assert_eq!(bytes, 5);
    }

    #[test]
    fn earliest_free_core_selection() {
        let mut c = Cluster::new();
        let a = c.add_worker(1, spec(), SimTime::ZERO);
        let w = c.worker_mut(a);
        w.cores_busy_until[0] = SimTime::from_millis(100);
        w.cores_busy_until[1] = SimTime::from_millis(50);
        assert_eq!(w.earliest_free_core(), 1);
        assert_eq!(w.earliest_free(SimTime::ZERO), SimTime::from_millis(50));
        assert_eq!(
            w.earliest_free(SimTime::from_millis(70)),
            SimTime::from_millis(70)
        );
    }

    #[test]
    fn peek_fetch_matches_fetch_without_lru_bump() {
        let mut c = Cluster::new();
        let a = c.add_worker(1, spec(), SimTime::ZERO);
        c.worker_mut(a)
            .blocks
            .insert(key(3), Arc::new(vec![Value::Int(7)]), 12);
        let (wid, data, loc, vb) = c.peek_fetch(&key(3)).unwrap();
        assert_eq!((wid, loc, vb), (a, crate::BlockLocation::Memory, 12));
        assert_eq!(data.len(), 1);
        // Touch after peek; on a dead worker it is a no-op.
        c.touch(a, &key(3));
        c.remove_by_ext(1);
        c.touch(a, &key(3));
        assert!(c.peek_fetch(&key(3)).is_none());
    }

    #[test]
    fn snapshot_covers_alive_only() {
        let mut c = Cluster::new();
        let a = c.add_worker(1, spec(), SimTime::ZERO);
        let b = c.add_worker(2, spec(), SimTime::ZERO);
        c.worker_mut(a).blocks.insert(key(0), Arc::new(vec![]), 10);
        c.worker_mut(b).blocks.insert(key(1), Arc::new(vec![]), 20);
        c.remove_by_ext(1);
        let snap = c.snapshot();
        assert_eq!(snap.mem_bytes, 20);
        assert_eq!(snap.blocks.len(), 1);
        assert_eq!(snap.blocks[0].0, b);
    }
}
