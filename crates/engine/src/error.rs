//! Engine error types.

use std::fmt;

use crate::RddId;

/// Errors surfaced by the engine.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a wildcard
/// arm so future fault domains can add variants without breaking them.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The referenced RDD does not exist in the lineage graph.
    UnknownRdd(RddId),
    /// The cluster has no workers and the failure injector will never add
    /// any, so the job can make no progress.
    NoWorkers,
    /// A job exceeded the driver's recomputation retry budget, indicating
    /// a revocation livelock.
    RetryBudgetExhausted {
        /// The RDD whose materialization kept failing.
        rdd: RddId,
    },
    /// An action was invoked on an empty dataset where it has no identity
    /// (e.g. `reduce`).
    EmptyDataset,
    /// A checkpoint failed its integrity check (torn write) and no
    /// lineage remained to recompute the partition from source data.
    CheckpointCorrupt {
        /// Durable-store key of the corrupt partition checkpoint.
        block: String,
    },
    /// The checkpoint store stayed unreachable through the driver's
    /// capped-backoff retry loop.
    StoreUnavailable {
        /// Retries attempted before giving up.
        retries: u64,
    },
    /// A driver-level scheduling loop (idle pumping, checkpoint
    /// draining) exceeded its iteration budget with no single RDD to
    /// blame — a job-level livelock rather than one failing lineage.
    JobBudgetExhausted {
        /// Which loop gave up: `"idle"` or `"drain-checkpoints"`.
        phase: &'static str,
        /// Iterations spent before giving up.
        iterations: u64,
    },
    /// The run was suspended at a wave-commit boundary; a manifest was
    /// persisted to the durable store and the job can be continued with
    /// `Driver::resume`.
    Suspended {
        /// Durable-store key of the persisted run manifest.
        manifest: String,
        /// Committed wave frontier at the moment of suspension.
        frontier: u64,
    },
    /// A resume replay disagreed with the persisted manifest — either
    /// the config fingerprint differs up front, or the replay crossed
    /// the recorded frontier with different time/stats. The sessions
    /// are not the same run and continuing would corrupt determinism.
    ResumeDiverged {
        /// Which manifest field failed verification (`"config_fp"`,
        /// `"frontier"`, `"now_ms"`, `"tasks_run"`, `"revocations"`,
        /// or `"checkpoints_written"`).
        field: &'static str,
        /// The value the manifest recorded.
        expected: u64,
        /// The value the replay produced.
        actual: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownRdd(id) => write!(f, "unknown RDD {id:?}"),
            EngineError::NoWorkers => write!(f, "no workers available and none forthcoming"),
            EngineError::RetryBudgetExhausted { rdd } => {
                write!(f, "retry budget exhausted while materializing {rdd:?}")
            }
            EngineError::EmptyDataset => write!(f, "action undefined on an empty dataset"),
            EngineError::CheckpointCorrupt { block } => {
                write!(
                    f,
                    "checkpoint {block:?} failed its integrity check and no lineage remains"
                )
            }
            EngineError::StoreUnavailable { retries } => {
                write!(
                    f,
                    "checkpoint store unavailable after {retries} backoff retries"
                )
            }
            EngineError::JobBudgetExhausted { phase, iterations } => {
                write!(
                    f,
                    "driver {phase} loop exceeded its budget after {iterations} iterations"
                )
            }
            EngineError::Suspended { manifest, frontier } => {
                write!(
                    f,
                    "run suspended at wave {frontier}; resume from manifest {manifest:?}"
                )
            }
            EngineError::ResumeDiverged {
                field,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "resume replay diverged at {field}: manifest recorded {expected}, replay produced {actual}"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience alias for engine results.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_variants_display_their_context() {
        let c = EngineError::CheckpointCorrupt {
            block: "rdd-000005/part-00001".into(),
        };
        assert!(c.to_string().contains("rdd-000005/part-00001"));
        let s = EngineError::StoreUnavailable { retries: 7 };
        assert!(s.to_string().contains('7'));
        // Both are std errors with no deeper source.
        use std::error::Error as _;
        assert!(c.source().is_none() && s.source().is_none());
    }
}
