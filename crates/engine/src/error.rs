//! Engine error types.

use std::fmt;

use crate::RddId;

/// Errors surfaced by the engine.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a wildcard
/// arm so future fault domains can add variants without breaking them.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The referenced RDD does not exist in the lineage graph.
    UnknownRdd(RddId),
    /// The cluster has no workers and the failure injector will never add
    /// any, so the job can make no progress.
    NoWorkers,
    /// A job exceeded the driver's recomputation retry budget, indicating
    /// a revocation livelock.
    RetryBudgetExhausted {
        /// The RDD whose materialization kept failing.
        rdd: RddId,
    },
    /// An action was invoked on an empty dataset where it has no identity
    /// (e.g. `reduce`).
    EmptyDataset,
    /// A checkpoint failed its integrity check (torn write) and no
    /// lineage remained to recompute the partition from source data.
    CheckpointCorrupt {
        /// Durable-store key of the corrupt partition checkpoint.
        block: String,
    },
    /// The checkpoint store stayed unreachable through the driver's
    /// capped-backoff retry loop.
    StoreUnavailable {
        /// Retries attempted before giving up.
        retries: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownRdd(id) => write!(f, "unknown RDD {id:?}"),
            EngineError::NoWorkers => write!(f, "no workers available and none forthcoming"),
            EngineError::RetryBudgetExhausted { rdd } => {
                write!(f, "retry budget exhausted while materializing {rdd:?}")
            }
            EngineError::EmptyDataset => write!(f, "action undefined on an empty dataset"),
            EngineError::CheckpointCorrupt { block } => {
                write!(
                    f,
                    "checkpoint {block:?} failed its integrity check and no lineage remains"
                )
            }
            EngineError::StoreUnavailable { retries } => {
                write!(
                    f,
                    "checkpoint store unavailable after {retries} backoff retries"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience alias for engine results.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_variants_display_their_context() {
        let c = EngineError::CheckpointCorrupt {
            block: "rdd-000005/part-00001".into(),
        };
        assert!(c.to_string().contains("rdd-000005/part-00001"));
        let s = EngineError::StoreUnavailable { retries: 7 };
        assert!(s.to_string().contains('7'));
        // Both are std errors with no deeper source.
        use std::error::Error as _;
        assert!(c.source().is_none() && s.source().is_none());
    }
}
