//! Engine error types.

use std::fmt;

use crate::RddId;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The referenced RDD does not exist in the lineage graph.
    UnknownRdd(RddId),
    /// The cluster has no workers and the failure injector will never add
    /// any, so the job can make no progress.
    NoWorkers,
    /// A job exceeded the driver's recomputation retry budget, indicating
    /// a revocation livelock.
    RetryBudgetExhausted {
        /// The RDD whose materialization kept failing.
        rdd: RddId,
    },
    /// An action was invoked on an empty dataset where it has no identity
    /// (e.g. `reduce`).
    EmptyDataset,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownRdd(id) => write!(f, "unknown RDD {id:?}"),
            EngineError::NoWorkers => write!(f, "no workers available and none forthcoming"),
            EngineError::RetryBudgetExhausted { rdd } => {
                write!(f, "retry budget exhausted while materializing {rdd:?}")
            }
            EngineError::EmptyDataset => write!(f, "action undefined on an empty dataset"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience alias for engine results.
pub type Result<T> = std::result::Result<T, EngineError>;
