//! Columnar batch representation and vectorized kernels.
//!
//! A [`ColumnBatch`] is the struct-of-arrays twin of a flat
//! `Vec<Value>` partition: the same logical record sequence stored as
//! typed column vectors. Encoding is lossless and order-preserving —
//! `ColumnBatch::from_rows(rows)` followed by [`ColumnBatch::to_rows`]
//! reproduces the original records exactly, and every size formula
//! reuses the `Value` constants (Int/Float 16, Str 24+len, Pair 16+k+v,
//! Vector 24+8·len, List 24+Σ) so virtual-byte accounting is identical
//! in either representation.
//!
//! Kernels ([`MapKernel`], [`PredKernel`], [`AggKernel`]) are small
//! declarative expression trees with *two* evaluators: a per-record one
//! (the row closures the engine context generates from them) and a
//! batch one operating on columns. Because the row closure is derived
//! from the same tree, the two paths agree by construction; the batch
//! evaluator additionally shape-checks its input and returns `None`
//! whenever the data does not fit the typed layout, at which point the
//! executor transparently falls back to the per-record path. All shape
//! checks are pure functions of the data, so the chosen path never
//! depends on `host_threads` or wave timing.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::value::{
    stable_hash_float, stable_hash_int, stable_hash_str, stable_hash_str_pair, Value,
};

/// One typed column vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// 64-bit integers (`Value::Int`).
    Int(Vec<i64>),
    /// 64-bit floats (`Value::Float`).
    Float(Vec<f64>),
    /// Immutable strings (`Value::Str`), refcount-shared with the rows
    /// they were encoded from.
    Str(Vec<Arc<str>>),
    /// Composite `(Str, Str)` pair keys (TPC-H group-by keys).
    StrPair(Vec<(Arc<str>, Arc<str>)>),
    /// Dense numeric vectors (`Value::Vector`), refcount-shared.
    Vector(Vec<Arc<Vec<f64>>>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Str(v) => v.len(),
            Column::StrPair(v) => v.len(),
            Column::Vector(v) => v.len(),
        }
    }

    /// `true` when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// An empty column of the same type as `v`, or `None` for types
    /// without a columnar layout.
    fn for_value(v: &Value, cap: usize) -> Option<Column> {
        Some(match v {
            Value::Int(_) => Column::Int(Vec::with_capacity(cap)),
            Value::Float(_) => Column::Float(Vec::with_capacity(cap)),
            Value::Str(_) => Column::Str(Vec::with_capacity(cap)),
            Value::Vector(_) => Column::Vector(Vec::with_capacity(cap)),
            Value::Pair(p) => match (p.key(), p.val()) {
                (Value::Str(_), Value::Str(_)) => Column::StrPair(Vec::with_capacity(cap)),
                _ => return None,
            },
            _ => return None,
        })
    }

    /// Appends `v` if its type matches the column; `false` on mismatch.
    fn push_from(&mut self, v: &Value) -> bool {
        match (self, v) {
            (Column::Int(c), Value::Int(i)) => c.push(*i),
            (Column::Float(c), Value::Float(f)) => c.push(*f),
            (Column::Str(c), Value::Str(s)) => c.push(Arc::clone(s)),
            (Column::Vector(c), Value::Vector(x)) => c.push(Arc::clone(x)),
            (Column::StrPair(c), Value::Pair(p)) => match (p.key(), p.val()) {
                (Value::Str(k), Value::Str(val)) => c.push((Arc::clone(k), Arc::clone(val))),
                _ => return false,
            },
            _ => return false,
        }
        true
    }

    /// Reconstructs the `Value` at row `i`.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::Int(c) => Value::Int(c[i]),
            Column::Float(c) => Value::Float(c[i]),
            Column::Str(c) => Value::Str(Arc::clone(&c[i])),
            Column::StrPair(c) => Value::pair(
                Value::Str(Arc::clone(&c[i].0)),
                Value::Str(Arc::clone(&c[i].1)),
            ),
            Column::Vector(c) => Value::Vector(Arc::clone(&c[i])),
        }
    }

    /// Virtual size of the `Value` at row `i` (the exact
    /// [`Value::size_bytes`] constants).
    pub fn size_at(&self, i: usize) -> u64 {
        match self {
            Column::Int(_) | Column::Float(_) => 16,
            Column::Str(c) => 24 + c[i].len() as u64,
            Column::StrPair(c) => 16 + (24 + c[i].0.len() as u64) + (24 + c[i].1.len() as u64),
            Column::Vector(c) => 24 + 8 * c[i].len() as u64,
        }
    }

    /// Σ of the per-row virtual sizes.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            Column::Int(c) => 16 * c.len() as u64,
            Column::Float(c) => 16 * c.len() as u64,
            Column::Str(c) => c.iter().map(|s| 24 + s.len() as u64).sum(),
            Column::StrPair(c) => c
                .iter()
                .map(|(k, v)| 16 + (24 + k.len() as u64) + (24 + v.len() as u64))
                .sum(),
            Column::Vector(c) => c.iter().map(|v| 24 + 8 * v.len() as u64).sum(),
        }
    }

    /// Selects the rows at `idx`, in order.
    pub fn gather(&self, idx: &[u32]) -> Column {
        match self {
            Column::Int(c) => Column::Int(idx.iter().map(|&i| c[i as usize]).collect()),
            Column::Float(c) => Column::Float(idx.iter().map(|&i| c[i as usize]).collect()),
            Column::Str(c) => {
                Column::Str(idx.iter().map(|&i| Arc::clone(&c[i as usize])).collect())
            }
            Column::StrPair(c) => Column::StrPair(
                idx.iter()
                    .map(|&i| {
                        let (k, v) = &c[i as usize];
                        (Arc::clone(k), Arc::clone(v))
                    })
                    .collect(),
            ),
            Column::Vector(c) => {
                Column::Vector(idx.iter().map(|&i| Arc::clone(&c[i as usize])).collect())
            }
        }
    }

    /// Stable-hash of the row at `i`, byte-identical to
    /// `stable_hash(&self.value_at(i))`; `None` for column types without
    /// a typed hash path.
    pub(crate) fn hash_at(&self, i: usize) -> Option<u64> {
        Some(match self {
            Column::Int(c) => stable_hash_int(c[i]),
            Column::Float(c) => stable_hash_float(c[i]),
            Column::Str(c) => stable_hash_str(&c[i]),
            Column::StrPair(c) => stable_hash_str_pair(&c[i].0, &c[i].1),
            Column::Vector(_) => return None,
        })
    }
}

/// A columnar partition: the same record sequence as a flat
/// `Vec<Value>`, stored as typed columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnBatch {
    /// Scalar records — each row is one typed value.
    Scalar(Column),
    /// `Value::List` rows of a fixed scalar schema (struct-of-arrays).
    Rows(Vec<Column>),
    /// `Value::Pair` rows — a key column plus a payload batch.
    Pair {
        /// The key column.
        key: Column,
        /// The per-row payloads.
        val: Box<ColumnBatch>,
    },
}

/// Incremental typed encoder behind [`ColumnBatch::from_rows`].
enum Builder {
    Scalar(Column),
    Rows(Vec<Column>),
    Pair { key: Column, val: Box<Builder> },
}

impl Builder {
    /// An empty builder shaped like `v`, or `None` when `v` has no
    /// columnar layout.
    fn for_value(v: &Value, cap: usize) -> Option<Builder> {
        match v {
            Value::List(items) => {
                if items.is_empty() {
                    return None;
                }
                let cols = items
                    .iter()
                    .map(|it| match it {
                        // Nested pairs/lists inside a row stay on the
                        // record path.
                        Value::Pair(_) | Value::List(_) => None,
                        _ => Column::for_value(it, cap),
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(Builder::Rows(cols))
            }
            Value::Pair(p) => {
                // A `(Str, Str)` key encodes as a StrPair *scalar*
                // column only when it is the key of an outer pair; a
                // bare `(Str, Str)` record is also fine as Scalar.
                let key = Column::for_value(p.key(), cap)?;
                let val = Builder::for_value(p.val(), cap).map(Box::new);
                match val {
                    Some(val) => Some(Builder::Pair { key, val }),
                    // Pair of two strings with no deeper structure can
                    // still encode as a scalar StrPair column.
                    None => Column::for_value(v, cap).map(Builder::Scalar),
                }
            }
            _ => Column::for_value(v, cap).map(Builder::Scalar),
        }
    }

    fn push(&mut self, v: &Value) -> bool {
        match (self, v) {
            (Builder::Scalar(c), v) => c.push_from(v),
            (Builder::Rows(cols), Value::List(items)) => {
                if items.len() != cols.len() {
                    return false;
                }
                for (c, it) in cols.iter_mut().zip(items.iter()) {
                    if !c.push_from(it) {
                        return false;
                    }
                }
                true
            }
            (Builder::Pair { key, val }, Value::Pair(p)) => {
                key.push_from(p.key()) && val.push(p.val())
            }
            _ => false,
        }
    }

    fn finish(self) -> ColumnBatch {
        match self {
            Builder::Scalar(c) => ColumnBatch::Scalar(c),
            Builder::Rows(cols) => ColumnBatch::Rows(cols),
            Builder::Pair { key, val } => ColumnBatch::Pair {
                key,
                val: Box::new(val.finish()),
            },
        }
    }
}

impl ColumnBatch {
    /// Encodes a record sequence into typed columns, or `None` when the
    /// records are heterogeneous or use types without a columnar layout
    /// (the deterministic row-path fallback). Empty partitions stay on
    /// the row path — there is nothing to vectorize.
    pub fn from_rows(rows: &[Value]) -> Option<ColumnBatch> {
        let first = rows.first()?;
        let mut b = Builder::for_value(first, rows.len())?;
        for v in rows {
            if !b.push(v) {
                return None;
            }
        }
        Some(b.finish())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        match self {
            ColumnBatch::Scalar(c) => c.len(),
            ColumnBatch::Rows(cols) => cols.first().map_or(0, Column::len),
            ColumnBatch::Pair { key, .. } => key.len(),
        }
    }

    /// `true` when the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reconstructs the `Value` at row `i`.
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            ColumnBatch::Scalar(c) => c.value_at(i),
            ColumnBatch::Rows(cols) => Value::list(cols.iter().map(|c| c.value_at(i)).collect()),
            ColumnBatch::Pair { key, val } => Value::pair(key.value_at(i), val.value_at(i)),
        }
    }

    /// Virtual size of the record at row `i` (exact [`Value::size_bytes`]
    /// formula: List rows are `24 + Σ fields`, pairs `16 + k + v`).
    pub fn size_at(&self, i: usize) -> u64 {
        match self {
            ColumnBatch::Scalar(c) => c.size_at(i),
            ColumnBatch::Rows(cols) => 24 + cols.iter().map(|c| c.size_at(i)).sum::<u64>(),
            ColumnBatch::Pair { key, val } => 16 + key.size_at(i) + val.size_at(i),
        }
    }

    /// Σ of per-record virtual sizes — identical to
    /// `rows.iter().map(Value::size_bytes).sum()` on the decoded rows.
    pub fn payload_bytes(&self) -> u64 {
        match self {
            ColumnBatch::Scalar(c) => c.payload_bytes(),
            ColumnBatch::Rows(cols) => {
                24 * self.len() as u64 + cols.iter().map(Column::payload_bytes).sum::<u64>()
            }
            ColumnBatch::Pair { key, val } => {
                16 * self.len() as u64 + key.payload_bytes() + val.payload_bytes()
            }
        }
    }

    /// Decodes back to the original record sequence, order preserved.
    pub fn to_rows(&self) -> Vec<Value> {
        let n = self.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(self.value_at(i));
        }
        out
    }

    /// Selects the records at `idx`, in order.
    pub fn gather(&self, idx: &[u32]) -> ColumnBatch {
        match self {
            ColumnBatch::Scalar(c) => ColumnBatch::Scalar(c.gather(idx)),
            ColumnBatch::Rows(cols) => {
                ColumnBatch::Rows(cols.iter().map(|c| c.gather(idx)).collect())
            }
            ColumnBatch::Pair { key, val } => ColumnBatch::Pair {
                key: key.gather(idx),
                val: Box::new(val.gather(idx)),
            },
        }
    }

    /// Stable-hash of record `i`'s *shuffle routing key*, byte-identical
    /// to `stable_hash(v.key().unwrap_or(v))` on the decoded record:
    /// pair records hash their key, any other record hashes itself.
    /// `None` when the key has no typed hash path (the caller falls back
    /// to row partitioning).
    pub(crate) fn route_hash_at(&self, i: usize) -> Option<u64> {
        match self {
            // A StrPair scalar column decodes to pair records, whose
            // routing key is the key *half*, not the whole pair.
            ColumnBatch::Scalar(Column::StrPair(c)) => Some(stable_hash_str(&c[i].0)),
            ColumnBatch::Scalar(c) => c.hash_at(i),
            ColumnBatch::Pair { key, .. } => key.hash_at(i),
            ColumnBatch::Rows(_) => None,
        }
    }
}

// ---------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------

/// A numeric scalar expression over one record, producing an `f64`.
#[derive(Debug, Clone)]
pub enum NumExpr {
    /// The record itself (scalar batches) or the value half of a pair,
    /// widened to `f64`.
    Input,
    /// Field `i` of a list row, widened to `f64`.
    Field(usize),
    /// A constant.
    Lit(f64),
    /// Sum of two subexpressions.
    Add(Box<NumExpr>, Box<NumExpr>),
    /// Difference of two subexpressions.
    Sub(Box<NumExpr>, Box<NumExpr>),
    /// Product of two subexpressions.
    Mul(Box<NumExpr>, Box<NumExpr>),
}

impl NumExpr {
    /// Per-record evaluation (the row-path reference semantics).
    pub fn eval_value(&self, v: &Value) -> f64 {
        match self {
            NumExpr::Input => match v {
                Value::Pair(p) => p.val().as_f64().unwrap_or(0.0),
                other => other.as_f64().unwrap_or(0.0),
            },
            NumExpr::Field(i) => v
                .as_list()
                .and_then(|l| l.get(*i))
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            NumExpr::Lit(c) => *c,
            NumExpr::Add(a, b) => a.eval_value(v) + b.eval_value(v),
            NumExpr::Sub(a, b) => a.eval_value(v) - b.eval_value(v),
            NumExpr::Mul(a, b) => a.eval_value(v) * b.eval_value(v),
        }
    }

    /// Batch evaluation; `None` when the batch shape does not carry the
    /// referenced input (the caller falls back to the record path).
    fn eval_batch(&self, batch: &ColumnBatch) -> Option<Vec<f64>> {
        fn widen(col: &Column) -> Option<Vec<f64>> {
            match col {
                Column::Int(c) => Some(c.iter().map(|&i| i as f64).collect()),
                Column::Float(c) => Some(c.clone()),
                _ => None,
            }
        }
        match self {
            NumExpr::Input => match batch {
                ColumnBatch::Scalar(c) => widen(c),
                ColumnBatch::Pair { val, .. } => match val.as_ref() {
                    ColumnBatch::Scalar(c) => widen(c),
                    _ => None,
                },
                ColumnBatch::Rows(_) => None,
            },
            NumExpr::Field(i) => match batch {
                ColumnBatch::Rows(cols) => widen(cols.get(*i)?),
                _ => None,
            },
            NumExpr::Lit(c) => Some(vec![*c; batch.len()]),
            NumExpr::Add(a, b) => {
                let (mut x, y) = (a.eval_batch(batch)?, b.eval_batch(batch)?);
                for (xi, yi) in x.iter_mut().zip(&y) {
                    *xi += yi;
                }
                Some(x)
            }
            NumExpr::Sub(a, b) => {
                let (mut x, y) = (a.eval_batch(batch)?, b.eval_batch(batch)?);
                for (xi, yi) in x.iter_mut().zip(&y) {
                    *xi -= yi;
                }
                Some(x)
            }
            NumExpr::Mul(a, b) => {
                let (mut x, y) = (a.eval_batch(batch)?, b.eval_batch(batch)?);
                for (xi, yi) in x.iter_mut().zip(&y) {
                    *xi *= yi;
                }
                Some(x)
            }
        }
    }
}

/// A filter predicate over list-row fields.
#[derive(Debug, Clone)]
pub enum PredKernel {
    /// `field ≤ max` on an Int field.
    IntLe {
        /// List-row field index.
        field: usize,
        /// Inclusive upper bound.
        max: i64,
    },
    /// `field > min` on an Int field.
    IntGt {
        /// List-row field index.
        field: usize,
        /// Exclusive lower bound.
        min: i64,
    },
    /// `lo ≤ field < hi` (half-open) on an Int field.
    IntInRange {
        /// List-row field index.
        field: usize,
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
    },
    /// `field < max` on a numeric field (Int widened).
    FloatLt {
        /// List-row field index.
        field: usize,
        /// Exclusive upper bound.
        max: f64,
    },
    /// `lo ≤ field ≤ hi` (inclusive) on a numeric field.
    FloatInRangeIncl {
        /// List-row field index.
        field: usize,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// `field == expect` on a Str field.
    StrEq {
        /// List-row field index.
        field: usize,
        /// The string to match.
        expect: Arc<str>,
    },
    /// Conjunction of predicates.
    And(Vec<PredKernel>),
}

impl PredKernel {
    /// Per-record evaluation (the row-path reference semantics): rows
    /// missing the field or carrying the wrong type fail the predicate.
    pub fn eval_value(&self, v: &Value) -> bool {
        let field = |i: usize| v.as_list().and_then(|l| l.get(i));
        match self {
            PredKernel::IntLe { field: f, max } => {
                field(*f).and_then(Value::as_i64).is_some_and(|x| x <= *max)
            }
            PredKernel::IntGt { field: f, min } => {
                field(*f).and_then(Value::as_i64).is_some_and(|x| x > *min)
            }
            PredKernel::IntInRange { field: f, lo, hi } => field(*f)
                .and_then(Value::as_i64)
                .is_some_and(|x| *lo <= x && x < *hi),
            PredKernel::FloatLt { field: f, max } => {
                field(*f).and_then(Value::as_f64).is_some_and(|x| x < *max)
            }
            PredKernel::FloatInRangeIncl { field: f, lo, hi } => field(*f)
                .and_then(Value::as_f64)
                .is_some_and(|x| *lo <= x && x <= *hi),
            PredKernel::StrEq { field: f, expect } => field(*f)
                .and_then(Value::as_str)
                .is_some_and(|s| s == &**expect),
            PredKernel::And(ps) => ps.iter().all(|p| p.eval_value(v)),
        }
    }

    /// Batch evaluation to a selection mask; `None` when a referenced
    /// field is missing or the wrong column type.
    fn eval_mask(&self, batch: &ColumnBatch) -> Option<Vec<bool>> {
        let cols = match batch {
            ColumnBatch::Rows(cols) => cols,
            _ => return None,
        };
        match self {
            PredKernel::IntLe { field, max } => match cols.get(*field)? {
                Column::Int(c) => Some(c.iter().map(|&x| x <= *max).collect()),
                _ => None,
            },
            PredKernel::IntGt { field, min } => match cols.get(*field)? {
                Column::Int(c) => Some(c.iter().map(|&x| x > *min).collect()),
                _ => None,
            },
            PredKernel::IntInRange { field, lo, hi } => match cols.get(*field)? {
                Column::Int(c) => Some(c.iter().map(|&x| *lo <= x && x < *hi).collect()),
                _ => None,
            },
            PredKernel::FloatLt { field, max } => match cols.get(*field)? {
                Column::Float(c) => Some(c.iter().map(|&x| x < *max).collect()),
                Column::Int(c) => Some(c.iter().map(|&x| (x as f64) < *max).collect()),
                _ => None,
            },
            PredKernel::FloatInRangeIncl { field, lo, hi } => match cols.get(*field)? {
                Column::Float(c) => Some(c.iter().map(|&x| *lo <= x && x <= *hi).collect()),
                Column::Int(c) => Some(
                    c.iter()
                        .map(|&x| *lo <= (x as f64) && (x as f64) <= *hi)
                        .collect(),
                ),
                _ => None,
            },
            PredKernel::StrEq { field, expect } => match cols.get(*field)? {
                Column::Str(c) => Some(c.iter().map(|s| **s == **expect).collect()),
                _ => None,
            },
            PredKernel::And(ps) => {
                let mut mask: Option<Vec<bool>> = None;
                for p in ps {
                    let m = p.eval_mask(batch)?;
                    match &mut mask {
                        None => mask = Some(m),
                        Some(acc) => {
                            for (a, b) in acc.iter_mut().zip(&m) {
                                *a = *a && *b;
                            }
                        }
                    }
                }
                mask.or_else(|| Some(vec![true; batch.len()]))
            }
        }
    }

    /// Applies the predicate to a batch: mask then gather. `None` falls
    /// back to the record path.
    pub(crate) fn filter_batch(&self, batch: &ColumnBatch) -> Option<ColumnBatch> {
        let mask = self.eval_mask(batch)?;
        let mut idx = Vec::with_capacity(batch.len());
        for (i, keep) in mask.iter().enumerate() {
            if *keep {
                idx.push(i as u32);
            }
        }
        Some(batch.gather(&idx))
    }
}

/// A scalar output expression for map kernels.
#[derive(Debug, Clone)]
pub enum ScalarExpr {
    /// Copy field `i` of a list row verbatim.
    Field(usize),
    /// Copy the input record verbatim.
    Input,
    /// A numeric expression, producing a `Float`.
    Num(NumExpr),
    /// A constant `Int`.
    IntLit(i64),
}

impl ScalarExpr {
    /// Per-record evaluation (the row-path reference semantics).
    pub fn eval_value(&self, v: &Value) -> Value {
        match self {
            ScalarExpr::Field(i) => v
                .as_list()
                .and_then(|l| l.get(*i))
                .cloned()
                .unwrap_or(Value::Null),
            ScalarExpr::Input => v.clone(),
            ScalarExpr::Num(e) => Value::Float(e.eval_value(v)),
            ScalarExpr::IntLit(c) => Value::Int(*c),
        }
    }

    fn eval_batch(&self, batch: &ColumnBatch) -> Option<Column> {
        match self {
            ScalarExpr::Field(i) => match batch {
                ColumnBatch::Rows(cols) => cols.get(*i).cloned(),
                _ => None,
            },
            ScalarExpr::Input => match batch {
                ColumnBatch::Scalar(c) => Some(c.clone()),
                _ => None,
            },
            ScalarExpr::Num(e) => Some(Column::Float(e.eval_batch(batch)?)),
            ScalarExpr::IntLit(c) => Some(Column::Int(vec![*c; batch.len()])),
        }
    }
}

/// A key expression for pair-producing map kernels.
#[derive(Debug, Clone)]
pub enum KeyExpr {
    /// Field `i` of a list row.
    Field(usize),
    /// The input pair's key.
    PairKey,
    /// A composite `(field_i, field_j)` string-pair key.
    PairOfFields(usize, usize),
}

impl KeyExpr {
    /// Per-record evaluation (the row-path reference semantics).
    pub fn eval_value(&self, v: &Value) -> Value {
        match self {
            KeyExpr::Field(i) => v
                .as_list()
                .and_then(|l| l.get(*i))
                .cloned()
                .unwrap_or(Value::Null),
            KeyExpr::PairKey => v.key().cloned().unwrap_or(Value::Null),
            KeyExpr::PairOfFields(i, j) => {
                let get = |k: usize| {
                    v.as_list()
                        .and_then(|l| l.get(k))
                        .cloned()
                        .unwrap_or(Value::Null)
                };
                Value::pair(get(*i), get(*j))
            }
        }
    }

    fn eval_batch(&self, batch: &ColumnBatch) -> Option<Column> {
        match self {
            KeyExpr::Field(i) => match batch {
                ColumnBatch::Rows(cols) => cols.get(*i).cloned(),
                _ => None,
            },
            KeyExpr::PairKey => match batch {
                ColumnBatch::Pair { key, .. } => Some(key.clone()),
                _ => None,
            },
            KeyExpr::PairOfFields(i, j) => match batch {
                ColumnBatch::Rows(cols) => match (cols.get(*i)?, cols.get(*j)?) {
                    (Column::Str(a), Column::Str(b)) => Some(Column::StrPair(
                        a.iter()
                            .zip(b.iter())
                            .map(|(x, y)| (Arc::clone(x), Arc::clone(y)))
                            .collect(),
                    )),
                    _ => None,
                },
                _ => None,
            },
        }
    }
}

/// The payload half of a pair-producing map kernel.
#[derive(Debug, Clone)]
pub enum PayloadExpr {
    /// A single scalar payload.
    Scalar(ScalarExpr),
    /// A `Value::List` payload with one expression per item.
    List(Vec<ScalarExpr>),
}

impl PayloadExpr {
    /// Per-record evaluation (the row-path reference semantics).
    pub fn eval_value(&self, v: &Value) -> Value {
        match self {
            PayloadExpr::Scalar(e) => e.eval_value(v),
            PayloadExpr::List(es) => Value::list(es.iter().map(|e| e.eval_value(v)).collect()),
        }
    }

    fn eval_batch(&self, batch: &ColumnBatch) -> Option<ColumnBatch> {
        match self {
            PayloadExpr::Scalar(e) => Some(ColumnBatch::Scalar(e.eval_batch(batch)?)),
            PayloadExpr::List(es) => Some(ColumnBatch::Rows(
                es.iter()
                    .map(|e| e.eval_batch(batch))
                    .collect::<Option<Vec<_>>>()?,
            )),
        }
    }
}

/// A declarative map transformation with a vectorized evaluator.
#[derive(Debug, Clone)]
pub enum MapKernel {
    /// Record → scalar record.
    Scalar(ScalarExpr),
    /// Record → `(key, payload)` pair.
    Pair {
        /// Key expression.
        key: KeyExpr,
        /// Payload expression.
        val: PayloadExpr,
    },
    /// KMeans assignment: `Vector` point → `(nearest-center id,
    /// [point, 1])`; non-vector records are skipped (filter_map
    /// semantics, usable only through `map_partitions_kernel`).
    NearestCenter {
        /// The current centroids.
        centers: Arc<Vec<Vec<f64>>>,
    },
}

/// Squared-distance argmin over `centers` (strict `<`, first wins) —
/// the exact comparison order of the original KMeans closure.
fn nearest_center(centers: &[Vec<f64>], p: &[f64]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centers.iter().enumerate() {
        let d: f64 = c.iter().zip(p).map(|(a, b)| (a - b) * (a - b)).sum();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

impl MapKernel {
    /// Per-record evaluation; `None` skips the record (only
    /// [`MapKernel::NearestCenter`] skips).
    pub fn eval_value(&self, v: &Value) -> Option<Value> {
        match self {
            MapKernel::Scalar(e) => Some(e.eval_value(v)),
            MapKernel::Pair { key, val } => Some(Value::pair(key.eval_value(v), val.eval_value(v))),
            MapKernel::NearestCenter { centers } => {
                let p = v.as_vector()?;
                let c = nearest_center(centers, p);
                Some(Value::pair(
                    Value::Int(c as i64),
                    Value::list(vec![v.clone(), Value::Int(1)]),
                ))
            }
        }
    }

    /// Batch evaluation; `None` falls back to the record path.
    pub(crate) fn eval_batch(&self, batch: &ColumnBatch) -> Option<ColumnBatch> {
        match self {
            MapKernel::Scalar(e) => Some(ColumnBatch::Scalar(e.eval_batch(batch)?)),
            MapKernel::Pair { key, val } => Some(ColumnBatch::Pair {
                key: key.eval_batch(batch)?,
                val: Box::new(val.eval_batch(batch)?),
            }),
            MapKernel::NearestCenter { centers } => match batch {
                ColumnBatch::Scalar(Column::Vector(points)) => {
                    let mut keys = Vec::with_capacity(points.len());
                    for p in points {
                        keys.push(nearest_center(centers, p) as i64);
                    }
                    Some(ColumnBatch::Pair {
                        key: Column::Int(keys),
                        val: Box::new(ColumnBatch::Rows(vec![
                            Column::Vector(points.clone()),
                            Column::Int(vec![1; points.len()]),
                        ])),
                    })
                }
                _ => None,
            },
        }
    }
}

/// Which scalar type an aggregated list slot holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggField {
    /// An `f64` running sum.
    Float,
    /// An `i64` running sum.
    Int,
}

/// A declarative combine function for `reduce_by_key` with a typed
/// accumulation path.
#[derive(Debug, Clone)]
pub enum AggKernel {
    /// `Float + Float` scalar sum.
    SumFloat,
    /// Elementwise sum over a `Value::List` payload of scalars
    /// (TPC-H Q1's running aggregates).
    SumRow(Vec<AggField>),
    /// `[vector elementwise sum (zip-truncating), Int count sum]` —
    /// KMeans' per-cluster accumulator.
    VecSumCount,
}

/// One typed accumulator slot used by [`AggKernel`]'s batch path.
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Float(f64),
    Row(Vec<AggCell>),
    VecCount(Vec<f64>, i64),
}

/// A single typed cell of a [`AggState::Row`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum AggCell {
    F(f64),
    I(i64),
}

impl AggKernel {
    /// Per-record combine (the row-path reference semantics): `a` is
    /// the accumulator, `b` the newly-arrived value, matching the
    /// engine's `combine(acc, new)` call order.
    pub fn combine_values(&self, a: &Value, b: &Value) -> Value {
        match self {
            AggKernel::SumFloat => {
                Value::Float(a.as_f64().unwrap_or(0.0) + b.as_f64().unwrap_or(0.0))
            }
            AggKernel::SumRow(fields) => {
                let empty: &[Value] = &[];
                let av = a.as_list().unwrap_or(empty);
                let bv = b.as_list().unwrap_or(empty);
                let cell = |i: usize, l: &[Value]| l.get(i).cloned().unwrap_or(Value::Null);
                Value::list(
                    fields
                        .iter()
                        .enumerate()
                        .map(|(i, f)| match f {
                            AggField::Float => Value::Float(
                                cell(i, av).as_f64().unwrap_or(0.0)
                                    + cell(i, bv).as_f64().unwrap_or(0.0),
                            ),
                            AggField::Int => Value::Int(
                                cell(i, av).as_i64().unwrap_or(0)
                                    + cell(i, bv).as_i64().unwrap_or(0),
                            ),
                        })
                        .collect(),
                )
            }
            AggKernel::VecSumCount => {
                let empty: &[Value] = &[];
                let av = a.as_list().unwrap_or(empty);
                let bv = b.as_list().unwrap_or(empty);
                let none: &[f64] = &[];
                let sa = av.first().and_then(Value::as_vector).unwrap_or(none);
                let sb = bv.first().and_then(Value::as_vector).unwrap_or(none);
                let sum: Vec<f64> = sa.iter().zip(sb).map(|(x, y)| x + y).collect();
                let n = av.get(1).and_then(Value::as_i64).unwrap_or(0)
                    + bv.get(1).and_then(Value::as_i64).unwrap_or(0);
                Value::list(vec![Value::vector(sum), Value::Int(n)])
            }
        }
    }

    /// `true` when `val` has the typed payload layout this kernel
    /// accumulates without decoding.
    fn accepts(&self, val: &ColumnBatch) -> bool {
        match (self, val) {
            (AggKernel::SumFloat, ColumnBatch::Scalar(Column::Float(_))) => true,
            (AggKernel::SumRow(fields), ColumnBatch::Rows(cols)) => {
                cols.len() == fields.len()
                    && fields.iter().zip(cols).all(|(f, c)| {
                        matches!(
                            (f, c),
                            (AggField::Float, Column::Float(_)) | (AggField::Int, Column::Int(_))
                        )
                    })
            }
            (AggKernel::VecSumCount, ColumnBatch::Rows(cols)) => {
                matches!(cols.as_slice(), [Column::Vector(_), Column::Int(_)])
            }
            _ => false,
        }
    }

    /// Initializes an accumulator from row `i` of `val` — the typed
    /// equivalent of the row path's "first value is inserted verbatim".
    fn init(&self, val: &ColumnBatch, i: usize) -> AggState {
        match (self, val) {
            (AggKernel::SumFloat, ColumnBatch::Scalar(Column::Float(c))) => AggState::Float(c[i]),
            (AggKernel::SumRow(_), ColumnBatch::Rows(cols)) => AggState::Row(
                cols.iter()
                    .map(|c| match c {
                        Column::Float(v) => AggCell::F(v[i]),
                        Column::Int(v) => AggCell::I(v[i]),
                        _ => unreachable!("accepts() checked the layout"),
                    })
                    .collect(),
            ),
            (AggKernel::VecSumCount, ColumnBatch::Rows(cols)) => match cols.as_slice() {
                [Column::Vector(v), Column::Int(n)] => AggState::VecCount(v[i].to_vec(), n[i]),
                _ => unreachable!("accepts() checked the layout"),
            },
            _ => unreachable!("accepts() checked the layout"),
        }
    }

    /// Folds row `i` of `val` into `acc` — the typed equivalent of
    /// `combine(acc, new)`, byte-identical per field (same f64 operation
    /// order, same zip-truncation).
    fn fold(&self, acc: &mut AggState, val: &ColumnBatch, i: usize) {
        match (self, acc, val) {
            (AggKernel::SumFloat, AggState::Float(a), ColumnBatch::Scalar(Column::Float(c))) => {
                *a += c[i];
            }
            (AggKernel::SumRow(_), AggState::Row(cells), ColumnBatch::Rows(cols)) => {
                for (cell, col) in cells.iter_mut().zip(cols) {
                    match (cell, col) {
                        (AggCell::F(a), Column::Float(v)) => *a += v[i],
                        (AggCell::I(a), Column::Int(v)) => *a += v[i],
                        _ => unreachable!("accepts() checked the layout"),
                    }
                }
            }
            (AggKernel::VecSumCount, AggState::VecCount(a, n), ColumnBatch::Rows(cols)) => {
                match cols.as_slice() {
                    [Column::Vector(v), Column::Int(cnt)] => {
                        // zip truncates to the shorter side, exactly like
                        // the row combine's `sa.iter().zip(sb)`.
                        let sum: Vec<f64> = a.iter().zip(v[i].iter()).map(|(x, y)| x + y).collect();
                        *a = sum;
                        *n += cnt[i];
                    }
                    _ => unreachable!("accepts() checked the layout"),
                }
            }
            _ => unreachable!("accepts() checked the layout"),
        }
    }

    /// Re-encodes accumulators (already in key order) into the columnar
    /// payload shape the kernel accepts.
    fn emit_columns(&self, states: Vec<AggState>) -> ColumnBatch {
        match self {
            AggKernel::SumFloat => ColumnBatch::Scalar(Column::Float(
                states
                    .into_iter()
                    .map(|s| match s {
                        AggState::Float(f) => f,
                        _ => unreachable!("states come from this kernel"),
                    })
                    .collect(),
            )),
            AggKernel::SumRow(fields) => {
                let mut cols: Vec<Column> = fields
                    .iter()
                    .map(|f| match f {
                        AggField::Float => Column::Float(Vec::with_capacity(states.len())),
                        AggField::Int => Column::Int(Vec::with_capacity(states.len())),
                    })
                    .collect();
                for s in states {
                    let AggState::Row(cells) = s else {
                        unreachable!("states come from this kernel")
                    };
                    for (col, cell) in cols.iter_mut().zip(cells) {
                        match (col, cell) {
                            (Column::Float(v), AggCell::F(f)) => v.push(f),
                            (Column::Int(v), AggCell::I(i)) => v.push(i),
                            _ => unreachable!("field kinds are fixed"),
                        }
                    }
                }
                ColumnBatch::Rows(cols)
            }
            AggKernel::VecSumCount => {
                let mut vecs = Vec::with_capacity(states.len());
                let mut counts = Vec::with_capacity(states.len());
                for s in states {
                    let AggState::VecCount(v, n) = s else {
                        unreachable!("states come from this kernel")
                    };
                    vecs.push(Arc::new(v));
                    counts.push(n);
                }
                ColumnBatch::Rows(vec![Column::Vector(vecs), Column::Int(counts)])
            }
        }
    }
}

/// An `f64` ordered by IEEE total order — the typed twin of
/// `Value::Float`'s `Ord`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TotalF64(pub f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Aggregates `(key, payload)` batches with a typed `BTreeMap`,
/// visiting chunks and rows in order (so per-key accumulation order —
/// and therefore float rounding — matches the row path exactly), and
/// returns the combined pairs as a columnar batch sorted by key.
///
/// `None` when the chunks disagree on key type or payload shape — the
/// caller decodes and takes the record path. The sorted emit order is
/// identical to a `BTreeMap<Value, Value>` walk because each typed key
/// order (`i64`, total-order `f64`, `str`, `(str, str)`) matches
/// `Value`'s `Ord` for homogeneous keys.
pub(crate) fn typed_agg(
    kernel: &AggKernel,
    chunks: &[(&Column, &ColumnBatch)],
) -> Option<ColumnBatch> {
    fn run<K: Ord + Clone>(
        kernel: &AggKernel,
        chunks: &[(&Column, &ColumnBatch)],
        key_at: impl Fn(&Column, usize) -> K,
        key_col: impl Fn(Vec<K>) -> Column,
    ) -> ColumnBatch {
        let mut acc: BTreeMap<K, AggState> = BTreeMap::new();
        for (keys, vals) in chunks {
            for i in 0..keys.len() {
                let k = key_at(keys, i);
                match acc.get_mut(&k) {
                    Some(st) => kernel.fold(st, vals, i),
                    None => {
                        acc.insert(k, kernel.init(vals, i));
                    }
                }
            }
        }
        let mut keys = Vec::with_capacity(acc.len());
        let mut states = Vec::with_capacity(acc.len());
        for (k, st) in acc {
            keys.push(k);
            states.push(st);
        }
        ColumnBatch::Pair {
            key: key_col(keys),
            val: Box::new(kernel.emit_columns(states)),
        }
    }

    let first_key = chunks.first()?.0;
    for (keys, vals) in chunks {
        if !kernel.accepts(vals) || keys.len() != vals.len() {
            return None;
        }
        if std::mem::discriminant(*keys) != std::mem::discriminant(first_key) {
            return None;
        }
    }
    Some(match first_key {
        Column::Int(_) => run(
            kernel,
            chunks,
            |c, i| match c {
                Column::Int(v) => v[i],
                _ => unreachable!("homogeneous key type checked"),
            },
            Column::Int,
        ),
        Column::Float(_) => run(
            kernel,
            chunks,
            |c, i| match c {
                Column::Float(v) => TotalF64(v[i]),
                _ => unreachable!("homogeneous key type checked"),
            },
            |ks| Column::Float(ks.into_iter().map(|k| k.0).collect()),
        ),
        Column::Str(_) => run(
            kernel,
            chunks,
            |c, i| match c {
                Column::Str(v) => Arc::clone(&v[i]),
                _ => unreachable!("homogeneous key type checked"),
            },
            Column::Str,
        ),
        Column::StrPair(_) => run(
            kernel,
            chunks,
            |c, i| match c {
                Column::StrPair(v) => (Arc::clone(&v[i].0), Arc::clone(&v[i].1)),
                _ => unreachable!("homogeneous key type checked"),
            },
            Column::StrPair,
        ),
        Column::Vector(_) => return None,
    })
}

/// Typed-key grouping for `group_by_key`'s reduce side: collects pair
/// payloads under a typed `BTreeMap`, visiting chunks and rows in order
/// (so per-key value order matches the row path's scan), and emits row
/// records `(k, List(values))` sorted by key — the same walk a
/// `BTreeMap<Value, Vec<Value>>` would produce for homogeneous keys.
///
/// `None` when the chunks disagree on key type or the key has no typed
/// order; the caller decodes and takes the record path. Callers must
/// pass only `ColumnBatch::Pair` key/payload splits (pair records are
/// the only ones the row path groups).
pub(crate) fn typed_group(chunks: &[(&Column, &ColumnBatch)]) -> Option<Vec<Value>> {
    fn run<K: Ord + Clone>(
        chunks: &[(&Column, &ColumnBatch)],
        key_at: impl Fn(&Column, usize) -> K,
        key_val: impl Fn(K) -> Value,
    ) -> Vec<Value> {
        let mut groups: BTreeMap<K, Vec<Value>> = BTreeMap::new();
        for (keys, vals) in chunks {
            for i in 0..keys.len() {
                groups
                    .entry(key_at(keys, i))
                    .or_default()
                    .push(vals.value_at(i));
            }
        }
        groups
            .into_iter()
            .map(|(k, vs)| Value::pair(key_val(k), Value::list(vs)))
            .collect()
    }

    let first_key = chunks.first()?.0;
    for (keys, vals) in chunks {
        if keys.len() != vals.len()
            || std::mem::discriminant(*keys) != std::mem::discriminant(first_key)
        {
            return None;
        }
    }
    Some(match first_key {
        Column::Int(_) => run(
            chunks,
            |c, i| match c {
                Column::Int(v) => v[i],
                _ => unreachable!("homogeneous key type checked"),
            },
            Value::Int,
        ),
        Column::Float(_) => run(
            chunks,
            |c, i| match c {
                Column::Float(v) => TotalF64(v[i]),
                _ => unreachable!("homogeneous key type checked"),
            },
            |k| Value::Float(k.0),
        ),
        Column::Str(_) => run(
            chunks,
            |c, i| match c {
                Column::Str(v) => Arc::clone(&v[i]),
                _ => unreachable!("homogeneous key type checked"),
            },
            Value::Str,
        ),
        Column::StrPair(_) => run(
            chunks,
            |c, i| match c {
                Column::StrPair(v) => (Arc::clone(&v[i].0), Arc::clone(&v[i].1)),
                _ => unreachable!("homogeneous key type checked"),
            },
            |(k, v)| Value::pair(Value::Str(k), Value::Str(v)),
        ),
        Column::Vector(_) => return None,
    })
}

/// Stable typed-key index sort for `sort_by_key`'s reduce side.
///
/// When every routing key (`v.key().unwrap_or(v)`) is the same scalar
/// type, sorts `rows` in place through a typed key vector — one
/// extraction pass, then comparisons on primitive keys instead of
/// `Value::cmp`'s per-call dispatch. The sort is stable and uses the
/// same per-type comparison as `Value`'s `Ord` (`i64` cmp, `f64`
/// total order, `str` cmp), so the result is byte-identical to the
/// row path's `sort_by` for homogeneous keys. Returns `false` (rows
/// untouched) when keys are mixed or non-scalar.
pub(crate) fn typed_sort_by_key(rows: &mut Vec<Value>, ascending: bool) -> bool {
    enum Keys {
        I(Vec<i64>),
        F(Vec<f64>),
        S(Vec<Arc<str>>),
    }
    let keys = {
        let mut it = rows.iter().map(|v| v.key().unwrap_or(v));
        match it.next() {
            None => return true, // empty: nothing to sort
            Some(Value::Int(first)) => {
                let mut ks = Vec::with_capacity(rows.len());
                ks.push(*first);
                for k in it {
                    match k {
                        Value::Int(i) => ks.push(*i),
                        _ => return false,
                    }
                }
                Keys::I(ks)
            }
            Some(Value::Float(first)) => {
                let mut ks = Vec::with_capacity(rows.len());
                ks.push(*first);
                for k in it {
                    match k {
                        Value::Float(f) => ks.push(*f),
                        _ => return false,
                    }
                }
                Keys::F(ks)
            }
            Some(Value::Str(first)) => {
                let mut ks = Vec::with_capacity(rows.len());
                ks.push(Arc::clone(first));
                for k in it {
                    match k {
                        Value::Str(s) => ks.push(Arc::clone(s)),
                        _ => return false,
                    }
                }
                Keys::S(ks)
            }
            Some(_) => return false,
        }
    };
    let mut idx: Vec<u32> = (0..rows.len() as u32).collect();
    match &keys {
        Keys::I(ks) => idx.sort_by(|&a, &b| {
            let (x, y) = (ks[a as usize], ks[b as usize]);
            if ascending {
                x.cmp(&y)
            } else {
                y.cmp(&x)
            }
        }),
        Keys::F(ks) => idx.sort_by(|&a, &b| {
            let (x, y) = (ks[a as usize], ks[b as usize]);
            if ascending {
                x.total_cmp(&y)
            } else {
                y.total_cmp(&x)
            }
        }),
        Keys::S(ks) => idx.sort_by(|&a, &b| {
            let (x, y) = (&ks[a as usize], &ks[b as usize]);
            if ascending {
                x.cmp(y)
            } else {
                y.cmp(x)
            }
        }),
    }
    *rows = idx.iter().map(|&i| rows[i as usize].clone()).collect();
    true
}

/// The per-op kernel registry entry: how an RDD's user function is
/// expressed for the batch path.
#[derive(Debug, Clone)]
pub enum OpKernel {
    /// A `RddOp::Map` kernel.
    Map(MapKernel),
    /// A `RddOp::Filter` kernel.
    Filter(PredKernel),
    /// A `RddOp::MapPartitions` kernel with filter-map semantics.
    PartsFilterMap(MapKernel),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lineitem(i: i64) -> Value {
        Value::list(vec![
            Value::Int(i),
            Value::Float(i as f64 * 0.5),
            Value::Float(100.0 + i as f64),
            Value::Float(0.01 * (i % 10) as f64),
            Value::from_str_(["A", "N", "R"][(i % 3) as usize]),
            Value::from_str_(["F", "O"][(i % 2) as usize]),
            Value::Int(1800 + (i % 700)),
        ])
    }

    #[test]
    fn round_trip_preserves_rows_and_sizes() {
        let rows: Vec<Value> = (0..50).map(lineitem).collect();
        let batch = ColumnBatch::from_rows(&rows).expect("homogeneous rows encode");
        assert_eq!(batch.len(), rows.len());
        assert_eq!(batch.to_rows(), rows);
        assert_eq!(
            batch.payload_bytes(),
            rows.iter().map(Value::size_bytes).sum::<u64>()
        );
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(batch.size_at(i), r.size_bytes());
            assert_eq!(batch.value_at(i), *r);
        }
    }

    #[test]
    fn heterogeneous_rows_refuse_to_encode() {
        let rows = vec![Value::Int(1), Value::Float(2.0)];
        assert!(ColumnBatch::from_rows(&rows).is_none());
        assert!(ColumnBatch::from_rows(&[]).is_none());
        let nested = vec![Value::list(vec![Value::list(vec![Value::Int(1)])])];
        assert!(ColumnBatch::from_rows(&nested).is_none());
    }

    #[test]
    fn pair_batches_encode_key_and_payload() {
        let rows: Vec<Value> = (0..20)
            .map(|i| {
                Value::pair(
                    Value::Int(i % 4),
                    Value::list(vec![Value::vector(vec![i as f64; 3]), Value::Int(1)]),
                )
            })
            .collect();
        let batch = ColumnBatch::from_rows(&rows).expect("pair rows encode");
        assert_eq!(batch.to_rows(), rows);
        assert_eq!(
            batch.payload_bytes(),
            rows.iter().map(Value::size_bytes).sum::<u64>()
        );
    }

    #[test]
    fn filter_kernel_matches_row_path() {
        let rows: Vec<Value> = (0..200).map(lineitem).collect();
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let pred = PredKernel::And(vec![
            PredKernel::IntInRange {
                field: 6,
                lo: 1900,
                hi: 2265,
            },
            PredKernel::FloatLt {
                field: 1,
                max: 24.0,
            },
        ]);
        let got = pred.filter_batch(&batch).expect("typed fields present");
        let want: Vec<Value> = rows
            .iter()
            .filter(|v| pred.eval_value(v))
            .cloned()
            .collect();
        assert_eq!(got.to_rows(), want);
    }

    #[test]
    fn map_kernel_matches_row_path() {
        let rows: Vec<Value> = (0..100).map(lineitem).collect();
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let kernel = MapKernel::Pair {
            key: KeyExpr::PairOfFields(4, 5),
            val: PayloadExpr::List(vec![
                ScalarExpr::Num(NumExpr::Field(1)),
                ScalarExpr::Num(NumExpr::Mul(
                    Box::new(NumExpr::Field(2)),
                    Box::new(NumExpr::Sub(
                        Box::new(NumExpr::Lit(1.0)),
                        Box::new(NumExpr::Field(3)),
                    )),
                )),
                ScalarExpr::IntLit(1),
            ]),
        };
        let got = kernel.eval_batch(&batch).expect("typed fields present");
        let want: Vec<Value> = rows.iter().map(|v| kernel.eval_value(v).unwrap()).collect();
        assert_eq!(got.to_rows(), want);
    }

    #[test]
    fn typed_agg_matches_btreemap_reference() {
        let rows: Vec<Value> = (0..300)
            .map(|i| {
                Value::pair(
                    Value::from_str_(["A", "N", "R"][(i % 3) as usize]),
                    Value::Float(i as f64 * 0.25),
                )
            })
            .collect();
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let (key, val) = match &batch {
            ColumnBatch::Pair { key, val } => (key, val.as_ref()),
            _ => panic!("pair batch"),
        };
        let kernel = AggKernel::SumFloat;
        let got = typed_agg(&kernel, &[(key, val)]).expect("typed layout");
        // Reference: the row path's BTreeMap<Value, Value> walk.
        let mut m: BTreeMap<Value, Value> = BTreeMap::new();
        for r in &rows {
            let (k, v) = (r.key().unwrap().clone(), r.val().unwrap().clone());
            match m.get_mut(&k) {
                Some(acc) => *acc = kernel.combine_values(acc, &v),
                None => {
                    m.insert(k, v);
                }
            }
        }
        let want: Vec<Value> = m.into_iter().map(|(k, v)| Value::pair(k, v)).collect();
        assert_eq!(got.to_rows(), want);
    }

    #[test]
    fn nearest_center_kernel_matches_row_path() {
        let centers = Arc::new(vec![vec![0.0, 0.0], vec![10.0, 10.0], vec![0.0, 10.0]]);
        let rows: Vec<Value> = (0..60)
            .map(|i| Value::vector(vec![(i % 12) as f64, (i % 7) as f64]))
            .collect();
        let batch = ColumnBatch::from_rows(&rows).unwrap();
        let kernel = MapKernel::NearestCenter { centers };
        let got = kernel.eval_batch(&batch).expect("vector column");
        let want: Vec<Value> = rows.iter().filter_map(|v| kernel.eval_value(v)).collect();
        assert_eq!(got.to_rows(), want);
    }
}
