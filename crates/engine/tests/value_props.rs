//! Property tests of the `Value` datum: total order, Eq↔Hash agreement,
//! and size-estimate sanity — the invariants shuffle partitioning and
//! deterministic aggregation rest on.

use flint_engine::Value;
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::from_bool),
        any::<i64>().prop_map(Value::from_i64),
        any::<f64>().prop_map(Value::from_f64),
        "[a-z]{0,8}".prop_map(|s| Value::from_str_(&s)),
        proptest::collection::vec(any::<f64>(), 0..4).prop_map(Value::vector),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Value::pair(a, b)),
            proptest::collection::vec(inner, 0..4).prop_map(Value::list),
        ]
    })
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Eq implies equal hashes (the HashMap contract).
    #[test]
    fn eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    /// The order is total and consistent: antisymmetric and transitive on
    /// sampled triples, and sorting never panics.
    #[test]
    fn order_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(b.cmp(&a), Ordering::Equal),
        }
        // Transitivity (≤).
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        let mut v = [a, b, c];
        v.sort(); // must not panic even with NaNs
    }

    /// Self-equality holds for every value, including NaN floats (total
    /// order semantics).
    #[test]
    fn reflexive_equality(a in arb_value()) {
        prop_assert_eq!(a.clone(), a);
    }

    /// Size estimates are positive and grow under wrapping.
    #[test]
    fn sizes_positive_and_monotone(a in arb_value()) {
        let s = a.size_bytes();
        prop_assert!(s > 0);
        let wrapped = Value::list(vec![a]);
        prop_assert!(wrapped.size_bytes() >= s);
    }
}
