//! Property tests of the `Value` datum: total order, Eq↔Hash agreement,
//! and size-estimate sanity — the invariants shuffle partitioning and
//! deterministic aggregation rest on — plus an executable reference
//! model ([`reference::RefValue`]) that pins the engine `Value` to the
//! deep-copy semantics it had before the Arc-backed representation.

use flint_engine::Value;
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A transcription of the deep-copy `Value` the engine used before the
/// Arc-backed zero-copy representation: `Pair` owns boxed children and
/// `List` owns its elements outright, so `clone` really copies and
/// `size_bytes` really walks. `Ord`, `Hash`, and `size_bytes` are copied
/// verbatim from that implementation; the properties below assert the
/// production type still agrees with it observation-for-observation.
mod reference {
    use std::cmp::Ordering;
    use std::hash::{Hash, Hasher};

    #[derive(Debug, Clone)]
    pub enum RefValue {
        Null,
        Bool(bool),
        Int(i64),
        Float(f64),
        Str(String),
        Pair(Box<RefValue>, Box<RefValue>),
        Vector(Vec<f64>),
        List(Vec<RefValue>),
    }

    impl RefValue {
        /// The exact pre-change virtual sizing formula: Null/Bool 8,
        /// Int/Float 16, Str 24+len, Pair 16+k+v, Vector 24+8·len,
        /// List 24+Σ — computed recursively on every call.
        pub fn size_bytes(&self) -> u64 {
            match self {
                RefValue::Null => 8,
                RefValue::Bool(_) => 8,
                RefValue::Int(_) => 16,
                RefValue::Float(_) => 16,
                RefValue::Str(s) => 24 + s.len() as u64,
                RefValue::Pair(k, v) => 16 + k.size_bytes() + v.size_bytes(),
                RefValue::Vector(v) => 24 + 8 * v.len() as u64,
                RefValue::List(v) => 24 + v.iter().map(RefValue::size_bytes).sum::<u64>(),
            }
        }

        fn discriminant_rank(&self) -> u8 {
            match self {
                RefValue::Null => 0,
                RefValue::Bool(_) => 1,
                RefValue::Int(_) => 2,
                RefValue::Float(_) => 3,
                RefValue::Str(_) => 4,
                RefValue::Pair(..) => 5,
                RefValue::Vector(_) => 6,
                RefValue::List(_) => 7,
            }
        }
    }

    impl PartialEq for RefValue {
        fn eq(&self, other: &Self) -> bool {
            self.cmp(other) == Ordering::Equal
        }
    }

    impl Eq for RefValue {}

    impl PartialOrd for RefValue {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for RefValue {
        fn cmp(&self, other: &Self) -> Ordering {
            use RefValue::*;
            match (self, other) {
                (Null, Null) => Ordering::Equal,
                (Bool(a), Bool(b)) => a.cmp(b),
                (Int(a), Int(b)) => a.cmp(b),
                (Float(a), Float(b)) => a.total_cmp(b),
                (Int(a), Float(b)) => (*a as f64).total_cmp(b),
                (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
                (Str(a), Str(b)) => a.cmp(b),
                (Pair(ak, av), Pair(bk, bv)) => ak.cmp(bk).then_with(|| av.cmp(bv)),
                (Vector(a), Vector(b)) => {
                    for (x, y) in a.iter().zip(b.iter()) {
                        let o = x.total_cmp(y);
                        if o != Ordering::Equal {
                            return o;
                        }
                    }
                    a.len().cmp(&b.len())
                }
                (List(a), List(b)) => {
                    for (x, y) in a.iter().zip(b.iter()) {
                        let o = x.cmp(y);
                        if o != Ordering::Equal {
                            return o;
                        }
                    }
                    a.len().cmp(&b.len())
                }
                _ => self.discriminant_rank().cmp(&other.discriminant_rank()),
            }
        }
    }

    impl Hash for RefValue {
        fn hash<H: Hasher>(&self, state: &mut H) {
            match self {
                RefValue::Null => 0u8.hash(state),
                RefValue::Bool(b) => {
                    1u8.hash(state);
                    b.hash(state);
                }
                RefValue::Int(i) => {
                    2u8.hash(state);
                    (*i as f64).to_bits().hash(state);
                }
                RefValue::Float(f) => {
                    2u8.hash(state);
                    f.to_bits().hash(state);
                }
                RefValue::Str(s) => {
                    4u8.hash(state);
                    s.hash(state);
                }
                RefValue::Pair(k, v) => {
                    5u8.hash(state);
                    k.hash(state);
                    v.hash(state);
                }
                RefValue::Vector(v) => {
                    6u8.hash(state);
                    for f in v.iter() {
                        f.to_bits().hash(state);
                    }
                }
                RefValue::List(v) => {
                    7u8.hash(state);
                    for x in v.iter() {
                        x.hash(state);
                    }
                }
            }
        }
    }

    /// Deep-copies a production `Value` into the reference model.
    pub fn from_engine(v: &crate::Value) -> RefValue {
        use crate::Value as V;
        match v {
            V::Null => RefValue::Null,
            V::Bool(b) => RefValue::Bool(*b),
            V::Int(i) => RefValue::Int(*i),
            V::Float(f) => RefValue::Float(*f),
            V::Str(s) => RefValue::Str(s.to_string()),
            V::Pair(p) => RefValue::Pair(
                Box::new(from_engine(p.key())),
                Box::new(from_engine(p.val())),
            ),
            V::Vector(x) => RefValue::Vector(x.to_vec()),
            V::List(l) => RefValue::List(l.items().iter().map(from_engine).collect()),
        }
    }
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::from_bool),
        any::<i64>().prop_map(Value::from_i64),
        any::<f64>().prop_map(Value::from_f64),
        "[a-z]{0,8}".prop_map(|s| Value::from_str_(&s)),
        proptest::collection::vec(any::<f64>(), 0..4).prop_map(Value::vector),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Value::pair(a, b)),
            proptest::collection::vec(inner, 0..4).prop_map(Value::list),
        ]
    })
}

fn hash_of(v: &Value) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Eq implies equal hashes (the HashMap contract).
    #[test]
    fn eq_implies_hash_eq(a in arb_value(), b in arb_value()) {
        if a == b {
            prop_assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    /// The order is total and consistent: antisymmetric and transitive on
    /// sampled triples, and sorting never panics.
    #[test]
    fn order_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        match a.cmp(&b) {
            Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
            Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            Ordering::Equal => prop_assert_eq!(b.cmp(&a), Ordering::Equal),
        }
        // Transitivity (≤).
        if a <= b && b <= c {
            prop_assert!(a <= c);
        }
        let mut v = [a, b, c];
        v.sort(); // must not panic even with NaNs
    }

    /// Self-equality holds for every value, including NaN floats (total
    /// order semantics).
    #[test]
    fn reflexive_equality(a in arb_value()) {
        prop_assert_eq!(a.clone(), a);
    }

    /// Size estimates are positive and grow under wrapping.
    #[test]
    fn sizes_positive_and_monotone(a in arb_value()) {
        let s = a.size_bytes();
        prop_assert!(s > 0);
        let wrapped = Value::list(vec![a]);
        prop_assert!(wrapped.size_bytes() >= s);
    }

    /// The Arc-backed representation is observationally identical to the
    /// deep-copy reference: comparison agrees pairwise, hashing feeds the
    /// hasher the same byte stream, and the memoized size matches the
    /// recursive pre-change formula exactly.
    #[test]
    fn agrees_with_deep_copy_reference(a in arb_value(), b in arb_value()) {
        let ra = reference::from_engine(&a);
        let rb = reference::from_engine(&b);
        prop_assert_eq!(a.cmp(&b), ra.cmp(&rb));
        prop_assert_eq!(a == b, ra == rb);
        let mut h = DefaultHasher::new();
        ra.hash(&mut h);
        prop_assert_eq!(hash_of(&a), h.finish());
        prop_assert_eq!(a.size_bytes(), ra.size_bytes());
    }

    /// Clones compare equal, hash identically, and report the same size
    /// as the original — O(1) handle sharing must be unobservable.
    #[test]
    fn clone_is_unobservable(a in arb_value()) {
        let c = a.clone();
        prop_assert_eq!(&c, &a);
        prop_assert_eq!(hash_of(&c), hash_of(&a));
        prop_assert_eq!(c.size_bytes(), a.size_bytes());
    }
}

/// Golden size constants, written out by hand from the virtual sizing
/// formula so a change to either the formula or the memoization shows up
/// as a literal-number diff here.
#[test]
fn golden_size_constants() {
    assert_eq!(Value::Null.size_bytes(), 8);
    assert_eq!(Value::from_bool(true).size_bytes(), 8);
    assert_eq!(Value::from_i64(7).size_bytes(), 16);
    assert_eq!(Value::from_f64(0.5).size_bytes(), 16);
    assert_eq!(Value::from_str_("abc").size_bytes(), 27); // 24 + 3
    assert_eq!(Value::vector(vec![1.0; 4]).size_bytes(), 56); // 24 + 8*4
    let pair = Value::pair(Value::from_i64(1), Value::from_str_("ab"));
    assert_eq!(pair.size_bytes(), 58); // 16 + 16 + 26
    let list = Value::list(vec![pair, Value::Null]);
    assert_eq!(list.size_bytes(), 90); // 24 + 58 + 8

    // Every constant above matches the deep-copy reference walk too.
    for v in [
        Value::Null,
        Value::from_str_("abc"),
        Value::list(vec![
            Value::pair(Value::from_i64(1), Value::from_str_("ab")),
            Value::Null,
        ]),
    ] {
        assert_eq!(v.size_bytes(), reference::from_engine(&v).size_bytes());
    }
}
