//! Property tests of the columnar batch path:
//!
//! * **Round-trip identity** — `ColumnBatch::from_rows` followed by
//!   `to_rows` reproduces the record sequence exactly, and the batch's
//!   per-row and total virtual sizes match `Value::size_bytes` constant
//!   for constant. The columnar form is a layout, not a semantic: every
//!   observable the engine derives from records (eviction order, τ
//!   estimation, checkpoint accounting) reads identically off either
//!   representation.
//! * **Kernel-vs-reference equivalence** — the same kernel-declared
//!   pipeline run with columnar execution on and off produces
//!   byte-identical results *and* byte-identical `RunStats`: the
//!   vectorized kernels and the row-at-a-time fallback are the same
//!   function, and every simulated duration (derived from vbytes) is
//!   bit-equal between the two paths.

use flint_engine::{
    AggKernel, ColumnBatch, Driver, DriverConfig, KeyExpr, MapKernel, NoCheckpoint, NoFailures,
    NumExpr, PayloadExpr, PredKernel, RunStats, ScalarExpr, Value, WorkerSpec,
};
use proptest::prelude::*;

/// Records that have a columnar layout (scalars, fixed-schema lists,
/// pairs of scalars) plus shapes that must stay on the row path (nested
/// lists, mixed types) — `from_rows` decides which is which.
fn arb_record() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::from_i64),
        any::<f64>().prop_map(Value::from_f64),
        "[a-z]{0,6}".prop_map(|s| Value::from_str_(&s)),
        proptest::collection::vec(any::<f64>(), 0..4).prop_map(Value::vector),
        (any::<i64>(), any::<f64>())
            .prop_map(|(k, v)| { Value::pair(Value::from_i64(k), Value::from_f64(v)) }),
        ("[a-z]{0,4}", "[a-z]{0,4}")
            .prop_map(|(k, v)| { Value::pair(Value::from_str_(&k), Value::from_str_(&v)) }),
        (any::<i64>(), any::<f64>(), "[a-z]{0,4}").prop_map(|(a, b, c)| {
            Value::list(vec![
                Value::from_i64(a),
                Value::from_f64(b),
                Value::from_str_(&c),
            ])
        }),
        // Nested list payload: no columnar layout, must encode to None.
        (any::<i64>(), any::<i64>()).prop_map(|(a, b)| {
            Value::list(vec![
                Value::from_i64(a),
                Value::list(vec![Value::from_i64(b)]),
            ])
        }),
        Just(Value::Null),
    ]
}

/// Homogeneous lineitem-shaped rows: `[key, qty, price, date]`.
fn arb_table() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(
        (0..8i64, 0..50i64, 0..1000i64, 0..2557i64).prop_map(|(k, q, p, d)| {
            Value::list(vec![
                Value::Int(k),
                Value::Float(q as f64 + 0.5),
                Value::Float(p as f64 * 10.0 - 1000.0),
                Value::Int(d),
            ])
        }),
        1..96,
    )
}

/// Pair rows `(Int, Float)` for the shuffle-side paths.
fn arb_pairs() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(
        (0..12i64, -100..100i64)
            .prop_map(|(k, v)| Value::pair(Value::Int(k), Value::Float(v as f64 / 4.0))),
        1..96,
    )
}

fn driver(columnar: bool) -> Driver {
    let cfg = DriverConfig::builder()
        .host_threads(4)
        .size_scale(5e5)
        .columnar(columnar)
        .build();
    let mut d = Driver::new(cfg, Box::new(NoCheckpoint), Box::new(NoFailures));
    for _ in 0..4 {
        d.add_worker(WorkerSpec::r3_large());
    }
    d
}

/// Scan → project → hash-aggregate → sort, all declared through kernels;
/// the columnar flag selects vectorized vs row-at-a-time execution of
/// the *same* plan.
fn scan_agg(rows: &[Value], max_date: i64, columnar: bool) -> (Vec<Value>, RunStats) {
    let mut d = driver(columnar);
    let src = d.ctx().parallelize(rows.to_vec(), 4);
    let filtered = d.ctx().filter_kernel(
        src,
        PredKernel::IntLe {
            field: 3,
            max: max_date,
        },
    );
    let keyed = d.ctx().map_kernel(
        filtered,
        MapKernel::Pair {
            key: KeyExpr::Field(0),
            val: PayloadExpr::Scalar(ScalarExpr::Num(NumExpr::Mul(
                Box::new(NumExpr::Field(1)),
                Box::new(NumExpr::Field(2)),
            ))),
        },
    );
    let agg = d.ctx().reduce_by_key_kernel(keyed, 3, AggKernel::SumFloat);
    let sorted = d.ctx().sort_by_key(agg, 2, true);
    let out = d.collect(sorted).unwrap();
    (out, d.stats().clone())
}

/// group_by_key (no combiner) + descending sort over pair records.
fn group_sort(rows: &[Value], columnar: bool) -> (Vec<Value>, RunStats) {
    let mut d = driver(columnar);
    let src = d.ctx().parallelize(rows.to_vec(), 4);
    let grouped = d.ctx().group_by_key(src, 3);
    let sorted = d.ctx().sort_by_key(grouped, 2, false);
    let out = d.collect(sorted).unwrap();
    (out, d.stats().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encoding a record sequence to columns and decoding it back is the
    /// identity, and every size observable matches `Value::size_bytes`.
    #[test]
    fn round_trip_identity(rows in proptest::collection::vec(arb_record(), 0..48)) {
        if let Some(batch) = ColumnBatch::from_rows(&rows) {
            prop_assert_eq!(batch.len(), rows.len());
            prop_assert_eq!(batch.to_rows(), rows.clone());
            let mut total = 0u64;
            for (i, r) in rows.iter().enumerate() {
                prop_assert_eq!(batch.value_at(i), r.clone());
                prop_assert_eq!(batch.size_at(i), r.size_bytes());
                total += r.size_bytes();
            }
            prop_assert_eq!(batch.payload_bytes(), total);
        }
    }

    /// `gather` selects exactly the requested records, in order.
    #[test]
    fn gather_matches_row_selection(
        rows in arb_table(),
        idx_seed in proptest::collection::vec(any::<u32>(), 0..32),
    ) {
        let batch = ColumnBatch::from_rows(&rows).expect("table rows must encode");
        let idx: Vec<u32> = idx_seed
            .iter()
            .map(|&i| i % rows.len() as u32)
            .collect();
        let picked = batch.gather(&idx);
        let expect: Vec<Value> = idx.iter().map(|&i| rows[i as usize].clone()).collect();
        prop_assert_eq!(picked.to_rows(), expect);
    }

    /// Per-record kernel evaluation agrees with a hand-written reference
    /// on the lineitem shape (the row fallback *is* this evaluation, so
    /// this pins the semantics the batch path must reproduce).
    #[test]
    fn kernel_eval_matches_reference(rows in arb_table(), max in 0..2557i64) {
        let pred = PredKernel::IntLe { field: 3, max };
        let kernel = MapKernel::Pair {
            key: KeyExpr::Field(0),
            val: PayloadExpr::Scalar(ScalarExpr::Num(NumExpr::Mul(
                Box::new(NumExpr::Field(1)),
                Box::new(NumExpr::Field(2)),
            ))),
        };
        for r in &rows {
            let c = r.as_list().unwrap();
            prop_assert_eq!(pred.eval_value(r), c[3].as_i64().unwrap() <= max);
            let got = kernel.eval_value(r).unwrap();
            let want = Value::pair(
                c[0].clone(),
                Value::Float(c[1].as_f64().unwrap() * c[2].as_f64().unwrap()),
            );
            prop_assert_eq!(got, want);
        }
    }

    /// The full engine produces byte-identical results and byte-identical
    /// run stats (every simulated duration, byte counter, and vbyte
    /// total) with columnar execution on and off.
    #[test]
    fn scan_agg_columnar_equals_row_path(rows in arb_table(), max in 0..2557i64) {
        let (row_out, row_stats) = scan_agg(&rows, max, false);
        let (col_out, col_stats) = scan_agg(&rows, max, true);
        prop_assert_eq!(col_out, row_out);
        prop_assert_eq!(col_stats, row_stats);
    }

    /// Same contract for the no-combiner group path and the typed sort.
    #[test]
    fn group_sort_columnar_equals_row_path(rows in arb_pairs()) {
        let (row_out, row_stats) = group_sort(&rows, false);
        let (col_out, col_stats) = group_sort(&rows, true);
        prop_assert_eq!(col_out, row_out);
        prop_assert_eq!(col_stats, row_stats);
    }
}

/// The shapes the workloads rely on must actually take the columnar
/// path — a silent fall-back to rows would keep results identical while
/// losing the batch speedup, so pin encodability explicitly.
#[test]
fn workload_shapes_encode_to_columns() {
    let lineitem = Value::list(vec![
        Value::Int(1),
        Value::Float(2.0),
        Value::Float(3.0),
        Value::Float(0.05),
        Value::from_str_("R"),
        Value::from_str_("F"),
        Value::Int(100),
    ]);
    assert!(ColumnBatch::from_rows(&[lineitem.clone(), lineitem]).is_some());

    let rank = Value::pair(Value::Int(3), Value::Float(1.0));
    assert!(ColumnBatch::from_rows(&[rank.clone(), rank]).is_some());

    let point = Value::vector(vec![1.0; 16]);
    assert!(ColumnBatch::from_rows(&[point.clone(), point]).is_some());

    let q1_key = Value::pair(
        Value::pair(Value::from_str_("R"), Value::from_str_("F")),
        Value::list(vec![Value::Float(1.0), Value::Int(1)]),
    );
    assert!(ColumnBatch::from_rows(&[q1_key.clone(), q1_key]).is_some());

    // Heterogeneous sequences must decline, not mis-encode.
    assert!(ColumnBatch::from_rows(&[Value::Int(1), Value::from_str_("x")]).is_none());
    assert!(ColumnBatch::from_rows(&[]).is_none());
}
