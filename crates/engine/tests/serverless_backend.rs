//! The serverless backend's contracts, stated as tests:
//!
//! * **Determinism** — the traced event stream is byte-identical across
//!   `host_threads` settings and across replays of the same backend
//!   seed. Cold-start draws come from a dedicated `rng::stream`
//!   sub-stream consumed in admission (commit-planning) order, so thread
//!   scheduling cannot reorder them.
//! * **Billing exactness** — Σ `InvocationBilled` event costs equals the
//!   backend's `compute_cost()` *exactly* (same f64 accumulation order,
//!   not approximately), and likewise for GB-seconds. Every invocation
//!   is billed, including ones whose external shuffle write faults.
//! * **Chaos robustness** — a 100-seed campaign of store-level faults
//!   (torn writes, lost writes, read outages) against the external
//!   shuffle transport never panics, never returns wrong data, and
//!   keeps billing exact on every seed.

use flint_engine::{
    ChaosConfig, ChaosSchedule, Driver, DriverConfig, EngineError, NoCheckpoint, NoFailures,
    ServerlessBackend, ServerlessConfig, StoreFaultPolicy, TraceHandle, Value, WorkerSpec,
};
use flint_trace::EventKind;

/// A deterministic multi-stage job with two shuffles and a join — enough
/// map outputs to drive real traffic through the external shuffle
/// transport — returning its sorted output.
fn run_job(driver: &mut Driver) -> Result<Vec<Value>, EngineError> {
    let src = driver
        .ctx()
        .parallelize((0..400).map(|i| Value::from_i64(i * 23 % 101)), 8);
    let pairs = driver.ctx().map(src, |v| {
        Value::pair(Value::Int(v.as_i64().unwrap() % 7), v.clone())
    });
    let sums = driver.ctx().reduce_by_key(pairs, 5, |a, b| {
        Value::Int(a.as_i64().unwrap_or(0) + b.as_i64().unwrap_or(0))
    });
    let ones = driver.ctx().map_values(pairs, |_| Value::Int(1));
    let counts = driver.ctx().reduce_by_key(ones, 5, |a, b| {
        Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
    });
    let joined = driver.ctx().join(sums, counts, 4);
    let sorted = driver.ctx().sort_by_key(joined, 3, true);
    let mut out = driver.collect(sorted)?;
    out.sort();
    Ok(out)
}

/// Everything one serverless run produces: the stream, the answer, the
/// billing ledger folded from events, and the backend's own counters.
struct ServerlessRun {
    jsonl: String,
    output: Result<Vec<Value>, EngineError>,
    billed_cost: f64,
    billed_gb_seconds: f64,
    billed_events: u64,
    started_events: u64,
    externalized: u64,
    compute_cost: f64,
    backend_gb_seconds: f64,
    invocations: u64,
    invocations_billed: u64,
    cold_starts: u64,
}

/// Runs [`run_job`] on a driver with a seeded [`ServerlessBackend`]
/// installed and per-invocation 1-core slots — optionally with a
/// store-fault policy degrading the external shuffle transport.
fn run_serverless(
    host_threads: usize,
    backend_seed: u64,
    faults: Option<Box<dyn StoreFaultPolicy>>,
) -> ServerlessRun {
    let cfg = DriverConfig::builder()
        .host_threads(host_threads)
        .size_scale(5e5)
        .build();
    let mut d = Driver::new(cfg, Box::new(NoCheckpoint), Box::new(NoFailures));
    if let Some(policy) = faults {
        d.checkpoints_mut().set_fault_policy(policy);
    }
    let trace = TraceHandle::disabled();
    let reader = trace.attach_memory(0);
    d.set_trace(trace);
    let scfg = ServerlessConfig::default();
    let mem_gb = scfg.memory_gb;
    d.set_backend(Box::new(ServerlessBackend::new(scfg, backend_seed)));
    for ext in 1..=8u64 {
        d.add_worker_with_ext(ext, WorkerSpec::serverless_slot(mem_gb));
    }
    let output = run_job(&mut d);

    let mut billed_cost = 0.0f64;
    let mut billed_gb_seconds = 0.0f64;
    let mut billed_events = 0u64;
    let mut started_events = 0u64;
    let mut externalized = 0u64;
    for ev in reader.events() {
        match &ev.kind {
            EventKind::InvocationBilled {
                gb_seconds, cost, ..
            } => {
                billed_cost += cost;
                billed_gb_seconds += gb_seconds;
                billed_events += 1;
            }
            EventKind::InvocationStarted { .. } => started_events += 1,
            EventKind::ShuffleExternalized { .. } => externalized += 1,
            _ => {}
        }
    }
    ServerlessRun {
        jsonl: reader.to_jsonl(),
        output,
        billed_cost,
        billed_gb_seconds,
        billed_events,
        started_events,
        externalized,
        compute_cost: d.backend().compute_cost(),
        backend_gb_seconds: d.backend().billed_gb_seconds(),
        invocations: d.backend().invocations(),
        invocations_billed: d.backend().invocations_billed(),
        cold_starts: d.backend().cold_starts(),
    }
}

/// The job's answer is backend-independent: golden bytes come from a
/// plain local VM driver.
fn golden_output() -> Vec<Value> {
    run_job(&mut Driver::local(6)).unwrap()
}

#[test]
fn serverless_trace_is_identical_across_host_thread_counts() {
    let golden = run_serverless(1, 42, None);
    let expect = golden_output();
    assert_eq!(golden.output.as_ref().unwrap(), &expect);
    assert!(!golden.jsonl.is_empty());
    assert!(golden.invocations > 0, "every task is an invocation");
    assert!(golden.cold_starts > 0, "first hit on each slot is cold");
    assert!(
        golden.externalized > 0,
        "map outputs must flow through the external store"
    );
    for threads in [2usize, 8] {
        let run = run_serverless(threads, 42, None);
        assert_eq!(
            run.jsonl, golden.jsonl,
            "host_threads={threads} moved the serverless stream"
        );
        assert_eq!(run.output.as_ref().unwrap(), &expect);
    }
}

#[test]
fn serverless_same_seed_replays_byte_identical_and_seeds_differ() {
    let a = run_serverless(4, 7, None);
    let b = run_serverless(4, 7, None);
    assert_eq!(a.jsonl, b.jsonl, "same seed must replay byte-identically");
    assert_eq!(a.compute_cost, b.compute_cost);
    let c = run_serverless(4, 8, None);
    assert_ne!(
        a.jsonl, c.jsonl,
        "a different seed draws different cold-start latencies"
    );
    // Seeds move latency draws, never the answer.
    assert_eq!(a.output.unwrap(), c.output.unwrap());
}

#[test]
fn serverless_billing_reconciles_exactly_with_the_event_stream() {
    let run = run_serverless(2, 11, None);
    run.output.unwrap();
    assert!(run.compute_cost > 0.0);
    // Exact equality, not approximate: the event stream accumulates the
    // same f64s in the same (commit) order as the backend's ledger.
    assert_eq!(run.billed_cost, run.compute_cost);
    assert_eq!(run.billed_gb_seconds, run.backend_gb_seconds);
    assert_eq!(run.billed_events, run.invocations_billed);
    assert_eq!(run.started_events, run.invocations);
    // Billing can trail admission (tasks in flight when the final job
    // completes are never committed), but never exceed it.
    assert!(run.invocations_billed <= run.invocations);
}

/// 100 consecutive chaos seeds of store-level degradation — torn
/// external shuffle writes, lost writes, and read-outage windows, with
/// worker churn switched off (serverless slots are not revocable spot
/// instances) — and every run either reproduces the fault-free bytes or
/// fails with a typed error, replays byte-identically, and keeps
/// Σ `InvocationBilled` == `compute_cost()` exactly.
#[test]
fn serverless_chaos_campaign_100_seeds_store_faults() {
    let expect = golden_output();
    let mut completed = 0u32;
    let mut typed = 0u32;
    let mut faulted_seeds = 0u32;
    for seed in 0..100u64 {
        let mut ccfg = ChaosConfig::new(seed);
        ccfg.revocations = 0;
        ccfg.flap_prob = 0.0;
        ccfg.mass_revoke_prob = 0.0;
        ccfg.torn_write_prob = 0.25;
        ccfg.failed_write_prob = 0.2;
        ccfg.outages = 2;
        let schedule = ChaosSchedule::generate(&ccfg);
        assert!(
            schedule.worker_events.is_empty(),
            "seed {seed}: zero revocation rates must script no worker churn"
        );
        let store_faults = schedule.store_faults(&ccfg);
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_serverless(4, seed, Some(Box::new(store_faults)))
        }))
        .unwrap_or_else(|_| panic!("seed {seed}: serverless chaos run panicked"));
        match &run.output {
            Ok(out) => {
                assert_eq!(out, &expect, "seed {seed}: wrong data under store faults");
                completed += 1;
            }
            Err(_) => typed += 1,
        }
        // Billing stays exact even when the store faults mid-run.
        assert_eq!(
            run.billed_cost, run.compute_cost,
            "seed {seed}: billing ledger diverged from the event stream"
        );
        assert_eq!(run.billed_events, run.invocations_billed);
        if run.jsonl.contains("\"fault\"") || run.jsonl.contains("shuffle_ext_") {
            faulted_seeds += 1;
        }
        // Replay determinism: the same chaos seed regenerates the same
        // schedule, so the whole run is byte-reproducible.
        let ccfg2 = {
            let mut c = ChaosConfig::new(seed);
            c.revocations = 0;
            c.flap_prob = 0.0;
            c.mass_revoke_prob = 0.0;
            c.torn_write_prob = 0.25;
            c.failed_write_prob = 0.2;
            c.outages = 2;
            c
        };
        let replay_faults = ChaosSchedule::generate(&ccfg2).store_faults(&ccfg2);
        let replay = run_serverless(4, seed, Some(Box::new(replay_faults)));
        assert_eq!(
            replay.jsonl, run.jsonl,
            "seed {seed}: replay was not byte-identical"
        );
    }
    assert_eq!(completed + typed, 100);
    assert!(
        completed > 50,
        "most campaigns should survive (got {completed} completed, {typed} typed)"
    );
    assert!(
        faulted_seeds > 10,
        "the campaign must actually inject shuffle faults (got {faulted_seeds})"
    );
}
