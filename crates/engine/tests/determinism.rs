//! The wave executor's determinism contract: for a fixed seed and
//! workload, every `host_threads` setting produces bit-identical
//! results, execution statistics, virtual-time trajectories, and
//! checkpoint contents. The parallel compute phase may schedule task
//! materialization in any order across host threads, but commits happen
//! in fixed task-key order, so nothing observable can depend on the
//! thread count.

use flint_engine::{
    Driver, DriverConfig, NoCheckpoint, RunStats, ScriptedInjector, Value, WorkerEvent, WorkerSpec,
};
use flint_simtime::{SimDuration, SimTime};

/// Everything observable about one run, for cross-thread-count equality.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    result: Vec<Value>,
    stats: RunStats,
    /// (rdd, part, virtual bytes) of every durable checkpoint object.
    ckpt_sizes: Vec<(u32, u32, u64)>,
    finished_at: SimTime,
}

/// A multi-stage workload exercising every nondeterminism hazard at
/// once: persisted ancestors shared across tasks, seeded sampling,
/// hash and range shuffles, a join, checkpoint writes, and a mid-job
/// revocation plus replacement.
fn run_once(host_threads: usize) -> RunFingerprint {
    let cfg = DriverConfig::builder()
        .host_threads(host_threads)
        .size_scale(5e5) // paper-scale pressure from tiny data
        .build();
    let injector = ScriptedInjector::new(vec![
        (
            SimTime::from_millis(40_000),
            WorkerEvent::Remove { ext_id: 2 },
        ),
        (
            SimTime::from_millis(160_000),
            WorkerEvent::Add {
                ext_id: 100,
                spec: WorkerSpec::r3_large(),
            },
        ),
    ]);
    let mut d = Driver::new(cfg, Box::new(NoCheckpoint), Box::new(injector));
    for ext in 1..=4u64 {
        d.add_worker_with_ext(ext, WorkerSpec::r3_large());
    }

    let src = d
        .ctx()
        .parallelize((0..600).map(|i| Value::from_i64(i * 37 % 251)), 8);
    let pairs = d.ctx().map(src, |v| {
        Value::pair(Value::Int(v.as_i64().unwrap() % 13), v.clone())
    });
    let pairs = d.ctx().persist(pairs);
    let sums = d.ctx().reduce_by_key(pairs, 5, |a, b| {
        Value::Int(a.as_i64().unwrap_or(0) + b.as_i64().unwrap_or(0))
    });
    let sampled = d.ctx().sample(pairs, 0.4, 7);
    let ones = d.ctx().map_values(sampled, |_| Value::Int(1));
    let counts = d.ctx().reduce_by_key(ones, 4, |a, b| {
        Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
    });
    let joined = d.ctx().join(sums, counts, 4);
    let sorted = d.ctx().sort_by_key(joined, 3, true);

    let mut result = d.collect(sorted).unwrap();
    result.sort();
    d.checkpoint_now(sums).unwrap();

    let mut ckpt_sizes = Vec::new();
    for rdd in d.checkpoints().checkpointed_rdds() {
        let n = d.lineage().meta(rdd).num_partitions;
        for part in 0..n {
            if let Some(vb) = d.checkpoints().size_of(rdd, part) {
                ckpt_sizes.push((rdd.0, part, vb));
            }
        }
    }
    ckpt_sizes.sort();

    RunFingerprint {
        result,
        stats: d.stats().clone(),
        ckpt_sizes,
        finished_at: d.now(),
    }
}

#[test]
fn identical_runs_across_host_thread_counts() {
    let sequential = run_once(1);
    assert!(
        !sequential.result.is_empty(),
        "workload must produce output"
    );
    assert!(
        sequential.stats.checkpoints_written > 0,
        "workload must write checkpoints"
    );
    assert!(
        sequential.stats.checkpoint_wire_bytes > 0,
        "serialized checkpoint sizes must be recorded"
    );
    assert_eq!(sequential.stats.revocations, 1, "revocation must land");
    for threads in [2usize, 8] {
        let parallel = run_once(threads);
        assert_eq!(
            parallel, sequential,
            "host_threads={threads} diverged from sequential"
        );
    }
}

#[test]
fn repeated_runs_are_self_consistent() {
    // Same thread count twice: guards against hidden global state
    // (ambient RNG, time-of-day) leaking into the simulation.
    assert_eq!(run_once(8), run_once(8));
}

#[test]
fn local_driver_defaults_to_available_parallelism() {
    // `Driver::local` may pick any host_threads; results must still match
    // an explicit single-threaded configuration.
    let mut a = Driver::local(4);
    let mut b = Driver::new(
        DriverConfig::default(),
        Box::new(NoCheckpoint),
        Box::new(flint_engine::NoFailures),
    );
    for _ in 0..4 {
        b.add_worker(WorkerSpec::r3_large());
    }
    let build = |d: &mut Driver| {
        let src = d.ctx().parallelize((0..200).map(Value::from_i64), 8);
        let sq = d.ctx().map(src, |v| {
            let x = v.as_i64().unwrap();
            Value::Int(x * x % 97)
        });
        let pairs = d.ctx().map(sq, |v| Value::pair(v.clone(), Value::Int(1)));
        d.ctx().reduce_by_key(pairs, 6, |x, y| {
            Value::Int(x.as_i64().unwrap() + y.as_i64().unwrap())
        })
    };
    let ra = build(&mut a);
    let rb = build(&mut b);
    let mut va = a.collect(ra).unwrap();
    let mut vb = b.collect(rb).unwrap();
    va.sort();
    vb.sort();
    assert_eq!(va, vb);
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.now(), b.now());
}

#[test]
fn virtual_makespan_is_thread_count_independent() {
    // Focused variant: wall-clock parallelism must not leak into the
    // virtual clock, even without failures or checkpoints.
    let mut finishes = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut d = Driver::new(
            DriverConfig::builder().host_threads(threads).build(),
            Box::new(NoCheckpoint),
            Box::new(flint_engine::NoFailures),
        );
        for _ in 0..4 {
            d.add_worker(WorkerSpec::r3_large());
        }
        let src = d.ctx().parallelize((0..400).map(Value::from_i64), 16);
        let pairs = d.ctx().map(src, |v| {
            Value::pair(Value::Int(v.as_i64().unwrap() % 5), v.clone())
        });
        let grouped = d.ctx().group_by_key(pairs, 8);
        d.count(grouped).unwrap();
        finishes.push((d.now(), d.stats().clone()));
    }
    assert_eq!(finishes[0], finishes[1]);
    assert_eq!(finishes[0], finishes[2]);
    assert!(finishes[0].0 > SimTime::ZERO + SimDuration::from_millis(1));
}
