//! Property test: for randomly generated small DAGs of
//! map/filter/reduce_by_key/sort_by_key/join chains, parallel wave
//! execution (`host_threads = 8`) is observably identical to sequential
//! execution (`host_threads = 1`) — same collected values, same
//! statistics, same virtual finish time.

use flint_engine::{
    BucketedBlock, Driver, DriverConfig, HashPartitioner, NoCheckpoint, NoFailures, Partitioner,
    RangePartitioner, RddRef, Value, WorkerSpec,
};
use proptest::prelude::*;

/// One step of a randomly generated pipeline. Every step consumes and
/// produces an RDD of `Pair(Int, Int)` records so steps compose freely.
#[derive(Debug, Clone, Copy)]
enum OpCode {
    MapShiftKey(i64),
    FilterValueMod(i64),
    ReduceByKey(u8),
    SortByKey(u8, bool),
    JoinWithEarlier(u8),
    SampleHalf(u64),
}

fn op_strategy() -> impl Strategy<Value = OpCode> {
    prop_oneof![
        (1i64..20).prop_map(OpCode::MapShiftKey),
        (2i64..6).prop_map(OpCode::FilterValueMod),
        (2u8..7).prop_map(OpCode::ReduceByKey),
        (2u8..5, proptest::bool::ANY).prop_map(|(p, asc)| OpCode::SortByKey(p, asc)),
        (2u8..5).prop_map(OpCode::JoinWithEarlier),
        (1u64..1000).prop_map(OpCode::SampleHalf),
    ]
}

/// Builds the pipeline and returns the sorted output plus run totals.
fn run_dag(host_threads: usize, seed: i64, ops: &[OpCode]) -> (Vec<Value>, String) {
    let mut d = Driver::new(
        DriverConfig::builder().host_threads(host_threads).build(),
        Box::new(NoCheckpoint),
        Box::new(NoFailures),
    );
    for _ in 0..4 {
        d.add_worker(WorkerSpec::r3_large());
    }
    let src = d.ctx().parallelize(
        (0..240).map(|i| {
            Value::pair(
                Value::Int((i * seed) % 17),
                Value::Int((i * 31 + seed) % 101),
            )
        }),
        6,
    );
    let mut stages: Vec<RddRef> = vec![src];
    let mut cur = src;
    for (i, op) in ops.iter().enumerate() {
        cur = match *op {
            OpCode::MapShiftKey(s) => d.ctx().map(cur, move |v| {
                let (k, val) = v.clone().into_pair().unwrap();
                Value::pair(Value::Int((k.as_i64().unwrap() + s) % 23), val)
            }),
            OpCode::FilterValueMod(m) => d.ctx().filter(cur, move |v| {
                v.key()
                    .map(|k| k.as_i64().unwrap_or(0) % m != 0)
                    .unwrap_or(false)
            }),
            OpCode::ReduceByKey(parts) => d.ctx().reduce_by_key(cur, parts as u32, |a, b| {
                Value::Int(a.as_i64().unwrap_or(0) + b.as_i64().unwrap_or(0))
            }),
            OpCode::SortByKey(parts, asc) => d.ctx().sort_by_key(cur, parts as u32, asc),
            OpCode::JoinWithEarlier(parts) => {
                let earlier = stages[i % stages.len()];
                let joined = d.ctx().join(cur, earlier, parts as u32);
                // Flatten the joined (v, w) payload back to Int so the
                // pipeline shape stays uniform.
                d.ctx()
                    .map_values(joined, |vw| Value::Int(i64::from(vw.size_bytes() as u32)))
            }
            OpCode::SampleHalf(s) => d.ctx().sample(cur, 0.5, s),
        };
        stages.push(cur);
    }
    let mut out = d.collect(cur).unwrap();
    out.sort();
    let fingerprint = format!("{:?} @ {:?}", d.stats(), d.now());
    (out, fingerprint)
}

/// The pre-bucketing reduce-side fetch: scan every record, keep those
/// the partitioner assigns to `part`, in production order, summing
/// their payload bytes. `BucketedBlock` must reproduce this exactly.
fn reference_scan(records: &[Value], p: &dyn Partitioner, part: u32) -> (Vec<Value>, u64) {
    let mut out = Vec::new();
    let mut bytes = 0u64;
    for v in records {
        let key = v.key().unwrap_or(v);
        if p.partition_for(key) == part {
            bytes += v.size_bytes();
            out.push(v.clone());
        }
    }
    (out, bytes)
}

/// Asserts that a bucketed block serves every reduce partition with the
/// same records, same order, and same byte accounting as the scan.
fn assert_buckets_match_scan(records: &[Value], p: &dyn Partitioner) {
    let bb = BucketedBlock::partition(records, p);
    assert_eq!(bb.num_buckets(), p.num_partitions());
    let mut total_records = 0usize;
    let mut total_bytes = 0u64;
    for part in 0..p.num_partitions() {
        let (want, want_bytes) = reference_scan(records, p, part);
        assert_eq!(
            &bb.bucket_shared(part)[..],
            want.as_slice(),
            "bucket {part} records"
        );
        assert_eq!(bb.bucket_bytes(part), want_bytes, "bucket {part} bytes");
        total_records += want.len();
        total_bytes += want_bytes;
    }
    assert_eq!(bb.len(), total_records, "no record lost or duplicated");
    assert_eq!(bb.payload_bytes(), total_bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Parallel wave execution of a random DAG is bit-identical to
    /// sequential execution, in both results and accounting.
    #[test]
    fn parallel_equals_sequential(
        seed in 1i64..40,
        ops in proptest::collection::vec(op_strategy(), 1..6),
    ) {
        let (seq_out, seq_fp) = run_dag(1, seed, &ops);
        let (par_out, par_fp) = run_dag(8, seed, &ops);
        prop_assert_eq!(par_out, seq_out);
        prop_assert_eq!(par_fp, seq_fp);
    }

    /// Bucketing a shuffle map block is observably identical to the old
    /// scan-per-reduce-partition path, for hash partitioners and for
    /// range partitioners (ascending and descending), including byte
    /// accounting, on arbitrary mixes of pair and non-pair records.
    #[test]
    fn bucketed_block_equals_reference_scan(
        keys in proptest::collection::vec(-50i64..50, 0..120),
        parts in 1u32..9,
        sample_stride in 1usize..7,
    ) {
        let records: Vec<Value> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| {
                if i % 11 == 3 {
                    // Non-pair records partition by their own value.
                    Value::Int(*k)
                } else {
                    Value::pair(Value::Int(*k), Value::Int(i as i64))
                }
            })
            .collect();
        let hash = HashPartitioner::new(parts);
        assert_buckets_match_scan(&records, &hash);
        let sample: Vec<Value> = records
            .iter()
            .step_by(sample_stride)
            .map(|v| v.key().unwrap_or(v).clone())
            .collect();
        for ascending in [true, false] {
            let range = RangePartitioner::from_sample(sample.clone(), parts, ascending);
            assert_buckets_match_scan(&records, &range);
        }
    }
}
