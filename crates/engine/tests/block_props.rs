//! Property tests of the block manager: capacity invariants hold under
//! arbitrary insert/get/remove sequences.

use flint_engine::{BlockKey, BlockManager, RddId};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u64),
    Get(u32),
    Remove(u32),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..30, 1u64..400).prop_map(|(k, b)| Op::Insert(k, b)),
            (0u32..30).prop_map(Op::Get),
            (0u32..30).prop_map(Op::Remove),
        ],
        0..60,
    )
}

fn key(i: u32) -> BlockKey {
    BlockKey::RddPart {
        rdd: RddId(0),
        part: i,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Memory and disk usage never exceed their capacities, and
    /// accounting stays consistent with the resident set.
    #[test]
    fn capacities_never_exceeded(ops in arb_ops(), mem in 100u64..800, disk in 100u64..800) {
        let mut bm = BlockManager::new(mem, disk);
        for op in ops {
            match op {
                Op::Insert(k, b) => {
                    let _ = bm.insert(key(k), Arc::new(vec![]), b);
                }
                Op::Get(k) => {
                    let _ = bm.get(&key(k));
                }
                Op::Remove(k) => {
                    let _ = bm.remove(&key(k));
                }
            }
            prop_assert!(bm.mem_used() <= mem, "mem {} > cap {mem}", bm.mem_used());
            prop_assert!(bm.disk_used() <= disk, "disk {} > cap {disk}", bm.disk_used());
        }
        // Every resident key is locatable and every located block is
        // accounted in exactly one tier.
        let mut mem_sum = 0;
        let mut disk_sum = 0;
        for k in bm.keys() {
            let (loc, bytes) = bm.peek(&k).expect("resident key must peek");
            match loc {
                flint_engine::BlockLocation::Memory => mem_sum += bytes,
                flint_engine::BlockLocation::Disk => disk_sum += bytes,
            }
        }
        prop_assert_eq!(mem_sum, bm.mem_used());
        prop_assert_eq!(disk_sum, bm.disk_used());
    }

    /// A block inserted and never evicted-by-overflow nor removed stays
    /// readable with identical contents.
    #[test]
    fn small_inserts_always_resident(keys in proptest::collection::vec(0u32..5, 1..10)) {
        // Five distinct keys of 10 bytes in a 1000-byte cache: no
        // eviction is ever necessary.
        let mut bm = BlockManager::new(1000, 1000);
        for k in &keys {
            bm.insert(key(*k), Arc::new(vec![]), 10);
        }
        for k in keys {
            prop_assert!(bm.get(&key(k)).is_some());
        }
    }
}
