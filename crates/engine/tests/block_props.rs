//! Property tests of the block manager: capacity invariants hold under
//! arbitrary insert/get/remove sequences, and the indexed LRU picks the
//! exact victims the old linear scan picked.

use flint_engine::{BlockKey, BlockManager, RddId};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, u64),
    Get(u32),
    Remove(u32),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..30, 1u64..400).prop_map(|(k, b)| Op::Insert(k, b)),
            (0u32..30).prop_map(Op::Get),
            (0u32..30).prop_map(Op::Remove),
        ],
        0..60,
    )
}

fn key(i: u32) -> BlockKey {
    BlockKey::RddPart {
        rdd: RddId(0),
        part: i,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Memory and disk usage never exceed their capacities, and
    /// accounting stays consistent with the resident set.
    #[test]
    fn capacities_never_exceeded(ops in arb_ops(), mem in 100u64..800, disk in 100u64..800) {
        let mut bm = BlockManager::new(mem, disk);
        for op in ops {
            match op {
                Op::Insert(k, b) => {
                    let _ = bm.insert(key(k), Arc::new(vec![]), b);
                }
                Op::Get(k) => {
                    let _ = bm.get(&key(k));
                }
                Op::Remove(k) => {
                    let _ = bm.remove(&key(k));
                }
            }
            prop_assert!(bm.mem_used() <= mem, "mem {} > cap {mem}", bm.mem_used());
            prop_assert!(bm.disk_used() <= disk, "disk {} > cap {disk}", bm.disk_used());
        }
        // Every resident key is locatable and every located block is
        // accounted in exactly one tier.
        let mut mem_sum = 0;
        let mut disk_sum = 0;
        for k in bm.keys() {
            let (loc, bytes) = bm.peek(&k).expect("resident key must peek");
            match loc {
                flint_engine::BlockLocation::Memory => mem_sum += bytes,
                flint_engine::BlockLocation::Disk => disk_sum += bytes,
            }
        }
        prop_assert_eq!(mem_sum, bm.mem_used());
        prop_assert_eq!(disk_sum, bm.disk_used());
    }

    /// A block inserted and never evicted-by-overflow nor removed stays
    /// readable with identical contents.
    #[test]
    fn small_inserts_always_resident(keys in proptest::collection::vec(0u32..5, 1..10)) {
        // Five distinct keys of 10 bytes in a 1000-byte cache: no
        // eviction is ever necessary.
        let mut bm = BlockManager::new(1000, 1000);
        for k in &keys {
            bm.insert(key(*k), Arc::new(vec![]), 10);
        }
        for k in keys {
            prop_assert!(bm.get(&key(k)).is_some());
        }
    }

    /// The indexed LRU (`BTreeSet<(last_use, key)>`) selects the exact
    /// victim sequence — spills and drops, in order — that the original
    /// linear `min_by_key` scan selected, under randomized insert /
    /// touch / get / remove workloads that force heavy churn.
    #[test]
    fn indexed_lru_victims_match_linear_scan(
        ops in arb_churn_ops(),
        mem in 100u64..600,
        disk in 100u64..600,
    ) {
        let mut bm = BlockManager::new(mem, disk);
        let mut reference = LinearScanLru::new(mem, disk);
        for op in ops {
            match op {
                ChurnOp::Insert(k, b) => {
                    let got = bm.insert_traced(key(k), Arc::new(vec![]), b);
                    let want = reference.insert(key(k), b);
                    prop_assert_eq!(got.stored, want.stored, "stored for {:?}", key(k));
                    prop_assert_eq!(&got.spilled, &want.spilled, "spill victims");
                    prop_assert_eq!(&got.dropped, &want.dropped, "drop victims");
                }
                ChurnOp::Touch(k) => {
                    prop_assert_eq!(bm.touch(&key(k)), reference.touch(&key(k)));
                }
                ChurnOp::Get(k) => {
                    let got = bm.get(&key(k)).map(|(_, loc, vb)| (loc, vb));
                    prop_assert_eq!(got, reference.get(&key(k)));
                }
                ChurnOp::Remove(k) => {
                    prop_assert_eq!(bm.remove(&key(k)), reference.remove(&key(k)));
                }
            }
            prop_assert_eq!(bm.mem_used(), reference.mem_used);
            prop_assert_eq!(bm.disk_used(), reference.disk_used);
        }
        // Final resident sets agree tier-for-tier.
        for k in bm.keys() {
            prop_assert_eq!(bm.peek(&k), reference.peek(&k), "final state of {:?}", k);
        }
        prop_assert_eq!(bm.keys().len(), reference.mem.len() + reference.disk.len());
    }
}

#[derive(Debug, Clone)]
enum ChurnOp {
    Insert(u32, u64),
    Touch(u32),
    Get(u32),
    Remove(u32),
}

fn arb_churn_ops() -> impl Strategy<Value = Vec<ChurnOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u32..24, 1u64..300).prop_map(|(k, b)| ChurnOp::Insert(k, b)),
            (0u32..24, 1u64..300).prop_map(|(k, b)| ChurnOp::Insert(k, b)),
            (0u32..24).prop_map(ChurnOp::Touch),
            (0u32..24).prop_map(ChurnOp::Get),
            (0u32..24).prop_map(ChurnOp::Remove),
        ],
        0..120,
    )
}

#[derive(Debug, Clone, Copy)]
struct RefBlock {
    vbytes: u64,
    last_use: u64,
}

#[derive(Debug, Default)]
struct RefOutcome {
    stored: bool,
    spilled: Vec<(BlockKey, u64)>,
    dropped: Vec<(BlockKey, u64)>,
}

/// A faithful transcription of the pre-index `BlockManager`: plain
/// `HashMap` tiers, victims found by a full `min_by_key((last_use, key))`
/// scan, and the exact original clock-tick sequence (one tick per
/// insert attempt, a second tick when a block lands on disk, one tick
/// per get/touch even on a miss).
struct LinearScanLru {
    mem: HashMap<BlockKey, RefBlock>,
    disk: HashMap<BlockKey, RefBlock>,
    mem_used: u64,
    disk_used: u64,
    mem_cap: u64,
    disk_cap: u64,
    clock: u64,
}

impl LinearScanLru {
    fn new(mem_cap: u64, disk_cap: u64) -> Self {
        LinearScanLru {
            mem: HashMap::new(),
            disk: HashMap::new(),
            mem_used: 0,
            disk_used: 0,
            mem_cap,
            disk_cap,
            clock: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn scan_victim(map: &HashMap<BlockKey, RefBlock>) -> Option<BlockKey> {
        map.iter()
            .min_by_key(|(k, b)| (b.last_use, **k))
            .map(|(k, _)| *k)
    }

    fn insert(&mut self, key: BlockKey, vbytes: u64) -> RefOutcome {
        let mut out = RefOutcome::default();
        if vbytes > self.mem_cap && vbytes > self.disk_cap {
            out.dropped.push((key, vbytes));
            return out;
        }
        self.remove(&key);
        let lu = self.tick();
        if vbytes <= self.mem_cap {
            while self.mem_used + vbytes > self.mem_cap {
                let Some(victim) = Self::scan_victim(&self.mem) else {
                    break;
                };
                let b = self.mem.remove(&victim).unwrap();
                self.mem_used -= b.vbytes;
                out.spilled.push((victim, b.vbytes));
                self.store_on_disk(victim, b.vbytes, &mut out.dropped);
            }
            if self.mem_used + vbytes <= self.mem_cap {
                self.mem.insert(
                    key,
                    RefBlock {
                        vbytes,
                        last_use: lu,
                    },
                );
                self.mem_used += vbytes;
                out.stored = true;
                return out;
            }
        }
        out.stored = self.store_on_disk(key, vbytes, &mut out.dropped);
        out
    }

    fn store_on_disk(
        &mut self,
        key: BlockKey,
        vbytes: u64,
        dropped: &mut Vec<(BlockKey, u64)>,
    ) -> bool {
        if vbytes > self.disk_cap {
            dropped.push((key, vbytes));
            return false;
        }
        while self.disk_used + vbytes > self.disk_cap {
            let Some(victim) = Self::scan_victim(&self.disk) else {
                break;
            };
            let b = self.disk.remove(&victim).unwrap();
            self.disk_used -= b.vbytes;
            dropped.push((victim, b.vbytes));
        }
        if self.disk_used + vbytes > self.disk_cap {
            dropped.push((key, vbytes));
            return false;
        }
        let lu = self.tick();
        self.disk.insert(
            key,
            RefBlock {
                vbytes,
                last_use: lu,
            },
        );
        self.disk_used += vbytes;
        true
    }

    fn touch(&mut self, key: &BlockKey) -> bool {
        let lu = self.tick();
        if let Some(b) = self.mem.get_mut(key) {
            b.last_use = lu;
            return true;
        }
        if let Some(b) = self.disk.get_mut(key) {
            b.last_use = lu;
            return true;
        }
        false
    }

    fn get(&mut self, key: &BlockKey) -> Option<(flint_engine::BlockLocation, u64)> {
        let lu = self.tick();
        if let Some(b) = self.mem.get_mut(key) {
            b.last_use = lu;
            return Some((flint_engine::BlockLocation::Memory, b.vbytes));
        }
        if let Some(b) = self.disk.get_mut(key) {
            b.last_use = lu;
            return Some((flint_engine::BlockLocation::Disk, b.vbytes));
        }
        None
    }

    fn remove(&mut self, key: &BlockKey) -> bool {
        let in_mem = match self.mem.remove(key) {
            Some(b) => {
                self.mem_used -= b.vbytes;
                true
            }
            None => false,
        };
        let on_disk = match self.disk.remove(key) {
            Some(b) => {
                self.disk_used -= b.vbytes;
                true
            }
            None => false,
        };
        in_mem || on_disk
    }

    fn peek(&self, key: &BlockKey) -> Option<(flint_engine::BlockLocation, u64)> {
        if let Some(b) = self.mem.get(key) {
            return Some((flint_engine::BlockLocation::Memory, b.vbytes));
        }
        if let Some(b) = self.disk.get(key) {
            return Some((flint_engine::BlockLocation::Disk, b.vbytes));
        }
        None
    }
}
