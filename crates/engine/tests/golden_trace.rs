//! The trace subsystem's determinism and completeness contracts:
//!
//! * **Golden trace** — with tracing enabled, the JSONL event stream is
//!   *byte-identical* for every `host_threads` setting, even under
//!   scripted revocation. Compute-phase events are buffered in the wave
//!   executor's effect ledger and replayed in commit order, so thread
//!   scheduling cannot reorder the stream.
//! * **Completeness** — folding the stream through `MetricsAggregator`
//!   reproduces the engine's independently-tracked `RunStats`
//!   field-for-field, byte counters included. A trace is a complete
//!   record of a run, not a lossy sample.

use flint_engine::{
    AggField, AggKernel, ChaosConfig, ChaosInjector, ChaosSchedule, CheckpointDirective,
    CheckpointHooks, Driver, DriverConfig, EventSink, FailureInjector, KeyExpr, LineageView,
    MapKernel, NoCheckpoint, NoFailures, NumExpr, PayloadExpr, PredKernel, RddId, RunStats,
    ScalarExpr, ScriptedInjector, StoreFaultPolicy, TraceHandle, TransientVmBackend, Value,
    WorkerEvent, WorkerSpec,
};
use flint_simtime::SimTime;
use flint_trace::{Event, MetricsAggregator};

/// Local mark-on-generation policy: checkpoint the first sufficiently
/// large RDD that materializes. Keeps this crate's tests independent of
/// `flint-core` while still driving the directive → scheduled → written
/// event path.
struct CheckpointFirstLarge {
    done: bool,
}

impl CheckpointHooks for CheckpointFirstLarge {
    fn on_rdd_materialized(
        &mut self,
        view: &LineageView<'_>,
        _events: &mut dyn EventSink,
        rdd: RddId,
        _now: SimTime,
    ) -> Vec<CheckpointDirective> {
        if self.done || view.rdd_vbytes(rdd) == 0 {
            return Vec::new();
        }
        self.done = true;
        vec![CheckpointDirective::Checkpoint(rdd)]
    }
}

/// Runs the determinism suite's multi-stage workload — persisted
/// ancestors, seeded sampling, hash/range shuffles, a join, policy-driven
/// checkpoints, and a mid-job revocation plus replacement — with tracing
/// on, and returns the JSONL stream plus the engine's own stats.
fn run_traced(host_threads: usize) -> (String, RunStats) {
    let cfg = DriverConfig::builder()
        .host_threads(host_threads)
        .size_scale(5e5)
        .build();
    let injector = ScriptedInjector::new(vec![
        (
            SimTime::from_millis(40_000),
            WorkerEvent::Remove { ext_id: 2 },
        ),
        (
            SimTime::from_millis(160_000),
            WorkerEvent::Add {
                ext_id: 100,
                spec: WorkerSpec::r3_large(),
            },
        ),
    ]);
    let mut d = Driver::new(
        cfg,
        Box::new(CheckpointFirstLarge { done: false }),
        Box::new(injector),
    );
    let trace = TraceHandle::disabled();
    let reader = trace.attach_memory(0);
    d.set_trace(trace);
    for ext in 1..=4u64 {
        d.add_worker_with_ext(ext, WorkerSpec::r3_large());
    }

    let src = d
        .ctx()
        .parallelize((0..600).map(|i| Value::from_i64(i * 37 % 251)), 8);
    let pairs = d.ctx().map(src, |v| {
        Value::pair(Value::Int(v.as_i64().unwrap() % 13), v.clone())
    });
    let pairs = d.ctx().persist(pairs);
    let sums = d.ctx().reduce_by_key(pairs, 5, |a, b| {
        Value::Int(a.as_i64().unwrap_or(0) + b.as_i64().unwrap_or(0))
    });
    let sampled = d.ctx().sample(pairs, 0.4, 7);
    let ones = d.ctx().map_values(sampled, |_| Value::Int(1));
    let counts = d.ctx().reduce_by_key(ones, 4, |a, b| {
        Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
    });
    let joined = d.ctx().join(sums, counts, 4);
    let sorted = d.ctx().sort_by_key(joined, 3, true);
    d.collect(sorted).unwrap();
    d.checkpoint_now(sums).unwrap();

    (reader.to_jsonl(), d.stats().clone())
}

#[test]
fn golden_trace_is_identical_across_host_thread_counts() {
    let (golden, stats) = run_traced(1);
    assert!(!golden.is_empty(), "an enabled trace must capture events");
    assert!(stats.revocations > 0, "revocation must land mid-job");
    assert!(stats.checkpoints_written > 0, "policy must checkpoint");
    for threads in [2usize, 8] {
        let (jsonl, other_stats) = run_traced(threads);
        assert_eq!(other_stats, stats, "host_threads={threads} stats diverged");
        assert_eq!(
            jsonl, golden,
            "host_threads={threads} produced a different event stream"
        );
    }
}

/// A shuffle-dominated DAG exercising every bucketed-block code path:
/// a wide hash shuffle (16 maps × 12 reduces), a range sort in each
/// direction (flat until the barrier resolves the partitioner, then
/// converted in place), a join (cogrouped hash shuffles), and a
/// mid-job revocation that forces shuffle recomputation — recomputed
/// hash map outputs bucket eagerly, and resolved range shuffles bucket
/// through the cached partitioner.
fn run_shuffle_heavy(host_threads: usize) -> (String, RunStats) {
    let cfg = DriverConfig::builder()
        .host_threads(host_threads)
        .size_scale(5e5)
        .build();
    let injector = ScriptedInjector::new(vec![
        (
            SimTime::from_millis(60_000),
            WorkerEvent::Remove { ext_id: 3 },
        ),
        (
            SimTime::from_millis(200_000),
            WorkerEvent::Add {
                ext_id: 200,
                spec: WorkerSpec::r3_large(),
            },
        ),
    ]);
    let mut d = Driver::new(
        cfg,
        Box::new(CheckpointFirstLarge { done: false }),
        Box::new(injector),
    );
    let trace = TraceHandle::disabled();
    let reader = trace.attach_memory(0);
    d.set_trace(trace);
    for ext in 1..=4u64 {
        d.add_worker_with_ext(ext, WorkerSpec::r3_large());
    }

    let src = d
        .ctx()
        .parallelize((0..960).map(|i| Value::from_i64(i * 53 % 307)), 16);
    let pairs = d.ctx().map(src, |v| {
        Value::pair(Value::Int(v.as_i64().unwrap() % 37), v.clone())
    });
    let grouped = d.ctx().group_by_key(pairs, 12);
    let sizes = d
        .ctx()
        .map_values(grouped, |vs| Value::Int(i64::from(vs.size_bytes() as u32)));
    let sorted_up = d.ctx().sort_by_key(sizes, 6, true);
    let sorted_down = d.ctx().sort_by_key(sorted_up, 5, false);
    let rejoined = d.ctx().join(sorted_down, sizes, 8);
    d.collect(rejoined).unwrap();

    (reader.to_jsonl(), d.stats().clone())
}

#[test]
fn shuffle_heavy_golden_trace_is_identical_across_host_thread_counts() {
    let (golden, stats) = run_shuffle_heavy(1);
    assert!(!golden.is_empty(), "an enabled trace must capture events");
    assert!(stats.revocations > 0, "revocation must land mid-job");
    for threads in [2usize, 8] {
        let (jsonl, other_stats) = run_shuffle_heavy(threads);
        assert_eq!(other_stats, stats, "host_threads={threads} stats diverged");
        assert_eq!(
            jsonl, golden,
            "host_threads={threads} produced a different event stream"
        );
    }
    // The stream is also a complete record: folding it reproduces the
    // engine's own counters even with bucketed shuffle blocks in play.
    let events: Vec<Event> = golden
        .lines()
        .map(|l| Event::from_json(l).expect("every emitted line must parse"))
        .collect();
    let agg = MetricsAggregator::from_events(&events);
    assert_eq!(agg.tasks_run, stats.tasks_run);
    assert_eq!(agg.compute_time_ms, stats.compute_time.as_millis());
    assert_eq!(agg.recompute_time_ms, stats.recompute_time.as_millis());
    assert_eq!(agg.restores, stats.restores);
    assert_eq!(agg.revocations, stats.revocations);
}

/// PageRank-style iterative job: a persisted `links` RDD is re-read from
/// cache across five rank iterations (each a cogroup-join plus a
/// reduce), with a scripted mid-job revocation whose recompute path
/// restores the policy-checkpointed RDD from the durable store. This is
/// the workload shape the zero-copy record path must not perturb: the
/// same cached blocks are fetched wave after wave, so any change to
/// record sizing or fetch ordering would move the stream.
fn run_iterative_cached(host_threads: usize) -> (String, RunStats) {
    let injector = ScriptedInjector::new(vec![
        (
            SimTime::from_millis(120_000),
            WorkerEvent::Remove { ext_id: 1 },
        ),
        (
            SimTime::from_millis(260_000),
            WorkerEvent::Add {
                ext_id: 50,
                spec: WorkerSpec::r3_large(),
            },
        ),
    ]);
    run_iterative_with(host_threads, Box::new(injector), None)
}

/// The iterative workload with an arbitrary injector and (optionally) a
/// store-fault policy installed — so the chaos-off test can prove that
/// merely *wiring* the chaos machinery changes nothing.
fn run_iterative_with(
    host_threads: usize,
    injector: Box<dyn FailureInjector>,
    store_faults: Option<Box<dyn StoreFaultPolicy>>,
) -> (String, RunStats) {
    run_iterative_configured(host_threads, injector, store_faults, |_| {})
}

/// The fully general form: an arbitrary injector, an optional store-fault
/// policy, and a `configure` hook that runs on the driver before any
/// workers join — the seam the backend-abstraction gate uses to install
/// an explicit [`TransientVmBackend`] and prove it is a perfect no-op.
fn run_iterative_configured(
    host_threads: usize,
    injector: Box<dyn FailureInjector>,
    store_faults: Option<Box<dyn StoreFaultPolicy>>,
    configure: impl FnOnce(&mut Driver),
) -> (String, RunStats) {
    let cfg = DriverConfig::builder()
        .host_threads(host_threads)
        .size_scale(5e5)
        .build();
    let mut d = Driver::new(
        cfg,
        Box::new(CheckpointFirstLarge { done: false }),
        injector,
    );
    if let Some(policy) = store_faults {
        d.checkpoints_mut().set_fault_policy(policy);
    }
    configure(&mut d);
    let trace = TraceHandle::disabled();
    let reader = trace.attach_memory(0);
    d.set_trace(trace);
    for ext in 1..=4u64 {
        d.add_worker_with_ext(ext, WorkerSpec::r3_large());
    }

    let src = d.ctx().parallelize((0..480).map(Value::from_i64), 8);
    let links = d.ctx().map(src, |v| {
        let i = v.as_i64().unwrap();
        Value::pair(Value::Int(i % 60), Value::Int((i * 7 + 3) % 60))
    });
    let links = d.ctx().persist(links);
    let mut ranks = d.ctx().map(links, |e| {
        Value::pair(e.key().cloned().unwrap_or(Value::Null), Value::Float(1.0))
    });
    for _ in 0..5 {
        let joined = d.ctx().join(links, ranks, 6);
        let contribs = d.ctx().map(joined, |p| {
            // (k, List[dest, rank]) -> (dest, rank * 0.85)
            match p.val().and_then(Value::as_list) {
                Some(g) if g.len() == 2 => Value::pair(
                    g[0].clone(),
                    Value::Float(g[1].as_f64().unwrap_or(0.0) * 0.85),
                ),
                _ => Value::pair(Value::Null, Value::Float(0.0)),
            }
        });
        ranks = d.ctx().reduce_by_key(contribs, 6, |a, b| {
            Value::Float(a.as_f64().unwrap_or(0.0) + b.as_f64().unwrap_or(0.0))
        });
    }
    d.collect(ranks).unwrap();
    (reader.to_jsonl(), d.stats().clone())
}

/// FNV-1a over the raw JSONL bytes, for pinning the stream against a
/// previously captured run.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Hash of `run_iterative_cached(1)`'s JSONL captured on the deep-copy
/// `Value` representation (`Pair(Box, Box)`, uncached sizes), *before*
/// the zero-copy record path landed. The refactored engine must
/// reproduce the stream byte-for-byte: virtual sizing, wave grouping,
/// and fetch ordering are all representation-independent contracts.
const GOLDEN_ITERATIVE_TRACE_FNV: u64 = 0x4d8d_70ef_48bb_ead9;

#[test]
fn iterative_cache_reuse_golden_trace_is_stable() {
    let (golden, stats) = run_iterative_cached(1);
    assert!(!golden.is_empty(), "an enabled trace must capture events");
    assert!(stats.revocations > 0, "revocation must land mid-job");
    assert!(stats.checkpoints_written > 0, "policy must checkpoint");
    assert!(stats.restores > 0, "recompute must restore from checkpoint");
    for threads in [2usize, 8] {
        let (jsonl, other_stats) = run_iterative_cached(threads);
        assert_eq!(other_stats, stats, "host_threads={threads} stats diverged");
        assert_eq!(
            jsonl, golden,
            "host_threads={threads} produced a different event stream"
        );
    }
    assert_eq!(
        fnv1a(golden.as_bytes()),
        GOLDEN_ITERATIVE_TRACE_FNV,
        "stream diverged from the pre-change capture (fnv1a = {:#018x})",
        fnv1a(golden.as_bytes())
    );
}

/// Chaos compiled in but switched off must be a perfect no-op: with a
/// zero-rate [`ChaosInjector`] and a zero-rate store-fault policy
/// *installed*, the iterative workload's trace is byte-identical to the
/// plain `NoFailures` run at every `host_threads` setting. This is the
/// guarantee that lets the chaos subsystem ship default-on in the
/// binary without moving any golden stream.
#[test]
fn chaos_disabled_leaves_golden_trace_untouched() {
    let zero_cfg = || {
        let mut ccfg = ChaosConfig::new(99);
        ccfg.revocations = 0;
        ccfg.flap_prob = 0.0;
        ccfg.mass_revoke_prob = 0.0;
        ccfg.torn_write_prob = 0.0;
        ccfg.failed_write_prob = 0.0;
        ccfg.outages = 0;
        ccfg
    };
    let schedule = ChaosSchedule::generate(&zero_cfg());
    assert!(schedule.worker_events.is_empty(), "zero rates → no events");
    assert!(schedule.notes.is_empty());
    assert!(schedule.outages.is_empty());

    let (golden, stats) = run_iterative_with(1, Box::new(NoFailures), None);
    assert_eq!(stats.revocations, 0);
    for threads in [1usize, 2, 8] {
        let ccfg = zero_cfg();
        let schedule = ChaosSchedule::generate(&ccfg);
        let store_faults = schedule.store_faults(&ccfg);
        let (jsonl, chaos_stats) = run_iterative_with(
            threads,
            Box::new(ChaosInjector::from_schedule(schedule)),
            Some(Box::new(store_faults)),
        );
        assert_eq!(
            chaos_stats, stats,
            "host_threads={threads}: zero-rate chaos perturbed the stats"
        );
        assert_eq!(
            jsonl, golden,
            "host_threads={threads}: zero-rate chaos moved the event stream"
        );
    }
}

/// The hazard-model plumbing must also be a perfect no-op when nothing
/// selects it: a zero-rate chaos config that *names* a non-exponential
/// [`flint_market::HazardSpec`] (so the hazard branch is wired, built,
/// and reachable) still produces the byte-identical golden stream and
/// the pinned FNV hash at every `host_threads` setting.
#[test]
fn unselected_hazard_model_leaves_golden_trace_untouched() {
    let zero_hazard_cfg = || {
        let mut ccfg = ChaosConfig::new(99);
        ccfg.revocations = 0;
        ccfg.flap_prob = 0.0;
        ccfg.mass_revoke_prob = 0.0;
        ccfg.torn_write_prob = 0.0;
        ccfg.failed_write_prob = 0.0;
        ccfg.outages = 0;
        ccfg.lifetime_hazard = Some(flint_market::HazardSpec::CappedLifetime {
            early_prob: 0.5,
            cap_hours: 24.0,
        });
        ccfg
    };
    let schedule = ChaosSchedule::generate(&zero_hazard_cfg());
    assert!(schedule.worker_events.is_empty(), "zero rates → no events");
    assert!(schedule.notes.is_empty());
    assert!(schedule.outages.is_empty());

    let (golden, stats) = run_iterative_cached(1);
    assert_eq!(
        fnv1a(golden.as_bytes()),
        GOLDEN_ITERATIVE_TRACE_FNV,
        "default-policy stream moved before hazard wiring was even involved"
    );
    for threads in [1usize, 2, 8] {
        let ccfg = zero_hazard_cfg();
        let schedule = ChaosSchedule::generate(&ccfg);
        let store_faults = schedule.store_faults(&ccfg);
        // The hazard-parameterized chaos schedule is empty, so the run
        // keeps the golden workload's scripted revocation while the
        // zero-rate store-fault policy rides along installed.
        let injector = ScriptedInjector::new(vec![
            (
                SimTime::from_millis(120_000),
                WorkerEvent::Remove { ext_id: 1 },
            ),
            (
                SimTime::from_millis(260_000),
                WorkerEvent::Add {
                    ext_id: 50,
                    spec: WorkerSpec::r3_large(),
                },
            ),
        ]);
        let (jsonl, hazard_stats) =
            run_iterative_with(threads, Box::new(injector), Some(Box::new(store_faults)));
        assert_eq!(
            hazard_stats, stats,
            "host_threads={threads}: unselected hazard perturbed the stats"
        );
        assert_eq!(
            fnv1a(jsonl.as_bytes()),
            GOLDEN_ITERATIVE_TRACE_FNV,
            "host_threads={threads}: unselected hazard moved the pinned stream"
        );
        assert_eq!(jsonl, golden);
    }
}

/// The backend seam must also be invisible when the default backend is
/// installed *explicitly*: `set_backend(TransientVmBackend)` routes every
/// admission and commit through the hook dispatch path, yet the iterative
/// workload's stream stays byte-identical to the pinned pre-refactor
/// capture at every `host_threads` setting. This is the guarantee that
/// the `Backend` trait carve-out is a pure refactor for VM clusters.
#[test]
fn explicit_vm_backend_leaves_golden_trace_untouched() {
    let scripted = || {
        ScriptedInjector::new(vec![
            (
                SimTime::from_millis(120_000),
                WorkerEvent::Remove { ext_id: 1 },
            ),
            (
                SimTime::from_millis(260_000),
                WorkerEvent::Add {
                    ext_id: 50,
                    spec: WorkerSpec::r3_large(),
                },
            ),
        ])
    };
    let (golden, stats) = run_iterative_cached(1);
    assert_eq!(
        fnv1a(golden.as_bytes()),
        GOLDEN_ITERATIVE_TRACE_FNV,
        "default-backend stream moved before the explicit install was involved"
    );
    for threads in [1usize, 2, 8] {
        let (jsonl, vm_stats) =
            run_iterative_configured(threads, Box::new(scripted()), None, |d| {
                d.set_backend(Box::new(TransientVmBackend));
                assert_eq!(d.backend().compute_cost(), 0.0);
                assert_eq!(d.backend().invocations(), 0);
            });
        assert_eq!(
            vm_stats, stats,
            "host_threads={threads}: explicit VM backend perturbed the stats"
        );
        assert_eq!(
            fnv1a(jsonl.as_bytes()),
            GOLDEN_ITERATIVE_TRACE_FNV,
            "host_threads={threads}: explicit VM backend moved the pinned stream"
        );
        assert_eq!(jsonl, golden);
    }
}

/// A TPC-H Q1-shaped scan + wide aggregation declared entirely through
/// batch kernels: lineitem-like rows, a shipdate filter, a projection
/// keyed by `(returnflag, linestatus)`, a combiner shuffle, and a range
/// sort. With `columnar` on, every stage runs vectorized; with it off,
/// the same plan replays through the kernel-generated row closures. The
/// event stream must be byte-identical across *both* axes — thread
/// count and execution form — because all trace observables (vbytes,
/// wave grouping, fetch ordering) are representation-independent.
fn run_tpch_shaped(host_threads: usize, columnar: bool) -> (String, RunStats) {
    let cfg = DriverConfig::builder()
        .host_threads(host_threads)
        .size_scale(5e5)
        .columnar(columnar)
        .build();
    let mut d = Driver::new(cfg, Box::new(NoCheckpoint), Box::new(NoFailures));
    let trace = TraceHandle::disabled();
    let reader = trace.attach_memory(0);
    d.set_trace(trace);
    for ext in 1..=4u64 {
        d.add_worker_with_ext(ext, WorkerSpec::r3_large());
    }

    let flags = ["A", "N", "R"];
    let statuses = ["F", "O"];
    let rows: Vec<Value> = (0..600i64)
        .map(|i| {
            Value::list(vec![
                Value::Int(i % 40),
                Value::Float(((i * 7) % 50) as f64 + 1.0),
                Value::Float(((i * 131) % 1000) as f64 * 10.0 + 900.0),
                Value::Float(((i * 3) % 11) as f64 / 100.0),
                Value::from_str_(flags[(i % 3) as usize]),
                Value::from_str_(statuses[(i % 2) as usize]),
                Value::Int((i * 37) % 2557),
            ])
        })
        .collect();
    let lineitem = d.ctx().parallelize(rows, 8);
    let lineitem = d.ctx().persist(lineitem);
    let filtered = d.ctx().filter_kernel(
        lineitem,
        PredKernel::IntLe {
            field: 6,
            max: 2400,
        },
    );
    let keyed = d.ctx().map_kernel(
        filtered,
        MapKernel::Pair {
            key: KeyExpr::PairOfFields(4, 5),
            val: PayloadExpr::List(vec![
                ScalarExpr::Field(1),
                ScalarExpr::Field(2),
                ScalarExpr::Num(NumExpr::Mul(
                    Box::new(NumExpr::Field(2)),
                    Box::new(NumExpr::Sub(
                        Box::new(NumExpr::Lit(1.0)),
                        Box::new(NumExpr::Field(3)),
                    )),
                )),
                ScalarExpr::IntLit(1),
            ]),
        },
    );
    let agg = d.ctx().reduce_by_key_kernel(
        keyed,
        6,
        AggKernel::SumRow(vec![
            AggField::Float,
            AggField::Float,
            AggField::Float,
            AggField::Int,
        ]),
    );
    let sorted = d.ctx().sort_by_key(agg, 2, true);
    d.collect(sorted).unwrap();
    (reader.to_jsonl(), d.stats().clone())
}

/// Hash of `run_tpch_shaped(1, *)`'s JSONL captured when the columnar
/// batch path landed. Both execution forms must reproduce it: the
/// vectorized kernels may only change real wall-clock, never the
/// simulated stream.
const GOLDEN_TPCH_TRACE_FNV: u64 = 0xaad4_e7a8_4e6b_9342;

#[test]
fn tpch_shaped_golden_trace_is_identical_across_threads_and_forms() {
    let (golden, stats) = run_tpch_shaped(1, true);
    assert!(!golden.is_empty(), "an enabled trace must capture events");
    assert!(stats.tasks_run > 0);
    for threads in [1usize, 2, 8] {
        for columnar in [true, false] {
            let (jsonl, other_stats) = run_tpch_shaped(threads, columnar);
            assert_eq!(
                other_stats, stats,
                "host_threads={threads} columnar={columnar} stats diverged"
            );
            assert_eq!(
                jsonl, golden,
                "host_threads={threads} columnar={columnar} moved the event stream"
            );
        }
    }
    assert_eq!(
        fnv1a(golden.as_bytes()),
        GOLDEN_TPCH_TRACE_FNV,
        "stream diverged from the capture (fnv1a = {:#018x})",
        fnv1a(golden.as_bytes())
    );
}

#[test]
fn aggregator_reproduces_run_stats_exactly() {
    let (jsonl, stats) = run_traced(2);
    let events: Vec<Event> = jsonl
        .lines()
        .map(|l| Event::from_json(l).expect("every emitted line must parse"))
        .collect();
    let agg = MetricsAggregator::from_events(&events);

    assert_eq!(agg.events, events.len() as u64);
    assert_eq!(agg.tasks_run, stats.tasks_run);
    assert_eq!(agg.compute_time_ms, stats.compute_time.as_millis());
    assert_eq!(agg.recompute_time_ms, stats.recompute_time.as_millis());
    assert_eq!(agg.checkpoint_time_ms, stats.checkpoint_time.as_millis());
    assert_eq!(agg.checkpoints_written, stats.checkpoints_written);
    assert_eq!(agg.checkpoint_bytes, stats.checkpoint_bytes);
    assert_eq!(agg.checkpoint_wire_bytes, stats.checkpoint_wire_bytes);
    assert_eq!(agg.restore_time_ms, stats.restore_time.as_millis());
    assert_eq!(agg.restores, stats.restores);
    assert_eq!(agg.stall_time_ms, stats.stall_time.as_millis());
    assert_eq!(agg.revocations, stats.revocations);
    assert_eq!(agg.warnings, stats.warnings);
    assert_eq!(agg.actions, stats.actions.len() as u64);
    assert!(agg.waves > 0);
    assert!(agg.cache_inserts > 0);
    assert!(agg.checkpoints_scheduled > 0);
}

#[test]
fn trace_round_trips_through_json() {
    let (jsonl, _) = run_traced(1);
    for line in jsonl.lines() {
        let ev = Event::from_json(line).expect("line must parse");
        assert_eq!(ev.to_json(), line, "JSON round-trip must be lossless");
    }
}

#[test]
fn timestamps_never_go_backwards() {
    let (jsonl, _) = run_traced(8);
    let mut prev = SimTime::ZERO;
    for line in jsonl.lines() {
        let ev = Event::from_json(line).unwrap();
        assert!(ev.t >= prev, "event stream must be time-ordered");
        prev = ev.t;
    }
}

#[test]
fn disabled_trace_records_nothing_and_changes_nothing() {
    // A run with no sink attached must behave identically to one with a
    // sink (same stats), with zero events recorded.
    let (_, traced_stats) = run_traced(4);
    let cfg = DriverConfig::builder()
        .host_threads(4)
        .size_scale(5e5)
        .build();
    let injector = ScriptedInjector::new(vec![
        (
            SimTime::from_millis(40_000),
            WorkerEvent::Remove { ext_id: 2 },
        ),
        (
            SimTime::from_millis(160_000),
            WorkerEvent::Add {
                ext_id: 100,
                spec: WorkerSpec::r3_large(),
            },
        ),
    ]);
    let mut d = Driver::new(
        cfg,
        Box::new(CheckpointFirstLarge { done: false }),
        Box::new(injector),
    );
    assert!(!d.trace().is_enabled());
    for ext in 1..=4u64 {
        d.add_worker_with_ext(ext, WorkerSpec::r3_large());
    }
    let src = d
        .ctx()
        .parallelize((0..600).map(|i| Value::from_i64(i * 37 % 251)), 8);
    let pairs = d.ctx().map(src, |v| {
        Value::pair(Value::Int(v.as_i64().unwrap() % 13), v.clone())
    });
    let pairs = d.ctx().persist(pairs);
    let sums = d.ctx().reduce_by_key(pairs, 5, |a, b| {
        Value::Int(a.as_i64().unwrap_or(0) + b.as_i64().unwrap_or(0))
    });
    let sampled = d.ctx().sample(pairs, 0.4, 7);
    let ones = d.ctx().map_values(sampled, |_| Value::Int(1));
    let counts = d.ctx().reduce_by_key(ones, 4, |a, b| {
        Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
    });
    let joined = d.ctx().join(sums, counts, 4);
    let sorted = d.ctx().sort_by_key(joined, 3, true);
    d.collect(sorted).unwrap();
    d.checkpoint_now(sums).unwrap();
    assert_eq!(d.stats(), &traced_stats, "tracing must not perturb the run");
}
