//! Edge-case integration tests of the engine: empty data, degenerate
//! partitioning, recovery interleavings, and cross-job reuse.

use flint_engine::{
    Driver, DriverConfig, NoCheckpoint, ScriptedInjector, Value, WorkerEvent, WorkerSpec,
};
use flint_simtime::{SimDuration, SimTime};

#[test]
fn empty_source_through_every_operator() {
    let mut d = Driver::local(2);
    let empty = d.ctx().parallelize(std::iter::empty(), 3);
    let mapped = d.ctx().map(empty, |v| v.clone());
    let filtered = d.ctx().filter(mapped, |_| true);
    let grouped = d.ctx().group_by_key(filtered, 2);
    let sorted = d.ctx().sort_by_key(grouped, 2, true);
    assert_eq!(d.count(sorted).unwrap(), 0);
    assert_eq!(d.collect(sorted).unwrap(), Vec::<Value>::new());
    assert!(d.take(sorted, 5).unwrap().is_empty());
}

#[test]
fn take_beyond_length_returns_everything() {
    let mut d = Driver::local(2);
    let src = d.ctx().parallelize((0..7).map(Value::from_i64), 3);
    assert_eq!(d.take(src, 100).unwrap().len(), 7);
}

#[test]
fn single_partition_single_worker() {
    let mut d = Driver::local(1);
    let src = d.ctx().parallelize((0..50).map(Value::from_i64), 1);
    let pairs = d.ctx().map(src, |v| {
        Value::pair(Value::Int(v.as_i64().unwrap() % 3), v.clone())
    });
    let red = d.ctx().reduce_by_key(pairs, 1, |a, b| {
        Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
    });
    assert_eq!(d.count(red).unwrap(), 3);
}

#[test]
fn explicit_checkpoint_of_shuffle_output() {
    let mut d = Driver::local(3);
    let src = d.ctx().parallelize((0..200).map(Value::from_i64), 6);
    let pairs = d.ctx().map(src, |v| {
        Value::pair(Value::Int(v.as_i64().unwrap() % 9), Value::Int(1))
    });
    let red = d.ctx().reduce_by_key(pairs, 4, |a, b| {
        Value::Int(a.as_i64().unwrap() + b.as_i64().unwrap())
    });
    d.checkpoint_now(red).unwrap();
    assert!(d.checkpoints().is_fully_checkpointed(red.id()));
    // A dependent job after checkpointing is consistent.
    let doubled = d
        .ctx()
        .map_values(red, |v| Value::Int(v.as_i64().unwrap() * 2));
    let total = d
        .reduce(doubled, |a, b| {
            let av = a
                .val()
                .map(|x| x.as_i64().unwrap())
                .unwrap_or(a.as_i64().unwrap_or(0));
            let bv = b
                .val()
                .map(|x| x.as_i64().unwrap())
                .unwrap_or(b.as_i64().unwrap_or(0));
            Value::Int(av + bv)
        })
        .unwrap();
    assert!(total.as_i64().is_some() || total.val().is_some());
}

#[test]
fn union_of_shuffle_outputs_recovers() {
    // Two independent shuffles unioned, with a revocation mid-run: the
    // planner must rebuild both shuffles' lost map outputs.
    let build = |d: &mut Driver| {
        let a = d.ctx().parallelize((0..100).map(Value::from_i64), 4);
        let b = d.ctx().parallelize((100..200).map(Value::from_i64), 4);
        let pa = d.ctx().map(a, |v| {
            Value::pair(Value::Int(v.as_i64().unwrap() % 5), Value::Int(1))
        });
        let pb = d.ctx().map(b, |v| {
            Value::pair(Value::Int(v.as_i64().unwrap() % 5), Value::Int(1))
        });
        let ra = d.ctx().reduce_by_key(pa, 3, |x, y| {
            Value::Int(x.as_i64().unwrap() + y.as_i64().unwrap())
        });
        let rb = d.ctx().reduce_by_key(pb, 3, |x, y| {
            Value::Int(x.as_i64().unwrap() + y.as_i64().unwrap())
        });
        d.ctx().union(ra, rb)
    };
    let mut clean = Driver::local(4);
    let u = build(&mut clean);
    let mut golden = clean.collect(u).unwrap();
    golden.sort();

    let mut cfg = DriverConfig::default();
    cfg.cost.size_scale = 1e6;
    let mut d = Driver::new(
        cfg,
        Box::new(NoCheckpoint),
        Box::new(ScriptedInjector::new(vec![
            (
                SimTime::from_millis(2_000),
                WorkerEvent::Remove { ext_id: 1 },
            ),
            (
                SimTime::from_millis(20_000),
                WorkerEvent::Add {
                    ext_id: 9,
                    spec: WorkerSpec::r3_large(),
                },
            ),
        ])),
    );
    for ext in 1..=4u64 {
        d.add_worker_with_ext(ext, WorkerSpec::r3_large());
    }
    let u = build(&mut d);
    let mut got = d.collect(u).unwrap();
    got.sort();
    assert_eq!(got, golden);
}

#[test]
fn repartition_preserves_multiset() {
    let mut d = Driver::local(2);
    let src = d.ctx().parallelize((0..60).map(|i| Value::Int(i % 10)), 6);
    let re = d.ctx().repartition(src, 3);
    assert_eq!(d.ctx().num_partitions(re), 3);
    // Key by the value itself to count the multiset.
    let keyed = d.ctx().map(re, |v| Value::pair(v.clone(), Value::Null));
    let counts = d.count_by_key(keyed).unwrap();
    assert_eq!(counts.len(), 10);
    assert!(counts.values().all(|c| *c == 6));
}

#[test]
fn idle_time_advances_clock_without_side_effects() {
    let mut d = Driver::local(2);
    let src = d.ctx().parallelize((0..10).map(Value::from_i64), 2);
    let c1 = d.count(src).unwrap();
    let t1 = d.now();
    d.idle_until(t1 + SimDuration::from_hours(5)).unwrap();
    assert!(d.now() >= t1 + SimDuration::from_hours(5));
    assert_eq!(d.count(src).unwrap(), c1);
}

#[test]
fn stats_action_records_are_complete() {
    let mut d = Driver::local(2);
    let src = d.ctx().parallelize((0..10).map(Value::from_i64), 2);
    let _ = d.count(src).unwrap();
    let _ = d.collect(src).unwrap();
    let s = d.stats();
    assert_eq!(s.actions.len(), 2);
    assert!(s.actions[0].name.starts_with("count"));
    assert!(s.actions[1].name.starts_with("collect"));
    for a in &s.actions {
        assert!(a.finished >= a.started);
    }
    assert!(s.tasks_run >= 2);
}

#[test]
fn lineage_dot_reflects_job_structure() {
    let mut d = Driver::local(2);
    let src = d.ctx().parallelize((0..10).map(Value::from_i64), 2);
    let pairs = d.ctx().map(src, |v| Value::pair(v.clone(), Value::Int(1)));
    let red = d.ctx().reduce_by_key(pairs, 2, |a, _| a.clone());
    let _ = d.count(red).unwrap();
    let dot = d.lineage().to_dot();
    assert!(dot.contains("parallelize"));
    assert!(dot.contains("reduce_by_key"));
    assert!(dot.contains("color=red"), "shuffle edge must be marked");
}
