//! Synthetic "peaky" spot-price trace generation.
//!
//! The paper (§5.5) observes that 2015-era EC2 spot prices are *peaky*:
//! long stretches at a low steady state, punctuated by short spikes that
//! jump far above the on-demand price and then return. That shape is what
//! makes (a) bidding the on-demand price optimal over a wide range
//! (Fig. 11b) and (b) revocations effectively all-or-nothing per market.
//! The generator reproduces it with a marked Poisson process of spikes on
//! top of a slowly jittering base price.

use flint_simtime::rng::stream;
use flint_simtime::{SimDuration, SimTime};
use rand::Rng;
use rand_distr_shim::sample_exp;
use serde::{Deserialize, Serialize};

use crate::PriceTrace;

/// Minimal exponential sampling without pulling in `rand_distr`.
mod rand_distr_shim {
    use rand::Rng;

    /// Samples Exp(mean) via inverse transform.
    pub fn sample_exp<R: Rng>(rng: &mut R, mean: f64) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }
}

/// Statistical profile of a spot market's price process.
///
/// All prices are in dollars per hour. The defaults in the named
/// constructors are calibrated so a bid at the on-demand price observes
/// the MTTFs the paper reports (≈19 h for a volatile market up to ≈700 h
/// for a quiet one, Fig. 2a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Steady-state spot price between spikes.
    pub base_price: f64,
    /// On-demand price of the equivalent instance.
    pub on_demand_price: f64,
    /// Poisson rate of price spikes, per hour.
    pub spike_rate_per_hour: f64,
    /// Spike height as a multiple of the on-demand price, sampled
    /// uniformly from this `(low, high)` range. EC2 caps bids at 10x
    /// on-demand, so heights above 10 guarantee revocation at any bid.
    pub spike_height_mult: (f64, f64),
    /// Mean spike duration in minutes (exponentially distributed).
    pub mean_spike_mins: f64,
    /// Relative jitter applied to the base price at each re-jitter epoch.
    pub base_jitter: f64,
    /// Mean interval between base-price re-jitters, in hours.
    pub jitter_interval_hours: f64,
}

impl TraceProfile {
    /// A volatile market: MTTF ≈ 19 h at an on-demand bid (the paper's
    /// `sa-east-1a` example). Volatile markets have the *lowest* steady
    /// state — risk is what the discount pays for — which is what makes
    /// "cheapest current price" selection (SpotFleet) a trap.
    pub fn volatile(on_demand_price: f64) -> Self {
        TraceProfile {
            base_price: on_demand_price * 0.11,
            on_demand_price,
            spike_rate_per_hour: 1.0 / 19.0,
            spike_height_mult: (2.0, 12.0),
            mean_spike_mins: 25.0,
            base_jitter: 0.25,
            jitter_interval_hours: 1.0,
        }
    }

    /// A moderately volatile market: MTTF ≈ 100 h at an on-demand bid
    /// (the paper's `eu-west-1c` example).
    pub fn moderate(on_demand_price: f64) -> Self {
        TraceProfile {
            base_price: on_demand_price * 0.10,
            on_demand_price,
            spike_rate_per_hour: 1.0 / 100.0,
            spike_height_mult: (2.0, 12.0),
            mean_spike_mins: 20.0,
            base_jitter: 0.2,
            jitter_interval_hours: 1.5,
        }
    }

    /// A quiet market: MTTF ≈ 700 h at an on-demand bid (the paper's
    /// `us-west-2c` example).
    pub fn quiet(on_demand_price: f64) -> Self {
        TraceProfile {
            base_price: on_demand_price * 0.12,
            on_demand_price,
            spike_rate_per_hour: 1.0 / 700.0,
            spike_height_mult: (2.0, 12.0),
            mean_spike_mins: 15.0,
            base_jitter: 0.15,
            jitter_interval_hours: 2.0,
        }
    }

    /// A market with an arbitrary target MTTF (hours) at an on-demand bid.
    ///
    /// Spike durations are scaled down for very volatile targets so the
    /// market keeps a low spike duty cycle (≲5 %) and the mean price
    /// stays below on-demand — otherwise a low-MTTF market would be
    /// uneconomical by construction and every policy would just fall
    /// back to on-demand.
    pub fn with_mttf_hours(on_demand_price: f64, mttf_hours: f64) -> Self {
        let mut p = TraceProfile::volatile(on_demand_price);
        p.spike_rate_per_hour = 1.0 / mttf_hours.max(1e-3);
        p.mean_spike_mins = (mttf_hours * 60.0 * 0.05).clamp(1.0, 25.0);
        p
    }
}

/// A realized marked Poisson process of price spikes.
///
/// Each spike is `(start, duration, price)`. Spike processes can be
/// generated independently per market, or shared between markets to induce
/// the correlated revocations Flint's interactive policy must avoid
/// (Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikeProcess {
    /// Realized spikes, sorted by start time.
    pub spikes: Vec<(SimTime, SimDuration, f64)>,
}

impl SpikeProcess {
    /// Samples a spike process with the profile's rate scaled by
    /// `rate_scale`, over `[0, horizon)`.
    pub fn sample(
        profile: &TraceProfile,
        rate_scale: f64,
        horizon: SimTime,
        seed: u64,
        label: &str,
    ) -> Self {
        let mut rng = stream(seed, label);
        let rate = profile.spike_rate_per_hour * rate_scale;
        let mut spikes = Vec::new();
        if rate <= 0.0 {
            return SpikeProcess { spikes };
        }
        let mean_gap_hours = 1.0 / rate;
        let mut t = SimTime::ZERO;
        loop {
            let gap = SimDuration::from_hours_f64(sample_exp(&mut rng, mean_gap_hours));
            t += gap;
            if t >= horizon {
                break;
            }
            let dur =
                SimDuration::from_secs_f64(sample_exp(&mut rng, profile.mean_spike_mins * 60.0))
                    .max(SimDuration::from_secs(30));
            let (lo, hi) = profile.spike_height_mult;
            let height = profile.on_demand_price * rng.gen_range(lo..hi);
            spikes.push((t, dur, height));
        }
        SpikeProcess { spikes }
    }

    /// Merges two spike processes, keeping chronological order.
    pub fn merge(mut self, other: &SpikeProcess) -> Self {
        self.spikes.extend(other.spikes.iter().cloned());
        self.spikes.sort_by_key(|(t, _, _)| *t);
        self
    }
}

/// Deterministic generator of price traces from a master seed.
///
/// # Examples
///
/// ```
/// use flint_market::{TraceGenerator, TraceProfile};
/// use flint_simtime::{SimDuration, SimTime};
///
/// let g = TraceGenerator::new(7, SimTime::ZERO + SimDuration::from_days(60));
/// let profile = TraceProfile::volatile(0.35);
/// let a = g.generate("m1", &profile);
/// let b = g.generate("m1", &profile);
/// assert_eq!(a, b); // fully deterministic
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    seed: u64,
    horizon: SimTime,
}

impl TraceGenerator {
    /// Creates a generator producing traces over `[0, horizon)` from
    /// `seed`.
    pub fn new(seed: u64, horizon: SimTime) -> Self {
        TraceGenerator { seed, horizon }
    }

    /// Returns the trace horizon.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Generates an independent trace for the market labelled `label`.
    pub fn generate(&self, label: &str, profile: &TraceProfile) -> PriceTrace {
        let spikes = SpikeProcess::sample(profile, 1.0, self.horizon, self.seed, label);
        self.build(label, profile, &spikes)
    }

    /// Generates a family of traces whose spikes are correlated with
    /// coefficient `rho` in `[0, 1]`.
    ///
    /// Each market adopts a *shared* spike process with rate `rho * rate`
    /// plus an independent process with rate `(1 - rho) * rate`, so every
    /// market keeps the profile's marginal spike rate while any pair
    /// shares a `rho` fraction of its spikes — the construction behind the
    /// correlated squares in Fig. 4.
    pub fn generate_correlated(
        &self,
        group_label: &str,
        labels: &[&str],
        profile: &TraceProfile,
        rho: f64,
    ) -> Vec<PriceTrace> {
        let rho = rho.clamp(0.0, 1.0);
        let shared = SpikeProcess::sample(profile, rho, self.horizon, self.seed, group_label);
        labels
            .iter()
            .map(|label| {
                let own = SpikeProcess::sample(profile, 1.0 - rho, self.horizon, self.seed, label);
                let all = own.merge(&shared);
                self.build(label, profile, &all)
            })
            .collect()
    }

    /// Builds the piecewise-constant trace: jittered base price overlaid
    /// with the spike process (maximum of active spikes wins).
    fn build(&self, label: &str, profile: &TraceProfile, spikes: &SpikeProcess) -> PriceTrace {
        let mut rng = stream(self.seed, &format!("base:{label}"));

        // Base-price change points.
        let mut base_points: Vec<(SimTime, f64)> = vec![(SimTime::ZERO, profile.base_price)];
        let mut t = SimTime::ZERO;
        loop {
            let gap = SimDuration::from_hours_f64(sample_exp(
                &mut rng,
                profile.jitter_interval_hours.max(1e-3),
            ));
            t += gap;
            if t >= self.horizon {
                break;
            }
            let jitter: f64 = rng.gen_range(-profile.base_jitter..=profile.base_jitter);
            base_points.push((t, (profile.base_price * (1.0 + jitter)).max(0.001)));
        }

        // Sweep over all boundaries; at each boundary the price is the max
        // active spike height, or the base price if no spike is active.
        let mut boundaries: Vec<SimTime> = base_points.iter().map(|(t, _)| *t).collect();
        for &(s, d, _) in &spikes.spikes {
            boundaries.push(s);
            boundaries.push((s + d).min(self.horizon));
        }
        boundaries.sort();
        boundaries.dedup();

        let base_at = |t: SimTime| -> f64 {
            match base_points.binary_search_by_key(&t, |(pt, _)| *pt) {
                Ok(i) => base_points[i].1,
                Err(0) => base_points[0].1,
                Err(i) => base_points[i - 1].1,
            }
        };

        let mut points = Vec::with_capacity(boundaries.len());
        for b in boundaries {
            let spike_price = spikes
                .spikes
                .iter()
                .filter(|(s, d, _)| *s <= b && b < *s + *d)
                .map(|(_, _, h)| *h)
                .fold(f64::NEG_INFINITY, f64::max);
            let price = if spike_price.is_finite() {
                spike_price.max(base_at(b))
            } else {
                base_at(b)
            };
            points.push((b, price));
        }
        PriceTrace::from_points(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon_days(d: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_days(d)
    }

    #[test]
    fn generation_is_deterministic() {
        let g = TraceGenerator::new(99, horizon_days(30));
        let p = TraceProfile::volatile(0.35);
        assert_eq!(g.generate("x", &p), g.generate("x", &p));
    }

    #[test]
    fn different_labels_differ() {
        let g = TraceGenerator::new(99, horizon_days(30));
        let p = TraceProfile::volatile(0.35);
        assert_ne!(g.generate("x", &p), g.generate("y", &p));
    }

    #[test]
    fn realized_mttf_tracks_profile() {
        // A 19 h-MTTF profile over 90 days should yield an empirical MTTF
        // within a factor of ~1.6 of the target.
        let g = TraceGenerator::new(4, horizon_days(90));
        let p = TraceProfile::volatile(0.35);
        let tr = g.generate("m", &p);
        let mttf = tr.mttf_at(SimTime::ZERO, horizon_days(90), p.on_demand_price);
        let h = mttf.as_hours_f64();
        assert!(h > 12.0 && h < 32.0, "empirical MTTF {h:.1}h out of range");
    }

    #[test]
    fn quiet_market_rarely_spikes() {
        let g = TraceGenerator::new(4, horizon_days(90));
        let p = TraceProfile::quiet(0.35);
        let tr = g.generate("m", &p);
        let crossings = tr.up_crossings(SimTime::ZERO, horizon_days(90), p.on_demand_price);
        // Expected ~3 spikes in 90 days at 1/700h.
        assert!(
            crossings.len() <= 12,
            "too many spikes: {}",
            crossings.len()
        );
    }

    #[test]
    fn base_price_stays_below_on_demand() {
        let g = TraceGenerator::new(11, horizon_days(30));
        let p = TraceProfile::moderate(0.50);
        let tr = g.generate("m", &p);
        let mean = tr.mean_price(SimTime::ZERO, horizon_days(30));
        assert!(
            mean < 0.35 * p.on_demand_price,
            "mean spot price {mean} should sit well below on-demand"
        );
    }

    #[test]
    fn spikes_exceed_bid_cap_range() {
        let g = TraceGenerator::new(5, horizon_days(90));
        let p = TraceProfile::volatile(0.35);
        let tr = g.generate("m", &p);
        assert!(tr.max_price() > 2.0 * p.on_demand_price);
    }

    #[test]
    fn fully_correlated_traces_share_revocations() {
        let g = TraceGenerator::new(21, horizon_days(60));
        let p = TraceProfile::volatile(0.35);
        let traces = g.generate_correlated("grp", &["a", "b"], &p, 1.0);
        let e = horizon_days(60);
        let xa = traces[0].up_crossings(SimTime::ZERO, e, p.on_demand_price);
        let xb = traces[1].up_crossings(SimTime::ZERO, e, p.on_demand_price);
        assert_eq!(xa, xb);
        assert!(!xa.is_empty());
    }

    #[test]
    fn uncorrelated_traces_rarely_align() {
        let g = TraceGenerator::new(21, horizon_days(90));
        let p = TraceProfile::volatile(0.35);
        let traces = g.generate_correlated("grp", &["a", "b"], &p, 0.0);
        let e = horizon_days(90);
        let xa = traces[0].up_crossings(SimTime::ZERO, e, p.on_demand_price);
        let xb = traces[1].up_crossings(SimTime::ZERO, e, p.on_demand_price);
        let shared = xa.iter().filter(|t| xb.contains(t)).count();
        assert_eq!(
            shared, 0,
            "independent processes should not share spike starts"
        );
    }

    #[test]
    fn zero_rate_process_is_empty() {
        let p = TraceProfile {
            spike_rate_per_hour: 0.0,
            ..TraceProfile::volatile(0.35)
        };
        let sp = SpikeProcess::sample(&p, 1.0, horizon_days(30), 1, "z");
        assert!(sp.spikes.is_empty());
    }
}
