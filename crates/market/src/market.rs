//! Markets, instance specifications, and per-market statistics.

use flint_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::PriceTrace;

/// Identifier of a market within a [`crate::MarketCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MarketId(pub u32);

/// Hardware shape of the instances sold by a market.
///
/// Mirrors the paper's testbed: `r3.large` has 2 vCPUs, 15 GB memory and
/// 32 GB of local SSD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Number of virtual CPUs.
    pub vcpus: u32,
    /// Memory in GiB.
    pub mem_gb: f64,
    /// Local (volatile) SSD in GiB, lost on revocation.
    pub local_ssd_gb: f64,
}

impl InstanceSpec {
    /// The paper's evaluation instance: `r3.large`.
    pub const R3_LARGE: InstanceSpec = InstanceSpec {
        vcpus: 2,
        mem_gb: 15.0,
        local_ssd_gb: 32.0,
    };

    /// A larger memory-optimized instance (`m2.2xlarge`-like).
    pub const M2_2XLARGE: InstanceSpec = InstanceSpec {
        vcpus: 4,
        mem_gb: 34.2,
        local_ssd_gb: 850.0,
    };

    /// A general-purpose instance (`m3.2xlarge`-like).
    pub const M3_2XLARGE: InstanceSpec = InstanceSpec {
        vcpus: 8,
        mem_gb: 30.0,
        local_ssd_gb: 160.0,
    };

    /// A first-generation instance (`m1.xlarge`-like).
    pub const M1_XLARGE: InstanceSpec = InstanceSpec {
        vcpus: 4,
        mem_gb: 15.0,
        local_ssd_gb: 840.0,
    };
}

/// The pricing/revocation regime of a market.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MarketKind {
    /// EC2-style spot market: dynamic price, revoked on up-crossing of the
    /// bid, two-minute warning.
    Spot,
    /// GCE-style preemptible: fixed price, ≤24 h lifetime, 30 s warning.
    Preemptible {
        /// Probability that an instance is revoked before the 24 h cap.
        early_revocation_prob: f64,
    },
    /// Non-revocable on-demand capacity (modeled as an infinite-MTTF pool).
    OnDemand,
}

/// One transient-server market (an instance type in an availability zone).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Market {
    /// Identifier within the catalog.
    pub id: MarketId,
    /// Human-readable name, e.g. `"us-east-1a/m3.2xlarge"`.
    pub name: String,
    /// Availability zone, used for correlation grouping.
    pub zone: String,
    /// Hardware sold by this market.
    pub spec: InstanceSpec,
    /// On-demand price of the equivalent instance, $/hour.
    pub on_demand_price: f64,
    /// Pricing regime.
    pub kind: MarketKind,
    /// Price history and future (the simulator's ground truth; policies
    /// may only look backwards from "now").
    pub trace: PriceTrace,
}

impl Market {
    /// Returns the spot price at instant `t` (the fixed price for
    /// non-spot kinds).
    pub fn price_at(&self, t: SimTime) -> f64 {
        match self.kind {
            MarketKind::Spot => self.trace.price_at(t),
            MarketKind::Preemptible { .. } | MarketKind::OnDemand => self.trace.price_at(t),
        }
    }

    /// Computes backward-looking statistics over `[now - window, now)`.
    ///
    /// This is the *only* view of a market that Flint's policies are
    /// allowed to consume: everything is derived from history, never from
    /// the future of the trace.
    pub fn stats(&self, now: SimTime, window: SimDuration, bid: f64) -> MarketStats {
        let from = now.saturating_sub(window);
        let mean = self.trace.mean_price(from, now);
        let current = self.trace.price_at(now);
        let mttf = match self.kind {
            MarketKind::Spot => self.trace.mttf_at(from, now, bid),
            MarketKind::Preemptible {
                early_revocation_prob,
            } => {
                // Lifetime = 24 h cap, except an `early_revocation_prob`
                // chance of a uniform early kill: E[L] = p*12h + (1-p)*24h.
                let hours = early_revocation_prob * 12.0 + (1.0 - early_revocation_prob) * 24.0;
                SimDuration::from_hours_f64(hours)
            }
            MarketKind::OnDemand => SimDuration::MAX,
        };
        MarketStats {
            market: self.id,
            current_price: current,
            mean_price: mean,
            mttf,
        }
    }

    /// Returns `true` if this market can revoke instances.
    pub fn is_revocable(&self) -> bool {
        !matches!(self.kind, MarketKind::OnDemand)
    }
}

/// Backward-looking statistics of a market, as consumed by Flint policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarketStats {
    /// The market these statistics describe.
    pub market: MarketId,
    /// Instantaneous price at the observation time.
    pub current_price: f64,
    /// Time-weighted mean price over the observation window.
    pub mean_price: f64,
    /// Estimated mean time to failure at the observed bid.
    pub mttf: SimDuration,
}

impl MarketStats {
    /// Returns `true` if the instantaneous price is within `threshold`
    /// (relative) of the mean price — the paper's "do not buy into a
    /// spiking market" filter (§3.1.2).
    pub fn price_is_stable(&self, threshold: f64) -> bool {
        if self.mean_price <= 0.0 {
            return false;
        }
        self.current_price <= self.mean_price * (1.0 + threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, TraceProfile};

    fn spot_market(mttf_hours: f64) -> Market {
        let horizon = SimTime::ZERO + SimDuration::from_days(90);
        let g = TraceGenerator::new(3, horizon);
        let profile = TraceProfile::with_mttf_hours(0.35, mttf_hours);
        Market {
            id: MarketId(0),
            name: "test/m1.xlarge".into(),
            zone: "test".into(),
            spec: InstanceSpec::M1_XLARGE,
            on_demand_price: 0.35,
            kind: MarketKind::Spot,
            trace: g.generate("test", &profile),
        }
    }

    #[test]
    fn stats_window_is_backward_looking() {
        let m = spot_market(20.0);
        let now = SimTime::ZERO + SimDuration::from_days(60);
        let s = m.stats(now, SimDuration::from_days(30), m.on_demand_price);
        assert!(s.mean_price > 0.0);
        assert!(s.mttf > SimDuration::ZERO);
        let h = s.mttf.as_hours_f64();
        assert!(
            h > 8.0 && h < 60.0,
            "MTTF estimate {h:.1}h far from 20h target"
        );
    }

    #[test]
    fn on_demand_market_never_fails() {
        let m = Market {
            id: MarketId(1),
            name: "od".into(),
            zone: "z".into(),
            spec: InstanceSpec::R3_LARGE,
            on_demand_price: 0.175,
            kind: MarketKind::OnDemand,
            trace: PriceTrace::flat(0.175),
        };
        let s = m.stats(
            SimTime::from_hours_f64(100.0),
            SimDuration::from_days(7),
            0.175,
        );
        assert_eq!(s.mttf, SimDuration::MAX);
        assert!(!m.is_revocable());
        assert_eq!(s.current_price, 0.175);
    }

    #[test]
    fn preemptible_mttf_matches_lifetime_model() {
        let m = Market {
            id: MarketId(2),
            name: "gce".into(),
            zone: "gce-z".into(),
            spec: InstanceSpec::R3_LARGE,
            on_demand_price: 0.20,
            kind: MarketKind::Preemptible {
                early_revocation_prob: 0.3,
            },
            trace: PriceTrace::flat(0.06),
        };
        let s = m.stats(
            SimTime::from_hours_f64(100.0),
            SimDuration::from_days(7),
            0.06,
        );
        // 0.3 * 12 + 0.7 * 24 = 20.4 hours.
        assert!((s.mttf.as_hours_f64() - 20.4).abs() < 0.01);
    }

    #[test]
    fn stability_filter() {
        let s = MarketStats {
            market: MarketId(0),
            current_price: 0.12,
            mean_price: 0.10,
            mttf: SimDuration::from_hours(10),
        };
        assert!(!s.price_is_stable(0.10)); // 20% above mean
        assert!(s.price_is_stable(0.25));
    }
}
