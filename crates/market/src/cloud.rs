//! The cloud front-end: requesting, revoking, and billing instances.

use std::collections::{BTreeMap, BTreeSet};

use flint_simtime::rng::stream;
use flint_simtime::{EventQueue, SimDuration, SimTime};
use flint_trace::{EventKind, TraceHandle};
use serde::{Deserialize, Serialize};

use crate::{
    hourly_spot_cost, CappedLifetimeHazard, HazardModel, MarketCatalog, MarketId, MarketKind,
};

/// Identifier of a provisioned instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId(pub u64);

/// Lifecycle state of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceState {
    /// Requested, waiting out the acquisition delay.
    Pending,
    /// Running and usable.
    Running,
    /// Ended by a provider revocation.
    Revoked,
    /// Ended by the user.
    Terminated,
}

/// A lifecycle event delivered by [`CloudSim::events_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstanceEvent {
    /// The instance finished acquisition and is now usable.
    Ready {
        /// The instance that became ready.
        id: InstanceId,
    },
    /// The provider issued a revocation warning (EC2: 120 s, GCE: 30 s
    /// before the kill).
    Warning {
        /// The instance about to be revoked.
        id: InstanceId,
    },
    /// The provider revoked the instance; its local state is gone.
    Revoked {
        /// The instance that was revoked.
        id: InstanceId,
    },
}

impl InstanceEvent {
    /// Returns the instance this event concerns.
    pub fn instance(&self) -> InstanceId {
        match *self {
            InstanceEvent::Ready { id }
            | InstanceEvent::Warning { id }
            | InstanceEvent::Revoked { id } => id,
        }
    }
}

/// Accounting record of one instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceRecord {
    /// The instance id.
    pub id: InstanceId,
    /// The market it was provisioned from.
    pub market: MarketId,
    /// The bid placed (ignored for fixed-price kinds).
    pub bid: f64,
    /// When the request was made.
    pub requested_at: SimTime,
    /// When it became usable.
    pub ready_at: SimTime,
    /// When it ended, if it has.
    pub ended_at: Option<SimTime>,
    /// Current state.
    pub state: InstanceState,
    /// Scheduled provider revocation, if any (simulator internal).
    revocation_at: Option<SimTime>,
    /// Bill settled once when the instance ends (simulator internal);
    /// ended instances never re-walk their price trace.
    final_cost: Option<f64>,
}

impl InstanceRecord {
    /// Returns `true` if the instance is pending or running.
    pub fn is_active(&self) -> bool {
        matches!(self.state, InstanceState::Pending | InstanceState::Running)
    }
}

/// The cloud simulator: markets plus instance lifecycle and billing.
///
/// All methods take the caller's current virtual time; `CloudSim` itself
/// has no clock, which keeps it a passive library usable from any
/// scheduling loop.
///
/// # Examples
///
/// ```
/// use flint_market::{CloudSim, InstanceEvent, MarketCatalog};
/// use flint_simtime::{SimDuration, SimTime};
///
/// let mut cloud = CloudSim::new(MarketCatalog::synthetic_ec2(3, SimDuration::from_days(30)));
/// let m = cloud.catalog().spot_markets()[0].id;
/// let bid = cloud.catalog().market(m).on_demand_price;
/// let id = cloud.request(m, bid, SimTime::ZERO);
///
/// let evs = cloud.events_until(SimTime::ZERO + SimDuration::from_mins(3));
/// assert!(matches!(evs[0].1, InstanceEvent::Ready { .. }));
/// # let _ = id;
/// ```
#[derive(Debug)]
pub struct CloudSim {
    catalog: MarketCatalog,
    instances: Vec<InstanceRecord>,
    events: EventQueue<InstanceEvent>,
    acquisition_delay: SimDuration,
    seed: u64,
    trace: TraceHandle,
    /// Ids of Pending|Running instances, in id order. Maintained at
    /// state transitions so membership sweeps are O(active), never
    /// O(all instances ever provisioned).
    active: BTreeSet<InstanceId>,
    /// Ids of Running instances, in id order.
    running: BTreeSet<InstanceId>,
    /// Active-instance count per market (entries removed at zero), so
    /// "which markets back the cluster" is O(markets in use).
    active_by_market: BTreeMap<MarketId, u32>,
    /// Provider revocations delivered so far.
    revoked: u64,
}

impl CloudSim {
    /// Default EC2 instance acquisition delay (the paper uses two
    /// minutes, §3.1.2).
    pub const DEFAULT_ACQUISITION_DELAY: SimDuration = SimDuration::from_secs(120);
    /// EC2 revocation warning lead time.
    pub const EC2_WARNING: SimDuration = SimDuration::from_secs(120);
    /// GCE revocation warning lead time.
    pub const GCE_WARNING: SimDuration = SimDuration::from_secs(30);

    /// Creates a simulator over `catalog` with default delays and seed 0.
    pub fn new(catalog: MarketCatalog) -> Self {
        Self::with_seed(catalog, 0)
    }

    /// Creates a simulator with an explicit seed for preemptible-lifetime
    /// sampling.
    pub fn with_seed(catalog: MarketCatalog, seed: u64) -> Self {
        CloudSim {
            catalog,
            instances: Vec::new(),
            events: EventQueue::new(),
            acquisition_delay: Self::DEFAULT_ACQUISITION_DELAY,
            seed,
            trace: TraceHandle::disabled(),
            active: BTreeSet::new(),
            running: BTreeSet::new(),
            active_by_market: BTreeMap::new(),
            revoked: 0,
        }
    }

    /// Drops `id` from the active-side indexes (on revocation or
    /// termination).
    fn deactivate(&mut self, id: InstanceId, market: MarketId) {
        self.active.remove(&id);
        self.running.remove(&id);
        if let Some(count) = self.active_by_market.get_mut(&market) {
            *count -= 1;
            if *count == 0 {
                self.active_by_market.remove(&market);
            }
        }
    }

    /// Settles the final bill of an instance that just ended at `at`.
    fn settle(&mut self, id: InstanceId, at: SimTime) {
        let cost = self.instance_cost(id, at);
        self.instances[id.0 as usize].final_cost = Some(cost);
    }

    /// Attaches the shared trace handle; market and instance lifecycle
    /// events (bids, price spikes, billing) are emitted on it.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The simulator's trace handle (disabled by default).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// Overrides the acquisition delay (for experiments).
    pub fn set_acquisition_delay(&mut self, d: SimDuration) {
        self.acquisition_delay = d;
    }

    /// Returns the market catalog.
    pub fn catalog(&self) -> &MarketCatalog {
        &self.catalog
    }

    /// Returns the acquisition delay.
    pub fn acquisition_delay(&self) -> SimDuration {
        self.acquisition_delay
    }

    /// Requests one instance from `market` at `bid`, at time `now`.
    ///
    /// The instance becomes [`InstanceEvent::Ready`] after the acquisition
    /// delay. Its provider-revocation time (if any) is derived from the
    /// market's price trace (spot), a sampled lifetime (preemptible), or
    /// never (on-demand).
    pub fn request(&mut self, market: MarketId, bid: f64, now: SimTime) -> InstanceId {
        let id = InstanceId(self.instances.len() as u64);
        let ready_at = now + self.acquisition_delay;
        let m = self.catalog.market(market);

        let (revocation_at, warning_lead) = match m.kind {
            MarketKind::Spot => {
                let rev = if m.trace.price_at(ready_at) > bid {
                    // Requested into a spike: revoked as soon as it is
                    // ready (in practice EC2 would not fill the bid; the
                    // effect is the same for the caller).
                    Some(ready_at)
                } else {
                    m.trace.next_up_crossing(ready_at, bid)
                };
                (rev, Self::EC2_WARNING)
            }
            MarketKind::Preemptible {
                early_revocation_prob,
            } => {
                // Lifetimes come from the shared hazard model (same
                // stream label and draw order as the historical inline
                // sampler, so existing traces are unchanged).
                let mut rng = stream(self.seed, &format!("preempt:{}", id.0));
                let hazard = CappedLifetimeHazard::new(early_revocation_prob, 24.0);
                let lifetime = hazard.sample_lifetime(&mut rng);
                (Some(ready_at + lifetime), Self::GCE_WARNING)
            }
            MarketKind::OnDemand => (None, SimDuration::ZERO),
        };

        self.events.schedule(ready_at, InstanceEvent::Ready { id });
        if let Some(rev) = revocation_at {
            let warn_at = rev.saturating_sub(warning_lead).max(ready_at);
            self.events.schedule(warn_at, InstanceEvent::Warning { id });
            self.events.schedule(rev, InstanceEvent::Revoked { id });
        }

        self.instances.push(InstanceRecord {
            id,
            market,
            bid,
            requested_at: now,
            ready_at,
            ended_at: None,
            state: InstanceState::Pending,
            revocation_at,
            final_cost: None,
        });
        self.active.insert(id);
        *self.active_by_market.entry(market).or_insert(0) += 1;
        if self.trace.is_enabled() {
            self.trace.emit(
                now,
                EventKind::PriceTick {
                    market: u64::from(market.0),
                    price: m.trace.price_at(now),
                },
            );
            self.trace.emit(
                now,
                EventKind::BidPlaced {
                    market: u64::from(market.0),
                    bid,
                },
            );
            self.trace.emit(
                now,
                EventKind::InstanceRequested {
                    instance: id.0,
                    market: u64::from(market.0),
                },
            );
        }
        id
    }

    /// Terminates an instance at `now` (user-initiated). No-op if already
    /// ended.
    pub fn terminate(&mut self, id: InstanceId, now: SimTime) {
        let (ended, market) = {
            let rec = &mut self.instances[id.0 as usize];
            if !rec.is_active() {
                return;
            }
            rec.state = InstanceState::Terminated;
            rec.ended_at = Some(now.max(rec.requested_at));
            (rec.ended_at.unwrap(), rec.market)
        };
        self.deactivate(id, market);
        self.settle(id, ended);
        if self.trace.is_enabled() {
            self.trace
                .emit(ended, EventKind::InstanceTerminated { instance: id.0 });
            self.trace.emit(
                ended,
                EventKind::InstanceBilled {
                    instance: id.0,
                    cost: self.instance_cost(id, ended),
                },
            );
        }
    }

    /// Pops all lifecycle events up to and including `t`, in order.
    ///
    /// Events for instances that were terminated in the meantime are
    /// dropped. State transitions (Pending→Running, Running→Revoked) are
    /// applied as events are delivered.
    pub fn events_until(&mut self, t: SimTime) -> Vec<(SimTime, InstanceEvent)> {
        let mut out = Vec::new();
        while let Some((at, ev)) = self.events.pop_before(t) {
            let id = ev.instance();
            let delivered = {
                let rec = &mut self.instances[id.0 as usize];
                match ev {
                    InstanceEvent::Ready { .. } => {
                        if rec.state == InstanceState::Pending {
                            rec.state = InstanceState::Running;
                            true
                        } else {
                            false
                        }
                    }
                    InstanceEvent::Warning { .. } => rec.is_active(),
                    InstanceEvent::Revoked { .. } => {
                        if rec.is_active() {
                            rec.state = InstanceState::Revoked;
                            rec.ended_at = Some(at);
                            true
                        } else {
                            false
                        }
                    }
                }
            };
            if delivered {
                match ev {
                    InstanceEvent::Ready { .. } => {
                        self.running.insert(id);
                    }
                    InstanceEvent::Warning { .. } => {}
                    InstanceEvent::Revoked { .. } => {
                        let market = self.instances[id.0 as usize].market;
                        self.deactivate(id, market);
                        self.settle(id, at);
                        self.revoked += 1;
                    }
                }
                if self.trace.is_enabled() {
                    self.emit_lifecycle(at, ev);
                }
                out.push((at, ev));
            }
        }
        out
    }

    /// Emits the trace events for one delivered lifecycle event. A
    /// delivered revocation also settles the instance's bill (its cost is
    /// final from that instant) and, on spot markets, records the price
    /// spike that caused it.
    fn emit_lifecycle(&self, at: SimTime, ev: InstanceEvent) {
        let id = ev.instance();
        match ev {
            InstanceEvent::Ready { .. } => {
                self.trace
                    .emit(at, EventKind::InstanceReady { instance: id.0 });
            }
            InstanceEvent::Warning { .. } => {
                self.trace
                    .emit(at, EventKind::InstanceWarned { instance: id.0 });
            }
            InstanceEvent::Revoked { .. } => {
                let rec = self.instance(id);
                let m = self.catalog.market(rec.market);
                if matches!(m.kind, MarketKind::Spot) {
                    let price = m.trace.price_at(at);
                    if price > rec.bid {
                        self.trace.emit(
                            at,
                            EventKind::PriceSpike {
                                market: u64::from(rec.market.0),
                                price,
                                bid: rec.bid,
                            },
                        );
                    }
                }
                self.trace
                    .emit(at, EventKind::InstanceRevoked { instance: id.0 });
                self.trace.emit(
                    at,
                    EventKind::InstanceBilled {
                        instance: id.0,
                        cost: self.instance_cost(id, at),
                    },
                );
            }
        }
    }

    /// Returns the next pending event time, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Returns the record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this simulator.
    pub fn instance(&self, id: InstanceId) -> &InstanceRecord {
        &self.instances[id.0 as usize]
    }

    /// Returns all instance records.
    pub fn instances(&self) -> &[InstanceRecord] {
        &self.instances
    }

    /// Ids of instances currently running, in id order — a maintained
    /// index, not a scan; no allocation.
    pub fn running(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.running.iter().copied()
    }

    /// Number of instances currently running.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Ids of active (pending or running) instances, in id order — a
    /// maintained index, not a scan.
    pub fn active(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.active.iter().copied()
    }

    /// Number of active (pending or running) instances.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Markets currently backing at least one active instance, with
    /// their active-instance counts, in market-id order.
    pub fn active_markets(&self) -> impl Iterator<Item = (MarketId, u32)> + '_ {
        self.active_by_market.iter().map(|(m, c)| (*m, *c))
    }

    /// Number of provider revocations delivered so far.
    pub fn revocation_count(&self) -> u64 {
        self.revoked
    }

    /// Computes the bill for instance `id`, accounting up to `until` for
    /// instances still active. Ended instances return their settled
    /// bill without re-walking the market's price trace.
    pub fn instance_cost(&self, id: InstanceId, until: SimTime) -> f64 {
        let rec = self.instance(id);
        if let Some(cost) = rec.final_cost {
            return cost;
        }
        let start = rec.ready_at;
        let (end, revoked) = match rec.state {
            InstanceState::Pending => return 0.0,
            InstanceState::Running => (until, false),
            InstanceState::Revoked => (rec.ended_at.unwrap_or(until), true),
            InstanceState::Terminated => (rec.ended_at.unwrap_or(until), false),
        };
        if end <= start {
            return 0.0;
        }
        let m = self.catalog.market(rec.market);
        hourly_spot_cost(&m.trace, start, end, revoked)
    }

    /// Computes the total bill across all instances up to `until`.
    pub fn total_cost(&self, until: SimTime) -> f64 {
        self.instances
            .iter()
            .map(|r| self.instance_cost(r.id, until))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstanceSpec, Market, MarketCatalog, PriceTrace};

    fn hours(h: f64) -> SimTime {
        SimTime::from_hours_f64(h)
    }

    /// One spot market with a known spike at t = 10 h lasting 1 h, plus
    /// the mandatory on-demand pool.
    fn fixture() -> CloudSim {
        let spot = Market {
            id: MarketId(0),
            name: "spot".into(),
            zone: "z".into(),
            spec: InstanceSpec::R3_LARGE,
            on_demand_price: 0.40,
            kind: MarketKind::Spot,
            trace: PriceTrace::from_points(vec![
                (hours(0.0), 0.10),
                (hours(10.0), 2.00),
                (hours(11.0), 0.10),
            ]),
        };
        let od = Market {
            id: MarketId(1),
            name: "od".into(),
            zone: "z".into(),
            spec: InstanceSpec::R3_LARGE,
            on_demand_price: 0.40,
            kind: MarketKind::OnDemand,
            trace: PriceTrace::flat(0.40),
        };
        CloudSim::new(MarketCatalog::new(vec![spot, od], MarketId(1)))
    }

    #[test]
    fn lifecycle_ready_warning_revoked() {
        let mut cloud = fixture();
        let id = cloud.request(MarketId(0), 0.40, SimTime::ZERO);
        let evs = cloud.events_until(hours(24.0));
        let kinds: Vec<_> = evs.iter().map(|(_, e)| *e).collect();
        assert_eq!(
            kinds,
            vec![
                InstanceEvent::Ready { id },
                InstanceEvent::Warning { id },
                InstanceEvent::Revoked { id },
            ]
        );
        // Warning exactly 120 s before the 10 h spike.
        assert_eq!(evs[1].0, hours(10.0) - SimDuration::from_secs(120));
        assert_eq!(evs[2].0, hours(10.0));
        assert_eq!(cloud.instance(id).state, InstanceState::Revoked);
    }

    #[test]
    fn high_bid_survives_spike() {
        let mut cloud = fixture();
        let id = cloud.request(MarketId(0), 3.0, SimTime::ZERO);
        let evs = cloud.events_until(hours(24.0));
        assert_eq!(evs.len(), 1); // only Ready
        assert_eq!(cloud.instance(id).state, InstanceState::Running);
    }

    #[test]
    fn on_demand_never_revoked() {
        let mut cloud = fixture();
        let id = cloud.request(MarketId(1), 0.40, SimTime::ZERO);
        let evs = cloud.events_until(hours(1000.0));
        assert_eq!(evs.len(), 1);
        assert_eq!(cloud.instance(id).state, InstanceState::Running);
    }

    #[test]
    fn termination_suppresses_future_events() {
        let mut cloud = fixture();
        let id = cloud.request(MarketId(0), 0.40, SimTime::ZERO);
        let _ = cloud.events_until(hours(1.0)); // deliver Ready
        cloud.terminate(id, hours(2.0));
        let evs = cloud.events_until(hours(24.0));
        assert!(
            evs.is_empty(),
            "no warning/revocation after terminate: {evs:?}"
        );
        assert_eq!(cloud.instance(id).state, InstanceState::Terminated);
    }

    #[test]
    fn request_into_spike_revokes_at_ready() {
        let mut cloud = fixture();
        // Request at t=10h (price 2.0 > bid 0.4).
        let id = cloud.request(MarketId(0), 0.40, hours(10.0));
        let evs = cloud.events_until(hours(24.0));
        assert_eq!(cloud.instance(id).state, InstanceState::Revoked);
        let rev_time = evs
            .iter()
            .find(|(_, e)| matches!(e, InstanceEvent::Revoked { .. }))
            .unwrap()
            .0;
        assert_eq!(rev_time, hours(10.0) + CloudSim::DEFAULT_ACQUISITION_DELAY);
    }

    #[test]
    fn billing_waives_revoked_partial_hour() {
        let mut cloud = fixture();
        cloud.set_acquisition_delay(SimDuration::ZERO);
        let id = cloud.request(MarketId(0), 0.40, SimTime::ZERO);
        let _ = cloud.events_until(hours(24.0));
        // Ran [0, 10h) at $0.10 hour-start price; 10 full hours billed,
        // revocation exactly on the boundary of hour 10.
        let c = cloud.instance_cost(id, hours(24.0));
        assert!((c - 1.0).abs() < 1e-9, "cost {c}");
    }

    #[test]
    fn running_instance_billed_up_to_now() {
        let mut cloud = fixture();
        cloud.set_acquisition_delay(SimDuration::ZERO);
        let id = cloud.request(MarketId(1), 0.40, SimTime::ZERO);
        let _ = cloud.events_until(hours(2.0));
        let c = cloud.instance_cost(id, hours(2.0));
        assert!((c - 0.8).abs() < 1e-9);
        assert!((cloud.total_cost(hours(2.0)) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn preemptible_lifetime_capped_at_24h() {
        let cat = MarketCatalog::synthetic_gce(1, SimDuration::from_days(10));
        let mut cloud = CloudSim::with_seed(cat, 7);
        let mut lifetimes = Vec::new();
        for i in 0..40 {
            let id = cloud.request(MarketId(2), 1.0, hours(i as f64 * 30.0));
            lifetimes.push(id);
        }
        let _ = cloud.events_until(hours(3000.0));
        for id in lifetimes {
            let rec = cloud.instance(id);
            assert_eq!(rec.state, InstanceState::Revoked);
            let life = rec.ended_at.unwrap() - rec.ready_at;
            assert!(life <= SimDuration::from_hours(24));
        }
    }

    #[test]
    fn running_ids_reflect_lifecycle() {
        let mut cloud = fixture();
        let a = cloud.request(MarketId(0), 0.40, SimTime::ZERO);
        let b = cloud.request(MarketId(1), 0.40, SimTime::ZERO);
        let _ = cloud.events_until(hours(1.0));
        assert_eq!(cloud.running().collect::<Vec<_>>(), vec![a, b]);
        assert_eq!(cloud.running_count(), 2);
        assert_eq!(cloud.active_count(), 2);
        let _ = cloud.events_until(hours(12.0));
        assert_eq!(cloud.running().collect::<Vec<_>>(), vec![b]);
        assert_eq!(cloud.revocation_count(), 1);
        assert_eq!(
            cloud.active_markets().collect::<Vec<_>>(),
            vec![(MarketId(1), 1)]
        );
    }
}
