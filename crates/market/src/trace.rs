//! Piecewise-constant price traces.

use flint_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A piecewise-constant price series over virtual time.
///
/// The trace is a sorted list of `(instant, price)` change-points; the
/// price at any instant is the price of the latest change-point at or
/// before it. Traces are immutable once built, mirroring how Flint's node
/// manager consumes recorded price history.
///
/// # Examples
///
/// ```
/// use flint_market::PriceTrace;
/// use flint_simtime::SimTime;
///
/// let trace = PriceTrace::from_points(vec![
///     (SimTime::from_millis(0), 0.10),
///     (SimTime::from_millis(1000), 0.50),
/// ]);
/// assert_eq!(trace.price_at(SimTime::from_millis(500)), 0.10);
/// assert_eq!(trace.price_at(SimTime::from_millis(1500)), 0.50);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceTrace {
    /// Sorted, deduplicated change points.
    points: Vec<(SimTime, f64)>,
}

impl PriceTrace {
    /// Creates a flat trace at `price` starting at the epoch.
    pub fn flat(price: f64) -> Self {
        PriceTrace {
            points: vec![(SimTime::ZERO, price)],
        }
    }

    /// Builds a trace from `(instant, price)` points.
    ///
    /// Points are sorted by time; for duplicate timestamps the last price
    /// wins. An initial point at the epoch is synthesized from the first
    /// price if missing so `price_at` is total.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or any price is negative or non-finite.
    pub fn from_points(mut points: Vec<(SimTime, f64)>) -> Self {
        assert!(!points.is_empty(), "a price trace needs at least one point");
        assert!(
            points.iter().all(|(_, p)| p.is_finite() && *p >= 0.0),
            "prices must be finite and non-negative"
        );
        points.sort_by_key(|(t, _)| *t);
        // Last write wins for duplicate timestamps.
        let mut dedup: Vec<(SimTime, f64)> = Vec::with_capacity(points.len());
        for (t, p) in points {
            match dedup.last_mut() {
                Some((lt, lp)) if *lt == t => *lp = p,
                _ => dedup.push((t, p)),
            }
        }
        if dedup[0].0 != SimTime::ZERO {
            let first_price = dedup[0].1;
            dedup.insert(0, (SimTime::ZERO, first_price));
        }
        PriceTrace { points: dedup }
    }

    /// Returns the price in effect at instant `t`.
    pub fn price_at(&self, t: SimTime) -> f64 {
        match self.points.binary_search_by_key(&t, |(pt, _)| *pt) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Returns the change points within `[from, to)`, plus the price in
    /// effect at `from`.
    pub fn segment(&self, from: SimTime, to: SimTime) -> Vec<(SimTime, f64)> {
        let mut out = vec![(from, self.price_at(from))];
        for &(t, p) in &self.points {
            if t > from && t < to {
                out.push((t, p));
            }
        }
        out
    }

    /// Returns the time-weighted mean price over `[from, to)`.
    ///
    /// Returns the price at `from` when the window is empty.
    pub fn mean_price(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return self.price_at(from);
        }
        let seg = self.segment(from, to);
        let mut acc = 0.0;
        for (i, &(t, p)) in seg.iter().enumerate() {
            let end = if i + 1 < seg.len() { seg[i + 1].0 } else { to };
            acc += p * (end - t).as_millis() as f64;
        }
        acc / (to - from).as_millis() as f64
    }

    /// Returns the first instant strictly after `t` at which the price
    /// rises above `threshold`, or `None` if it never does within the
    /// trace horizon.
    ///
    /// If the price already exceeds `threshold` at `t`, the *next*
    /// up-crossing is still reported only after the price first drops to
    /// or below the threshold (this models "you cannot be revoked twice").
    pub fn next_up_crossing(&self, t: SimTime, threshold: f64) -> Option<SimTime> {
        let mut above = self.price_at(t) > threshold;
        for &(pt, p) in &self.points {
            if pt <= t {
                continue;
            }
            let now_above = p > threshold;
            if now_above && !above {
                return Some(pt);
            }
            above = now_above;
        }
        None
    }

    /// Returns every up-crossing of `threshold` in `[from, to)`.
    pub fn up_crossings(&self, from: SimTime, to: SimTime, threshold: f64) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut cur = from;
        while let Some(t) = self.next_up_crossing(cur, threshold) {
            if t >= to {
                break;
            }
            out.push(t);
            cur = t;
        }
        out
    }

    /// Estimates the mean time between up-crossings of `threshold` over
    /// the window `[from, to)` — the MTTF a server bid at `threshold`
    /// would observe.
    ///
    /// With zero crossings in the window the estimate is censored: the
    /// window length itself is a lower bound, and we return `window * 10`
    /// as an optimistic-but-finite stand-in (matching how Flint treats
    /// very quiet markets as near-on-demand rather than infinitely safe).
    pub fn mttf_at(&self, from: SimTime, to: SimTime, threshold: f64) -> SimDuration {
        let window = to - from;
        if window.is_zero() {
            return SimDuration::MAX;
        }
        let n = self.up_crossings(from, to, threshold).len() as u64;
        if n == 0 {
            window * 10
        } else {
            window / n
        }
    }

    /// Samples the trace at a fixed `step`, returning prices for
    /// `[from, to)`. Used for correlation estimation.
    pub fn sample(&self, from: SimTime, to: SimTime, step: SimDuration) -> Vec<f64> {
        let mut out = Vec::new();
        let mut t = from;
        while t < to {
            out.push(self.price_at(t));
            t += step;
        }
        out
    }

    /// Returns the last change point of the trace (its horizon).
    pub fn horizon(&self) -> SimTime {
        self.points.last().map(|(t, _)| *t).unwrap_or(SimTime::ZERO)
    }

    /// Returns the raw change points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Returns the maximum price attained anywhere on the trace.
    pub fn max_price(&self) -> f64 {
        self.points.iter().map(|(_, p)| *p).fold(0.0, f64::max)
    }

    /// Serializes the trace as CSV (`hours,price` rows) — the format of
    /// public spot-price archives, so generated traces can be compared
    /// against or swapped for real ones.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("hours,price\n");
        for (t, p) in &self.points {
            out.push_str(&format!("{:.6},{:.6}\n", t.as_hours_f64(), p));
        }
        out
    }

    /// Parses a trace from the CSV produced by [`PriceTrace::to_csv`]
    /// (header optional). Returns `None` on any malformed row or if no
    /// points parse.
    pub fn from_csv(csv: &str) -> Option<PriceTrace> {
        let mut points = Vec::new();
        for line in csv.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with("hours") {
                continue;
            }
            let (h, p) = line.split_once(',')?;
            let hours: f64 = h.trim().parse().ok()?;
            let price: f64 = p.trim().parse().ok()?;
            if !(hours.is_finite() && price.is_finite() && price >= 0.0) {
                return None;
            }
            points.push((SimTime::from_hours_f64(hours), price));
        }
        if points.is_empty() {
            return None;
        }
        Some(PriceTrace::from_points(points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn step_trace() -> PriceTrace {
        PriceTrace::from_points(vec![
            (t(0), 0.1),
            (t(100), 0.5),
            (t(200), 0.1),
            (t(300), 0.8),
        ])
    }

    #[test]
    fn flat_trace_is_constant() {
        let tr = PriceTrace::flat(0.25);
        assert_eq!(tr.price_at(t(0)), 0.25);
        assert_eq!(tr.price_at(t(1_000_000)), 0.25);
    }

    #[test]
    fn price_lookup_uses_latest_point() {
        let tr = step_trace();
        assert_eq!(tr.price_at(t(0)), 0.1);
        assert_eq!(tr.price_at(t(99)), 0.1);
        assert_eq!(tr.price_at(t(100)), 0.5);
        assert_eq!(tr.price_at(t(250)), 0.1);
        assert_eq!(tr.price_at(t(301)), 0.8);
    }

    #[test]
    fn from_points_sorts_and_dedups() {
        let tr = PriceTrace::from_points(vec![(t(50), 0.3), (t(10), 0.1), (t(50), 0.4)]);
        assert_eq!(tr.price_at(t(60)), 0.4);
        assert_eq!(tr.price_at(t(0)), 0.1); // synthesized epoch point
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_trace_panics() {
        let _ = PriceTrace::from_points(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_price_panics() {
        let _ = PriceTrace::from_points(vec![(t(0), -1.0)]);
    }

    #[test]
    fn mean_price_weights_by_time() {
        let tr = PriceTrace::from_points(vec![(t(0), 1.0), (t(100), 3.0)]);
        // [0,200): 100ms at 1.0 + 100ms at 3.0 = mean 2.0.
        assert!((tr.mean_price(t(0), t(200)) - 2.0).abs() < 1e-12);
        // Window entirely within first segment.
        assert!((tr.mean_price(t(10), t(50)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_price_empty_window_falls_back() {
        let tr = step_trace();
        assert_eq!(tr.mean_price(t(150), t(150)), 0.5);
    }

    #[test]
    fn up_crossing_detection() {
        let tr = step_trace();
        // Bid 0.3: price exceeds at t=100 and t=300.
        assert_eq!(tr.next_up_crossing(t(0), 0.3), Some(t(100)));
        assert_eq!(tr.next_up_crossing(t(100), 0.3), Some(t(300)));
        assert_eq!(tr.up_crossings(t(0), t(1000), 0.3), vec![t(100), t(300)]);
        // Bid above max price: never revoked.
        assert_eq!(tr.next_up_crossing(t(0), 1.0), None);
    }

    #[test]
    fn already_above_requires_drop_first() {
        let tr = step_trace();
        // At t=100 price is 0.5 > 0.2; next crossing should be t=300, after
        // dropping back below at t=200.
        assert_eq!(tr.next_up_crossing(t(100), 0.2), Some(t(300)));
    }

    #[test]
    fn mttf_estimates() {
        let tr = step_trace();
        let window = SimDuration::from_millis(1000);
        // Two crossings of 0.3 in [0, 1000) => MTTF 500ms.
        assert_eq!(tr.mttf_at(t(0), t(1000), 0.3), window / 2);
        // No crossings of 1.0 => censored at 10x the window.
        assert_eq!(tr.mttf_at(t(0), t(1000), 1.0), window * 10);
    }

    #[test]
    fn sampling_matches_lookup() {
        let tr = step_trace();
        let s = tr.sample(t(0), t(400), SimDuration::from_millis(100));
        assert_eq!(s, vec![0.1, 0.5, 0.1, 0.8]);
    }

    #[test]
    fn max_price_over_trace() {
        assert_eq!(step_trace().max_price(), 0.8);
    }

    #[test]
    fn csv_round_trip() {
        let tr = step_trace();
        let csv = tr.to_csv();
        let back = PriceTrace::from_csv(&csv).expect("parse");
        // Millisecond-resolution round trip.
        for t in [0u64, 50, 150, 250, 350] {
            assert_eq!(
                back.price_at(SimTime::from_millis(t)),
                tr.price_at(SimTime::from_millis(t))
            );
        }
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(PriceTrace::from_csv("").is_none());
        assert!(PriceTrace::from_csv("hours,price\n1.0,abc").is_none());
        assert!(PriceTrace::from_csv("1.0,-3").is_none());
        assert!(PriceTrace::from_csv("hours,price\n2.5,0.25").is_some());
    }
}
