//! Piecewise-constant price traces.

use flint_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A piecewise-constant price series over virtual time.
///
/// The trace is a sorted list of `(instant, price)` change-points; the
/// price at any instant is the price of the latest change-point at or
/// before it. Traces are immutable once built, mirroring how Flint's node
/// manager consumes recorded price history.
///
/// # Examples
///
/// ```
/// use flint_market::PriceTrace;
/// use flint_simtime::SimTime;
///
/// let trace = PriceTrace::from_points(vec![
///     (SimTime::from_millis(0), 0.10),
///     (SimTime::from_millis(1000), 0.50),
/// ]);
/// assert_eq!(trace.price_at(SimTime::from_millis(500)), 0.10);
/// assert_eq!(trace.price_at(SimTime::from_millis(1500)), 0.50);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PriceTrace {
    /// Sorted, deduplicated change points.
    points: Vec<(SimTime, f64)>,
    /// `cum[i]` = ∫ price · dt over `[points[0].0, points[i].0)`, in
    /// price·milliseconds. Windowed means become two O(log n) lookups.
    cum: Vec<f64>,
    /// Flat max segment tree over point prices (leaves start at
    /// `seg_max.len() / 2`); drives "first point above threshold"
    /// descents for up-crossing queries.
    seg_max: Vec<f64>,
    /// Min counterpart of [`PriceTrace::seg_max`], for "first point at
    /// or below threshold" (the must-drop-first half of a crossing).
    seg_min: Vec<f64>,
}

/// Trace identity is its change points; the prefix-sum and segment
/// trees are deterministic functions of them.
impl PartialEq for PriceTrace {
    fn eq(&self, other: &Self) -> bool {
        self.points == other.points
    }
}

impl PriceTrace {
    /// Creates a flat trace at `price` starting at the epoch.
    pub fn flat(price: f64) -> Self {
        PriceTrace::from_sorted(vec![(SimTime::ZERO, price)])
    }

    /// Builds the trace plus its query indexes from points that are
    /// already sorted, deduplicated, and epoch-anchored.
    fn from_sorted(points: Vec<(SimTime, f64)>) -> Self {
        let n = points.len();
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            cum.push(acc);
            if i + 1 < n {
                acc += points[i].1 * (points[i + 1].0 - points[i].0).as_millis() as f64;
            }
        }
        let size = n.next_power_of_two();
        let mut seg_max = vec![f64::NEG_INFINITY; 2 * size];
        let mut seg_min = vec![f64::INFINITY; 2 * size];
        for (i, &(_, p)) in points.iter().enumerate() {
            seg_max[size + i] = p;
            seg_min[size + i] = p;
        }
        for i in (1..size).rev() {
            seg_max[i] = seg_max[2 * i].max(seg_max[2 * i + 1]);
            seg_min[i] = seg_min[2 * i].min(seg_min[2 * i + 1]);
        }
        PriceTrace {
            points,
            cum,
            seg_max,
            seg_min,
        }
    }

    /// Builds a trace from `(instant, price)` points.
    ///
    /// Points are sorted by time; for duplicate timestamps the last price
    /// wins. An initial point at the epoch is synthesized from the first
    /// price if missing so `price_at` is total.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or any price is negative or non-finite.
    pub fn from_points(mut points: Vec<(SimTime, f64)>) -> Self {
        assert!(!points.is_empty(), "a price trace needs at least one point");
        assert!(
            points.iter().all(|(_, p)| p.is_finite() && *p >= 0.0),
            "prices must be finite and non-negative"
        );
        points.sort_by_key(|(t, _)| *t);
        // Last write wins for duplicate timestamps.
        let mut dedup: Vec<(SimTime, f64)> = Vec::with_capacity(points.len());
        for (t, p) in points {
            match dedup.last_mut() {
                Some((lt, lp)) if *lt == t => *lp = p,
                _ => dedup.push((t, p)),
            }
        }
        if dedup[0].0 != SimTime::ZERO {
            let first_price = dedup[0].1;
            dedup.insert(0, (SimTime::ZERO, first_price));
        }
        PriceTrace::from_sorted(dedup)
    }

    /// Returns the price in effect at instant `t`.
    pub fn price_at(&self, t: SimTime) -> f64 {
        self.points[self.segment_index(t)].1
    }

    /// Index of the change point governing instant `t` (latest point at
    /// or before it).
    fn segment_index(&self, t: SimTime) -> usize {
        match self.points.binary_search_by_key(&t, |(pt, _)| *pt) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Returns the change points within `[from, to)`, plus the price in
    /// effect at `from`.
    pub fn segment(&self, from: SimTime, to: SimTime) -> Vec<(SimTime, f64)> {
        let mut out = vec![(from, self.price_at(from))];
        let lo = self.points.partition_point(|&(t, _)| t <= from);
        for &(t, p) in &self.points[lo..] {
            if t >= to {
                break;
            }
            out.push((t, p));
        }
        out
    }

    /// `∫ price · dt` over `[epoch, t)` in price·milliseconds, resolved
    /// from the prefix sum plus a partial-segment remainder.
    fn integral_to(&self, t: SimTime) -> f64 {
        let i = self.segment_index(t);
        self.cum[i] + self.points[i].1 * (t - self.points[i].0).as_millis() as f64
    }

    /// Returns the time-weighted mean price over `[from, to)`.
    ///
    /// Returns the price at `from` when the window is empty. Resolved as
    /// a difference of two prefix-sum integrals, so the query is O(log n)
    /// in the trace length rather than a walk over every change point.
    pub fn mean_price(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return self.price_at(from);
        }
        (self.integral_to(to) - self.integral_to(from)) / (to - from).as_millis() as f64
    }

    /// First point index `>= lo` whose price is above (`above == true`)
    /// or at-or-below (`above == false`) `threshold`, found by descending
    /// the max/min segment tree. Comparison-only, so results match the
    /// linear scan bit for bit.
    fn first_from(&self, lo: usize, threshold: f64, above: bool) -> Option<usize> {
        let n = self.points.len();
        if lo >= n {
            return None;
        }
        let size = self.seg_max.len() / 2;
        // (node, node_lo, node_hi) descent over the leaf range [lo, n);
        // out-of-range leaves hold ∓∞ sentinels and never match.
        let hit = |node: usize| {
            if above {
                self.seg_max[node] > threshold
            } else {
                self.seg_min[node] <= threshold
            }
        };
        let mut stack = vec![(1usize, 0usize, size)];
        while let Some((node, l, r)) = stack.pop() {
            if r <= lo || l >= n || !hit(node) {
                continue;
            }
            if r - l == 1 {
                return Some(l);
            }
            let m = (l + r) / 2;
            // Push right first so the left half is examined first.
            stack.push((2 * node + 1, m, r));
            stack.push((2 * node, l, m));
        }
        None
    }

    /// Returns the first instant strictly after `t` at which the price
    /// rises above `threshold`, or `None` if it never does within the
    /// trace horizon.
    ///
    /// If the price already exceeds `threshold` at `t`, the *next*
    /// up-crossing is still reported only after the price first drops to
    /// or below the threshold (this models "you cannot be revoked twice").
    pub fn next_up_crossing(&self, t: SimTime, threshold: f64) -> Option<SimTime> {
        // First change point strictly after `t`.
        let mut lo = self.points.partition_point(|&(pt, _)| pt <= t);
        if self.price_at(t) > threshold {
            // Already above: the price must first drop to or below the
            // threshold before a crossing can count.
            lo = self.first_from(lo, threshold, false)? + 1;
        }
        let k = self.first_from(lo, threshold, true)?;
        Some(self.points[k].0)
    }

    /// Returns every up-crossing of `threshold` in `[from, to)`.
    pub fn up_crossings(&self, from: SimTime, to: SimTime, threshold: f64) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut cur = from;
        while let Some(t) = self.next_up_crossing(cur, threshold) {
            if t >= to {
                break;
            }
            out.push(t);
            cur = t;
        }
        out
    }

    /// Estimates the mean time between up-crossings of `threshold` over
    /// the window `[from, to)` — the MTTF a server bid at `threshold`
    /// would observe.
    ///
    /// With zero crossings in the window the estimate is censored: the
    /// window length itself is a lower bound, and we return `window * 10`
    /// as an optimistic-but-finite stand-in (matching how Flint treats
    /// very quiet markets as near-on-demand rather than infinitely safe).
    pub fn mttf_at(&self, from: SimTime, to: SimTime, threshold: f64) -> SimDuration {
        let window = to - from;
        if window.is_zero() {
            return SimDuration::MAX;
        }
        let n = self.up_crossings(from, to, threshold).len() as u64;
        if n == 0 {
            window * 10
        } else {
            window / n
        }
    }

    /// Samples the trace at a fixed `step`, returning prices for
    /// `[from, to)`. Used for correlation estimation.
    pub fn sample(&self, from: SimTime, to: SimTime, step: SimDuration) -> Vec<f64> {
        let mut out = Vec::new();
        let mut t = from;
        while t < to {
            out.push(self.price_at(t));
            t += step;
        }
        out
    }

    /// Returns the last change point of the trace (its horizon).
    pub fn horizon(&self) -> SimTime {
        self.points.last().map(|(t, _)| *t).unwrap_or(SimTime::ZERO)
    }

    /// Returns the raw change points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Returns the maximum price attained anywhere on the trace.
    pub fn max_price(&self) -> f64 {
        self.points.iter().map(|(_, p)| *p).fold(0.0, f64::max)
    }

    /// Serializes the trace as CSV (`hours,price` rows) — the format of
    /// public spot-price archives, so generated traces can be compared
    /// against or swapped for real ones.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("hours,price\n");
        for (t, p) in &self.points {
            out.push_str(&format!("{:.6},{:.6}\n", t.as_hours_f64(), p));
        }
        out
    }

    /// Parses a trace from the CSV produced by [`PriceTrace::to_csv`]
    /// (header optional). Returns `None` on any malformed row or if no
    /// points parse.
    pub fn from_csv(csv: &str) -> Option<PriceTrace> {
        let mut points = Vec::new();
        for line in csv.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with("hours") {
                continue;
            }
            let (h, p) = line.split_once(',')?;
            let hours: f64 = h.trim().parse().ok()?;
            let price: f64 = p.trim().parse().ok()?;
            if !(hours.is_finite() && price.is_finite() && price >= 0.0) {
                return None;
            }
            points.push((SimTime::from_hours_f64(hours), price));
        }
        if points.is_empty() {
            return None;
        }
        Some(PriceTrace::from_points(points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn step_trace() -> PriceTrace {
        PriceTrace::from_points(vec![
            (t(0), 0.1),
            (t(100), 0.5),
            (t(200), 0.1),
            (t(300), 0.8),
        ])
    }

    #[test]
    fn flat_trace_is_constant() {
        let tr = PriceTrace::flat(0.25);
        assert_eq!(tr.price_at(t(0)), 0.25);
        assert_eq!(tr.price_at(t(1_000_000)), 0.25);
    }

    #[test]
    fn price_lookup_uses_latest_point() {
        let tr = step_trace();
        assert_eq!(tr.price_at(t(0)), 0.1);
        assert_eq!(tr.price_at(t(99)), 0.1);
        assert_eq!(tr.price_at(t(100)), 0.5);
        assert_eq!(tr.price_at(t(250)), 0.1);
        assert_eq!(tr.price_at(t(301)), 0.8);
    }

    #[test]
    fn from_points_sorts_and_dedups() {
        let tr = PriceTrace::from_points(vec![(t(50), 0.3), (t(10), 0.1), (t(50), 0.4)]);
        assert_eq!(tr.price_at(t(60)), 0.4);
        assert_eq!(tr.price_at(t(0)), 0.1); // synthesized epoch point
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_trace_panics() {
        let _ = PriceTrace::from_points(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_price_panics() {
        let _ = PriceTrace::from_points(vec![(t(0), -1.0)]);
    }

    #[test]
    fn mean_price_weights_by_time() {
        let tr = PriceTrace::from_points(vec![(t(0), 1.0), (t(100), 3.0)]);
        // [0,200): 100ms at 1.0 + 100ms at 3.0 = mean 2.0.
        assert!((tr.mean_price(t(0), t(200)) - 2.0).abs() < 1e-12);
        // Window entirely within first segment.
        assert!((tr.mean_price(t(10), t(50)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_price_empty_window_falls_back() {
        let tr = step_trace();
        assert_eq!(tr.mean_price(t(150), t(150)), 0.5);
    }

    #[test]
    fn up_crossing_detection() {
        let tr = step_trace();
        // Bid 0.3: price exceeds at t=100 and t=300.
        assert_eq!(tr.next_up_crossing(t(0), 0.3), Some(t(100)));
        assert_eq!(tr.next_up_crossing(t(100), 0.3), Some(t(300)));
        assert_eq!(tr.up_crossings(t(0), t(1000), 0.3), vec![t(100), t(300)]);
        // Bid above max price: never revoked.
        assert_eq!(tr.next_up_crossing(t(0), 1.0), None);
    }

    #[test]
    fn already_above_requires_drop_first() {
        let tr = step_trace();
        // At t=100 price is 0.5 > 0.2; next crossing should be t=300, after
        // dropping back below at t=200.
        assert_eq!(tr.next_up_crossing(t(100), 0.2), Some(t(300)));
    }

    #[test]
    fn mttf_estimates() {
        let tr = step_trace();
        let window = SimDuration::from_millis(1000);
        // Two crossings of 0.3 in [0, 1000) => MTTF 500ms.
        assert_eq!(tr.mttf_at(t(0), t(1000), 0.3), window / 2);
        // No crossings of 1.0 => censored at 10x the window.
        assert_eq!(tr.mttf_at(t(0), t(1000), 1.0), window * 10);
    }

    #[test]
    fn sampling_matches_lookup() {
        let tr = step_trace();
        let s = tr.sample(t(0), t(400), SimDuration::from_millis(100));
        assert_eq!(s, vec![0.1, 0.5, 0.1, 0.8]);
    }

    #[test]
    fn max_price_over_trace() {
        assert_eq!(step_trace().max_price(), 0.8);
    }

    #[test]
    fn csv_round_trip() {
        let tr = step_trace();
        let csv = tr.to_csv();
        let back = PriceTrace::from_csv(&csv).expect("parse");
        // Millisecond-resolution round trip.
        for t in [0u64, 50, 150, 250, 350] {
            assert_eq!(
                back.price_at(SimTime::from_millis(t)),
                tr.price_at(SimTime::from_millis(t))
            );
        }
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(PriceTrace::from_csv("").is_none());
        assert!(PriceTrace::from_csv("hours,price\n1.0,abc").is_none());
        assert!(PriceTrace::from_csv("1.0,-3").is_none());
        assert!(PriceTrace::from_csv("hours,price\n2.5,0.25").is_some());
    }
}
