//! A deterministic simulator of transient-server markets.
//!
//! Flint (EuroSys 2016) selects transient cloud servers by consuming four
//! signals per *spot market* (one market per instance type per availability
//! zone): the current price, the recent average price, the mean time to
//! failure (MTTF) implied by the price history at a given bid, and the
//! pairwise correlation between markets' price spikes. This crate
//! reproduces all four on top of synthetic price traces whose shape matches
//! the "peaky" behaviour the paper reports for 2015-era EC2: a low steady
//! state punctuated by short, tall spikes.
//!
//! The crate models three kinds of transient server:
//!
//! * **EC2-style spot instances** ([`MarketKind::Spot`]) — revoked with a
//!   two-minute warning whenever the market price rises above the bid;
//!   billed per hour at the hour-start price, with the final partial hour
//!   free when the *provider* revokes.
//! * **GCE-style preemptible instances** ([`MarketKind::Preemptible`]) —
//!   fixed price, 30-second warning, lifetime capped at 24 hours.
//! * **On-demand instances** ([`MarketKind::OnDemand`]) — fixed price,
//!   never revoked (the paper models these as a spot pool with infinite
//!   MTTF).
//!
//! # Examples
//!
//! ```
//! use flint_market::{CloudSim, MarketCatalog, TraceProfile};
//! use flint_simtime::{SimDuration, SimTime};
//!
//! // A catalog of markets with varying volatility, from a fixed seed.
//! let catalog = MarketCatalog::synthetic_ec2(42, SimDuration::from_days(30));
//! let mut cloud = CloudSim::new(catalog);
//!
//! let market = cloud.catalog().spot_markets()[0].id;
//! let bid = cloud.catalog().market(market).on_demand_price;
//! let inst = cloud.request(market, bid, SimTime::ZERO);
//!
//! // The instance becomes ready after the acquisition delay.
//! let events = cloud.events_until(SimTime::ZERO + SimDuration::from_mins(5));
//! assert!(!events.is_empty());
//! # let _ = inst;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod billing;
mod catalog;
mod cloud;
mod correlation;
mod generator;
mod hazard;
mod market;
mod stats;
mod trace;

pub use billing::{hourly_spot_cost, BillingLine, EbsCostModel};
pub use catalog::MarketCatalog;
pub use cloud::{CloudSim, InstanceEvent, InstanceId, InstanceRecord, InstanceState};
pub use correlation::{
    correlated_groups, correlation_matrix, greedy_uncorrelated_subset, pairwise_correlation,
};
pub use generator::{SpikeProcess, TraceGenerator, TraceProfile};
pub use hazard::{CappedLifetimeHazard, ExponentialHazard, HazardModel, HazardSpec};
pub use market::{InstanceSpec, Market, MarketId, MarketKind, MarketStats};
pub use stats::TtfStats;
pub use trace::PriceTrace;
