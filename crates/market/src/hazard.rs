//! Preemption hazard models: how long a transient instance lives.
//!
//! Flint's original analysis (and our τ formula) assumes revocations
//! arrive as a memoryless Poisson process — the exponential lifetime
//! model. Real providers violate that assumption: GCE preemptible VMs
//! are *capped* at 24 hours, so the hazard rate depends on instance
//! age (a bathtub shape: a uniform early-death phase followed by a
//! certain death at the cap). The [`HazardModel`] trait abstracts over
//! both so that selection, bidding, checkpoint-interval re-estimation,
//! and fault injection all draw lifetimes from a single distribution
//! and can never disagree about it.
//!
//! Two implementations ship:
//!
//! * [`ExponentialHazard`] — the legacy memoryless model. Its
//!   [`HazardModel::mean_residual`] is constant in age, so the τ it
//!   induces is bit-for-bit the classic `√(2·δ·MTTF)`, and its sampler
//!   is draw-for-draw identical to the inverse-CDF sampler the bench
//!   kill schedules always used.
//! * [`CappedLifetimeHazard`] — the GCE-style model: with probability
//!   `early_prob` the instance dies uniformly before the cap, otherwise
//!   it dies exactly at the cap. Its mean residual lifetime *declines*
//!   with age, which is what makes age-aware checkpointing and bidding
//!   possible.

use flint_simtime::SimDuration;
use rand::{Rng, StdRng};
use serde::{Deserialize, Serialize};

/// A lifetime distribution for transient instances.
///
/// Implementations must be deterministic: every random draw goes
/// through the caller-supplied [`StdRng`], so identical seeds produce
/// identical lifetimes regardless of host threading.
pub trait HazardModel: Send + Sync + std::fmt::Debug {
    /// Short stable name, used in trace events and reports.
    fn name(&self) -> &'static str;

    /// Survival function `S(t) = P(lifetime > t)`.
    fn survival(&self, age: SimDuration) -> f64;

    /// Unconditional expected lifetime `E[L]`.
    fn mean_lifetime(&self) -> SimDuration;

    /// Mean residual lifetime `E[L − a | L > a]` — the age-conditioned
    /// MTTF that feeds checkpoint-interval re-estimation.
    fn mean_residual(&self, age: SimDuration) -> SimDuration;

    /// Draws one lifetime from the distribution.
    fn sample_lifetime(&self, rng: &mut StdRng) -> SimDuration;

    /// The hard lifetime cap, if the distribution has one.
    ///
    /// `None` means lifetimes are unbounded (exponential); bidding uses
    /// this to discount price-insurance headroom that can never pay off
    /// past the cap.
    fn lifetime_cap(&self) -> Option<SimDuration> {
        None
    }

    /// Optimal checkpoint interval at instance age `age`: Daly's
    /// `τ = √(2·δ·MTTF)` with the age-conditioned MTTF.
    ///
    /// Mirrors `flint_core::optimal_tau` exactly (same clamps, same
    /// arithmetic); the conformance suite pins the two bit-for-bit for
    /// the exponential model.
    fn optimal_tau(&self, delta: SimDuration, age: SimDuration) -> SimDuration {
        let mttf = self.mean_residual(age);
        if mttf == SimDuration::MAX {
            return SimDuration::MAX;
        }
        let secs = (2.0 * delta.as_secs_f64() * mttf.as_secs_f64()).sqrt();
        SimDuration::from_secs_f64(secs).max(SimDuration::from_secs(1))
    }
}

/// Memoryless exponential lifetimes — the paper's revocation model.
#[derive(Debug, Clone, Copy)]
pub struct ExponentialHazard {
    /// The exact MTTF, preserved so `mean_residual` returns it
    /// unchanged (no float round-trip through hours).
    mttf: SimDuration,
    /// The MTTF in hours as originally supplied, preserved so the
    /// sampler reproduces legacy `-mttf_hours * ln(u)` draws exactly.
    mttf_hours: f64,
}

impl ExponentialHazard {
    /// An exponential hazard with the given MTTF.
    pub fn new(mttf: SimDuration) -> Self {
        ExponentialHazard {
            mttf,
            mttf_hours: mttf.as_hours_f64(),
        }
    }

    /// An exponential hazard with an MTTF of `hours` hours.
    pub fn from_hours(hours: f64) -> Self {
        ExponentialHazard {
            mttf: SimDuration::from_hours_f64(hours),
            mttf_hours: hours,
        }
    }
}

impl HazardModel for ExponentialHazard {
    fn name(&self) -> &'static str {
        "exponential"
    }

    fn survival(&self, age: SimDuration) -> f64 {
        if self.mttf == SimDuration::MAX {
            return 1.0;
        }
        (-age.as_hours_f64() / self.mttf_hours.max(f64::MIN_POSITIVE)).exp()
    }

    fn mean_lifetime(&self) -> SimDuration {
        self.mttf
    }

    fn mean_residual(&self, _age: SimDuration) -> SimDuration {
        // Memoryless: the residual lifetime never depends on age.
        self.mttf
    }

    fn sample_lifetime(&self, rng: &mut StdRng) -> SimDuration {
        // Inverse-CDF draw; `u` excludes 0 so `ln` stays finite. This
        // is draw-for-draw the sampler the bench kill schedule used.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        SimDuration::from_hours_f64(-self.mttf_hours * u.ln())
    }
}

/// GCE-style capped lifetimes: uniform early death or death at the cap.
///
/// With probability `early_prob` the lifetime is uniform on
/// `[0, cap)`; otherwise it is exactly `cap`. This puts a probability
/// atom at the cap, so the survival function is
/// `S(t) = early_prob·(1 − t/cap) + (1 − early_prob)` for `t < cap`
/// and `0` at or beyond it, and the mean is `cap·(1 − early_prob/2)`.
#[derive(Debug, Clone, Copy)]
pub struct CappedLifetimeHazard {
    early_prob: f64,
    cap: SimDuration,
    cap_hours: f64,
}

impl CappedLifetimeHazard {
    /// A capped hazard dying early with probability `early_prob`
    /// (clamped to `[0, 1]`) and capped at `cap_hours` hours.
    pub fn new(early_prob: f64, cap_hours: f64) -> Self {
        CappedLifetimeHazard {
            early_prob: early_prob.clamp(0.0, 1.0),
            cap: SimDuration::from_hours_f64(cap_hours),
            cap_hours,
        }
    }
}

impl HazardModel for CappedLifetimeHazard {
    fn name(&self) -> &'static str {
        "capped-lifetime"
    }

    fn survival(&self, age: SimDuration) -> f64 {
        if age >= self.cap {
            return 0.0;
        }
        let frac = age.as_hours_f64() / self.cap_hours;
        self.early_prob * (1.0 - frac) + (1.0 - self.early_prob)
    }

    fn mean_lifetime(&self) -> SimDuration {
        self.cap.mul_f64(1.0 - self.early_prob / 2.0)
    }

    fn mean_residual(&self, age: SimDuration) -> SimDuration {
        if age >= self.cap {
            // Past the cap only the atom's boundary remains; report the
            // smallest MTTF the τ formula distinguishes.
            return SimDuration::from_secs(1);
        }
        // Conditional on surviving to `a`: the remaining early-death
        // mass is uniform on (0, cap − a] with weight p·(1 − a/cap),
        // the atom at the cap has weight (1 − p).
        let left = self.cap.saturating_sub(age).as_hours_f64();
        let p_early = self.early_prob * (1.0 - age.as_hours_f64() / self.cap_hours);
        let p_atom = 1.0 - self.early_prob;
        let total = p_early + p_atom;
        if total <= 0.0 {
            return SimDuration::from_secs(1);
        }
        let mean_hours = (p_early * left / 2.0 + p_atom * left) / total;
        SimDuration::from_hours_f64(mean_hours).max(SimDuration::from_secs(1))
    }

    fn sample_lifetime(&self, rng: &mut StdRng) -> SimDuration {
        // Draw order matches the cloud simulator's historical inline
        // sampler (coin, then uniform) so traces stay byte-identical.
        if rng.gen_bool(self.early_prob) {
            SimDuration::from_hours_f64(rng.gen_range(0.0..self.cap_hours))
        } else {
            self.cap
        }
    }

    fn lifetime_cap(&self) -> Option<SimDuration> {
        Some(self.cap)
    }
}

/// Serializable choice of hazard model, threaded through
/// `SelectionConfig` and chaos configs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HazardSpec {
    /// Memoryless exponential lifetimes (the default). The MTTF comes
    /// from market price statistics, ages are ignored, and the whole
    /// hazard layer is an exact no-op relative to the legacy pipeline.
    #[default]
    Exponential,
    /// Age-dependent capped lifetimes (GCE bathtub): uniform early
    /// death with probability `early_prob`, otherwise death at
    /// `cap_hours`.
    CappedLifetime {
        /// Probability of dying uniformly before the cap.
        early_prob: f64,
        /// Hard lifetime cap in hours.
        cap_hours: f64,
    },
}

impl HazardSpec {
    /// Builds the model. `mttf` parameterizes the exponential variant
    /// (capped variants carry their own parameters).
    pub fn build(self, mttf: SimDuration) -> Box<dyn HazardModel> {
        match self {
            HazardSpec::Exponential => Box::new(ExponentialHazard::new(mttf)),
            HazardSpec::CappedLifetime {
                early_prob,
                cap_hours,
            } => Box::new(CappedLifetimeHazard::new(early_prob, cap_hours)),
        }
    }

    /// `true` for the memoryless default, where ages carry no
    /// information and the legacy MTTF pipeline applies unchanged.
    pub fn is_memoryless(self) -> bool {
        matches!(self, HazardSpec::Exponential)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_simtime::rng::stream;

    #[test]
    fn exponential_mean_residual_is_exact_mttf() {
        for ms in [1u64, 999, 3_600_000, 86_399_999, u64::MAX] {
            let mttf = if ms == u64::MAX {
                SimDuration::MAX
            } else {
                SimDuration::from_millis(ms)
            };
            let h = ExponentialHazard::new(mttf);
            assert_eq!(h.mean_residual(SimDuration::ZERO), mttf);
            assert_eq!(h.mean_residual(SimDuration::from_hours(7)), mttf);
            assert_eq!(h.mean_lifetime(), mttf);
        }
    }

    #[test]
    fn exponential_sampler_matches_legacy_inverse_cdf() {
        let hours = 6.5;
        let h = ExponentialHazard::from_hours(hours);
        let mut a = stream(9, "hazard-legacy");
        let mut b = stream(9, "hazard-legacy");
        for _ in 0..200 {
            let want = {
                let u: f64 = a.gen_range(f64::EPSILON..1.0);
                SimDuration::from_hours_f64(-hours * u.ln())
            };
            assert_eq!(h.sample_lifetime(&mut b), want);
        }
    }

    #[test]
    fn capped_sampler_matches_legacy_preemptible_draw() {
        let p = 0.37;
        let h = CappedLifetimeHazard::new(p, 24.0);
        let mut a = stream(4, "preempt:17");
        let mut b = stream(4, "preempt:17");
        for _ in 0..200 {
            let want = if a.gen_bool(p) {
                SimDuration::from_hours_f64(a.gen_range(0.0..24.0))
            } else {
                SimDuration::from_hours(24)
            };
            assert_eq!(h.sample_lifetime(&mut b), want);
        }
    }

    #[test]
    fn capped_survival_shape() {
        let h = CappedLifetimeHazard::new(0.4, 24.0);
        assert!((h.survival(SimDuration::ZERO) - 1.0).abs() < 1e-12);
        assert!((h.survival(SimDuration::from_hours(12)) - 0.8).abs() < 1e-12);
        assert_eq!(h.survival(SimDuration::from_hours(24)), 0.0);
        assert_eq!(h.survival(SimDuration::from_hours(30)), 0.0);
        // Mean matches the market catalog's analytic p·12h + (1−p)·24h.
        let want_hours = 0.4 * 12.0 + 0.6 * 24.0;
        assert!((h.mean_lifetime().as_hours_f64() - want_hours).abs() < 1e-9);
    }

    #[test]
    fn capped_mean_residual_declines_with_age() {
        let h = CappedLifetimeHazard::new(0.4, 24.0);
        let mut prev = h.mean_residual(SimDuration::ZERO);
        for hours in [4u64, 8, 12, 16, 20, 23] {
            let cur = h.mean_residual(SimDuration::from_hours(hours));
            assert!(cur < prev, "residual must shrink with age");
            prev = cur;
        }
        assert_eq!(
            h.mean_residual(SimDuration::from_hours(24)),
            SimDuration::from_secs(1)
        );
    }

    #[test]
    fn spec_round_trip_and_defaults() {
        assert_eq!(HazardSpec::default(), HazardSpec::Exponential);
        assert!(HazardSpec::Exponential.is_memoryless());
        let spec = HazardSpec::CappedLifetime {
            early_prob: 0.4,
            cap_hours: 24.0,
        };
        assert!(!spec.is_memoryless());
        let model = spec.build(SimDuration::from_hours(8));
        assert_eq!(model.name(), "capped-lifetime");
        assert_eq!(model.lifetime_cap(), Some(SimDuration::from_hours(24)));
        let exp = HazardSpec::Exponential.build(SimDuration::from_hours(8));
        assert_eq!(exp.name(), "exponential");
        assert_eq!(exp.lifetime_cap(), None);
    }
}
