//! Cost accounting for transient and on-demand servers.
//!
//! Reproduces the 2015-era EC2 billing rules the paper relies on:
//! instances are billed *per hour of use at the spot price in effect at
//! the start of each hour*. A partial final hour is free when the
//! *provider* revokes the instance, but charged in full when the user
//! terminates it. EBS checkpoint volumes are billed per GB-month.

use flint_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::PriceTrace;

/// Computes the spot bill for an instance used over `[start, end)`.
///
/// `revoked_by_provider` selects the partial-final-hour rule described in
/// the module docs.
///
/// # Examples
///
/// ```
/// use flint_market::{hourly_spot_cost, PriceTrace};
/// use flint_simtime::{SimDuration, SimTime};
///
/// let trace = PriceTrace::flat(0.10);
/// let start = SimTime::ZERO;
/// // 90 minutes, user-terminated: 2 full hours billed.
/// let end = start + SimDuration::from_mins(90);
/// assert!((hourly_spot_cost(&trace, start, end, false) - 0.20).abs() < 1e-12);
/// // 90 minutes, provider-revoked: final partial hour free.
/// assert!((hourly_spot_cost(&trace, start, end, true) - 0.10).abs() < 1e-12);
/// ```
pub fn hourly_spot_cost(
    trace: &PriceTrace,
    start: SimTime,
    end: SimTime,
    revoked_by_provider: bool,
) -> f64 {
    if end <= start {
        return 0.0;
    }
    let hour = SimDuration::from_hours(1);
    let mut cost = 0.0;
    let mut t = start;
    while t < end {
        let hour_end = t + hour;
        let full_hour = hour_end <= end;
        let charge = if full_hour {
            true
        } else {
            // Partial final hour.
            !revoked_by_provider
        };
        if charge {
            cost += trace.price_at(t);
        }
        t = hour_end;
    }
    cost
}

/// Pricing for durable EBS-style checkpoint volumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EbsCostModel {
    /// Dollars per GB-month (the paper cites $0.10 for SSD EBS).
    pub price_per_gb_month: f64,
}

impl Default for EbsCostModel {
    fn default() -> Self {
        EbsCostModel {
            price_per_gb_month: 0.10,
        }
    }
}

impl EbsCostModel {
    /// Pro-rated cost of holding `gb` gigabytes for `dur`.
    ///
    /// # Examples
    ///
    /// ```
    /// use flint_market::EbsCostModel;
    /// use flint_simtime::SimDuration;
    ///
    /// let ebs = EbsCostModel::default();
    /// let c = ebs.cost(30.0, SimDuration::from_days(30));
    /// assert!((c - 3.0).abs() < 1e-9); // 30 GB for a month at $0.10/GB-mo
    /// ```
    pub fn cost(&self, gb: f64, dur: SimDuration) -> f64 {
        let months = dur.as_hours_f64() / (24.0 * 30.0);
        self.price_per_gb_month * gb * months
    }

    /// Equivalent hourly cost of holding `gb` gigabytes.
    pub fn hourly_cost(&self, gb: f64) -> f64 {
        self.price_per_gb_month * gb / (24.0 * 30.0)
    }
}

/// One line of a cost report: what an instance (or volume) cost and why.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BillingLine {
    /// Human-readable description, e.g. a market name.
    pub description: String,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
    /// Dollars charged.
    pub cost: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hours(h: f64) -> SimTime {
        SimTime::from_hours_f64(h)
    }

    #[test]
    fn bills_at_hour_start_price() {
        // Price rises mid-hour; the whole hour is billed at the start price.
        let trace = PriceTrace::from_points(vec![
            (hours(0.0), 0.10),
            (hours(0.5), 1.00),
            (hours(1.0), 0.10),
        ]);
        let c = hourly_spot_cost(&trace, hours(0.0), hours(1.0), false);
        assert!((c - 0.10).abs() < 1e-12);
    }

    #[test]
    fn multi_hour_bill_sums_hour_starts() {
        let trace = PriceTrace::from_points(vec![(hours(0.0), 0.10), (hours(1.0), 0.30)]);
        let c = hourly_spot_cost(&trace, hours(0.0), hours(2.0), false);
        assert!((c - 0.40).abs() < 1e-12);
    }

    #[test]
    fn zero_length_interval_is_free() {
        let trace = PriceTrace::flat(1.0);
        assert_eq!(hourly_spot_cost(&trace, hours(5.0), hours(5.0), false), 0.0);
        assert_eq!(hourly_spot_cost(&trace, hours(5.0), hours(4.0), true), 0.0);
    }

    #[test]
    fn provider_revocation_waives_partial_hour() {
        let trace = PriceTrace::flat(0.2);
        // 2.5 hours of use.
        let user = hourly_spot_cost(&trace, hours(0.0), hours(2.5), false);
        let revoked = hourly_spot_cost(&trace, hours(0.0), hours(2.5), true);
        assert!((user - 0.6).abs() < 1e-12);
        assert!((revoked - 0.4).abs() < 1e-12);
    }

    #[test]
    fn exact_hour_boundary_charges_fully_either_way() {
        let trace = PriceTrace::flat(0.2);
        let a = hourly_spot_cost(&trace, hours(0.0), hours(2.0), false);
        let b = hourly_spot_cost(&trace, hours(0.0), hours(2.0), true);
        assert!((a - b).abs() < 1e-12);
        assert!((a - 0.4).abs() < 1e-12);
    }

    #[test]
    fn ebs_cost_is_linear() {
        let ebs = EbsCostModel {
            price_per_gb_month: 0.10,
        };
        let one = ebs.cost(10.0, SimDuration::from_days(15));
        let two = ebs.cost(20.0, SimDuration::from_days(15));
        assert!((two - 2.0 * one).abs() < 1e-12);
        assert!((ebs.hourly_cost(720.0) - 0.1).abs() < 1e-9);
    }
}
