//! Catalogs of markets available to a Flint deployment.

use flint_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::{InstanceSpec, Market, MarketId, MarketKind, PriceTrace, TraceGenerator, TraceProfile};

/// A collection of transient-server markets plus one on-demand pool.
///
/// The catalog is the simulator's ground truth; Flint's node manager sees
/// it only through backward-looking [`crate::MarketStats`].
///
/// # Examples
///
/// ```
/// use flint_market::MarketCatalog;
/// use flint_simtime::SimDuration;
///
/// let cat = MarketCatalog::synthetic_ec2(1, SimDuration::from_days(60));
/// assert!(cat.spot_markets().len() >= 9);
/// assert!(!cat.market(cat.on_demand_id()).is_revocable());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarketCatalog {
    markets: Vec<Market>,
    on_demand: MarketId,
}

impl MarketCatalog {
    /// Builds a catalog from explicit markets and the id of the on-demand
    /// pool.
    ///
    /// # Panics
    ///
    /// Panics if ids are not dense `0..n`, or `on_demand` does not name an
    /// [`MarketKind::OnDemand`] market.
    pub fn new(markets: Vec<Market>, on_demand: MarketId) -> Self {
        for (i, m) in markets.iter().enumerate() {
            assert_eq!(m.id.0 as usize, i, "market ids must be dense and ordered");
        }
        assert!(
            matches!(markets[on_demand.0 as usize].kind, MarketKind::OnDemand),
            "on_demand must reference an on-demand market"
        );
        MarketCatalog { markets, on_demand }
    }

    /// A synthetic EC2-like region: three availability zones × three
    /// instance types of varying volatility (nine spot markets), plus an
    /// on-demand pool of the paper's `r3.large` evaluation instances.
    ///
    /// Markets within the same zone share a mild spike correlation
    /// (ρ = 0.3); one pair is strongly correlated (ρ = 0.9) so selection
    /// policies have something to avoid, mirroring Fig. 4's mostly-dark
    /// heatmap with a few bright squares.
    pub fn synthetic_ec2(seed: u64, horizon: SimDuration) -> Self {
        let gen = TraceGenerator::new(seed, SimTime::ZERO + horizon);
        let mut markets = Vec::new();

        // (type name, spec, on-demand $/hr)
        let types: [(&str, InstanceSpec, f64); 3] = [
            ("r3.large", InstanceSpec::R3_LARGE, 0.175),
            ("m3.2xlarge", InstanceSpec::M3_2XLARGE, 0.532),
            ("m2.2xlarge", InstanceSpec::M2_2XLARGE, 0.490),
        ];
        // (zone, volatility profile factory)
        #[allow(clippy::type_complexity)]
        let zones: [(&str, fn(f64) -> TraceProfile); 3] = [
            ("us-east-1a", TraceProfile::volatile),
            ("us-east-1b", TraceProfile::moderate),
            ("us-east-1c", TraceProfile::quiet),
        ];

        let mut next_id = 0u32;
        for (zone, profile_fn) in zones {
            // Same-zone markets share mild correlation.
            let labels: Vec<String> = types
                .iter()
                .map(|(ty, _, _)| format!("{zone}/{ty}"))
                .collect();
            let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
            // Use the first type's profile scaled per-type below: generate
            // per-type correlated traces one by one with the zone group.
            for (i, (ty, spec, od)) in types.iter().enumerate() {
                let profile = profile_fn(*od);
                let traces =
                    gen.generate_correlated(&format!("zone:{zone}"), &label_refs, &profile, 0.3);
                markets.push(Market {
                    id: MarketId(next_id),
                    name: format!("{zone}/{ty}"),
                    zone: zone.to_string(),
                    spec: *spec,
                    on_demand_price: *od,
                    kind: MarketKind::Spot,
                    trace: traces[i].clone(),
                });
                next_id += 1;
            }
        }

        // A strongly-correlated twin of market 0 (same zone, same type in a
        // "neighbouring" pool), exercising the uncorrelated-subset filter.
        {
            let (ty, spec, od) = types[0];
            let profile = TraceProfile::volatile(od);
            let twin = gen.generate_correlated(
                "twin-pair",
                &["us-east-1a/r3.large", "us-east-1a2/r3.large"],
                &profile,
                0.9,
            );
            markets.push(Market {
                id: MarketId(next_id),
                name: format!("us-east-1a2/{ty}"),
                zone: "us-east-1a".to_string(),
                spec,
                on_demand_price: od,
                kind: MarketKind::Spot,
                trace: twin[1].clone(),
            });
            next_id += 1;
            // Also overwrite market 0's trace with its twin half so the
            // pair is genuinely correlated.
            markets[0].trace = twin[0].clone();
        }

        // On-demand pool (r3.large, flat price, never revoked).
        let od_id = MarketId(next_id);
        markets.push(Market {
            id: od_id,
            name: "on-demand/r3.large".to_string(),
            zone: "region".to_string(),
            spec: InstanceSpec::R3_LARGE,
            on_demand_price: 0.175,
            kind: MarketKind::OnDemand,
            trace: PriceTrace::flat(0.175),
        });

        MarketCatalog::new(markets, od_id)
    }

    /// A synthetic GCE-like catalog: three preemptible types at a fixed
    /// ~70 % discount plus an on-demand pool (Fig. 2b's setting).
    pub fn synthetic_gce(_seed: u64, _horizon: SimDuration) -> Self {
        let types: [(&str, InstanceSpec, f64); 3] = [
            (
                "f1-micro",
                InstanceSpec {
                    vcpus: 1,
                    mem_gb: 0.6,
                    local_ssd_gb: 10.0,
                },
                0.0076,
            ),
            (
                "n1-standard-1",
                InstanceSpec {
                    vcpus: 1,
                    mem_gb: 3.75,
                    local_ssd_gb: 10.0,
                },
                0.05,
            ),
            (
                "n1-highmem-2",
                InstanceSpec {
                    vcpus: 2,
                    mem_gb: 13.0,
                    local_ssd_gb: 10.0,
                },
                0.126,
            ),
        ];
        let mut markets = Vec::new();
        // Early-revocation probabilities chosen so MTTFs land near the
        // paper's empirical 20.3-22.9 h (Fig. 2b).
        let early = [0.19, 0.31, 0.09];
        for (i, (ty, spec, od)) in types.iter().enumerate() {
            markets.push(Market {
                id: MarketId(i as u32),
                name: format!("gce/{ty}"),
                zone: "gce".to_string(),
                spec: *spec,
                on_demand_price: *od,
                kind: MarketKind::Preemptible {
                    early_revocation_prob: early[i],
                },
                trace: PriceTrace::flat(od * 0.3),
            });
        }
        let od_id = MarketId(types.len() as u32);
        markets.push(Market {
            id: od_id,
            name: "gce/on-demand".to_string(),
            zone: "gce".to_string(),
            spec: InstanceSpec {
                vcpus: 2,
                mem_gb: 13.0,
                local_ssd_gb: 10.0,
            },
            on_demand_price: 0.126,
            kind: MarketKind::OnDemand,
            trace: PriceTrace::flat(0.126),
        });
        MarketCatalog::new(markets, od_id)
    }

    /// Builds a catalog from externally supplied spot traces (e.g.
    /// parsed from archive CSVs via [`PriceTrace::from_csv`]): one spot
    /// market per `(name, on_demand_price, trace)` triple, all selling
    /// `spec`, plus an on-demand pool at `on_demand_price` of the first
    /// entry.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn from_traces(spec: InstanceSpec, traces: Vec<(String, f64, PriceTrace)>) -> Self {
        assert!(!traces.is_empty(), "need at least one trace");
        let od_price = traces[0].1;
        let mut markets: Vec<Market> = traces
            .into_iter()
            .enumerate()
            .map(|(i, (name, od, trace))| Market {
                id: MarketId(i as u32),
                name,
                zone: "imported".to_string(),
                spec,
                on_demand_price: od,
                kind: MarketKind::Spot,
                trace,
            })
            .collect();
        let od_id = MarketId(markets.len() as u32);
        markets.push(Market {
            id: od_id,
            name: "on-demand".to_string(),
            zone: "imported".to_string(),
            spec,
            on_demand_price: od_price,
            kind: MarketKind::OnDemand,
            trace: PriceTrace::flat(od_price),
        });
        MarketCatalog::new(markets, od_id)
    }

    /// Returns all markets, including the on-demand pool.
    pub fn markets(&self) -> &[Market] {
        &self.markets
    }

    /// Returns only the revocable (spot/preemptible) markets.
    pub fn spot_markets(&self) -> Vec<&Market> {
        self.markets.iter().filter(|m| m.is_revocable()).collect()
    }

    /// Returns the market with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn market(&self, id: MarketId) -> &Market {
        &self.markets[id.0 as usize]
    }

    /// Returns the id of the on-demand pool.
    pub fn on_demand_id(&self) -> MarketId {
        self.on_demand
    }

    /// Returns the number of markets.
    pub fn len(&self) -> usize {
        self.markets.len()
    }

    /// Returns `true` if the catalog has no markets.
    pub fn is_empty(&self) -> bool {
        self.markets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise_correlation;

    #[test]
    fn ec2_catalog_shape() {
        let cat = MarketCatalog::synthetic_ec2(5, SimDuration::from_days(60));
        assert_eq!(cat.len(), 11); // 9 zone markets + twin + on-demand
        assert_eq!(cat.spot_markets().len(), 10);
        assert!(!cat.market(cat.on_demand_id()).is_revocable());
    }

    #[test]
    fn catalog_is_deterministic() {
        let a = MarketCatalog::synthetic_ec2(5, SimDuration::from_days(30));
        let b = MarketCatalog::synthetic_ec2(5, SimDuration::from_days(30));
        for (ma, mb) in a.markets().iter().zip(b.markets()) {
            assert_eq!(ma.trace, mb.trace);
        }
    }

    #[test]
    fn twin_markets_are_correlated() {
        let cat = MarketCatalog::synthetic_ec2(5, SimDuration::from_days(60));
        let horizon = SimTime::ZERO + SimDuration::from_days(60);
        let step = SimDuration::from_mins(10);
        let twin_id = MarketId(9);
        assert!(cat.market(twin_id).name.starts_with("us-east-1a2"));
        let r = pairwise_correlation(
            &cat.market(MarketId(0)).trace,
            &cat.market(twin_id).trace,
            SimTime::ZERO,
            horizon,
            step,
            2.0,
        );
        assert!(r > 0.5, "twin pair correlation too low: {r}");
    }

    #[test]
    fn cross_zone_markets_are_weakly_correlated() {
        let cat = MarketCatalog::synthetic_ec2(5, SimDuration::from_days(60));
        let horizon = SimTime::ZERO + SimDuration::from_days(60);
        let step = SimDuration::from_mins(10);
        // Market 0 (us-east-1a volatile) vs market 6 (us-east-1c quiet).
        let r = pairwise_correlation(
            &cat.market(MarketId(0)).trace,
            &cat.market(MarketId(6)).trace,
            SimTime::ZERO,
            horizon,
            step,
            2.0,
        );
        assert!(r.abs() < 0.3, "cross-zone correlation too high: {r}");
    }

    #[test]
    fn gce_catalog_mttfs_match_paper() {
        let cat = MarketCatalog::synthetic_gce(1, SimDuration::from_days(30));
        let now = SimTime::from_hours_f64(200.0);
        let window = SimDuration::from_days(7);
        let mttfs: Vec<f64> = cat
            .spot_markets()
            .iter()
            .map(|m| m.stats(now, window, m.on_demand_price).mttf.as_hours_f64())
            .collect();
        // Paper Fig. 2b: 21.68, 20.26, 22.92 hours.
        for (got, want) in mttfs.iter().zip([21.68, 20.28, 22.92]) {
            assert!(
                (got - want).abs() < 1.0,
                "GCE MTTF {got:.2} vs paper {want}"
            );
        }
    }

    #[test]
    fn catalog_from_imported_traces() {
        let csv = "hours,price\n0,0.02\n10,0.5\n11,0.02\n";
        let trace = PriceTrace::from_csv(csv).unwrap();
        let cat = MarketCatalog::from_traces(
            InstanceSpec::R3_LARGE,
            vec![("archive/us-east-1e".into(), 0.175, trace)],
        );
        assert_eq!(cat.spot_markets().len(), 1);
        let m = cat.market(MarketId(0));
        assert_eq!(m.price_at(SimTime::from_hours_f64(10.5)), 0.5);
        assert!(!cat.market(cat.on_demand_id()).is_revocable());
    }

    #[test]
    #[should_panic(expected = "dense and ordered")]
    fn sparse_ids_rejected() {
        let m = Market {
            id: MarketId(3),
            name: "x".into(),
            zone: "z".into(),
            spec: InstanceSpec::R3_LARGE,
            on_demand_price: 0.1,
            kind: MarketKind::OnDemand,
            trace: PriceTrace::flat(0.1),
        };
        let _ = MarketCatalog::new(vec![m], MarketId(3));
    }
}
