//! Price-spike correlation between markets.
//!
//! Flint's interactive policy (Policy 2, §3.2) spreads a cluster across
//! markets whose prices are *pairwise uncorrelated* so revocations do not
//! strike every server at once. Correlation is estimated on spike
//! indicators rather than raw prices: what matters for revocations is
//! whether two markets spike *at the same time*, not whether their steady
//! states co-move.

use flint_simtime::{SimDuration, SimTime};

use crate::PriceTrace;

/// Pearson correlation of the two traces' above-threshold indicators,
/// sampled every `step` over `[from, to)`.
///
/// Each trace is reduced to a 0/1 series — "is the price above
/// `threshold_frac` × its window mean?" — and the correlation of those
/// series is returned. Degenerate series (no spikes in either market)
/// yield `0.0`.
///
/// # Examples
///
/// ```
/// use flint_market::{pairwise_correlation, PriceTrace};
/// use flint_simtime::{SimDuration, SimTime};
///
/// let a = PriceTrace::flat(0.1);
/// let b = PriceTrace::flat(0.1);
/// let rho = pairwise_correlation(
///     &a, &b,
///     SimTime::ZERO, SimTime::from_hours_f64(24.0),
///     SimDuration::from_mins(5), 2.0,
/// );
/// assert_eq!(rho, 0.0); // neither market ever spikes
/// ```
pub fn pairwise_correlation(
    a: &PriceTrace,
    b: &PriceTrace,
    from: SimTime,
    to: SimTime,
    step: SimDuration,
    threshold_frac: f64,
) -> f64 {
    let xs = spike_indicator(a, from, to, step, threshold_frac);
    let ys = spike_indicator(b, from, to, step, threshold_frac);
    pearson(&xs, &ys)
}

fn spike_indicator(
    t: &PriceTrace,
    from: SimTime,
    to: SimTime,
    step: SimDuration,
    threshold_frac: f64,
) -> Vec<f64> {
    let mean = t.mean_price(from, to);
    let threshold = mean * threshold_frac;
    t.sample(from, to, step)
        .into_iter()
        .map(|p| if p > threshold { 1.0 } else { 0.0 })
        .collect()
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().min(ys.len());
    if n < 2 {
        return 0.0;
    }
    let (xs, ys) = (&xs[..n], &ys[..n]);
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Computes the full pairwise spike-correlation matrix for `traces`.
///
/// Entry `[i][j]` is the correlation between traces `i` and `j`; the
/// diagonal is `1.0` whenever market `i` has any spikes (else `0.0`).
pub fn correlation_matrix(
    traces: &[&PriceTrace],
    from: SimTime,
    to: SimTime,
    step: SimDuration,
    threshold_frac: f64,
) -> Vec<Vec<f64>> {
    let indicators: Vec<Vec<f64>> = traces
        .iter()
        .map(|t| spike_indicator(t, from, to, step, threshold_frac))
        .collect();
    let n = traces.len();
    let mut m = vec![vec![0.0; n]; n];
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        for j in i..n {
            let r = pearson(&indicators[i], &indicators[j]);
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    m
}

/// Greedily selects up to `max_size` indices whose pairwise correlations
/// all stay at or below `max_corr`.
///
/// This is Flint's construction of the candidate set `L` (§3.2.2):
/// markets are visited in the given order (callers pre-sort by expected
/// cost) and added if they are sufficiently uncorrelated with everything
/// already chosen.
///
/// # Examples
///
/// ```
/// use flint_market::greedy_uncorrelated_subset;
///
/// // Market 1 is strongly correlated with market 0; market 2 is not.
/// let corr = vec![
///     vec![1.0, 0.9, 0.05],
///     vec![0.9, 1.0, 0.10],
///     vec![0.05, 0.10, 1.0],
/// ];
/// assert_eq!(greedy_uncorrelated_subset(&corr, 0.2, 8), vec![0, 2]);
/// ```
#[allow(clippy::needless_range_loop)]
pub fn greedy_uncorrelated_subset(corr: &[Vec<f64>], max_corr: f64, max_size: usize) -> Vec<usize> {
    let n = corr.len();
    let mut chosen: Vec<usize> = Vec::new();
    for i in 0..n {
        if chosen.len() >= max_size {
            break;
        }
        if chosen.iter().all(|&j| corr[i][j].abs() <= max_corr) {
            chosen.push(i);
        }
    }
    chosen
}

/// Partitions market indices into correlated groups: connected
/// components of the graph whose edges join pairs with
/// `|corr[i][j]| > threshold`.
///
/// Markets in one group tend to spike together, so a mass-revocation
/// event striking one of them plausibly strikes them all — chaos
/// campaigns use these groups to build correlated revocation schedules,
/// and cooldown policies can exclude a whole group after one member
/// fails. Groups are returned in ascending order of their smallest
/// member; singleton groups are included.
///
/// # Examples
///
/// ```
/// use flint_market::correlated_groups;
///
/// // 0 and 1 spike together; 2 is independent.
/// let corr = vec![
///     vec![1.0, 0.9, 0.05],
///     vec![0.9, 1.0, 0.10],
///     vec![0.05, 0.10, 1.0],
/// ];
/// assert_eq!(correlated_groups(&corr, 0.25), vec![vec![0, 1], vec![2]]);
/// ```
pub fn correlated_groups(corr: &[Vec<f64>], threshold: f64) -> Vec<Vec<usize>> {
    let n = corr.len();
    let mut group_of: Vec<usize> = (0..n).collect();
    // Union-find with path halving; small n, so simplicity over rank.
    fn find(g: &mut [usize], mut i: usize) -> usize {
        while g[i] != i {
            g[i] = g[g[i]];
            i = g[i];
        }
        i
    }
    for (i, row) in corr.iter().enumerate() {
        for (j, c) in row.iter().enumerate().skip(i + 1) {
            if c.abs() > threshold {
                let (ri, rj) = (find(&mut group_of, i), find(&mut group_of, j));
                if ri != rj {
                    group_of[ri.max(rj)] = ri.min(rj);
                }
            }
        }
    }
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut index_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for i in 0..n {
        let root = find(&mut group_of, i);
        match index_of.get(&root) {
            Some(&gi) => groups[gi].push(i),
            None => {
                index_of.insert(root, groups.len());
                groups.push(vec![i]);
            }
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, TraceProfile};

    fn horizon() -> SimTime {
        SimTime::ZERO + SimDuration::from_days(60)
    }

    fn step() -> SimDuration {
        SimDuration::from_mins(10)
    }

    #[test]
    fn identical_spiky_traces_fully_correlated() {
        let g = TraceGenerator::new(8, horizon());
        let p = TraceProfile::volatile(0.35);
        let t = g.generate("m", &p);
        let r = pairwise_correlation(&t, &t, SimTime::ZERO, horizon(), step(), 2.0);
        assert!((r - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_traces_weakly_correlated() {
        let g = TraceGenerator::new(8, horizon());
        let p = TraceProfile::volatile(0.35);
        let a = g.generate("a", &p);
        let b = g.generate("b", &p);
        let r = pairwise_correlation(&a, &b, SimTime::ZERO, horizon(), step(), 2.0);
        assert!(
            r.abs() < 0.25,
            "independent traces should decorrelate, got {r}"
        );
    }

    #[test]
    fn shared_spikes_raise_correlation() {
        let g = TraceGenerator::new(8, horizon());
        let p = TraceProfile::volatile(0.35);
        let ts = g.generate_correlated("grp", &["a", "b"], &p, 0.9);
        let r = pairwise_correlation(&ts[0], &ts[1], SimTime::ZERO, horizon(), step(), 2.0);
        assert!(r > 0.5, "rho=0.9 family should correlate strongly, got {r}");
    }

    #[test]
    fn matrix_is_symmetric_with_unit_diagonal() {
        let g = TraceGenerator::new(8, horizon());
        let p = TraceProfile::volatile(0.35);
        let a = g.generate("a", &p);
        let b = g.generate("b", &p);
        let c = g.generate("c", &p);
        let m = correlation_matrix(&[&a, &b, &c], SimTime::ZERO, horizon(), step(), 2.0);
        #[allow(clippy::needless_range_loop)]
        for i in 0..3 {
            assert!((m[i][i] - 1.0).abs() < 1e-9);
            for j in 0..3 {
                assert!((m[i][j] - m[j][i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn greedy_subset_respects_cap_and_size() {
        let corr = vec![
            vec![1.0, 0.8, 0.1, 0.1],
            vec![0.8, 1.0, 0.1, 0.1],
            vec![0.1, 0.1, 1.0, 0.1],
            vec![0.1, 0.1, 0.1, 1.0],
        ];
        assert_eq!(greedy_uncorrelated_subset(&corr, 0.5, 10), vec![0, 2, 3]);
        assert_eq!(greedy_uncorrelated_subset(&corr, 0.5, 2), vec![0, 2]);
        // With a permissive cap everything is admitted.
        assert_eq!(greedy_uncorrelated_subset(&corr, 1.0, 10), vec![0, 1, 2, 3]);
    }

    #[test]
    fn pearson_handles_degenerate_input() {
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[0.0, 1.0, 0.0]), 0.0);
    }

    #[test]
    fn correlated_groups_are_transitive_components() {
        // 0–1 and 1–3 are edges, so {0, 1, 3} is one group even though
        // 0–3 alone fall below the threshold; 2 stands alone.
        let corr = vec![
            vec![1.0, 0.8, 0.0, 0.1],
            vec![0.8, 1.0, 0.0, 0.9],
            vec![0.0, 0.0, 1.0, 0.0],
            vec![0.1, 0.9, 0.0, 1.0],
        ];
        assert_eq!(correlated_groups(&corr, 0.5), vec![vec![0, 1, 3], vec![2]]);
        // A permissive threshold leaves everything independent.
        assert_eq!(
            correlated_groups(&corr, 1.0),
            vec![vec![0], vec![1], vec![2], vec![3]]
        );
        assert!(correlated_groups(&[], 0.5).is_empty());
    }
}
