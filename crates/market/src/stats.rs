//! Trace statistics: the availability and time-to-failure analysis
//! behind Figure 2, packaged for reuse.

use flint_simtime::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::PriceTrace;

/// Summary statistics of the time-to-failure distribution of a trace at
/// a given bid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TtfStats {
    /// Number of samples taken.
    pub samples: usize,
    /// Mean time to failure.
    pub mean: SimDuration,
    /// 25th percentile.
    pub p25: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 75th percentile.
    pub p75: SimDuration,
    /// Fraction of time the price clears the bid (availability).
    pub availability: f64,
}

impl TtfStats {
    /// Samples the TTF distribution of `trace` at `bid`: from start
    /// instants spaced `stride` apart over `[from, to)`, how long until
    /// the next up-crossing of the bid. Instants with no further
    /// crossing are right-censored and excluded from the TTF quantiles
    /// (but counted into availability).
    ///
    /// # Examples
    ///
    /// ```
    /// use flint_market::{TraceGenerator, TraceProfile, TtfStats};
    /// use flint_simtime::{SimDuration, SimTime};
    ///
    /// let g = TraceGenerator::new(3, SimTime::ZERO + SimDuration::from_days(90));
    /// let trace = g.generate("m", &TraceProfile::volatile(0.35));
    /// let s = TtfStats::sample(
    ///     &trace, 0.35,
    ///     SimTime::ZERO, SimTime::ZERO + SimDuration::from_days(90),
    ///     SimDuration::from_hours(12),
    /// );
    /// // Volatile profile targets ~19h MTTF.
    /// assert!(s.mean.as_hours_f64() > 8.0 && s.mean.as_hours_f64() < 40.0);
    /// assert!(s.availability > 0.9);
    /// ```
    pub fn sample(
        trace: &PriceTrace,
        bid: f64,
        from: SimTime,
        to: SimTime,
        stride: SimDuration,
    ) -> TtfStats {
        let mut ttfs: Vec<SimDuration> = Vec::new();
        let mut t = from;
        while t < to {
            if let Some(rev) = trace.next_up_crossing(t, bid) {
                ttfs.push(rev - t);
            }
            t += stride;
        }
        ttfs.sort();
        let samples = ttfs.len();
        let mean = if samples == 0 {
            SimDuration::MAX
        } else {
            SimDuration::from_millis(
                (ttfs.iter().map(|d| d.as_millis() as u128).sum::<u128>() / samples as u128) as u64,
            )
        };
        let pct = |p: f64| -> SimDuration {
            if ttfs.is_empty() {
                return SimDuration::MAX;
            }
            let idx = ((ttfs.len() - 1) as f64 * p).round() as usize;
            ttfs[idx]
        };
        // Availability: fraction of sampled instants where price ≤ bid.
        let prices = trace.sample(from, to, stride);
        let clear = prices.iter().filter(|p| **p <= bid).count();
        let availability = clear as f64 / prices.len().max(1) as f64;
        TtfStats {
            samples,
            mean,
            p25: pct(0.25),
            p50: pct(0.50),
            p75: pct(0.75),
            availability,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceGenerator, TraceProfile};

    fn sample_stats(mttf_target: f64) -> TtfStats {
        let horizon = SimTime::ZERO + SimDuration::from_days(180);
        let g = TraceGenerator::new(11, horizon);
        let profile = TraceProfile::with_mttf_hours(0.35, mttf_target);
        let trace = g.generate("s", &profile);
        TtfStats::sample(
            &trace,
            0.35,
            SimTime::ZERO,
            horizon,
            SimDuration::from_hours(6),
        )
    }

    #[test]
    fn quantiles_are_ordered() {
        let s = sample_stats(20.0);
        assert!(s.p25 <= s.p50);
        assert!(s.p50 <= s.p75);
        assert!(s.samples > 100);
    }

    #[test]
    fn mean_tracks_profile_target() {
        let fast = sample_stats(5.0);
        let slow = sample_stats(100.0);
        assert!(slow.mean > fast.mean * 4);
    }

    #[test]
    fn availability_rises_with_bid() {
        let horizon = SimTime::ZERO + SimDuration::from_days(90);
        let g = TraceGenerator::new(5, horizon);
        let trace = g.generate("a", &TraceProfile::volatile(0.35));
        let low = TtfStats::sample(
            &trace,
            0.02,
            SimTime::ZERO,
            horizon,
            SimDuration::from_hours(2),
        );
        let high = TtfStats::sample(
            &trace,
            0.35,
            SimTime::ZERO,
            horizon,
            SimDuration::from_hours(2),
        );
        assert!(high.availability > low.availability);
        assert!(high.availability > 0.9);
    }

    #[test]
    fn flat_trace_never_fails() {
        let trace = PriceTrace::flat(0.1);
        let s = TtfStats::sample(
            &trace,
            0.2,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_days(10),
            SimDuration::from_hours(12),
        );
        assert_eq!(s.samples, 0);
        assert_eq!(s.mean, SimDuration::MAX);
        assert_eq!(s.availability, 1.0);
    }
}
