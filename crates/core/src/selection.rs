//! Transient-server selection policies and the cost/variance models
//! behind them (paper §3.1.2 and §3.2.2, Equations 1–4).

use flint_market::{
    correlation_matrix, greedy_uncorrelated_subset, HazardSpec, MarketCatalog, MarketId,
    MarketStats,
};
use flint_simtime::{SimDuration, SimTime};
use flint_store::StorageConfig;
use serde::{Deserialize, Serialize};

use crate::BidPolicy;

/// The optimal checkpoint interval `τ ≈ √(2·δ·MTTF)` (Daly's first-order
/// approximation, §3.1.1).
///
/// Returns [`SimDuration::MAX`] when the MTTF is infinite (on-demand
/// servers never need checkpoints) and clamps below at one second so a
/// pathological MTTF cannot demand continuous checkpointing.
///
/// # Examples
///
/// ```
/// use flint_core::optimal_tau;
/// use flint_simtime::SimDuration;
///
/// // δ = 2 min, MTTF = 50 h → τ ≈ √(2·120·180000) ≈ 1.83 h.
/// let tau = optimal_tau(SimDuration::from_mins(2), SimDuration::from_hours(50));
/// assert!((tau.as_hours_f64() - 1.83).abs() < 0.02);
/// ```
pub fn optimal_tau(delta: SimDuration, mttf: SimDuration) -> SimDuration {
    if mttf == SimDuration::MAX {
        return SimDuration::MAX;
    }
    let secs = (2.0 * delta.as_secs_f64() * mttf.as_secs_f64()).sqrt();
    SimDuration::from_secs_f64(secs).max(SimDuration::from_secs(1))
}

/// The expected running-time inflation factor for a cluster drawing a
/// `frac` fraction of its servers from a market with the given MTTF
/// (Eq. 1 / Eq. 4 with `frac = 1/m`):
///
/// `E[T]/T = 1 + δ/τ + frac · (τ/2 + rd) / MTTF`.
pub fn expected_runtime_factor(
    delta: SimDuration,
    tau: SimDuration,
    mttf: SimDuration,
    rd: SimDuration,
    frac: f64,
) -> f64 {
    if mttf == SimDuration::MAX {
        return 1.0;
    }
    let tau_s = tau.as_secs_f64().max(1.0);
    let ckpt_overhead = delta.as_secs_f64() / tau_s;
    let recompute = frac * (tau_s / 2.0 + rd.as_secs_f64()) / mttf.as_secs_f64().max(1.0);
    1.0 + ckpt_overhead + recompute
}

/// The expected cost rate ($/server-hour) of running on a market: the
/// inflation factor times the market's mean price (Eq. 2, divided by
/// `T · N` to give a rate).
pub fn expected_cost(factor: f64, mean_price: f64) -> f64 {
    factor * mean_price
}

/// Aggregate MTTF of a heterogeneous cluster: the harmonic combination
/// `1 / (1/MTTF_1 + … + 1/MTTF_m)` (Eq. 3).
///
/// # Examples
///
/// ```
/// use flint_core::harmonic_mttf;
/// use flint_simtime::SimDuration;
///
/// let h = harmonic_mttf(&[SimDuration::from_hours(20), SimDuration::from_hours(20)]);
/// assert!((h.as_hours_f64() - 10.0).abs() < 1e-6);
/// ```
pub fn harmonic_mttf(mttfs: &[SimDuration]) -> SimDuration {
    let mut rate = 0.0;
    for m in mttfs {
        if *m == SimDuration::MAX {
            continue;
        }
        rate += 1.0 / m.as_hours_f64().max(1e-9);
    }
    if rate <= 0.0 {
        SimDuration::MAX
    } else {
        SimDuration::from_hours_f64(1.0 / rate)
    }
}

/// Variance of the running time (seconds²) for a job of length `t` on a
/// cluster split equally across `m` markets with aggregate MTTF
/// `mttf_agg` (§3.2.2).
///
/// Revocation events arrive as a Poisson process with rate `1/MTTF(S)`;
/// each event loses `1/m` of the servers and costs
/// `(U + rd)/m` with `U ~ Uniform(0, τ)` of lost work, so the compound
/// Poisson variance is `(T/MTTF) · E[((U + rd)/m)²]`.
pub fn runtime_variance(
    t: SimDuration,
    delta: SimDuration,
    mttf_agg: SimDuration,
    rd: SimDuration,
    m: u32,
) -> f64 {
    if mttf_agg == SimDuration::MAX {
        return 0.0;
    }
    let tau = optimal_tau(delta, mttf_agg).as_secs_f64();
    let rd_s = rd.as_secs_f64();
    let m_f = f64::from(m.max(1));
    let e_u2 = tau * tau / 3.0 + tau * rd_s + rd_s * rd_s;
    let rate = t.as_secs_f64() / mttf_agg.as_secs_f64().max(1.0);
    rate * e_u2 / (m_f * m_f)
}

/// Static configuration of the selection machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectionConfig {
    /// Backward-looking window for price statistics (the paper uses "a
    /// recent time window, e.g., the past week").
    pub window: SimDuration,
    /// Reject markets whose instantaneous price exceeds the window mean
    /// by more than this fraction (§3.1.2 restoration policy, 10 %).
    pub stability_threshold: f64,
    /// Maximum pairwise spike correlation admitted into the candidate
    /// set `L` (§3.2.2).
    pub max_correlation: f64,
    /// Cap on `|L|` (pruning the >1000-market search space).
    pub max_markets: usize,
    /// Sampling step for correlation estimation.
    pub correlation_step: SimDuration,
    /// Spike threshold (multiple of mean price) for correlation.
    pub spike_threshold: f64,
    /// Replacement/acquisition delay `rd` (EC2: two minutes).
    pub rd: SimDuration,
    /// Restrict candidates to markets selling the same instance shape as
    /// the on-demand reference pool, so expected costs are comparable
    /// per worker (diversification then spans zones/pools, not sizes).
    pub match_reference_spec: bool,
    /// Exclusion window after a market fails (spikes/revokes): the node
    /// manager keeps it out of the candidate set for this long across
    /// replacement rounds, so restoration does not immediately buy back
    /// into a still-spiking market. `ZERO` (the default) disables the
    /// window, preserving pre-cooldown behavior byte-for-byte.
    pub market_cooldown: SimDuration,
    /// Revocations within [`Self::breaker_window`] that trip a market's
    /// circuit breaker from closed to open. `0` (the default) disables
    /// breakers entirely, preserving pre-breaker behavior byte-for-byte.
    /// Breakers generalize [`Self::market_cooldown`]: where a cooldown
    /// is a fixed timed exclusion per failure, a breaker counts failures
    /// in a sliding window, excludes the market while open, probes it
    /// with a half-open round after the cooldown, and re-opens on a
    /// failed probe.
    pub breaker_revocation_threshold: u32,
    /// Sliding window over which [`Self::breaker_revocation_threshold`]
    /// counts revocations.
    pub breaker_window: SimDuration,
    /// How long an open breaker excludes its market before entering
    /// half-open, and how long a half-open probe must survive before
    /// the breaker closes again.
    pub breaker_cooldown: SimDuration,
    /// Trip a market's breaker when the spot price at a revocation
    /// exceeds this multiple of the on-demand rate (the paper's "why
    /// bid above on-demand" boundary). `0.0` (the default) disables the
    /// price trigger.
    pub breaker_price_factor: f64,
    /// Fraction of the target cluster size `n` below which the
    /// on-demand backstop provisions fixed-price workers (requires
    /// [`Self::backstop`]). `0.0` (the default) never triggers.
    pub capacity_floor: f64,
    /// Enables the on-demand backstop tier: when capacity falls below
    /// [`Self::capacity_floor`]`·n`, the node manager buys the deficit
    /// from the catalog's on-demand pool at the fixed catalog price, so
    /// a market-wide collapse degrades the job in cost, not
    /// correctness. Off by default.
    pub backstop: bool,
    /// The instance-lifetime hazard model the node manager assumes.
    /// The default ([`HazardSpec::Exponential`]) keeps the legacy
    /// memoryless pipeline — market-stats MTTF, age-blind τ, unscaled
    /// bids — byte-for-byte; an age-dependent spec switches cluster
    /// MTTF estimation to per-instance mean residual lifetimes and
    /// discounts bid headroom past the lifetime cap.
    pub hazard: HazardSpec,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        SelectionConfig {
            window: SimDuration::from_days(7),
            stability_threshold: 0.10,
            max_correlation: 0.25,
            max_markets: 6,
            correlation_step: SimDuration::from_mins(10),
            spike_threshold: 2.0,
            rd: SimDuration::from_secs(120),
            match_reference_spec: true,
            market_cooldown: SimDuration::ZERO,
            breaker_revocation_threshold: 0,
            breaker_window: SimDuration::from_hours(1),
            breaker_cooldown: SimDuration::from_mins(30),
            breaker_price_factor: 0.0,
            capacity_floor: 0.0,
            backstop: false,
            hazard: HazardSpec::Exponential,
        }
    }
}

/// What the job ahead looks like, for plugging into Eq. 1–4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    /// Estimated failure-free running time `T`.
    pub runtime_estimate: SimDuration,
    /// Expected bytes at the lineage frontier per checkpoint (virtual).
    /// The paper conservatively sizes this as the cluster's active RDD
    /// memory (§3.1.2).
    pub checkpoint_bytes: u64,
}

impl Default for JobProfile {
    fn default() -> Self {
        JobProfile {
            runtime_estimate: SimDuration::from_hours(1),
            checkpoint_bytes: 4_000_000_000, // the paper's canonical 4 GB
        }
    }
}

/// Everything a selection policy may observe: backward-looking market
/// statistics plus the job profile. Constructed fresh at each decision
/// point by the node manager.
pub struct MarketView<'a> {
    /// The full market catalog (policies must only use backward stats).
    pub catalog: &'a MarketCatalog,
    /// The decision instant.
    pub now: SimTime,
    /// The bidding policy in force.
    pub bid: BidPolicy,
    /// Selection configuration.
    pub cfg: &'a SelectionConfig,
    /// The job profile.
    pub job: &'a JobProfile,
    /// Durable-storage bandwidth model (for δ).
    pub storage: StorageConfig,
    /// Cluster size being provisioned.
    pub n: u32,
    /// Markets inside their failure cooldown window at `now`: excluded
    /// from [`MarketView::candidates`] so no policy re-enters them.
    pub cooled: &'a [MarketId],
}

impl MarketView<'_> {
    /// Backward-looking statistics of `market` at the policy's bid.
    pub fn stats(&self, market: MarketId) -> MarketStats {
        let m = self.catalog.market(market);
        m.stats(self.now, self.cfg.window, self.bid.bid_for(m))
    }

    /// Estimated checkpoint write time δ with `n` parallel writers.
    pub fn delta(&self) -> SimDuration {
        self.storage
            .write_time(self.job.checkpoint_bytes, self.n.max(1))
    }

    /// Expected running-time inflation factor on a single market.
    pub fn factor(&self, market: MarketId) -> f64 {
        let s = self.stats(market);
        let delta = self.delta();
        let tau = optimal_tau(delta, s.mttf);
        expected_runtime_factor(delta, tau, s.mttf, self.cfg.rd, 1.0)
    }

    /// Expected cost rate ($/server-hour) on a single market.
    pub fn cost_rate(&self, market: MarketId) -> f64 {
        expected_cost(self.factor(market), self.stats(market).mean_price)
    }

    /// The on-demand cost rate (the fallback ceiling).
    pub fn on_demand_rate(&self) -> f64 {
        self.catalog
            .market(self.catalog.on_demand_id())
            .on_demand_price
    }

    /// Revocable markets whose prices currently pass the stability
    /// filter, sorted by expected cost rate (cheapest first).
    pub fn candidates(&self) -> Vec<MarketId> {
        let reference = self.catalog.market(self.catalog.on_demand_id()).spec;
        let mut c: Vec<MarketId> = self
            .catalog
            .spot_markets()
            .iter()
            .filter(|m| !self.cfg.match_reference_spec || m.spec == reference)
            .map(|m| m.id)
            .filter(|id| !self.cooled.contains(id))
            .filter(|id| {
                self.stats(*id)
                    .price_is_stable(self.cfg.stability_threshold)
            })
            .collect();
        c.sort_by(|a, b| {
            self.cost_rate(*a)
                .partial_cmp(&self.cost_rate(*b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        c
    }

    /// Pairwise spike-correlation matrix over the given markets,
    /// estimated from the backward window.
    pub fn correlations(&self, markets: &[MarketId]) -> Vec<Vec<f64>> {
        let traces: Vec<&flint_market::PriceTrace> = markets
            .iter()
            .map(|id| &self.catalog.market(*id).trace)
            .collect();
        correlation_matrix(
            &traces,
            self.now.saturating_sub(self.cfg.window),
            self.now,
            self.cfg.correlation_step,
            self.cfg.spike_threshold,
        )
    }
}

/// A transient-server selection policy.
pub trait SelectionPolicy: Send {
    /// Short policy name for reports.
    fn name(&self) -> &'static str;

    /// Chooses the initial allocation `(market, count)` summing to
    /// `view.n`.
    fn initial(&mut self, view: &MarketView<'_>) -> Vec<(MarketId, u32)>;

    /// Chooses replacements for `count` servers lost from `failed`.
    fn replacement(
        &mut self,
        view: &MarketView<'_>,
        failed: MarketId,
        count: u32,
    ) -> Vec<(MarketId, u32)>;

    /// The risk-aversion λ behind the most recent decision, when the
    /// policy is a mean-variance optimizer. The node manager emits a
    /// `PortfolioWeight` trace event per allocated market when this
    /// returns `Some`; the `None` default keeps every legacy policy's
    /// trace byte-identical.
    fn decision_risk(&self) -> Option<f64> {
        None
    }
}

/// Splits `n` servers as evenly as possible over `markets` (first markets
/// get the remainder).
fn split_evenly(markets: &[MarketId], n: u32) -> Vec<(MarketId, u32)> {
    if markets.is_empty() || n == 0 {
        return Vec::new();
    }
    let m = markets.len() as u32;
    let base = n / m;
    let rem = n % m;
    markets
        .iter()
        .enumerate()
        .map(|(i, id)| (*id, base + u32::from((i as u32) < rem)))
        .filter(|(_, c)| *c > 0)
        .collect()
}

/// The batch policy (§3.1.2): one market, minimum expected cost, falling
/// back to on-demand when spot is not cheaper.
#[derive(Debug, Default, Clone, Copy)]
pub struct BatchSelection;

impl BatchSelection {
    fn best_market(&self, view: &MarketView<'_>, exclude: Option<MarketId>) -> MarketId {
        let od = view.catalog.on_demand_id();
        let od_rate = view.on_demand_rate();
        let mut best = od;
        let mut best_rate = od_rate;
        for id in view.candidates() {
            if Some(id) == exclude {
                continue;
            }
            let rate = view.cost_rate(id);
            if rate < best_rate {
                best = id;
                best_rate = rate;
            }
        }
        best
    }
}

impl SelectionPolicy for BatchSelection {
    fn name(&self) -> &'static str {
        "flint-batch"
    }

    fn initial(&mut self, view: &MarketView<'_>) -> Vec<(MarketId, u32)> {
        vec![(self.best_market(view, None), view.n)]
    }

    fn replacement(
        &mut self,
        view: &MarketView<'_>,
        failed: MarketId,
        count: u32,
    ) -> Vec<(MarketId, u32)> {
        vec![(self.best_market(view, Some(failed)), count)]
    }
}

/// The interactive policy (§3.2.2): diversify across the uncorrelated
/// candidate set `L`, adding markets while the running-time variance
/// keeps decreasing and the expected cost stays below on-demand.
#[derive(Debug, Default, Clone)]
pub struct InteractiveSelection {
    /// The uncorrelated candidate list from the last decision, in
    /// expected-cost order (used for replacements).
    last_l: Vec<MarketId>,
    /// Markets currently in use.
    current: Vec<MarketId>,
}

/// The uncorrelated candidate list `L` (§3.2.2): stable candidates in
/// expected-cost order, pruned so every admitted pair's spike
/// correlation stays below the cap.
fn uncorrelated_candidates(view: &MarketView<'_>) -> Vec<MarketId> {
    let cands = view.candidates();
    if cands.is_empty() {
        return Vec::new();
    }
    let corr = view.correlations(&cands);
    greedy_uncorrelated_subset(&corr, view.cfg.max_correlation, view.cfg.max_markets)
        .into_iter()
        .map(|i| cands[i])
        .collect()
}

/// Running-time variance of an even split across `set` (§3.2.2).
fn variance_of(view: &MarketView<'_>, set: &[MarketId]) -> f64 {
    let mttfs: Vec<SimDuration> = set.iter().map(|id| view.stats(*id).mttf).collect();
    let agg = harmonic_mttf(&mttfs);
    runtime_variance(
        view.job.runtime_estimate,
        view.delta(),
        agg,
        view.cfg.rd,
        set.len() as u32,
    )
}

fn mean_price_of(view: &MarketView<'_>, set: &[MarketId]) -> f64 {
    if set.is_empty() {
        return f64::INFINITY;
    }
    set.iter().map(|id| view.stats(*id).mean_price).sum::<f64>() / set.len() as f64
}

/// The Policy-2 diversified set: grow along `l` while the running-time
/// variance keeps decreasing and the mean price stays below on-demand,
/// never splitting below one server per market. This is the exact
/// λ → ∞ limit of the mean-variance portfolio objective under the
/// paper's exchangeable-market variance model, so [`PortfolioPolicy`]
/// shares it with [`InteractiveSelection`].
fn policy2_chosen(view: &MarketView<'_>, l: &[MarketId]) -> Vec<MarketId> {
    if l.is_empty() {
        return Vec::new();
    }
    let od_rate = view.on_demand_rate();
    let mut chosen = vec![l[0]];
    let mut best_var = variance_of(view, &chosen);
    for next in l.iter().skip(1) {
        // Never split below one server per market.
        if chosen.len() as u32 >= view.n {
            break;
        }
        let mut trial = chosen.clone();
        trial.push(*next);
        let var = variance_of(view, &trial);
        let price = mean_price_of(view, &trial);
        if var < best_var && price <= od_rate {
            chosen = trial;
            best_var = var;
        } else {
            break;
        }
    }
    chosen
}

impl SelectionPolicy for InteractiveSelection {
    fn name(&self) -> &'static str {
        "flint-interactive"
    }

    fn initial(&mut self, view: &MarketView<'_>) -> Vec<(MarketId, u32)> {
        let l = uncorrelated_candidates(view);
        self.last_l.clone_from(&l);
        if l.is_empty() {
            self.current = vec![view.catalog.on_demand_id()];
            return vec![(view.catalog.on_demand_id(), view.n)];
        }
        let chosen = policy2_chosen(view, &l);
        self.current.clone_from(&chosen);
        split_evenly(&chosen, view.n)
    }

    fn replacement(
        &mut self,
        view: &MarketView<'_>,
        failed: MarketId,
        count: u32,
    ) -> Vec<(MarketId, u32)> {
        self.current.retain(|m| *m != failed);
        // Lowest-cost unused market from L (§3.2.2 restoration policy);
        // re-derive L if stale or exhausted.
        let mut l = self.last_l.clone();
        if l.iter().all(|m| self.current.contains(m) || *m == failed) {
            l = uncorrelated_candidates(view);
            self.last_l.clone_from(&l);
        }
        let stable = |m: &MarketId| view.stats(*m).price_is_stable(view.cfg.stability_threshold);
        // Prefer an unused stable market; failing that, re-enter the
        // lowest-cost stable market already in use (better than paying
        // on-demand); only with L exhausted fall back to on-demand.
        let pick = l
            .iter()
            .find(|m| **m != failed && !self.current.contains(m) && stable(m))
            .or_else(|| l.iter().find(|m| **m != failed && stable(m)))
            .copied()
            .unwrap_or_else(|| view.catalog.on_demand_id());
        self.current.push(pick);
        vec![(pick, count)]
    }
}

/// λ at or above which [`PortfolioPolicy`] returns the closed-form
/// pure-risk optimum (the Policy-2 diversified even split) instead of
/// running the numeric optimizer: at that point the cost term is
/// below float resolution relative to the risk term.
pub const RISK_POLICY2: f64 = 1e9;

/// Mean-variance portfolio selection over transient markets.
///
/// Generalizes the paper's two policies into one objective over an
/// allocation `c` (with weights `w_i = c_i / n`):
///
/// `J(c) = Σ_i w_i · ĉ_i  +  λ · Σ_ij w_i w_j ρ_ij σ_i σ_j`
///
/// where `ĉ_i` is market `i`'s expected cost rate normalized by the
/// on-demand rate, `ρ` is the backward-window spike-correlation matrix
/// (the same estimate `correlated_groups` uses), and `σ_i²` is the
/// normalized single-market running-time variance (§3.2.2). `J` is
/// minimized by deterministic greedy unit allocation: each of the `n`
/// servers goes to the market with the smallest marginal `ΔJ`, ties to
/// the cheapest (lowest-index) market.
///
/// Limit cases recover the existing policies exactly:
///
/// * `risk_aversion = 0` — the marginal cost `ĉ_i / n` is constant per
///   market, so every server goes to the cheapest stable candidate (or
///   on-demand when no candidate beats the on-demand rate): the greedy
///   batch policy's allocation, server for server.
/// * `risk_aversion ≥ RISK_POLICY2` — cost vanishes from the
///   objective; under the paper's exchangeable-market variance model
///   the pure-risk optimum is the diversified even split over the
///   uncorrelated set `L`, and the policy returns it through the same
///   `policy2_chosen` + `split_evenly` code path the interactive
///   (MTTF/variance) policy runs.
#[derive(Debug, Clone)]
pub struct PortfolioPolicy {
    /// Risk-aversion λ ≥ 0.
    risk_aversion: f64,
}

impl PortfolioPolicy {
    /// A portfolio policy with the given risk aversion (clamped below
    /// at zero).
    pub fn new(risk_aversion: f64) -> Self {
        PortfolioPolicy {
            risk_aversion: risk_aversion.max(0.0),
        }
    }

    /// The configured risk-aversion λ.
    pub fn risk_aversion(&self) -> f64 {
        self.risk_aversion
    }

    /// Candidate universe: stable spot markets strictly cheaper than
    /// on-demand (matching the batch policy's fallback ceiling),
    /// minus `exclude`.
    fn universe(&self, view: &MarketView<'_>, exclude: Option<MarketId>) -> Vec<MarketId> {
        let od_rate = view.on_demand_rate();
        view.candidates()
            .into_iter()
            .filter(|id| Some(*id) != exclude)
            .filter(|id| view.cost_rate(*id) < od_rate)
            .collect()
    }

    /// Optimizes an allocation of `n` servers, excluding `exclude`.
    fn allocate(
        &self,
        view: &MarketView<'_>,
        exclude: Option<MarketId>,
        n: u32,
    ) -> Vec<(MarketId, u32)> {
        if n == 0 {
            return Vec::new();
        }
        if self.risk_aversion >= RISK_POLICY2 {
            // Closed-form λ → ∞ limit: Policy 2's diversified split.
            let l: Vec<MarketId> = uncorrelated_candidates(view)
                .into_iter()
                .filter(|id| Some(*id) != exclude)
                .collect();
            let chosen = policy2_chosen(view, &l);
            if chosen.is_empty() {
                return vec![(view.catalog.on_demand_id(), n)];
            }
            return split_evenly(&chosen, n);
        }
        let universe = self.universe(view, exclude);
        if universe.is_empty() {
            return vec![(view.catalog.on_demand_id(), n)];
        }
        let k = universe.len();
        let nf = f64::from(n);
        let od_rate = view.on_demand_rate().max(f64::MIN_POSITIVE);
        let cost: Vec<f64> = universe
            .iter()
            .map(|id| view.cost_rate(*id) / od_rate)
            .collect();
        // Single-market running-time variances, normalized so λ is
        // dimensionless (independent of job length and δ).
        let var: Vec<f64> = universe
            .iter()
            .map(|id| {
                runtime_variance(
                    view.job.runtime_estimate,
                    view.delta(),
                    view.stats(*id).mttf,
                    view.cfg.rd,
                    1,
                )
            })
            .collect();
        let vmax = var.iter().copied().fold(0.0_f64, f64::max).max(1e-300);
        let sigma: Vec<f64> = var.iter().map(|v| (v / vmax).sqrt()).collect();
        let rho = view.correlations(&universe);
        let mut cov = vec![vec![0.0_f64; k]; k];
        #[allow(clippy::needless_range_loop)]
        for i in 0..k {
            for j in 0..k {
                cov[i][j] = if i == j {
                    sigma[i] * sigma[i]
                } else {
                    rho[i][j] * sigma[i] * sigma[j]
                };
            }
        }
        // Greedy unit allocation: J is convex in the weights, so
        // assigning one server at a time to the smallest marginal ΔJ
        // is optimal over integer allocations; strict `<` makes ties
        // go to the lowest index, i.e. the cheapest market.
        let mut count = vec![0u32; k];
        for _ in 0..n {
            let mut best = 0usize;
            let mut best_delta = f64::INFINITY;
            for i in 0..k {
                let w_dot: f64 = (0..k).map(|j| cov[i][j] * f64::from(count[j]) / nf).sum();
                let delta_j =
                    cost[i] / nf + self.risk_aversion * (2.0 * w_dot + cov[i][i] / nf) / nf;
                if delta_j < best_delta {
                    best_delta = delta_j;
                    best = i;
                }
            }
            count[best] += 1;
        }
        universe
            .into_iter()
            .zip(count)
            .filter(|(_, c)| *c > 0)
            .collect()
    }
}

impl SelectionPolicy for PortfolioPolicy {
    fn name(&self) -> &'static str {
        "flint-portfolio"
    }

    fn initial(&mut self, view: &MarketView<'_>) -> Vec<(MarketId, u32)> {
        self.allocate(view, None, view.n)
    }

    fn replacement(
        &mut self,
        view: &MarketView<'_>,
        failed: MarketId,
        count: u32,
    ) -> Vec<(MarketId, u32)> {
        // Re-optimize the replacement tranche over the surviving
        // universe (the failed market sits in its cooldown window and
        // is excluded explicitly as well).
        self.allocate(view, Some(failed), count)
    }

    fn decision_risk(&self) -> Option<f64> {
        Some(self.risk_aversion)
    }
}

/// Always provision on-demand servers (the cost baseline of Fig. 11a).
#[derive(Debug, Default, Clone, Copy)]
pub struct OnDemandSelection;

impl SelectionPolicy for OnDemandSelection {
    fn name(&self) -> &'static str {
        "on-demand"
    }

    fn initial(&mut self, view: &MarketView<'_>) -> Vec<(MarketId, u32)> {
        vec![(view.catalog.on_demand_id(), view.n)]
    }

    fn replacement(
        &mut self,
        view: &MarketView<'_>,
        _failed: MarketId,
        count: u32,
    ) -> Vec<(MarketId, u32)> {
        vec![(view.catalog.on_demand_id(), count)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flint_market::MarketCatalog;

    fn make_view<'a>(
        cat: &'a MarketCatalog,
        cfg: &'a SelectionConfig,
        job: &'a JobProfile,
        now_hours: f64,
        n: u32,
    ) -> MarketView<'a> {
        MarketView {
            catalog: cat,
            now: SimTime::from_hours_f64(now_hours),
            bid: BidPolicy::OnDemandPrice,
            cfg,
            job,
            storage: StorageConfig::default(),
            n,
            cooled: &[],
        }
    }

    #[test]
    fn tau_matches_daly_formula() {
        let tau = optimal_tau(SimDuration::from_mins(2), SimDuration::from_hours(50));
        let expect = (2.0 * 120.0 * 50.0 * 3600.0_f64).sqrt();
        assert!((tau.as_secs_f64() - expect).abs() < 1.0);
        assert_eq!(
            optimal_tau(SimDuration::from_mins(2), SimDuration::MAX),
            SimDuration::MAX
        );
    }

    #[test]
    fn tau_grows_with_mttf_and_delta() {
        let d = SimDuration::from_mins(2);
        let t1 = optimal_tau(d, SimDuration::from_hours(10));
        let t2 = optimal_tau(d, SimDuration::from_hours(100));
        assert!(t2 > t1);
        let t3 = optimal_tau(SimDuration::from_mins(8), SimDuration::from_hours(10));
        assert!((t3.as_secs_f64() / t1.as_secs_f64() - 2.0).abs() < 0.01);
    }

    #[test]
    fn factor_is_one_on_demand_and_grows_with_volatility() {
        let d = SimDuration::from_mins(2);
        let rd = SimDuration::from_secs(120);
        assert_eq!(
            expected_runtime_factor(d, SimDuration::MAX, SimDuration::MAX, rd, 1.0),
            1.0
        );
        let f = |mttf_h: u64| {
            let mttf = SimDuration::from_hours(mttf_h);
            let tau = optimal_tau(d, mttf);
            expected_runtime_factor(d, tau, mttf, rd, 1.0)
        };
        assert!(f(1) > f(5));
        assert!(f(5) > f(50));
        assert!(f(50) > 1.0 && f(50) < 1.10, "50h MTTF factor = {}", f(50));
    }

    #[test]
    fn harmonic_mttf_properties() {
        let h20 = SimDuration::from_hours(20);
        assert_eq!(harmonic_mttf(&[h20]), h20);
        let two = harmonic_mttf(&[h20, h20]);
        assert!((two.as_hours_f64() - 10.0).abs() < 1e-6);
        // On-demand members do not reduce the aggregate.
        let with_od = harmonic_mttf(&[h20, SimDuration::MAX]);
        assert_eq!(with_od, h20);
        assert_eq!(harmonic_mttf(&[]), SimDuration::MAX);
    }

    #[test]
    fn variance_decreases_with_more_markets() {
        let t = SimDuration::from_hours(2);
        let d = SimDuration::from_mins(2);
        let rd = SimDuration::from_secs(120);
        let single = runtime_variance(t, d, SimDuration::from_hours(20), rd, 1);
        // Two 20 h markets → aggregate 10 h, m = 2.
        let double = runtime_variance(t, d, SimDuration::from_hours(10), rd, 2);
        assert!(
            double < single,
            "diversification must cut variance: {double} vs {single}"
        );
        assert_eq!(runtime_variance(t, d, SimDuration::MAX, rd, 1), 0.0);
    }

    #[test]
    fn batch_selection_prefers_cheap_stable_market() {
        let cat = MarketCatalog::synthetic_ec2(11, SimDuration::from_days(30));
        let cfg = SelectionConfig::default();
        let job = JobProfile::default();
        let view = make_view(&cat, &cfg, &job, 14.0 * 24.0, 10);
        let mut p = BatchSelection;
        let alloc = p.initial(&view);
        assert_eq!(alloc.len(), 1);
        let (m, n) = alloc[0];
        assert_eq!(n, 10);
        // Must be a spot market (spot is ~10x cheaper in the catalog).
        assert!(
            cat.market(m).is_revocable(),
            "picked {}",
            cat.market(m).name
        );
        // And its cost rate must be minimal among candidates.
        let best_rate = view.cost_rate(m);
        for c in view.candidates() {
            assert!(view.cost_rate(c) >= best_rate - 1e-12);
        }
    }

    #[test]
    fn batch_replacement_excludes_failed_market() {
        let cat = MarketCatalog::synthetic_ec2(11, SimDuration::from_days(30));
        let cfg = SelectionConfig::default();
        let job = JobProfile::default();
        let view = make_view(&cat, &cfg, &job, 14.0 * 24.0, 10);
        let mut p = BatchSelection;
        let first = p.initial(&view)[0].0;
        let repl = p.replacement(&view, first, 10);
        assert_eq!(repl.len(), 1);
        assert_ne!(repl[0].0, first);
        assert_eq!(repl[0].1, 10);
    }

    #[test]
    fn cooled_markets_drop_out_of_candidates() {
        let cat = MarketCatalog::synthetic_ec2(11, SimDuration::from_days(30));
        let cfg = SelectionConfig::default();
        let job = JobProfile::default();
        let open = make_view(&cat, &cfg, &job, 14.0 * 24.0, 10);
        let before = open.candidates();
        assert!(!before.is_empty());
        // Cool the cheapest candidate: it must vanish from the set and
        // from batch selection, while everything else survives.
        let mut p = BatchSelection;
        let cheapest = p.initial(&open)[0].0;
        let cooled = [cheapest];
        let view = MarketView {
            cooled: &cooled,
            ..open
        };
        let after = view.candidates();
        assert!(!after.contains(&cheapest));
        assert_eq!(after.len(), before.len() - 1);
        assert_ne!(p.initial(&view)[0].0, cheapest);
    }

    #[test]
    fn interactive_selection_diversifies() {
        let cat = MarketCatalog::synthetic_ec2(11, SimDuration::from_days(30));
        let cfg = SelectionConfig::default();
        let job = JobProfile::default();
        let view = make_view(&cat, &cfg, &job, 14.0 * 24.0, 12);
        let mut p = InteractiveSelection::default();
        let alloc = p.initial(&view);
        let total: u32 = alloc.iter().map(|(_, c)| *c).sum();
        assert_eq!(total, 12);
        assert!(
            alloc.len() >= 2,
            "interactive policy should spread across markets: {alloc:?}"
        );
        // All chosen markets pairwise uncorrelated under the cap.
        let ids: Vec<MarketId> = alloc.iter().map(|(m, _)| *m).collect();
        let corr = view.correlations(&ids);
        #[allow(clippy::needless_range_loop)]
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                assert!(
                    corr[i][j].abs() <= cfg.max_correlation + 1e-9,
                    "markets {i},{j} correlate at {}",
                    corr[i][j]
                );
            }
        }
    }

    #[test]
    fn interactive_replacement_uses_unused_market() {
        let cat = MarketCatalog::synthetic_ec2(11, SimDuration::from_days(30));
        let cfg = SelectionConfig::default();
        let job = JobProfile::default();
        let view = make_view(&cat, &cfg, &job, 14.0 * 24.0, 12);
        let mut p = InteractiveSelection::default();
        let alloc = p.initial(&view);
        let used: Vec<MarketId> = alloc.iter().map(|(m, _)| *m).collect();
        let failed = used[0];
        let repl = p.replacement(&view, failed, 4);
        assert_eq!(repl[0].1, 4);
        // Never back into the spiking market, and never straight to
        // on-demand while stable spot markets remain.
        assert_ne!(repl[0].0, failed);
        assert_ne!(repl[0].0, cat.on_demand_id());
    }

    #[test]
    fn on_demand_selection_is_constant() {
        let cat = MarketCatalog::synthetic_ec2(11, SimDuration::from_days(30));
        let cfg = SelectionConfig::default();
        let job = JobProfile::default();
        let view = make_view(&cat, &cfg, &job, 24.0, 5);
        let mut p = OnDemandSelection;
        assert_eq!(p.initial(&view), vec![(cat.on_demand_id(), 5)]);
        assert_eq!(
            p.replacement(&view, MarketId(0), 2),
            vec![(cat.on_demand_id(), 2)]
        );
    }

    #[test]
    fn all_markets_spiking_falls_back_to_on_demand() {
        // Build a catalog whose every spot market is in a spike at the
        // decision instant: the stability filter rejects them all and
        // both policies must resume on on-demand servers (§3.1.2).
        use flint_market::{InstanceSpec, Market, MarketKind, PriceTrace};
        let spike_start = SimTime::from_hours_f64(100.0);
        let mk = |i: u32| Market {
            id: MarketId(i),
            name: format!("spiky-{i}"),
            zone: "z".into(),
            spec: InstanceSpec::R3_LARGE,
            on_demand_price: 0.175,
            kind: MarketKind::Spot,
            trace: PriceTrace::from_points(vec![(SimTime::ZERO, 0.02), (spike_start, 1.5)]),
        };
        let od = Market {
            id: MarketId(2),
            name: "od".into(),
            zone: "z".into(),
            spec: InstanceSpec::R3_LARGE,
            on_demand_price: 0.175,
            kind: MarketKind::OnDemand,
            trace: PriceTrace::flat(0.175),
        };
        let cat = MarketCatalog::new(vec![mk(0), mk(1), od], MarketId(2));
        let cfg = SelectionConfig::default();
        let job = JobProfile::default();
        let view = MarketView {
            catalog: &cat,
            now: spike_start + SimDuration::from_mins(10),
            bid: BidPolicy::OnDemandPrice,
            cfg: &cfg,
            job: &job,
            storage: StorageConfig::default(),
            n: 4,
            cooled: &[],
        };
        let mut batch = BatchSelection;
        assert_eq!(batch.initial(&view), vec![(cat.on_demand_id(), 4)]);
        let mut inter = InteractiveSelection::default();
        assert_eq!(inter.initial(&view), vec![(cat.on_demand_id(), 4)]);
    }

    #[test]
    fn portfolio_zero_risk_matches_batch_exactly() {
        let cat = MarketCatalog::synthetic_ec2(11, SimDuration::from_days(30));
        let cfg = SelectionConfig::default();
        let job = JobProfile::default();
        let view = make_view(&cat, &cfg, &job, 14.0 * 24.0, 10);
        let mut batch = BatchSelection;
        let mut portfolio = PortfolioPolicy::new(0.0);
        assert_eq!(portfolio.initial(&view), batch.initial(&view));
        let failed = batch.initial(&view)[0].0;
        assert_eq!(
            portfolio.replacement(&view, failed, 4),
            batch.replacement(&view, failed, 4)
        );
    }

    #[test]
    fn portfolio_saturated_risk_matches_interactive_exactly() {
        let cat = MarketCatalog::synthetic_ec2(11, SimDuration::from_days(30));
        let cfg = SelectionConfig::default();
        let job = JobProfile::default();
        let view = make_view(&cat, &cfg, &job, 14.0 * 24.0, 12);
        let mut inter = InteractiveSelection::default();
        let mut portfolio = PortfolioPolicy::new(RISK_POLICY2);
        assert_eq!(portfolio.initial(&view), inter.initial(&view));
    }

    #[test]
    fn portfolio_allocation_is_complete_and_deterministic() {
        let cat = MarketCatalog::synthetic_ec2(11, SimDuration::from_days(30));
        let cfg = SelectionConfig::default();
        let job = JobProfile::default();
        let view = make_view(&cat, &cfg, &job, 14.0 * 24.0, 10);
        for risk in [0.0, 0.5, 2.0, 100.0, RISK_POLICY2] {
            let mut p = PortfolioPolicy::new(risk);
            let a = p.initial(&view);
            let b = p.initial(&view);
            assert_eq!(a, b, "allocation must be deterministic at λ={risk}");
            let total: u32 = a.iter().map(|(_, c)| *c).sum();
            assert_eq!(total, 10, "λ={risk}");
            assert!(a.iter().all(|(_, c)| *c > 0));
        }
        assert_eq!(PortfolioPolicy::new(1.0).decision_risk(), Some(1.0));
        assert_eq!(BatchSelection.decision_risk(), None);
    }

    #[test]
    fn portfolio_diversifies_more_as_risk_grows() {
        let cat = MarketCatalog::synthetic_ec2(11, SimDuration::from_days(30));
        let cfg = SelectionConfig::default();
        let job = JobProfile::default();
        let view = make_view(&cat, &cfg, &job, 14.0 * 24.0, 12);
        let spread = |risk: f64| PortfolioPolicy::new(risk).allocate(&view, None, 12).len();
        assert_eq!(spread(0.0), 1, "risk-neutral is all-in on the cheapest");
        assert!(
            spread(100.0) > 1,
            "risk-averse allocation must diversify across markets"
        );
    }

    #[test]
    fn split_evenly_distributes_remainder() {
        let ms = vec![MarketId(0), MarketId(1), MarketId(2)];
        let split = split_evenly(&ms, 10);
        let counts: Vec<u32> = split.iter().map(|(_, c)| *c).collect();
        assert_eq!(counts, vec![4, 3, 3]);
        assert!(split_evenly(&[], 10).is_empty());
        assert!(split_evenly(&ms, 0).is_empty());
        // More markets than servers: trailing markets get nothing.
        let split2 = split_evenly(&ms, 2);
        assert_eq!(split2.len(), 2);
    }
}
